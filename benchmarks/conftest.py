"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper table/figure at reduced scale (set
``REPRO_FULL=1`` for larger runs) and prints the same rows/series the paper
reports.  The ``report`` fixture bypasses pytest's output capture so the
tables appear on the console, and also archives them under
``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.executor import Executor, set_default_executor
from repro.experiments.runner import Scale

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> Scale:
    """Run-size knobs (reduced by default, REPRO_FULL=1 for paper scale)."""
    return Scale.from_env()


@pytest.fixture(scope="session", autouse=True)
def executor():
    """Experiment executor for the whole bench session.

    ``REPRO_JOBS=N`` parallelizes every figure's run grid; setting
    ``REPRO_CACHE_DIR`` additionally memoizes completed cells on disk so a
    re-run only re-simulates what changed.  Installed as the process
    default, so the figure modules pick it up without plumbing.
    """
    executor = Executor.from_env()
    previous = set_default_executor(executor)
    yield executor
    set_default_executor(previous)


@pytest.fixture
def report(request, capsys):
    """Print a result table to the live console and archive it."""

    def _report(text: str) -> None:
        with capsys.disabled():
            print(f"\n{text}\n")
        RESULTS_DIR.mkdir(exist_ok=True)
        name = request.node.name.replace("/", "_")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _report
