"""Figure 2: instantaneous marking cannot win on both axes.

Paper shape at 3x variation, web search, 50% load: raising the cut-off
threshold from 50KB to 250KB improves large-flow FCT (~8% between the
average-RTT and tail-RTT operating points) while inflating short-flow
99th-percentile FCT (the paper reports +119% at the tail threshold).
"""

from repro.experiments.figures import fig2


def test_fig2_threshold_sweep(benchmark, report, scale):
    result = benchmark.pedantic(
        fig2.run_fig2,
        kwargs={"n_flows": scale.n_flows_web_search, "seed": 7, "n_seeds": scale.n_seeds},
        rounds=1,
        iterations=1,
    )
    report(fig2.render(result))

    lowest, highest = result.thresholds_kb[0], result.thresholds_kb[-1]
    norm_large = result.normalized("large_avg")
    norm_short99 = result.normalized("short_p99")

    # Throughput axis: the tail threshold beats the low threshold on
    # large-flow FCT.
    assert norm_large[highest] < norm_large[lowest]
    # Latency axis: the tail threshold is markedly worse on short-flow p99.
    assert norm_short99[highest] > 1.5
    # No intermediate threshold wins both axes simultaneously.
    for threshold in result.thresholds_kb:
        wins_latency = norm_short99[threshold] <= 1.10
        wins_throughput = norm_large[threshold] <= norm_large[highest] * 1.03
        assert not (wins_latency and wins_throughput)
