"""Section 4 implementation claims: resources, clock, line-rate processing.

The paper's prototype: ~500 lines of P4, 7 match-action tables with <10
entries, 5x32-bit + 2x64-bit register arrays, a wraparound-safe 32-bit
microsecond clock, and every register accessed at most once per packet.
This bench validates the model's resource budget, measures packets/second
through the pipeline model, and differentially checks marking decisions.
"""

import random

from repro.dataplane import EcnSharpPipeline


def run_trace(pipeline, n_packets=20_000, seed=0):
    rng = random.Random(seed)
    t_ns, marks = 0, 0
    for _ in range(n_packets):
        t_ns += rng.randint(500, 2_000)
        sojourn = rng.choice((0, 2, 5, 12, 30, 80, 150, 250))
        meta = pipeline.process_packet(t_ns, sojourn)
        marks += bool(meta["mark"])
    return marks


def test_dataplane_resource_budget_and_throughput(benchmark, report):
    pipeline = EcnSharpPipeline(
        ins_target_ticks=195, pst_target_ticks=10, pst_interval_ticks=234
    )
    marks = benchmark(run_trace, pipeline, 5_000)

    resources = pipeline.resource_report()
    lines = ["Section 4 resource model (paper's prototype in parentheses):"]
    lines.append(f"  match-action tables : {resources['tables']} (7)")
    lines.append(f"  table entries       : {resources['table_entries']} (<10)")
    lines.append(f"  32-bit reg arrays   : {resources['register_arrays_32']} (5)")
    lines.append(f"  64-bit reg arrays   : {resources['register_arrays_64']} (2)")
    lines.append(
        f"  register bytes      : {resources['register_bits'] // 8:,}"
    )
    report("\n".join(lines))

    assert resources["tables"] == 7
    assert resources["table_entries"] < 10
    assert resources["register_arrays_32"] == 5
    assert resources["register_arrays_64"] == 2
    assert marks > 0  # the trace exercised both marking paths
