"""Results-service microbenchmark: warm vs cold query throughput.

Measures the serving tier the ``repro serve`` daemon adds, over real HTTP
on a loopback socket, and writes the numbers to ``BENCH_service.json``:

* ``cold.queries_per_sec`` -- every request is a distinct query (unique
  query hash), so each one misses the summary cache and pays the full
  filter + aggregate + render path;
* ``warm.queries_per_sec`` -- the same query repeated, so every request
  after the first is served from the summary-tier LRU: the stat-probe
  revalidation plus a cache lookup, zero store reads (asserted against
  the daemon's own ``service_store_loads_total`` counter);
* ``p50_ms`` / ``p99_ms`` per mode -- per-request latency through the
  stdlib client.

The store is synthesized (``--cells`` settled cell records, no
simulation), so the benchmark isolates serving cost from simulation cost
and runs in seconds.

Usage::

    python benchmarks/perf_service.py [--cells N] [--requests N] [--out PATH]

A one-line summary is appended to the benchmark trend file (consumed by
``repro obs report``; ``service_warm_qps`` / ``service_warm_p99_ms``
columns).  Not a pytest module on purpose: perf numbers belong in a JSON
artifact, not in an assertion.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.stats_util import percentile  # noqa: E402
from repro.scenarios.campaign import CampaignStore, CellRecord  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.daemon import ResultsService, _make_server  # noqa: E402
from repro.telemetry.provenance import git_sha  # noqa: E402

SCHEMES = ("DCTCP-RED-Tail", "CoDel", "ECN#")
METRICS = ("avg_query_fct", "p99_query_fct", "standing_queue_pkts",
           "marks", "drops")


def synthesize_store(directory: Path, cells: int) -> Path:
    """Write a campaign store of ``cells`` settled records -- a plausible
    sweep shape (scenarios x schemes x loads x seeds), deterministic
    values, no simulation."""
    path = directory / "bench.jsonl"
    store = CampaignStore(path)
    records = []
    for index in range(cells):
        scenario = f"scenario-{index % 4}"
        scheme = SCHEMES[index % len(SCHEMES)]
        load = 0.2 + 0.1 * (index % 7)
        seed = index % 5
        records.append(CellRecord(
            scenario=scenario,
            scenario_hash=f"hash-{index % 4}",
            cell_key=f"websearch|load={load:g}|scheme={scheme}",
            component="websearch",
            tokens=(f"star|{scheme}|seed={seed}|{index:016x}",),
            status="ok",
            metrics={
                name: round((index + 1) * 0.001 * (pos + 1), 6)
                for pos, name in enumerate(METRICS)
            },
            failures=(),
            git_sha=None,
            version="bench",
        ))
    store.append(records)
    return path


def run_requests(client: ServiceClient, queries, repeats: int) -> dict:
    """Issue ``repeats`` GETs cycling through ``queries``; per-request
    latency stats plus aggregate throughput."""
    latencies = []
    for index in range(repeats):
        params = queries[index % len(queries)]
        start = time.perf_counter()
        response = client.query(params)
        latencies.append(time.perf_counter() - start)
        assert response.status == 200, f"HTTP {response.status}"
    total = sum(latencies)
    return {
        "requests": repeats,
        "wall_seconds": total,
        "queries_per_sec": repeats / total,
        "p50_ms": percentile(latencies, 50.0) * 1e3,
        "p99_ms": percentile(latencies, 99.0) * 1e3,
    }


def bench_service(cells: int, requests: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        directory = Path(tmp)
        synthesize_store(directory, cells)
        service = ResultsService(directory)
        server = _make_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            client = ServiceClient(f"http://{host}:{port}")

            # Cold: every request is a distinct query hash -> cache miss.
            # The token filter carries the request index (cells embed a
            # per-index hex token), so no two requests share a cache key.
            cold_queries = [
                {"metric": METRICS[i % len(METRICS)],
                 "token": f"{i % cells:016x}",
                 "scenario": f"scenario-{i % 4}"}
                for i in range(requests)
            ]
            cold = run_requests(client, cold_queries, requests)
            misses_after_cold = service.cache.stats()["misses"]
            assert misses_after_cold >= min(requests, cells), (
                "cold queries unexpectedly hit the cache"
            )

            # Warm: one query repeated; everything after the priming
            # request must come from the summary cache without touching
            # the store again.
            warm_query = [{"metric": "avg_query_fct"}]
            client.query(warm_query[0])
            loads_before = service.index.store_loads
            warm = run_requests(client, warm_query, requests)
            assert service.index.store_loads == loads_before, (
                "warm queries re-read the store"
            )
            cache = service.cache.stats()
        finally:
            server.shutdown()
            server.server_close()
    return {"cold": cold, "warm": warm, "cache": cache, "cells": cells}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cells", type=int, default=400,
                        help="settled cells in the synthesized store")
    parser.add_argument("--requests", type=int, default=300,
                        help="requests per mode (cold and warm)")
    parser.add_argument("--out", default="BENCH_service.json",
                        help="output JSON path")
    parser.add_argument("--trend", metavar="TREND_JSONL",
                        default=str(Path(__file__).parent / "results"
                                    / "trend.jsonl"),
                        help="append a one-line summary of this run to a "
                        "JSONL trend file (consumed by `repro obs report`)")
    parser.add_argument("--no-trend", action="store_true",
                        help="skip the trend-file append")
    args = parser.parse_args(argv)

    print(f"# service: {args.cells} cells, {args.requests} requests "
          "per mode over loopback HTTP ...", flush=True)
    result = bench_service(args.cells, args.requests)
    for mode in ("cold", "warm"):
        stats = result[mode]
        print(f"#   {mode}: {stats['queries_per_sec']:,.0f} q/s "
              f"(p50 {stats['p50_ms']:.2f} ms, p99 {stats['p99_ms']:.2f} ms)")
    cache = result["cache"]
    print(f"#   cache: {cache['hits']} hits / {cache['misses']} misses / "
          f"{cache['evictions']} evictions, {cache['bytes']:,} bytes")

    payload = {
        "cpu_count": os.cpu_count() or 1,
        "python": sys.version.split()[0],
        "git_sha": git_sha(),
        "unix_time": time.time(),
        "service": result,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"# written to {args.out}")

    if not args.no_trend:
        trend_path = Path(args.trend)
        trend_path.parent.mkdir(parents=True, exist_ok=True)
        trend_row = {
            "unix_time": round(payload["unix_time"], 3),
            "git_sha": payload["git_sha"],
            "python": payload["python"],
            "cpu_count": payload["cpu_count"],
            "service_cold_qps": round(result["cold"]["queries_per_sec"], 1),
            "service_warm_qps": round(result["warm"]["queries_per_sec"], 1),
            "service_warm_p99_ms": round(result["warm"]["p99_ms"], 3),
            "service_cells": args.cells,
            "service_requests": args.requests,
        }
        with open(trend_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(trend_row, sort_keys=True,
                                    separators=(",", ":")) + "\n")
        print(f"# trend appended to {trend_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
