"""Figure 12: ECN# parameter sensitivity.

Paper shape: sweeping pst_interval over 100-250 us and pst_target over
6-18 us moves overall average FCT by <1% (web search) and <0.2% (data
mining) -- ECN# needs no careful tuning.  At reduced scale run-to-run noise
is larger, so the bound asserted here is a few percent.
"""

from repro.experiments.figures import fig12


def test_fig12_parameter_sensitivity(benchmark, report, scale):
    result = benchmark.pedantic(
        fig12.run_fig12,
        kwargs={
            "n_flows_web": max(60, scale.n_flows_web_search // 2),
            "n_flows_mining": max(30, scale.n_flows_data_mining // 2),
            "seed": 71,
        },
        rounds=1,
        iterations=1,
    )
    report(fig12.render(result))

    for workload in ("web-search", "data-mining"):
        interval_spread = result.interval_spread(workload)
        target_spread = result.target_spread(workload)
        assert interval_spread is not None and target_spread is not None
        # Paper: <1%; reduced-scale runs carry ~10% seed noise (data mining
        # especially: 60 flows per point), so the bound here is loose.
        assert interval_spread < 0.15
        assert target_spread < 0.15
