"""Figure 7: testbed FCT vs load under data mining (4 schemes, 3x variation).

Paper shape mirrors Figure 6 (ECN# up to -31.2% short-flow avg / -37.6% p99
vs DCTCP-RED-Tail; RED-AVG loses up to 20.5% on large flows) with ECN#
performing best overall at all loads on this workload.
"""

from repro.experiments.figures import fig6_fig7


def test_fig7_datamining_fct_vs_load(benchmark, report, scale):
    result = benchmark.pedantic(
        fig6_fig7.run_fig7,
        kwargs={
            "loads": scale.loads,
            "n_flows": scale.n_flows_data_mining,
            "seed": 22,
            "n_seeds": scale.n_seeds,
        },
        rounds=1,
        iterations=1,
    )
    report(fig6_fig7.render(result, "Figure 7"))

    # ECN# improves short flows somewhere in the load range without a
    # large-flow penalty.
    best_gain = result.best_short_avg_gain("ECN#")
    assert best_gain is not None and best_gain > 0.0
    for load in result.loads:
        norm = result.normalized(load, "ECN#")
        if norm.large_avg is not None:
            assert norm.large_avg < 1.12
        if norm.overall_avg is not None:
            assert norm.overall_avg < 1.10
