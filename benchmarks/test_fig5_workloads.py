"""Figure 5: flow-size CDFs of the two production workloads.

Both published curves are heavy-tailed: most flows are small, most bytes sit
in multi-MB flows; data mining is the heavier of the two.
"""

from repro.experiments.figures import fig5


def test_fig5_flow_size_cdfs(benchmark, report):
    result = benchmark.pedantic(fig5.run_fig5, rounds=1, iterations=1)
    report(fig5.render(result))

    web = result.cdf_at_probe["web-search"]
    mining = result.cdf_at_probe["data-mining"]

    # Heavy tails: the majority of flows are under 100KB in both workloads...
    assert web[100_000] >= 0.7
    assert mining[100_000] >= 0.7
    # ...while the upper tail reaches tens of MB.
    assert web[10_000_000] < 1.0
    assert mining[10_000_000] < 1.0
    # Data mining has more tiny flows AND a longer tail (higher mean).
    assert mining[1_000] > web[1_000]
    assert result.means["data-mining"] > result.means["web-search"]
    # Curves are valid CDFs.
    for _, probs in result.curves.values():
        assert probs == sorted(probs)
        assert 0.0 <= probs[0] and probs[-1] == 1.0
