"""DES hot-path microbenchmark: dispatch rate, packet rate, sweep speedup.

Measures the numbers the executor/engine optimization work is judged
against, and writes them to ``BENCH_engine.json``:

* ``engine.events_per_sec`` -- raw event-loop dispatch throughput of
  :class:`repro.sim.engine.Simulator` (no profiler, ``max_events`` budget,
  i.e. the exact loop experiment runs sit in);
* ``packet.events_per_sec`` -- end-to-end throughput of one star-topology
  DCTCP run (topology + transport + AQM on the hot path, not just the bare
  loop), which is what experiment wall-clock actually scales with;
* ``fluid.flows_per_sec`` / ``fluid.speedup_vs_packet`` -- throughput of
  the flow-level fluid engine on the same cell the packet benchmark runs,
  and its wall-clock speedup over the packet engine (the model-fidelity
  trade ``--fidelity fluid`` buys);
* ``sweep.speedup`` -- wall-clock ratio of a small star-FCT spec grid run
  serially (``jobs=1``) versus through the parallel executor.  Skipped
  (recorded as ``null`` with the reason) on single-CPU hosts, where the
  ratio would only measure process-pool overhead.

Usage::

    python benchmarks/perf_engine.py [--jobs N] [--events N] [--out PATH]
    python benchmarks/perf_engine.py --compare OLD_BENCH.json

``--compare`` gates the fresh numbers against a previous payload using the
validation subsystem's perf verdict (throughput ratio >= 0.8 passes,
>= 0.5 warns, below fails; host mismatches cap at warn) and exits
non-zero on a confirmed regression.

Not a pytest module on purpose: perf numbers belong in a JSON artifact,
not in an assertion.  Run it on a quiet machine; the sweep speedup is only
meaningful with >= 2 physical cores (the JSON records ``cpu_count`` so a
1-core CI result is not mistaken for a regression).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.executor import Executor  # noqa: E402
from repro.experiments.specs import AqmSpec, RunSpec  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402
from repro.sim.units import us  # noqa: E402
from repro.telemetry.provenance import git_sha  # noqa: E402

N_SOURCES = 64
"""Concurrent event sources; keeps the heap at a realistic depth."""


def bench_engine(n_events: int, repeats: int = 3) -> dict:
    """Best-of-N dispatch rate of the bare event loop (events/second)."""

    def one_round() -> float:
        sim = Simulator()

        def tick(delay: float) -> None:
            sim.schedule(delay, tick, delay)

        for index in range(N_SOURCES):
            sim.schedule(index * 1e-7 + 1e-6, tick, 1e-6 + index * 1e-9)
        start = time.perf_counter()
        sim.run(max_events=n_events)
        elapsed = time.perf_counter() - start
        assert sim.events_processed == n_events
        return elapsed

    best = min(one_round() for _ in range(repeats))
    return {
        "events": n_events,
        "repeats": repeats,
        "best_wall_seconds": best,
        "events_per_sec": n_events / best,
    }


def bench_packets(n_flows: int, repeats: int = 3) -> dict:
    """Best-of-N throughput of a full star-topology DCTCP run.

    Unlike :func:`bench_engine`, every event here carries the real
    experiment hot path: port serialization, AQM hooks, TCP window
    bookkeeping, packet-pool recycling.  The run is deterministic (fixed
    seed), so every repeat dispatches the identical event sequence.
    """
    from repro.core.red import SojournRed
    from repro.experiments.runner import run_star_fct
    from repro.workloads import WEB_SEARCH

    def one_round():
        start = time.perf_counter()
        result = run_star_fct(
            aqm_factory=lambda: SojournRed(us(204.8)),
            workload=WEB_SEARCH,
            load=0.7,
            n_flows=n_flows,
            seed=7,
        )
        elapsed = time.perf_counter() - start
        return elapsed, result.events

    rounds = [one_round() for _ in range(repeats)]
    events = rounds[0][1]
    assert all(r[1] == events for r in rounds), "runs were not deterministic"
    best = min(r[0] for r in rounds)
    return {
        "n_flows": n_flows,
        "repeats": repeats,
        "events": events,
        "best_wall_seconds": best,
        "events_per_sec": events / best,
    }


def bench_fluid(n_flows: int, packet_wall_seconds: float,
                repeats: int = 3) -> dict:
    """Best-of-N throughput of the flow-level fluid engine on the *same*
    cell :func:`bench_packets` measures (star, web-search, load 0.7,
    RED-Tail, seed 7), so ``speedup_vs_packet`` is a like-for-like
    model-fidelity trade: identical flow population, identical scheme,
    wall-clock ratio of the two engines.
    """
    from repro.fluid import run_fluid_star_fct
    from repro.workloads import WEB_SEARCH

    aqm = AqmSpec.make("sojourn-red", sojourn=us(204.8))

    def one_round():
        start = time.perf_counter()
        result = run_fluid_star_fct(
            aqm, workload=WEB_SEARCH, load=0.7, n_flows=n_flows, seed=7
        )
        elapsed = time.perf_counter() - start
        return elapsed, result.events

    rounds = [one_round() for _ in range(repeats)]
    steps = rounds[0][1]
    assert all(r[1] == steps for r in rounds), "fluid runs were not deterministic"
    best = min(r[0] for r in rounds)
    return {
        "n_flows": n_flows,
        "repeats": repeats,
        "steps": steps,
        "best_wall_seconds": best,
        "flows_per_sec": n_flows / best,
        "speedup_vs_packet": packet_wall_seconds / best,
    }


def sweep_specs(n_flows: int) -> list:
    """A small but representative grid: 2 schemes x 2 loads x 2 seeds."""
    schemes = {
        "DCTCP-RED-Tail": AqmSpec.make("sojourn-red", sojourn=us(204.8)),
        "ECN#": AqmSpec.make(
            "ecn-sharp", ins_target=us(200), pst_target=us(85), pst_interval=us(200)
        ),
    }
    return [
        RunSpec.star(
            aqm,
            workload="web-search",
            load=load,
            n_flows=n_flows,
            seed=seed,
            label=name,
            variation=3.0,
            rtt_min=us(70),
        )
        for name, aqm in schemes.items()
        for load in (0.4, 0.7)
        for seed in (3, 4)
    ]


def bench_sweep(jobs: int, n_flows: int) -> dict:
    """Serial vs parallel wall time over the same spec grid (no cache)."""
    specs = sweep_specs(n_flows)

    start = time.perf_counter()
    serial = Executor(jobs=1).run(specs)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = Executor(jobs=jobs).run(specs)
    parallel_seconds = time.perf_counter() - start

    for a, b in zip(serial, parallel):
        if a.summary != b.summary:
            raise AssertionError("parallel sweep diverged from serial run")
    return {
        "runs": len(specs),
        "n_flows": n_flows,
        "events": sum(r.events for r in serial),
        "jobs": jobs,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=2_000_000,
                        help="dispatches for the event-loop benchmark")
    parser.add_argument("--flows", type=int, default=60,
                        help="flows per sweep cell")
    parser.add_argument("--packet-flows", type=int, default=250,
                        help="flows for the packet-level star benchmark")
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel worker count (default: min(4, cpus))")
    parser.add_argument("--out", default="BENCH_engine.json",
                        help="output JSON path")
    parser.add_argument("--compare", metavar="BASELINE_JSON", default=None,
                        help="gate the fresh numbers against a previous "
                        "payload; exit 1 on a confirmed regression")
    parser.add_argument("--trend", metavar="TREND_JSONL",
                        default=str(Path(__file__).parent / "results"
                                    / "trend.jsonl"),
                        help="append a one-line summary of this run to a "
                        "JSONL trend file (consumed by `repro obs report`)")
    parser.add_argument("--no-trend", action="store_true",
                        help="skip the trend-file append")
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    jobs = args.jobs if args.jobs is not None else min(4, cpus)

    print(f"# engine dispatch: {args.events:,} events x3 ...", flush=True)
    engine = bench_engine(args.events)
    print(f"#   {engine['events_per_sec']:,.0f} events/sec")

    print(f"# packet-level: star DCTCP run, {args.packet_flows} flows x3 ...",
          flush=True)
    packet = bench_packets(args.packet_flows)
    print(f"#   {packet['events_per_sec']:,.0f} events/sec "
          f"({packet['events']:,} events/run)")

    print(f"# fluid: same star cell, {args.packet_flows} flows x3 ...",
          flush=True)
    fluid = bench_fluid(args.packet_flows, packet["best_wall_seconds"])
    print(f"#   {fluid['flows_per_sec']:,.0f} flows/sec "
          f"({fluid['steps']:,} steps/run, "
          f"{fluid['speedup_vs_packet']:.1f}x vs packet)")

    sweep = None
    sweep_skip_reason = None
    if cpus < 2:
        # A 1-core host serializes the "parallel" executor anyway: the
        # ratio would measure process-pool overhead, not speedup.  Record
        # the skip explicitly so downstream consumers (obs report, perf
        # gate) see a deliberate null rather than a missing key.
        sweep_skip_reason = (
            f"sweep speedup needs >= 2 cpus, host has {cpus}"
        )
        print(f"# sweep: SKIP ({sweep_skip_reason})")
    else:
        print(f"# sweep: 8 star runs, jobs=1 vs jobs={jobs} ...", flush=True)
        sweep = bench_sweep(jobs, args.flows)
        print(
            f"#   serial {sweep['serial_seconds']:.2f}s, "
            f"parallel {sweep['parallel_seconds']:.2f}s, "
            f"speedup {sweep['speedup']:.2f}x on {cpus} cpu(s)"
        )

    payload = {
        "cpu_count": cpus,
        "python": sys.version.split()[0],
        "git_sha": git_sha(),
        "unix_time": time.time(),
        "engine": engine,
        "packet": packet,
        "fluid": fluid,
        "sweep": sweep,
    }
    if sweep_skip_reason is not None:
        payload["sweep_skip_reason"] = sweep_skip_reason
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"# written to {args.out}")

    if not args.no_trend:
        trend_path = Path(args.trend)
        trend_path.parent.mkdir(parents=True, exist_ok=True)
        trend_row = {
            "unix_time": round(payload["unix_time"], 3),
            "git_sha": payload["git_sha"],
            "python": payload["python"],
            "cpu_count": cpus,
            "events_per_sec": round(engine["events_per_sec"], 1),
            "packet_events_per_sec": round(packet["events_per_sec"], 1),
            "fluid_flows_per_sec": round(fluid["flows_per_sec"], 1),
            "fluid_speedup_vs_packet": round(fluid["speedup_vs_packet"], 4),
            "sweep_speedup": (
                round(sweep["speedup"], 4) if sweep is not None else None
            ),
            "events": args.events,
            "flows": args.flows,
            "jobs": jobs,
        }
        with open(trend_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(trend_row, sort_keys=True,
                                    separators=(",", ":")) + "\n")
        print(f"# trend appended to {trend_path}")

    if args.compare is not None:
        from repro.validation.gates import evaluate_perf
        from repro.validation.stats import FAIL

        with open(args.compare, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        verdict = evaluate_perf(payload, baseline)
        print(f"# perf gate vs {args.compare}: "
              f"{verdict.status.upper()} ({verdict.detail})")
        if verdict.status == FAIL:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
