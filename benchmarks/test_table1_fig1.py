"""Table 1 / Figure 1: RTT variations from processing components.

Paper numbers: case means 39.3 / 63.9 / 69.3 / 99.2 / 105.5 us -- a 2.68x
max/min ratio; the reproduction regenerates all four statistics columns.
"""

from repro.experiments.figures import table1


def test_table1_rtt_variations(benchmark, report):
    result = benchmark.pedantic(
        table1.run_table1, kwargs={"seed": 1, "n_samples": 3000}, rounds=1, iterations=1
    )
    report(table1.render(result))

    # Shape assertions against the paper's Table 1.
    summaries = list(result.cases.values())
    means_us = [s.mean * 1e6 for s in summaries]
    assert means_us == sorted(means_us)  # each added component slows RTT
    assert 2.3 <= result.variation_ratio <= 3.0  # paper: 2.68x
    # Per-row calibration within 10% of the published means.
    paper_means = [39.3, 63.9, 69.3, 99.2, 105.5]
    for measured, published in zip(means_us, paper_means):
        assert abs(measured - published) / published < 0.10
    # Long tails: p99 well above the mean in every case.
    for summary in summaries:
        assert summary.p99 > summary.mean * 1.3
