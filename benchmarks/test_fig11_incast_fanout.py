"""Figure 11: query completion time vs incast fanout (25-200 senders).

Paper shape: CoDel starts losing packets well before the instantaneous
markers (paper: at ~100 senders, with ECN# surviving to ~175 -- a 1.75x
advantage); ECN# tracks DCTCP-RED-Tail throughout and additionally enjoys a
lower standing queue, so its query FCT sits at or below RED-Tail's.
"""

from repro.experiments.figures import fig11


def test_fig11_incast_fanout_sweep(benchmark, report, scale):
    result = benchmark.pedantic(
        fig11.run_fig11,
        kwargs={"fanouts": scale.fanouts, "seed": 61},
        rounds=1,
        iterations=1,
    )
    report(fig11.render(result))

    codel_onset = result.first_loss_fanout("CoDel")
    sharp_onset = result.first_loss_fanout("ECN#")
    max_fanout = max(result.fanouts)

    # CoDel collapses within the sweep.
    assert codel_onset is not None and codel_onset <= max_fanout
    # ECN# holds out materially longer (paper: 1.75x more senders).
    if sharp_onset is not None:
        assert sharp_onset >= codel_onset * 1.1
    # At CoDel's breaking point ECN# is clean and at least matches RED-Tail.
    sharp_run = result.runs[codel_onset]["ECN#"]
    assert sharp_run.drops == 0
    sharp_avg = result.avg_query_fct(codel_onset, "ECN#")
    tail_avg = result.avg_query_fct(codel_onset, "DCTCP-RED-Tail")
    assert sharp_avg <= tail_avg * 1.05

    # FCT grows with fanout for every scheme (sanity on the sweep).
    for scheme in result.schemes:
        first = result.avg_query_fct(min(result.fanouts), scheme)
        last = result.avg_query_fct(max_fanout, scheme)
        assert last > first
