"""Figure 10: microscopic queue occupancy under a 100-flow query burst.

Paper shape: DCTCP-RED-Tail keeps a persistent queue near its threshold
(~182 pkt at a 220 us threshold on 10 Gbps) yet absorbs the burst without
drops; ECN# collapses the standing queue toward pst_target (paper: ~8 pkt in
a 5 ms snapshot; here the converged 5 ms floor) and also absorbs the burst;
CoDel keeps a small standing queue as well but pays for it under bursts --
its loss onset is exercised by the Figure 11 fanout sweep.
"""

from repro.experiments.figures import fig10


def test_fig10_microscopic_queue(benchmark, report):
    result = benchmark.pedantic(
        fig10.run_fig10, kwargs={"fanout": 100, "seed": 51}, rounds=1, iterations=1
    )
    report(fig10.render(result))

    red_tail = result.runs["DCTCP-RED-Tail"]
    codel = result.runs["CoDel"]
    sharp = result.runs["ECN#"]

    # Standing queue: RED-Tail near its threshold (paper: ~182 pkt).
    assert 100 < red_tail.standing_queue_pkts < 280
    # ECN# collapses it (long-run average well below RED-Tail, converged
    # floor within a few packets of CoDel's).
    assert sharp.standing_queue_pkts < red_tail.standing_queue_pkts * 0.4
    assert sharp.floor_queue_pkts < 40  # paper's snapshot: ~8 pkt
    # CoDel controls the standing queue too (it is persistent-marking).
    assert codel.standing_queue_pkts < red_tail.standing_queue_pkts * 0.4

    # Burst tolerance at fanout 100: nobody drops (CoDel's failure begins
    # at higher fanout -- see the Figure 11 bench).
    assert red_tail.drops == 0
    assert sharp.drops == 0
    # All queries complete.
    for run in result.runs.values():
        assert run.queries_completed == result.fanout
