"""Figure 9: large-scale leaf-spine simulations (web search, ECMP).

Paper shape, normalized to DCTCP-RED-Tail: ECN# delivers 18.5-36.9% lower
short-flow average FCT and 26-37% lower overall average FCT across loads.

Scale substitution: the paper's fabric is 8 spines x 8 leaves x 16
hosts/leaf (128 hosts); the reduced default is 4x4x4 (16 hosts) with the
same 1:1 oversubscription -- set REPRO_FULL=1 for the larger fabric.
"""

from repro.experiments.figures import fig9


def test_fig9_leafspine_fct(benchmark, report, scale):
    result = benchmark.pedantic(
        fig9.run_fig9,
        kwargs={
            "loads": scale.leafspine_loads,
            "n_flows": scale.n_flows_leafspine,
            "dims": scale.leafspine_dims,
            "seed": 41,
            "n_seeds": scale.n_seeds,
        },
        rounds=1,
        iterations=1,
    )
    report(fig9.render(result))

    # ECN# at least matches RED-Tail on short flows at every load and beats
    # it somewhere in the sweep.
    short_ratios = [
        result.nfct(load, "ECN#", "short_avg") for load in result.loads
    ]
    short_ratios = [ratio for ratio in short_ratios if ratio is not None]
    assert short_ratios, "no short-flow data collected"
    assert min(short_ratios) < 1.0
    assert all(ratio < 1.15 for ratio in short_ratios)

    # Overall FCT does not regress materially at any load.
    for load in result.loads:
        overall = result.nfct(load, "ECN#", "overall_avg")
        if overall is not None:
            assert overall < 1.15
