"""Ablation: both of ECN#'s components are necessary (Section 3.3).

Removes one component at a time and reruns the two microscopic scenarios:

* instantaneous-only (= DCTCP-RED/TCN): keeps a standing queue at the
  threshold -- the latency problem ECN# exists to fix;
* persistent-only (ins_target effectively disabled): controls the standing
  queue but reacts too slowly to incast bursts and loses packets first --
  CoDel's failure mode;
* full ECN#: low standing queue AND burst-clean.

This regenerates the paper's design rationale as a measurable table rather
than prose.
"""

from repro.core import EcnSharp, EcnSharpConfig, SojournRed
from repro.experiments.figures.fig10 import run_microscopic
from repro.experiments.report import format_table
from repro.sim.units import ms, us

VARIANTS = {
    "instantaneous-only": lambda: SojournRed(us(220)),
    "persistent-only": lambda: EcnSharp(
        # A 10 ms ins_target never fires on a 1 MB (800 us) buffer.
        EcnSharpConfig(ins_target=ms(10), pst_target=us(10), pst_interval=us(240))
    ),
    "full ECN#": lambda: EcnSharp(
        EcnSharpConfig(ins_target=us(220), pst_target=us(10), pst_interval=us(240))
    ),
}

BURST_FANOUT = 200  # past CoDel-style persistent-only schemes' loss onset


def run_ablation(seed: int = 91):
    return {
        name: run_microscopic(factory, scheme_name=name, fanout=BURST_FANOUT, seed=seed)
        for name, factory in VARIANTS.items()
    }


def test_ablation_ecn_sharp_components(benchmark, report):
    runs = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    rows = [
        [
            name,
            f"{run.standing_queue_pkts:.1f}",
            f"{run.floor_queue_pkts:.1f}",
            str(run.drops),
            str(run.query_timeouts),
        ]
        for name, run in runs.items()
    ]
    report(
        format_table(
            ["variant", "standing q (pkt)", "floor q (5ms)", "drops", "timeouts"],
            rows,
            title=(
                f"Ablation: ECN# components ({BURST_FANOUT}-flow burst over "
                "background flows)"
            ),
        )
    )

    instantaneous = runs["instantaneous-only"]
    persistent = runs["persistent-only"]
    full = runs["full ECN#"]

    # Instantaneous-only keeps the standing queue the others remove.
    assert instantaneous.standing_queue_pkts > 2.5 * full.standing_queue_pkts
    # Persistent-only is the only variant that loses packets under the burst.
    assert persistent.drops > 0
    assert full.drops == 0
    assert instantaneous.drops == 0
    # Full ECN# keeps the low standing queue of persistent-only.
    assert full.standing_queue_pkts < instantaneous.standing_queue_pkts * 0.4
