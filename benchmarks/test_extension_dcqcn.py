"""Section 3.5 extension: ECN# with probabilistic marking for DCQCN.

The paper predicts that rate-based transports (DCQCN) need the
instantaneous component turned into a Kmin/Kmax probability ramp, while
Algorithm 1's persistent marking already behaves probabilistically and can
stay as is.  This bench runs that prediction: N concurrent DCQCN flows
through (a) cut-off ECN# and (b) probabilistic ECN#, comparing fairness
(Jain's index over delivered bytes) and utilization.

Cut-off marking synchronises cuts -- every flow sees marks in the same
window -- so all rates dip together and the link idles between episodes;
the ramp decorrelates the cuts.  With symmetric flows the damage shows up
as lost *utilization* rather than unfairness, and that is what the bench
asserts.
"""

import numpy as np

from repro.core import (
    EcnSharp,
    EcnSharpConfig,
    EcnSharpProbabilistic,
    ProbabilisticConfig,
)
from repro.experiments.report import format_table
from repro.sim import PacketFactory
from repro.sim.units import gbps, mb, ms, us
from repro.tcp import open_dcqcn_flow
from repro.topology import build_star

N_FLOWS = 4
DURATION = ms(40)


def jain_index(values):
    values = np.asarray(values, dtype=float)
    return float(values.sum() ** 2 / (len(values) * (values**2).sum()))


def run_variant(aqm_factory):
    topo = build_star(n_senders=N_FLOWS + 1, aqm_factory=aqm_factory, buffer_bytes=mb(4))
    factory = PacketFactory()
    flows = [
        open_dcqcn_flow(
            topo.network, factory, topo.senders[i], topo.receiver,
            200_000_000, line_rate_bps=gbps(10),
        )
        for i in range(N_FLOWS)
    ]
    topo.network.run(until=DURATION)
    delivered = [flow.sink.expected for flow in flows]
    utilization = sum(delivered) * 1460 * 8 / DURATION / gbps(10)
    return {
        "jain": jain_index(delivered),
        "utilization": utilization,
        "drops": topo.bottleneck.stats.dropped_total,
    }


def run_both():
    cutoff = run_variant(
        lambda: EcnSharp(EcnSharpConfig(us(220), us(10), us(240)))
    )
    probabilistic = run_variant(
        lambda: EcnSharpProbabilistic(
            EcnSharpConfig(us(220), us(10), us(240)),
            ProbabilisticConfig(ins_min=us(40), ins_max=us(200), pmax=0.1),
            seed=2,
        )
    )
    return cutoff, probabilistic


def test_extension_dcqcn_probabilistic_marking(benchmark, report):
    cutoff, probabilistic = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = [
        ["cut-off ECN#", f"{cutoff['jain']:.3f}", f"{cutoff['utilization']:.2f}", str(cutoff["drops"])],
        [
            "probabilistic ECN#",
            f"{probabilistic['jain']:.3f}",
            f"{probabilistic['utilization']:.2f}",
            str(probabilistic["drops"]),
        ],
    ]
    report(
        format_table(
            ["marking", "Jain fairness", "utilization", "drops"],
            rows,
            title=(
                f"Section 3.5 extension: {N_FLOWS} DCQCN flows, cut-off vs "
                "probabilistic instantaneous marking"
            ),
        )
    )

    # The ramp keeps DCQCN fair and efficient...
    assert probabilistic["jain"] > 0.95
    assert probabilistic["utilization"] > 0.75
    assert probabilistic["drops"] == 0
    # ...and is at least as fair as cut-off marking for rate-based flows.
    assert probabilistic["jain"] >= cutoff["jain"] - 0.02
    # Decorrelated cuts recover the utilization cut-off marking loses.
    assert probabilistic["utilization"] > cutoff["utilization"] + 0.05
