"""Figure 6: testbed FCT vs load under web search (4 schemes, 3x variation).

Paper shape, normalized to DCTCP-RED-Tail:
  * ECN# wins short flows (up to -23.4% avg / -37.2% p99) at equal
    large-flow FCT;
  * DCTCP-RED-AVG wins short flows even harder but loses >20% on large
    flows;
  * overall, ECN# stays within a few percent of RED-Tail.
"""

from repro.experiments.figures import fig6_fig7


def test_fig6_websearch_fct_vs_load(benchmark, report, scale):
    result = benchmark.pedantic(
        fig6_fig7.run_fig6,
        kwargs={
            "loads": scale.loads,
            "n_flows": scale.n_flows_web_search,
            "seed": 21,
            "n_seeds": scale.n_seeds,
        },
        rounds=1,
        iterations=1,
    )
    report(fig6_fig7.render(result, "Figure 6"))

    high_load = max(result.loads)
    mid_load = sorted(result.loads)[len(result.loads) // 2]

    # ECN# improves short flows vs RED-Tail somewhere in the load range...
    best_gain = result.best_short_avg_gain("ECN#")
    assert best_gain is not None and best_gain > 0.02
    # ...without losing large-flow FCT (within 10% at every load).
    for load in result.loads:
        large_ratio = result.normalized(load, "ECN#").large_avg
        if large_ratio is not None:
            assert large_ratio < 1.10

    # RED-AVG is the best short-flow scheme but pays on large flows at the
    # mid/high loads.
    red_avg_short = result.normalized(mid_load, "DCTCP-RED-AVG").short_avg
    ecn_short = result.normalized(mid_load, "ECN#").short_avg
    assert red_avg_short is not None and red_avg_short < 1.0
    red_avg_large = result.normalized(high_load, "DCTCP-RED-AVG").large_avg
    assert red_avg_large is not None and red_avg_large > 1.05
