"""Figure 8: ECN# vs DCTCP-RED-Tail as RTT variation grows to 5x.

Paper shape: overall average FCT stays comparable (within ~8%) at every
variation, while ECN#'s short-flow p99 advantage widens from -37% at 3x to
-71%/-73% at 4x/5x.
"""

from repro.experiments.figures import fig8


def test_fig8_larger_rtt_variations(benchmark, report, scale):
    result = benchmark.pedantic(
        fig8.run_fig8,
        kwargs={"n_flows": scale.n_flows_web_search, "seed": 31, "n_seeds": scale.n_seeds},
        rounds=1,
        iterations=1,
    )
    report(fig8.render(result))

    high_load = max(result.loads)

    for variation in result.variations:
        overall = result.nfct(variation, high_load, "overall_avg")
        assert overall is not None and overall < 1.15  # comparable overall

    # Short-flow p99 advantage exists at 3x and is at least as strong at 5x.
    gain_3x = 1.0 - result.nfct(3.0, high_load, "short_p99")
    gain_5x = 1.0 - result.nfct(5.0, high_load, "short_p99")
    assert gain_3x > 0.0
    assert gain_5x >= gain_3x * 0.8  # stays strong / grows as in the paper
