"""Figure 3: performance degradation grows with RTT variation.

Paper shape: with the tail-RTT threshold, short-flow p99 inflation versus
the average threshold grows from ~41% at 2x to ~198% at 5x; with the
average-RTT threshold, throughput (large-flow FCT) loss versus the tail
threshold grows from ~7% to ~30%.

Reproduction note (also recorded in EXPERIMENTS.md): the latency-side gap
reproduces and grows with variation; the throughput-side gap is *muted*
here because an idealised DCTCP tolerates any threshold >= 0.17 x C x RTT
(the average-RTT threshold stays above that bound for every variation).
The paper's testbed loss comes from kernel effects -- GSO/TSO 64KB bursts
and delayed ACKs -- that widen queue oscillation far beyond the clean
per-segment dynamics simulated here.  The bench therefore asserts growth of
the latency gap and *no inversion* of the throughput gap.
"""

from repro.experiments.figures import fig3


def test_fig3_variation_sweep(benchmark, report, scale):
    result = benchmark.pedantic(
        fig3.run_fig3,
        kwargs={"n_flows": scale.n_flows_web_search, "seed": 11, "n_seeds": scale.n_seeds},
        rounds=1,
        iterations=1,
    )
    report(fig3.render(result))

    smallest, largest = result.variations[0], result.variations[-1]

    # Latency side: the tail threshold's short-flow p99 penalty is material
    # at high variation and larger than at the smallest variation.
    assert result.short_tail_gap(largest) > 1.15
    assert result.short_tail_gap(largest) > result.short_tail_gap(smallest)

    # Throughput side: muted (see module docstring) but must not invert --
    # the avg threshold never materially *beats* the tail threshold on
    # large flows, and stays in a sane band.
    for variation in result.variations:
        gap = result.large_flow_gap(variation)
        assert gap is not None
        assert 0.85 <= gap <= 1.6
