"""Figure 13: ECN# under DWRR packet scheduling, versus TCN.

Paper shape: with three DWRR services weighted 2:1:1, the long flows'
goodputs step 9.6 -> (6.42, 3.18) -> (4.82, 2.40, 2.40) Gbps as they join --
marking never disturbs the scheduler -- and ECN# beats TCN's short-flow
average FCT by ~19.6% because it removes the per-queue standing queues.
"""

import pytest

from repro.experiments.figures import fig13
from repro.sim.units import ms


def test_fig13_dwrr_scheduling(benchmark, report):
    result = benchmark.pedantic(
        fig13.run_fig13, kwargs={"seed": 81, "phase": ms(40)}, rounds=1, iterations=1
    )
    report(fig13.render(result))

    for name, run in result.runs.items():
        phase1, phase2, phase3 = run.goodputs
        # Phase 1: flow 1 alone takes (nearly) the whole link.
        assert phase1[0] > 7e9
        assert phase1[1] == 0 and phase1[2] == 0
        # Phase 2: 2:1 split between flows 1 and 2.
        assert phase2[0] / phase2[1] == pytest.approx(2.0, rel=0.2)
        # Phase 3: 2:1:1 split.
        ratios = run.phase3_share_ratios()
        assert ratios is not None
        assert ratios[0] == pytest.approx(2.0, rel=0.2)
        assert ratios[1] == pytest.approx(2.0, rel=0.2)

    # ECN# beats TCN on short probe flows (paper: ~0.80 ratio).
    ratio = result.probe_fct_ratio()
    assert ratio is not None and ratio < 0.95
