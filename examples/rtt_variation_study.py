#!/usr/bin/env python
"""The Section 2 motivation study, end to end inside the simulator.

1. *Measure* the base-RTT distribution the way operators do (sequential
   request/response probes, the PingMesh / TCP-probe stand-in), under a 3x
   RTT-variation profile.
2. *Derive* marking thresholds from the measured distribution: the
   "current practice" tail threshold, the average threshold, and ECN#'s
   rule-of-thumb parameters (Section 3.4).
3. *Demonstrate the dilemma* (Figure 2): run the same workload under the
   tail threshold, the average threshold, and ECN#, and show that only
   ECN# gets both low short-flow latency and large-flow throughput.

Run:  python examples/rtt_variation_study.py        (~1 minute)
"""

import numpy as np

from repro.core import EcnSharp, EcnSharpConfig, SojournRed, derive_ecn_sharp_params
from repro.experiments.fct import FctSummary
from repro.experiments.runner import estimate_star_network_rtt, run_star_fct
from repro.measurement import RttProber, summarize_rtts
from repro.netem import RttProfile
from repro.sim import PacketFactory
from repro.sim.units import us
from repro.topology import build_dumbbell
from repro.workloads import WEB_SEARCH


def measure_rtt_distribution(profile: RttProfile, n_probes: int = 500):
    """Step 1: probe the network and return measured RTT samples."""
    topo = build_dumbbell()
    prober = RttProber(
        network=topo.network,
        factory=PacketFactory(),
        senders=topo.senders,
        receiver=topo.receiver,
        n_probes=n_probes,
        rng=np.random.default_rng(2),
        rtt_profile=profile,
        network_rtt=estimate_star_network_rtt(),
        delay_stage_of=topo.stage_for,
    )
    prober.start()
    topo.network.sim.run_until_idle()
    return prober.samples


def main() -> None:
    profile = RttProfile.from_variation(us(70), 3.0)  # 70-210 us, long tail

    samples = measure_rtt_distribution(profile)
    summary = summarize_rtts(samples).as_microseconds()
    print("=== measured base-RTT distribution (500 probes) ===")
    print(f"mean={summary.mean:.1f}us  p50={summary.p50:.1f}us  "
          f"p90={summary.p90:.1f}us  p99={summary.p99:.1f}us")

    params = derive_ecn_sharp_params(samples)
    print("\n=== thresholds derived from the measurement ===")
    print(f"tail (p90) sojourn threshold : {params.ins_target * 1e6:7.1f} us")
    print(f"average sojourn threshold    : {params.pst_target * 1e6:7.1f} us")
    print(f"ECN# rule of thumb           : ins_target={params.ins_target * 1e6:.0f}us "
          f"pst_target={params.pst_target * 1e6:.0f}us "
          f"pst_interval={params.pst_interval * 1e6:.0f}us")

    schemes = {
        "tail threshold (current practice)": lambda: SojournRed(params.ins_target),
        "average threshold": lambda: SojournRed(params.pst_target),
        "ECN#": lambda: EcnSharp(
            EcnSharpConfig(params.ins_target, params.pst_target, params.pst_interval)
        ),
    }
    print("\n=== the dilemma (web search, 50% load, 100 flows) ===")
    print(f"{'scheme':38s} {'short avg':>10s} {'short p99':>10s} {'large avg':>10s}")
    for name, factory in schemes.items():
        result = run_star_fct(
            aqm_factory=factory,
            workload=WEB_SEARCH,
            load=0.5,
            n_flows=100,
            seed=3,
        )
        s: FctSummary = result.summary
        print(
            f"{name:38s} "
            f"{(s.short_avg or 0) * 1e6:9.0f}us "
            f"{(s.short_p99 or 0) * 1e6:9.0f}us "
            f"{(s.large_avg or 0) * 1e6:9.0f}us"
        )
    print("\nTrend to look for: the tail threshold inflates short-flow latency;")
    print("the average threshold costs large-flow FCT; ECN# balances both.")
    print("(100 flows is a small sample -- the pooled, asserted version of this")
    print("comparison lives in benchmarks/test_fig2_threshold_sweep.py and")
    print("benchmarks/test_fig6_websearch.py.)")


if __name__ == "__main__":
    main()
