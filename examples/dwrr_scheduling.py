#!/usr/bin/env python
"""Multi-service scheduling: ECN# composed with DWRR (Figure 13).

Three services with DWRR weights 2:1:1 share the bottleneck; three
long-lived flows join one per service, staggered in time.  The example
prints the per-phase goodput staircase and shows that sojourn-time ECN#
marking neither disturbs the scheduler's shares nor leaves standing queues.

Run:  python examples/dwrr_scheduling.py        (~20 s)
"""

from repro.experiments.figures import fig13
from repro.sim.units import ms


def main() -> None:
    result = fig13.run_fig13(phase=ms(30))
    print(fig13.render(result))

    run = result.runs["ECN#"]
    ratios = run.phase3_share_ratios()
    if ratios is not None:
        print(
            f"\nECN# phase-3 share ratios: flow1/flow2={ratios[0]:.2f}, "
            f"flow1/flow3={ratios[1]:.2f} (DWRR weights say 2.00)"
        )


if __name__ == "__main__":
    main()
