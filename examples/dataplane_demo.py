#!/usr/bin/env python
"""The Tofino implementation model: Algorithm 2's clock + match-action ECN#.

Shows three things from Section 4 of the paper:

1. the emulated 32-bit microsecond clock tracking nanosecond time across
   the 2^32 ns wraparound that breaks the naive lower-32-bits approach;
2. the one-register-one-table control flow running ECN# at "line rate"
   (every register touched at most once per packet pass);
3. the resource report (7 tables, 5x32-bit + 2x64-bit register arrays),
   matching the paper's numbers.

Finally it differentially tests the pipeline against the reference
``repro.core.EcnSharp`` on a random sojourn-time trace.

Run:  python examples/dataplane_demo.py
"""

import random

from repro.core import EcnSharp, EcnSharpConfig
from repro.dataplane import EcnSharpPipeline, TICK_SECONDS

US_PER_TICK = TICK_SECONDS * 1e6


def main() -> None:
    # Thresholds in ticks: ins_target ~200us, pst_target ~10us, interval ~240us.
    pipeline = EcnSharpPipeline(
        ins_target_ticks=195, pst_target_ticks=10, pst_interval_ticks=234
    )

    print("=== resource report (paper: 7 tables, 5x32b + 2x64b registers) ===")
    for key, value in pipeline.resource_report().items():
        print(f"  {key}: {value}")

    # Cross the 2^32 ns wraparound (~4.29 s) and show the clock stays sane.
    # (Each reading is its own packet pass, hence begin_pass between them.)
    print("\n=== Algorithm 2 clock across the 4.29 s nanosecond wraparound ===")
    registers = pipeline.pipeline.registers
    for t_ns in (4_294_000_000, 4_294_967_296, 4_295_900_000):
        registers.begin_pass()
        ticks = pipeline.clock.current_time(t_ns, port=1)
        print(f"  t = {t_ns / 1e9:.6f} s  ->  emulated {ticks * US_PER_TICK / 1e6:.6f} s")

    # Differential run against the reference algorithm (float seconds).
    reference = EcnSharp(
        EcnSharpConfig(
            ins_target=195 * TICK_SECONDS,
            pst_target=10 * TICK_SECONDS,
            pst_interval=234 * TICK_SECONDS,
        )
    )

    class FakePacket:
        """Duck-typed packet for the reference AQM."""

        def __init__(self, sojourn_s: float) -> None:
            self._sojourn = sojourn_s
            self.ecn = 2  # ECT0
            self.marked = False

        def sojourn_time(self, now: float) -> float:
            return self._sojourn

        def mark_ce(self) -> None:
            self.marked = True

    rng = random.Random(6)
    now_ns, agree, total = 0, 0, 0
    for _ in range(20_000):
        now_ns += rng.randint(500, 3_000)  # ~1.2 us between packets at 10G
        sojourn_ticks = rng.choice((0, 2, 5, 12, 30, 80, 150, 250))
        meta = pipeline.process_packet(now_ns, sojourn_ticks, port=0)
        packet = FakePacket(sojourn_ticks * TICK_SECONDS)
        reference.on_dequeue(packet, now_ns / 1e9 + packet._sojourn * 0)
        # reference uses absolute now in seconds:
        total += 1
        agree += int(bool(meta["mark"]) == packet.marked)
    print(f"\n=== differential vs reference ECN#: {agree}/{total} decisions agree ===")


if __name__ == "__main__":
    main()
