#!/usr/bin/env python
"""Section 3.5 in action: DCQCN (rate-based RoCE transport) over ECN#.

Runs four long DCQCN flows through the testbed star twice -- once with
ECN#'s default cut-off instantaneous marking, once with the probabilistic
Kmin/Kmax ramp the paper sketches for rate-based transports -- and prints
per-flow goodput, Jain's fairness index, and utilization.

Expected result: both keep the flows fair (symmetric senders), but cut-off
marking synchronises the rate cuts and leaves the link idle between
episodes; the ramp decorrelates them and recovers the lost utilization.

Run:  python examples/dcqcn_probabilistic.py        (~10 s)
"""

import numpy as np

from repro.core import (
    EcnSharp,
    EcnSharpConfig,
    EcnSharpProbabilistic,
    ProbabilisticConfig,
)
from repro.sim import PacketFactory
from repro.sim.units import gbps, mb, ms, us
from repro.tcp import open_dcqcn_flow
from repro.topology import build_star

DURATION = ms(40)
N_FLOWS = 4


def run(aqm_factory, label):
    topo = build_star(n_senders=N_FLOWS + 1, aqm_factory=aqm_factory, buffer_bytes=mb(4))
    factory = PacketFactory()
    flows = [
        open_dcqcn_flow(
            topo.network, factory, topo.senders[i], topo.receiver,
            200_000_000, line_rate_bps=gbps(10),
        )
        for i in range(N_FLOWS)
    ]
    topo.network.run(until=DURATION)

    delivered = np.array([flow.sink.expected for flow in flows], dtype=float)
    goodputs = delivered * 1460 * 8 / DURATION / 1e9
    jain = delivered.sum() ** 2 / (N_FLOWS * (delivered**2).sum())
    print(f"{label}:")
    print(f"  per-flow goodput : {', '.join(f'{g:.2f}' for g in goodputs)} Gbps")
    print(f"  Jain fairness    : {jain:.3f}")
    print(f"  utilization      : {goodputs.sum() / 10:.2%}")
    print(f"  drops            : {topo.bottleneck.stats.dropped_total}")


def main() -> None:
    run(
        lambda: EcnSharp(EcnSharpConfig(us(220), us(10), us(240))),
        "cut-off ECN# (designed for window-based DCTCP)",
    )
    print()
    run(
        lambda: EcnSharpProbabilistic(
            EcnSharpConfig(us(220), us(10), us(240)),
            ProbabilisticConfig(ins_min=us(40), ins_max=us(200), pmax=0.1),
            seed=2,
        ),
        "probabilistic ECN# (the Section 3.5 extension for DCQCN)",
    )


if __name__ == "__main__":
    main()
