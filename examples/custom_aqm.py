#!/usr/bin/env python
"""Extending the library: write a custom AQM and race it against ECN#.

Implements a miniature PIE-style marker (proportional-integral controller
on queueing delay, per Pan et al. 2013) on top of ``repro.core.base.Aqm``
and runs it against ECN# on the paper's testbed workload.  This is the
extension path a downstream user would take to prototype a new marking
scheme against the paper's baselines.

Run:  python examples/custom_aqm.py        (~30 s)
"""

import random

from repro.core import EcnSharp, EcnSharpConfig
from repro.core.base import Aqm
from repro.experiments.runner import run_star_fct
from repro.sim.packet import Packet
from repro.sim.units import us
from repro.workloads import WEB_SEARCH


class MiniPie(Aqm):
    """A small PIE: marking probability driven by a PI controller.

    ``p += a * (delay - target) + b * (delay - delay_old)`` evaluated per
    dequeue (the reference updates on a timer; per-packet keeps the example
    self-contained and behaves equivalently at high packet rates).
    """

    def __init__(self, target_seconds: float, a: float = 0.125, b: float = 1.25,
                 seed: int = 0) -> None:
        super().__init__()
        if target_seconds <= 0:
            raise ValueError("target must be positive")
        self.target = target_seconds
        self.a = a
        self.b = b
        self._probability = 0.0
        self._last_delay = 0.0
        self._rng = random.Random(seed)

    def on_dequeue(self, packet: Packet, now: float) -> bool:
        self.stats.packets_seen += 1
        delay = packet.sojourn_time(now)
        self._probability += (
            self.a * (delay - self.target) + self.b * (delay - self._last_delay)
        ) / self.target * 1e-3
        self._probability = min(max(self._probability, 0.0), 1.0)
        self._last_delay = delay
        if self._probability > 0 and self._rng.random() < self._probability:
            return self._congestion_signal(packet, kind="persistent")
        return True


def main() -> None:
    schemes = {
        "MiniPie(target=85us)": lambda: MiniPie(us(85)),
        "ECN# (paper params)": lambda: EcnSharp(
            EcnSharpConfig(ins_target=us(200), pst_target=us(85), pst_interval=us(200))
        ),
    }
    print("=== custom AQM vs ECN# (web search, 50% load, 100 flows) ===")
    print(f"{'scheme':24s} {'overall avg':>12s} {'short p99':>12s} {'large avg':>12s}")
    for name, factory in schemes.items():
        result = run_star_fct(
            aqm_factory=factory, workload=WEB_SEARCH, load=0.5, n_flows=100, seed=5
        )
        s = result.summary
        print(
            f"{name:24s} {(s.overall_avg or 0) * 1e6:11.0f}us "
            f"{(s.short_p99 or 0) * 1e6:11.0f}us {(s.large_avg or 0) * 1e6:11.0f}us"
        )


if __name__ == "__main__":
    main()
