#!/usr/bin/env python
"""Burst tolerance under incast: ECN# vs CoDel vs DCTCP-RED (Section 5.4).

Launches an N-way query burst into the 16-to-1 rig and reports query
completion times, timeouts and drops per scheme.  The takeaway the paper's
Figure 11 makes: purely persistent marking (CoDel) reacts too slowly to the
burst and loses packets; ECN#'s instantaneous component absorbs it.

Run:  python examples/incast_burst.py [fanout]
"""

import sys

import numpy as np

from repro.core import Codel, EcnSharp, EcnSharpConfig, SojournRed
from repro.experiments.fct import FctCollector
from repro.sim import PacketFactory
from repro.sim.units import us
from repro.topology import build_incast
from repro.workloads import TransportConfig, launch_query


def run_scheme(name, aqm_factory, fanout: int) -> None:
    topo = build_incast(aqm_factory=aqm_factory)
    collector = FctCollector()
    launch_query(
        topo.network,
        PacketFactory(),
        topo.senders,
        topo.receiver,
        fanout=fanout,
        start_time=0.001,
        rng=np.random.default_rng(4),
        transport=TransportConfig(init_cwnd=2.0),
        on_flow_complete=collector.record,
    )
    topo.network.sim.run_until_idle()

    fcts = np.array([r.fct for r in collector.records])
    print(
        f"{name:16s} avg={fcts.mean() * 1e3:5.2f}ms  "
        f"p99={np.percentile(fcts, 99) * 1e3:5.2f}ms  "
        f"timeouts={collector.total_timeouts():3d}  "
        f"drops={topo.bottleneck.stats.dropped_total:3d}"
    )


def main() -> None:
    fanout = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    print(f"=== {fanout}-way incast burst, 3-60KB query flows ===")
    run_scheme("DCTCP-RED-Tail", lambda: SojournRed(us(220)), fanout)
    run_scheme("CoDel", lambda: Codel(target_seconds=us(10), interval_seconds=us(240)), fanout)
    run_scheme(
        "ECN#",
        lambda: EcnSharp(EcnSharpConfig(us(220), us(10), us(240))),
        fanout,
    )


if __name__ == "__main__":
    main()
