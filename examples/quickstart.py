#!/usr/bin/env python
"""Quickstart: build a network, run DCTCP flows through ECN#, read results.

This walks the public API end to end in ~60 lines:

1. build the paper's testbed star (7 senders, 1 receiver, 10 Gbps) with
   ECN# on every switch egress port;
2. emulate RTT variation: one small-RTT flow and one large-RTT flow;
3. race a latency-sensitive short flow against a long throughput flow;
4. print FCTs and the switch's marking statistics.

Run:  python examples/quickstart.py
"""

from repro.core import EcnSharp, EcnSharpConfig
from repro.sim import PacketFactory
from repro.sim.units import to_us, us
from repro.tcp import open_flow
from repro.topology import build_dumbbell


def main() -> None:
    # ECN# with the paper's testbed parameters: instantaneous marking at a
    # 200 us sojourn (90th-percentile RTT), persistent-queue control at a
    # 85 us target over 200 us intervals.
    topo = build_dumbbell(
        aqm_factory=lambda: EcnSharp(
            EcnSharpConfig(ins_target=us(200), pst_target=us(85), pst_interval=us(200))
        )
    )
    factory = PacketFactory()

    # Two long-lived 25 MB flows from different senders with *small* base
    # RTTs: together they oversubscribe the receiver link, so the switch
    # queue -- and ECN marking -- governs their rates.  Under plain
    # tail-threshold marking these flows would keep a standing queue.
    bulk = open_flow(topo.network, factory, topo.senders[0], topo.receiver, 25_000_000)
    topo.stage_for(topo.senders[0]).set_flow_delay(bulk.flow_id, us(30))
    bulk2 = open_flow(topo.network, factory, topo.senders[2], topo.receiver, 25_000_000)
    topo.stage_for(topo.senders[2]).set_flow_delay(bulk2.flow_id, us(30))

    # A short 50 KB flow from h1 arriving mid-transfer with a large base RTT.
    short = open_flow(
        topo.network,
        factory,
        topo.senders[1],
        topo.receiver,
        50_000,
        start_time=0.010,
    )
    topo.stage_for(topo.senders[1]).set_flow_delay(short.flow_id, us(200))

    topo.network.run(until=0.2)

    print("=== quickstart: ECN# on the 8-host testbed star ===")
    print(f"short flow (50KB):  fct = {to_us(short.fct):8.1f} us")
    for label, flow in (("bulk flow 1 (25MB)", bulk), ("bulk flow 2 (25MB)", bulk2)):
        print(f"{label}: fct = {to_us(flow.fct):8.1f} us "
              f"({flow.size_bytes * 8 / flow.fct / 1e9:.2f} Gbps)")

    aqm = topo.bottleneck.aqm
    print(f"bottleneck marks:   {aqm.stats.marks} "
          f"(instantaneous {aqm.stats.instant_marks}, "
          f"persistent {aqm.stats.persistent_marks})")
    print(f"bottleneck drops:   {topo.bottleneck.stats.dropped_total}")


if __name__ == "__main__":
    main()
