"""Unit tests for the TCP sender state machine, driven by synthetic ACKs."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.packet import Ecn, Packet
from repro.sim.units import ACK_SIZE, MSS, ms
from repro.tcp.base import TcpSender
from repro.tcp.dctcp import DctcpSender
from repro.tcp.reno import RenoSender


class FakeHost:
    """Captures transmitted packets instead of sending them anywhere."""

    def __init__(self, sim, name="a"):
        self.sim = sim
        self.name = name
        self.sent = []
        self.unregistered = []

    def transmit(self, packet):
        self.sent.append(packet)

    def unregister_endpoint(self, flow_id):
        self.unregistered.append(flow_id)


def make_sender(sim, size_bytes=100 * MSS, cls=TcpSender, **kwargs):
    host = FakeHost(sim)
    kwargs.setdefault("init_cwnd", 10.0)
    kwargs.setdefault("min_rto", ms(2))
    sender = cls(sim, host, flow_id=1, dst="b", size_bytes=size_bytes, **kwargs)
    return sender, host


def ack(seq, ece=False):
    return Packet(
        flow_id=1, src="b", dst="a", seq=seq, size=ACK_SIZE, is_ack=True,
        ecn=Ecn.NOT_ECT, ece=ece,
    )


class TestSendWindow:
    def test_initial_window_burst(self, sim):
        sender, host = make_sender(sim)
        sender.start()
        assert len(host.sent) == 10
        assert [p.seq for p in host.sent] == list(range(10))

    def test_last_segment_partial_size(self, sim):
        sender, host = make_sender(sim, size_bytes=MSS + 100)
        sender.start()
        assert sender.total_segments == 2
        assert host.sent[0].size == MSS + 40
        assert host.sent[1].size == 100 + 40

    def test_tiny_flow_one_segment(self, sim):
        sender, host = make_sender(sim, size_bytes=1)
        sender.start()
        assert sender.total_segments == 1
        assert host.sent[0].size == 41

    def test_cannot_start_twice(self, sim):
        sender, _ = make_sender(sim)
        sender.start()
        with pytest.raises(RuntimeError):
            sender.start()

    def test_invalid_size_rejected(self, sim):
        with pytest.raises(ValueError):
            make_sender(sim, size_bytes=0)

    def test_outstanding_tracks_window(self, sim):
        sender, _ = make_sender(sim)
        sender.start()
        assert sender.outstanding == 10
        sender.receive(ack(4))
        assert sender.highest_acked == 4


class TestSlowStart:
    def test_window_doubles_per_rtt(self, sim):
        sender, host = make_sender(sim)
        sender.start()
        # ACK the whole initial window: slow start adds one segment per
        # newly acked segment -> cwnd 20.
        for seq in range(1, 11):
            sim.schedule(ms(0.1) * seq, sender.receive, ack(seq))
        sim.run(until=ms(1.5))  # bounded: an un-ACKed sender RTOs forever
        assert sender.cwnd == pytest.approx(20.0)
        assert len(host.sent) == 30  # 10 initial + 20 more

    def test_congestion_avoidance_linear(self, sim):
        sender, _ = make_sender(sim, size_bytes=2000 * MSS)
        sender.start()
        sender.ssthresh = 10.0  # already at threshold -> CA from the start
        for seq in range(1, 11):
            sender.receive(ack(seq))
        # CA: cwnd += 1/cwnd per acked segment => ~+1 over a full window.
        assert sender.cwnd == pytest.approx(11.0, abs=0.2)


class TestFastRetransmit:
    def test_three_dupacks_trigger(self, sim):
        sender, host = make_sender(sim)
        sender.start()
        sender.receive(ack(3))  # progress to 3
        sent_before = len(host.sent)
        for _ in range(3):
            sender.receive(ack(3))
        retx = [p for p in host.sent[sent_before:] if p.retransmission]
        assert len(retx) == 1 and retx[0].seq == 3
        assert sender.stats.fast_retransmits == 1

    def test_two_dupacks_do_not_trigger(self, sim):
        sender, host = make_sender(sim)
        sender.start()
        sender.receive(ack(3))
        for _ in range(2):
            sender.receive(ack(3))
        assert sender.stats.fast_retransmits == 0

    def test_window_halved_on_entry(self, sim):
        sender, _ = make_sender(sim)
        sender.start()
        for seq in range(1, 11):
            sender.receive(ack(seq))  # cwnd 20
        cwnd_before = sender.cwnd
        for _ in range(4):
            sender.receive(ack(10))
        assert sender.cwnd == pytest.approx(cwnd_before / 2)

    def test_newreno_partial_ack_retransmits_next_hole(self, sim):
        sender, host = make_sender(sim)
        sender.start()
        sender.receive(ack(2))
        for _ in range(3):
            sender.receive(ack(2))  # enter recovery, retransmit 2
        sent_before = len(host.sent)
        sender.receive(ack(5))  # partial: hole at 5
        retx = [p for p in host.sent[sent_before:] if p.retransmission]
        assert retx and retx[0].seq == 5

    def test_full_ack_exits_recovery(self, sim):
        sender, _ = make_sender(sim)
        sender.start()
        sender.receive(ack(2))
        for _ in range(3):
            sender.receive(ack(2))
        recovery_point = sender._recovery_point
        sender.receive(ack(recovery_point))
        assert not sender._in_recovery
        assert sender.cwnd == pytest.approx(sender.ssthresh)


class TestRto:
    def test_timeout_fires_and_goes_back_n(self, sim):
        sender, host = make_sender(sim)
        sender.start()
        sent_before = len(host.sent)
        sim.run(until=ms(50))
        assert sender.stats.timeouts >= 1
        # After RTO, segment 0 was retransmitted.
        retx = [p for p in host.sent[sent_before:] if p.seq == 0]
        assert retx and retx[0].retransmission

    def test_exponential_backoff(self, sim):
        sender, _ = make_sender(sim)
        sender.start()
        rto_initial = sender.rto
        sim.run(until=ms(100))
        assert sender.stats.timeouts >= 2
        assert sender.rto > rto_initial

    def test_cwnd_collapses_to_one(self, sim):
        sender, _ = make_sender(sim)
        sender.start()
        sim.run(until=ms(15))
        assert sender.stats.timeouts >= 1
        assert sender.cwnd <= 2.0  # 1 + possibly one ss increment

    def test_ack_cancels_pending_rto(self, sim):
        sender, _ = make_sender(sim, size_bytes=10 * MSS)
        sender.start()
        for seq in range(1, 11):
            sender.receive(ack(seq))
        assert sender.completed
        sim.run(until=ms(100))
        assert sender.stats.timeouts == 0


class TestRttEstimation:
    def test_srtt_tracks_sample(self, sim):
        sender, _ = make_sender(sim)
        sender.start()
        sim.schedule(ms(1), sender.receive, ack(1))
        sim.run(until=ms(1))
        assert sender.smoothed_rtt == pytest.approx(ms(1), rel=0.01)

    def test_rto_respects_minimum(self, sim):
        sender, _ = make_sender(sim, min_rto=ms(5))
        sender.start()
        sim.schedule(ms(0.1), sender.receive, ack(1))
        sim.run(until=ms(0.2))
        assert sender.rto >= ms(5)

    def test_no_sample_from_retransmission(self, sim):
        sender, _ = make_sender(sim)
        sender.start()
        sim.run(until=ms(10))  # force a timeout -> everything retransmitted
        timeouts = sender.stats.timeouts
        assert timeouts >= 1
        srtt_before = sender.smoothed_rtt
        sender.receive(ack(1))  # acks a retransmitted segment
        assert sender.smoothed_rtt == srtt_before  # Karn: no sample


class TestCompletion:
    def test_complete_on_full_ack(self, sim):
        fired = []
        host_sender, host = None, None
        sender, host = make_sender(sim, size_bytes=5 * MSS)
        sender.on_complete = lambda s: fired.append(s.flow_id)
        sender.start()
        sender.receive(ack(5))
        assert sender.completed
        assert fired == [1]
        assert host.unregistered == [1]
        assert sender.flow_completion_time >= 0

    def test_fct_before_completion_raises(self, sim):
        sender, _ = make_sender(sim)
        sender.start()
        with pytest.raises(RuntimeError):
            _ = sender.flow_completion_time

    def test_acks_after_completion_ignored(self, sim):
        sender, _ = make_sender(sim, size_bytes=2 * MSS)
        sender.start()
        sender.receive(ack(2))
        sender.receive(ack(2))  # no crash, no state change
        assert sender.completed
