"""Unit tests for RTT-variation emulation: components, profiles, delay stage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netem.components import (
    HIGH_LOAD,
    HYPERVISOR,
    NETWORK_STACK,
    SLB,
    TABLE1_CASES,
    sample_case_rtts,
)
from repro.netem.delay import FlowDelayStage, install_delay_stage
from repro.netem.profiles import RttProfile
from repro.sim.network import Network
from repro.sim.units import us

from conftest import make_packet


class TestComponents:
    def test_stack_calibration(self):
        rng = np.random.default_rng(1)
        samples = NETWORK_STACK.sample(rng, 50_000)
        assert np.mean(samples) == pytest.approx(us(39.3), rel=0.03)
        assert np.std(samples) == pytest.approx(us(12.2), rel=0.1)

    def test_samples_positive(self):
        rng = np.random.default_rng(2)
        for component in (NETWORK_STACK, SLB, HYPERVISOR, HIGH_LOAD):
            assert np.all(component.sample(rng, 1_000) > 0)

    def test_table1_case_order_matches_paper(self):
        names = list(TABLE1_CASES)
        assert names[0] == "Networking Stack"
        assert "high load" in names[-1]
        assert len(names) == 5

    def test_combined_case_means_increase(self):
        rng = np.random.default_rng(3)
        means = [
            float(np.mean(sample_case_rtts(components, rng, 20_000)))
            for components in TABLE1_CASES.values()
        ]
        assert means == sorted(means)

    def test_headline_variation_ratio(self):
        """Table 1's claim: worst case mean is ~2.7x the bare stack."""
        rng = np.random.default_rng(4)
        first = float(np.mean(sample_case_rtts(TABLE1_CASES["Networking Stack"], rng, 30_000)))
        last_name = list(TABLE1_CASES)[-1]
        last = float(np.mean(sample_case_rtts(TABLE1_CASES[last_name], rng, 30_000)))
        assert last / first == pytest.approx(2.68, abs=0.3)

    def test_wire_rtt_added(self):
        rng = np.random.default_rng(5)
        samples = sample_case_rtts([NETWORK_STACK], rng, 1_000, wire_rtt=us(10))
        assert np.min(samples) > us(10)

    def test_invalid_sample_count(self):
        rng = np.random.default_rng(6)
        with pytest.raises(ValueError):
            sample_case_rtts([NETWORK_STACK], rng, 0)


class TestRttProfile:
    def test_from_variation(self):
        profile = RttProfile.from_variation(us(70), 3.0)
        assert profile.rtt_max == pytest.approx(us(210))
        assert profile.variation == pytest.approx(3.0)

    def test_samples_within_bounds(self):
        profile = RttProfile.from_variation(us(70), 3.0)
        rng = np.random.default_rng(7)
        samples = profile.sample(rng, 50_000)
        assert np.all(samples >= us(70) - 1e-12)
        assert np.all(samples <= us(210) + 1e-12)

    def test_long_tail_shape(self):
        """Mean well below the midpoint of mean/max -- most flows are fast,
        a heavy tail is slow (Figure 1's shape)."""
        profile = RttProfile.from_variation(us(80), 3.0)
        rng = np.random.default_rng(8)
        stats = profile.statistics(rng, 100_000)
        assert stats.p50 < stats.mean or stats.p90 > 2 * stats.p50

    def test_leafspine_calibration(self):
        """Section 5.3 quotes average ~137us and p90 ~220us for 80-240us."""
        profile = RttProfile.from_variation(us(80), 3.0)
        rng = np.random.default_rng(9)
        stats = profile.statistics(rng, 200_000)
        assert stats.mean == pytest.approx(us(137), rel=0.15)
        assert stats.p90 == pytest.approx(us(220), rel=0.1)

    def test_variation_one_is_constant(self):
        profile = RttProfile.from_variation(us(100), 1.0)
        rng = np.random.default_rng(10)
        samples = profile.sample(rng, 100)
        assert np.all(samples == us(100))

    def test_invalid_variation(self):
        with pytest.raises(ValueError):
            RttProfile.from_variation(us(70), 0.5)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            RttProfile(rtt_min=0, rtt_max=us(100))
        with pytest.raises(ValueError):
            RttProfile(rtt_min=us(100), rtt_max=us(50))

    def test_percentile_bounds_check(self):
        profile = RttProfile.from_variation(us(70), 2.0)
        rng = np.random.default_rng(11)
        with pytest.raises(ValueError):
            profile.percentile(101, rng)

    @given(variation=st.floats(min_value=1.0, max_value=8.0))
    @settings(max_examples=20, deadline=None)
    def test_any_variation_samples_in_range(self, variation):
        profile = RttProfile.from_variation(us(50), variation)
        rng = np.random.default_rng(0)
        samples = profile.sample(rng, 2_000)
        assert np.all(samples >= profile.rtt_min - 1e-12)
        assert np.all(samples <= profile.rtt_max + 1e-12)


class TestFlowDelayStage:
    def test_unknown_flow_zero_delay(self):
        stage = FlowDelayStage()
        assert stage.delay_for(make_packet(flow_id=9)) == 0.0

    def test_registered_delay(self):
        stage = FlowDelayStage()
        stage.set_flow_delay(3, us(120))
        assert stage.delay_for(make_packet(flow_id=3)) == us(120)

    def test_clear_flow(self):
        stage = FlowDelayStage()
        stage.set_flow_delay(3, us(120))
        stage.clear_flow(3)
        assert stage.delay_for(make_packet(flow_id=3)) == 0.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            FlowDelayStage().set_flow_delay(1, -1e-6)

    def test_install_is_idempotent(self):
        net = Network()
        host = net.add_host("h")
        first = install_delay_stage(host)
        second = install_delay_stage(host)
        assert first is second

    def test_install_refuses_foreign_delay_fn(self):
        net = Network()
        host = net.add_host("h")
        host.egress_delay_fn = lambda packet: 0.0
        with pytest.raises(RuntimeError):
            install_delay_stage(host)

    def test_stage_is_callable(self):
        stage = FlowDelayStage()
        stage.set_flow_delay(1, us(10))
        assert stage(make_packet(flow_id=1)) == us(10)
