"""Tests for the declarative scenario schema: field-level validation with
actionable paths, canonical dict round-trips, and the checked-in library."""

import copy
import tomllib
from pathlib import Path

import pytest

from repro.scenarios import (
    SCHEMA_VERSION,
    Scenario,
    ScenarioError,
    load_scenario,
    load_scenario_dir,
)

SCENARIO_DIR = Path(__file__).resolve().parent.parent / "scenarios"


def base_dict(**overrides):
    """A minimal valid scenario in canonical dict form."""
    data = {
        "schema_version": SCHEMA_VERSION,
        "name": "unit",
        "rtt": {"min_us": 70.0, "variation": 3.0, "shape": "testbed"},
        "schemes": {"preset": "testbed", "only": ["ECN#"]},
        "run": {"seed": 1},
        "workloads": [
            {
                "name": "ws",
                "kind": "fct",
                "workload": "web-search",
                "loads": [0.5],
                "n_flows": 10,
            },
        ],
    }
    data.update(overrides)
    return data


def full_dict():
    """Every optional schema feature exercised at a non-default value."""
    return {
        "schema_version": SCHEMA_VERSION,
        "name": "full",
        "description": "every field set",
        "hypothesis": "round-trips are the identity",
        "topology": {
            "kind": "leafspine",
            "spines": 2,
            "leaves": 3,
            "hosts_per_leaf": 5,
            "oversubscription": 2.0,
        },
        "rtt": {"min_us": 40.0, "variation": 5.0, "shape": "fabric"},
        "schemes": {
            "define": [
                {"name": "RED-A", "kind": "sojourn-red",
                 "params": {"sojourn": 0.0002}},
                {"name": "CoDel-B", "kind": "codel",
                 "params": {"interval": 0.0002, "target": 0.00005}},
            ]
        },
        "run": {"seed": 5, "n_seeds": 3},
        "transport": {"cc": "reno", "init_cwnd": 4.0, "min_rto_us": 900.0},
        "workloads": [
            {
                "name": "dm",
                "kind": "fct",
                "workload": "data-mining",
                "loads": [0.3, 0.6],
                "n_flows": 20,
                "rtt": {"min_us": 80.0, "variation": 2.0, "shape": "fabric"},
                "n_seeds": 2,
            },
        ],
    }


# --------------------------------------------------------------- round trips


class TestRoundTrip:
    def test_minimal_dict_is_canonical(self):
        data = base_dict()
        assert Scenario.from_dict(data).to_dict() == data

    def test_full_feature_dict_is_canonical(self):
        data = full_dict()
        assert Scenario.from_dict(data).to_dict() == data

    def test_dict_scenario_dict_identity(self):
        for data in (base_dict(), full_dict()):
            scenario = Scenario.from_dict(data)
            again = Scenario.from_dict(scenario.to_dict())
            assert again == scenario
            assert again.to_dict() == scenario.to_dict()

    def test_string_scheme_shorthand_normalises(self):
        scenario = Scenario.from_dict(base_dict(schemes="testbed"))
        assert scenario.to_dict()["schemes"] == {"preset": "testbed"}
        assert len(scenario.schemes.resolve()) == 4

    def test_defaulted_fields_are_omitted(self):
        data = base_dict(topology={"kind": "star"}, transport={})
        encoded = Scenario.from_dict(data).to_dict()
        assert "topology" not in encoded
        assert "transport" not in encoded
        assert encoded["run"] == {"seed": 1}

    def test_content_hash_tracks_semantic_edits(self):
        original = Scenario.from_dict(base_dict())
        edited = Scenario.from_dict(base_dict(run={"seed": 2}))
        assert original.content_hash() != edited.content_hash()
        assert original.content_hash() == Scenario.from_dict(
            base_dict()
        ).content_hash()


# --------------------------------------------------------------- validation


class TestValidation:
    def test_unknown_top_level_field_names_path(self):
        with pytest.raises(ScenarioError) as exc_info:
            Scenario.from_dict(base_dict(frobnicate=1))
        assert exc_info.value.path == "scenario.frobnicate"
        assert "unknown field" in str(exc_info.value)

    def test_unknown_workload_field_names_path(self):
        data = base_dict()
        data["workloads"][0]["bogus"] = True
        with pytest.raises(ScenarioError) as exc_info:
            Scenario.from_dict(data)
        assert exc_info.value.path == "scenario.workloads[0].bogus"

    def test_unknown_aqm_kind_names_path_and_choices(self):
        data = base_dict(
            schemes={"define": [{"name": "X", "kind": "red-tail"}]}
        )
        with pytest.raises(ScenarioError) as exc_info:
            Scenario.from_dict(data)
        assert exc_info.value.path == "scenario.schemes.define[0].kind"
        message = str(exc_info.value)
        assert "unknown AQM kind" in message
        assert "ecn-sharp" in message  # the available kinds are listed

    def test_unknown_scheme_in_only(self):
        data = base_dict(schemes={"preset": "testbed", "only": ["NoSuch"]})
        with pytest.raises(ScenarioError) as exc_info:
            Scenario.from_dict(data)
        assert exc_info.value.path == "scenario.schemes.only[0]"
        assert "ECN#" in str(exc_info.value)

    def test_tcn_only_in_simulation_preset(self):
        with pytest.raises(ScenarioError):
            Scenario.from_dict(
                base_dict(schemes={"preset": "testbed", "only": ["TCN"]})
            )
        scenario = Scenario.from_dict(
            base_dict(schemes={"preset": "simulation", "only": ["TCN"]})
        )
        assert list(scenario.schemes.resolve()) == ["TCN"]

    def test_preset_and_define_are_exclusive(self):
        data = base_dict(
            schemes={
                "preset": "testbed",
                "define": [{"name": "X", "kind": "codel"}],
            }
        )
        with pytest.raises(ScenarioError, match="mutually exclusive"):
            Scenario.from_dict(data)

    def test_unknown_workload_distribution(self):
        data = base_dict()
        data["workloads"][0]["workload"] = "cache-follower"
        with pytest.raises(ScenarioError) as exc_info:
            Scenario.from_dict(data)
        assert exc_info.value.path == "scenario.workloads[0].workload"
        assert "web-search" in str(exc_info.value)

    def test_unsupported_schema_version(self):
        with pytest.raises(ScenarioError, match="unsupported version 99"):
            Scenario.from_dict(base_dict(schema_version=99))

    def test_duplicate_component_names(self):
        data = base_dict()
        data["workloads"].append(copy.deepcopy(data["workloads"][0]))
        with pytest.raises(ScenarioError, match="duplicate component name"):
            Scenario.from_dict(data)

    def test_name_must_be_token(self):
        for bad in ("", "two words", "a|b"):
            with pytest.raises(ScenarioError):
                Scenario.from_dict(base_dict(name=bad))

    def test_zero_load_rejected_with_index(self):
        data = base_dict()
        data["workloads"][0]["loads"] = [0.5, 0.0]
        with pytest.raises(ScenarioError) as exc_info:
            Scenario.from_dict(data)
        assert exc_info.value.path == "scenario.workloads[0].loads[1]"

    def test_missing_rtt_table(self):
        data = base_dict()
        del data["rtt"]
        with pytest.raises(ScenarioError) as exc_info:
            Scenario.from_dict(data)
        assert exc_info.value.path == "scenario.rtt"

    def test_unknown_rtt_shape_lists_choices(self):
        data = base_dict(rtt={"min_us": 70.0, "variation": 3.0, "shape": "x"})
        with pytest.raises(ScenarioError) as exc_info:
            Scenario.from_dict(data)
        assert "testbed" in str(exc_info.value)

    def test_unknown_cc_variant(self):
        with pytest.raises(ScenarioError) as exc_info:
            Scenario.from_dict(base_dict(transport={"cc": "cubic"}))
        assert exc_info.value.path == "scenario.transport.cc"

    def test_oversubscription_below_one_rejected(self):
        data = base_dict(
            topology={"kind": "leafspine", "oversubscription": 0.5}
        )
        with pytest.raises(ScenarioError) as exc_info:
            Scenario.from_dict(data)
        assert exc_info.value.path == "scenario.topology.oversubscription"

    def test_component_rtt_partial_override(self):
        data = base_dict()
        data["workloads"][0]["rtt"] = {"variation": 5.0}
        scenario = Scenario.from_dict(data)
        component = scenario.workloads[0]
        assert component.rtt.variation == 5.0
        assert component.rtt.min_us == 70.0  # inherited from scenario [rtt]
        assert scenario.rtt_for(component) is component.rtt

    def test_seeds_for_prefers_component_override(self):
        data = base_dict(run={"seed": 1, "n_seeds": 4})
        data["workloads"][0]["n_seeds"] = 2
        scenario = Scenario.from_dict(data)
        assert scenario.seeds_for(scenario.workloads[0]) == 2


# ------------------------------------------------------------------ loading


class TestLoading:
    def test_invalid_toml_reports_source(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("name = [unclosed")
        with pytest.raises(ScenarioError, match="invalid TOML"):
            load_scenario(path)

    def test_json_scenario_loads(self, tmp_path):
        import json

        path = tmp_path / "unit.json"
        path.write_text(json.dumps(base_dict()))
        assert load_scenario(path).name == "unit"

    def test_unsupported_suffix(self, tmp_path):
        path = tmp_path / "unit.yaml"
        path.write_text("name: unit")
        with pytest.raises(ScenarioError, match="unsupported suffix"):
            load_scenario(path)

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no scenario files"):
            load_scenario_dir(tmp_path)


# ------------------------------------------------------------------ library


class TestLibrary:
    def test_library_loads_with_unique_names(self):
        pairs = load_scenario_dir(SCENARIO_DIR)
        names = [scenario.name for _, scenario in pairs]
        assert len(pairs) >= 7
        assert len(set(names)) == len(names)

    def test_library_files_are_canonical(self):
        """Every checked-in file round-trips to the identical dict, so the
        on-disk form *is* the canonical form (and the content hash of the
        file matches the content hash of the loaded scenario)."""
        for path in sorted(SCENARIO_DIR.glob("*.toml")):
            raw = tomllib.loads(path.read_text(encoding="utf-8"))
            scenario = load_scenario(path)
            assert scenario.to_dict() == raw, path.name

    def test_library_hypotheses_on_beyond_paper_scenarios(self):
        pairs = load_scenario_dir(SCENARIO_DIR)
        beyond = [s for _, s in pairs if not s.name.startswith("fig")]
        assert len(beyond) >= 3
        for scenario in beyond:
            assert scenario.hypothesis, scenario.name
