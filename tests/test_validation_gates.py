"""End-to-end tests for the fidelity gate: capture, warm replay, canary.

Uses a two-scheme fig10-only micro grid (fanout 40) because its cells are
single-seed and its invariants deterministic -- the full tiny scale lives
in CI, not here.
"""

import json

import pytest

from repro.experiments.executor import Executor
from repro.telemetry import Telemetry, activate
from repro.validation import (
    StaleBaselineError,
    ValidationScale,
    capture_baselines,
    run_gate,
)
from repro.validation.stats import FAIL, PASS


def micro_scale(fanout: int = 40) -> ValidationScale:
    return ValidationScale(
        name="micro",
        figures=("fig10",),
        fig10_fanout=fanout,
        fig10_schemes=("DCTCP-RED-Tail", "ECN#"),
    )


@pytest.fixture(scope="module")
def captured(tmp_path_factory):
    """One shared capture: (scale, baseline path, cache dir)."""
    root = tmp_path_factory.mktemp("gate")
    cache_dir = root / "cache"
    scale = micro_scale()
    executor = Executor(jobs=1, cache=True, cache_dir=cache_dir)
    baseline, path, outcome = capture_baselines(
        scale,
        executor,
        baseline_dir=root / "baselines",
        force=True,  # test trees are often dirty; manifest records it
    )
    assert executor.stats.executed == 2
    assert not outcome.failures
    return scale, path, cache_dir


class TestCapture:
    def test_baseline_contents(self, captured):
        _scale, path, _cache = captured
        payload = json.loads(path.read_text())
        assert payload["manifest"]["scale"] == "micro"
        assert payload["manifest"]["baseline_schema"] >= 1
        assert payload["manifest"]["spec_schema"] >= 1
        cells = payload["figures"]["fig10"]["cells"]
        assert set(cells) == {"scheme=DCTCP-RED-Tail", "scheme=ECN#"}
        for cell in cells.values():
            assert cell["tokens"], "tokens must be recorded for staleness"
            assert "standing_queue_pkts" in cell["metrics"]


class TestWarmGate:
    def test_warm_run_executes_zero_sims_and_passes(self, captured):
        scale, path, cache_dir = captured
        executor = Executor(jobs=1, cache=True, cache_dir=cache_dir)
        report = run_gate(scale, executor, baseline_path=path)
        assert executor.stats.executed == 0, "warm gate must be pure cache"
        assert executor.stats.cache_hits == 2
        assert report.status == PASS
        assert report.failed_names() == []
        assert not report.failures

    def test_verdicts_mirrored_into_telemetry(self, captured):
        scale, path, cache_dir = captured
        executor = Executor(jobs=1, cache=True, cache_dir=cache_dir)
        telemetry = Telemetry()
        with activate(telemetry):
            report = run_gate(scale, executor, baseline_path=path)
        n_pass = telemetry.registry.counter(
            "validation_verdicts_total", kind="baseline", status="pass"
        ).value
        assert n_pass == sum(1 for c in report.comparisons if c.status == PASS)
        assert telemetry.registry.counter(
            "validation_verdicts_total", kind="invariant", status="pass"
        ).value == len(report.invariants)

    def test_report_json_round_trip(self, captured, tmp_path):
        scale, path, cache_dir = captured
        executor = Executor(jobs=1, cache=True, cache_dir=cache_dir)
        report = run_gate(scale, executor, baseline_path=path)
        out = tmp_path / "report.json"
        report.to_json(str(out))
        payload = json.loads(out.read_text())
        assert payload["status"] == "pass"
        assert payload["scale"] == "micro"
        assert payload["comparisons"]
        assert payload["invariants"]


class TestCanary:
    def test_perturbed_aqm_fails_with_named_invariant(self, captured, monkeypatch):
        scale, path, _cache = captured
        # pst_target 10us -> 200us (still below ins_target 220us): ECN#
        # runs cleanly but keeps a RED-like standing queue.  No cache, so
        # the perturbed simulation actually executes.
        monkeypatch.setenv("REPRO_AQM_PERTURB", "ecn-sharp:pst_target:20")
        executor = Executor(jobs=1, cache=False)
        report = run_gate(scale, executor, baseline_path=path)
        assert report.status == FAIL
        failed = report.failed_names()
        assert "fig10.persistent_queue_collapse" in failed
        # The statistical layer independently catches the shifted cells.
        assert any(
            name.startswith("fig10:scheme=ECN#:") for name in failed
        )

    def test_malformed_perturbation_rejected(self, monkeypatch):
        from repro.experiments.schemes import build_aqm
        from repro.sim.units import us

        monkeypatch.setenv("REPRO_AQM_PERTURB", "not-a-valid-spec")
        with pytest.raises(ValueError, match="REPRO_AQM_PERTURB"):
            build_aqm("sojourn-red", {"sojourn": us(204.8)})


class TestStaleness:
    def test_spec_schema_bump_detected_before_running(self, captured, tmp_path):
        scale, path, cache_dir = captured
        payload = json.loads(path.read_text())
        payload["manifest"]["spec_schema"] = -999
        stale_path = tmp_path / "stale.json"
        stale_path.write_text(json.dumps(payload))
        executor = Executor(jobs=1, cache=True, cache_dir=cache_dir)
        with pytest.raises(StaleBaselineError, match="spec schema"):
            run_gate(scale, executor, baseline_path=stale_path)
        assert executor.stats.submitted == 0, "stale check precedes the grid"

    def test_changed_grid_definition_detected(self, captured):
        _scale, path, cache_dir = captured
        # Same cell keys, different fanout: the recorded RunSpec tokens no
        # longer match, so the gate must refuse rather than compare noise.
        executor = Executor(jobs=1, cache=True, cache_dir=cache_dir)
        with pytest.raises(StaleBaselineError, match="different run specs"):
            run_gate(micro_scale(fanout=41), executor, baseline_path=path)

    def test_missing_baseline_raises(self, tmp_path):
        executor = Executor(jobs=1)
        with pytest.raises(FileNotFoundError, match="validate capture"):
            run_gate(
                micro_scale(), executor, baseline_path=tmp_path / "nope.json"
            )
        assert executor.stats.submitted == 0


class TestPerfGate:
    @staticmethod
    def bench(eps, cpu=4, python="3.11.7"):
        return {
            "cpu_count": cpu,
            "python": python,
            "engine": {"events_per_sec": eps},
        }

    def test_same_throughput_passes(self):
        from repro.validation.gates import evaluate_perf

        verdict = evaluate_perf(self.bench(1e6), self.bench(1e6))
        assert verdict.status == "pass"
        assert verdict.ratio == pytest.approx(1.0)

    def test_mild_slowdown_warns(self):
        from repro.validation.gates import evaluate_perf

        verdict = evaluate_perf(self.bench(0.6e6), self.bench(1e6))
        assert verdict.status == "warn"

    def test_severe_slowdown_fails(self):
        from repro.validation.gates import evaluate_perf

        verdict = evaluate_perf(self.bench(0.3e6), self.bench(1e6))
        assert verdict.status == "fail"

    def test_host_mismatch_caps_at_warn(self):
        from repro.validation.gates import evaluate_perf

        verdict = evaluate_perf(
            self.bench(0.3e6, cpu=2), self.bench(1e6, cpu=16)
        )
        assert verdict.status == "warn"
        assert "host mismatch" in verdict.detail

    def test_missing_bench_skips(self):
        from repro.validation.gates import evaluate_perf

        assert evaluate_perf(None, self.bench(1e6)).status == "skip"
        assert evaluate_perf(self.bench(1e6), None).status == "skip"
        assert evaluate_perf(self.bench(1e6), {"engine": {}}).status == "skip"


class TestBandSelection:
    def test_metric_families(self):
        from repro.validation.gates import band_for
        from repro.validation.stats import COUNT_BAND, DEFAULT_BAND, QUEUE_BAND

        assert band_for("drops") is COUNT_BAND
        assert band_for("query_timeouts") is COUNT_BAND
        assert band_for("standing_queue_pkts") is QUEUE_BAND
        assert band_for("floor_queue_pkts") is QUEUE_BAND
        assert band_for("short_avg") is DEFAULT_BAND
        assert band_for("avg_query_fct") is DEFAULT_BAND


class TestCli:
    def test_validate_run_missing_baseline_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "validate", "run",
                "--scale", "tiny",
                "--baseline-dir", str(tmp_path / "empty"),
            ]
        )
        assert code == 2
        assert "validate capture" in capsys.readouterr().err

    def test_validate_capture_dirty_tree_exits_2(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setattr(
            "repro.validation.baselines.git_dirty", lambda cwd=None: True
        )
        code = main(
            [
                "validate", "capture",
                "--scale", "tiny",
                "--baseline-dir", str(tmp_path / "baselines"),
            ]
        )
        assert code == 2
        assert "uncommitted changes" in capsys.readouterr().err

    def test_parser_accepts_validate_verbs(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["validate", "run", "--scale", "tiny", "--report-out", "r.json"]
        )
        assert args.command == "validate"
        assert args.validate_command == "run"
        assert args.report_out == "r.json"
        args = parser.parse_args(["validate", "capture", "--force"])
        assert args.validate_command == "capture"
        assert args.force
