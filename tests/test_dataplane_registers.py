"""Unit tests for the Tofino register model (single-access constraint)."""

import pytest

from repro.dataplane.registers import (
    PacketPass,
    RegisterAccessViolation,
    RegisterArray,
    RegisterFile,
)


class TestRegisterArray:
    def test_read_write_roundtrip(self):
        array = RegisterArray("r", size=4)
        array.write(2, 77)
        array._begin_pass()
        assert array.read(2) == 77

    def test_width_masking(self):
        array = RegisterArray("r", size=1, width=8)
        array.write(0, 0x1FF)
        assert array.peek(0) == 0xFF

    def test_32bit_wraparound(self):
        array = RegisterArray("r", size=1, width=32)
        array.write(0, 2**32 + 5)
        assert array.peek(0) == 5

    def test_double_access_rejected(self):
        array = RegisterArray("r", size=2)
        array.read(0)
        with pytest.raises(RegisterAccessViolation):
            array.read(1)  # same array, same pass -> violation

    def test_read_then_write_rejected(self):
        """The Figure 4b failure mode: read_first_above_time followed by
        add_now_to_first_above_time in the same pass."""
        array = RegisterArray("first_above_time", size=1)
        array.read(0)
        with pytest.raises(RegisterAccessViolation):
            array.write(0, 1)

    def test_read_modify_write_is_one_access(self):
        array = RegisterArray("r", size=1)
        output = array.read_modify_write(0, lambda old: (old + 1, old))
        assert output == 0
        assert array.peek(0) == 1
        with pytest.raises(RegisterAccessViolation):
            array.read(0)

    def test_rmw_masks_new_value(self):
        array = RegisterArray("r", size=1, width=16)
        array.read_modify_write(0, lambda old: (0x1FFFF, 0))
        assert array.peek(0) == 0xFFFF

    def test_pass_reset_allows_next_access(self):
        array = RegisterArray("r", size=1)
        array.read(0)
        array._begin_pass()
        array.read(0)  # fine after a new pass

    def test_index_bounds(self):
        array = RegisterArray("r", size=2)
        with pytest.raises(IndexError):
            array.read(2)
        with pytest.raises(IndexError):
            array.write(-1, 0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RegisterArray("r", size=0)
        with pytest.raises(ValueError):
            RegisterArray("r", size=1, width=24)

    def test_access_count_accumulates(self):
        array = RegisterArray("r", size=1)
        for _ in range(3):
            array._begin_pass()
            array.read(0)
        assert array.access_count == 3

    def test_poke_peek_bypass_accounting(self):
        array = RegisterArray("r", size=1)
        array.read(0)
        array.poke(0, 9)  # no violation
        assert array.peek(0) == 9


class TestRegisterFile:
    def test_declare_and_lookup(self):
        file = RegisterFile()
        array = file.declare("x", size=4)
        assert file["x"] is array

    def test_duplicate_declaration_rejected(self):
        file = RegisterFile()
        file.declare("x", size=4)
        with pytest.raises(ValueError):
            file.declare("x", size=4)

    def test_begin_pass_resets_all(self):
        file = RegisterFile()
        a, b = file.declare("a", 1), file.declare("b", 1)
        a.read(0)
        b.read(0)
        file.begin_pass()
        a.read(0)
        b.read(0)

    def test_different_arrays_same_pass_ok(self):
        file = RegisterFile()
        a, b = file.declare("a", 1), file.declare("b", 1)
        file.begin_pass()
        a.read(0)
        b.read(0)  # different arrays: allowed

    def test_total_bits(self):
        file = RegisterFile()
        file.declare("a", 128, width=32)
        file.declare("b", 128, width=64)
        assert file.total_bits() == 128 * 32 + 128 * 64

    def test_packet_pass_context(self):
        file = RegisterFile()
        array = file.declare("a", 1)
        with PacketPass(file):
            array.read(0)
        with PacketPass(file):
            array.read(0)  # fresh pass per context


class TestPaperResourceClaims:
    def test_register_memory_near_37kb(self):
        """Section 4: '5 32-bit register arrays and 2 64-bit register
        arrays ... ~37KB' over 128 ports."""
        file = RegisterFile()
        for name in ("r1", "r2", "r3", "r4", "r5"):
            file.declare(name, 128, width=32)
        for name in ("w1", "w2"):
            file.declare(name, 128, width=64)
        total_bytes = file.total_bits() / 8
        # 128 * (5*4 + 2*8) = 4.5KB of live state; the paper's ~37KB counts
        # allocation granularity, but the array inventory must match.
        assert total_bytes == 128 * (5 * 4 + 2 * 8)
