"""Conservation invariants: nothing is created, lost or reordered silently.

These are the simulator-wide bookkeeping guarantees every experiment relies
on:

* port conservation -- every packet admitted to a port is eventually
  transmitted, dropped, or still queued; buffer accounting returns to zero;
* end-to-end conservation -- segments delivered to sinks equal segments
  sent minus drops (counting retransmissions);
* in-order delivery -- with per-flow ECMP and FIFO ports, a flow's packets
  never reorder, so sinks see no out-of-order buffering unless packets were
  actually dropped.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.red import SojournRed
from repro.experiments.fct import FctCollector
from repro.sim import PacketFactory
from repro.sim.units import gbps, us
from repro.tcp import open_flow
from repro.topology import build_leafspine, build_star
from repro.workloads import (
    WEB_SEARCH,
    PoissonTrafficGenerator,
    star_pair_picker,
)


class TestPortConservation:
    @given(
        sizes=st.lists(st.integers(min_value=40, max_value=1500), min_size=1, max_size=80),
        buffer_bytes=st.integers(min_value=3_000, max_value=30_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_admitted_equals_tx_plus_dropped(self, sizes, buffer_bytes):
        from repro.sim.engine import Simulator
        from repro.sim.port import Port
        from conftest import make_packet

        sim = Simulator()
        port = Port(sim, "p", gbps(10), us(2), buffer_bytes)
        received = []

        class _Sink:
            def receive(self, packet):
                received.append(packet)

        port.peer = _Sink()
        for index, size in enumerate(sizes):
            port.send(make_packet(seq=index, size=size))
        sim.run_until_idle()

        assert port.stats.tx_packets == len(received)
        assert port.stats.tx_packets + port.stats.dropped_total == len(sizes)
        assert port.buffer.used_bytes == 0
        assert port.queue_packets == 0
        # Bytes conserved too.
        assert port.stats.tx_bytes == sum(p.size for p in received)


class TestEndToEndConservation:
    def run_workload(self, buffer_bytes=1_048_576, n_flows=40, seed=5, aqm=None):
        topo = build_star(n_senders=5, buffer_bytes=buffer_bytes, aqm_factory=aqm)
        rng = np.random.default_rng(seed)
        collector = FctCollector()
        generator = PoissonTrafficGenerator(
            network=topo.network,
            factory=PacketFactory(),
            pair_picker=star_pair_picker(topo.senders, topo.receiver),
            workload=WEB_SEARCH,
            load=0.6,
            capacity_bps=gbps(10),
            n_flows=n_flows,
            rng=rng,
            on_flow_complete=collector.record,
        )
        generator.start()
        topo.network.sim.run_until_idle(max_events=100_000_000)
        return topo, generator, collector

    def test_all_segments_accounted_without_loss(self):
        # ECN marking keeps the drop-tail buffer from ever filling; with
        # pure drop-tail (no AQM) loss would be the *expected* behaviour.
        topo, generator, collector = self.run_workload(
            aqm=lambda: SojournRed(us(200))
        )
        total_drops = sum(
            port.stats.dropped_total
            for node in topo.network.nodes.values()
            for port in node.ports
        )
        assert total_drops == 0
        for flow in generator.flows:
            # Without loss there are no retransmissions and exactly
            # total_segments distinct deliveries.
            assert flow.sender.stats.retransmissions == 0
            assert flow.sink.expected == flow.sender.total_segments
            assert flow.sink.duplicates_received == 0
            assert not flow.sink._out_of_order

    def test_loss_accounted_by_retransmissions(self):
        topo, generator, collector = self.run_workload(buffer_bytes=30_000)
        total_drops = sum(
            port.stats.dropped_total
            for node in topo.network.nodes.values()
            for port in node.ports
        )
        assert total_drops > 0  # the tiny buffer actually bit
        for flow in generator.flows:
            assert flow.completed
            sent = flow.sender.stats.segments_sent
            retx = flow.sender.stats.retransmissions
            # Every segment was sent at least once; extras are labelled.
            assert sent >= flow.sender.total_segments
            assert sent - flow.sender.total_segments <= retx


class TestInOrderDelivery:
    def test_no_reordering_across_leafspine_without_loss(self):
        topo = build_leafspine(n_spines=3, n_leaves=2, hosts_per_leaf=3)
        factory = PacketFactory()
        flows = []
        for index in range(9):
            src = topo.hosts[index % len(topo.hosts)]
            dst = topo.hosts[(index + 3) % len(topo.hosts)]
            if src is dst:
                continue
            flows.append(open_flow(topo.network, factory, src, dst, 300_000))
        topo.network.sim.run_until_idle(max_events=100_000_000)
        total_drops = sum(
            port.stats.dropped_total
            for node in topo.network.nodes.values()
            for port in node.ports
        )
        assert total_drops == 0
        for flow in flows:
            assert flow.completed
            # Per-flow ECMP pins one path: no reordering possible.
            assert flow.sink.duplicates_received == 0
            assert flow.sender.stats.fast_retransmits == 0
