"""Equivalence tests for the pluggable event queues (``repro.sim.eventq``).

The engine's dispatch contract is a total order by ``(time, insertion
sequence)``.  The calendar queue earns its throughput with lazy batch
sorting, straggler inserts into the live batch, and a heap fallback --
none of which may change *what* gets dispatched *when*.  Every test here
runs the identical workload through both queues and demands identical
traces: same callbacks, same order, same clock readings, under timestamp
ties, stragglers, ``until``/``max_events`` boundaries, Timer lazy
cancellation, and the fallback itself.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator, Timer
from repro.sim.eventq import (
    FALLBACK_MIN_STRAGGLERS,
    SCHEDULER_ENV,
    SCHEDULER_NAMES,
    CalendarEventQueue,
    HeapEventQueue,
    make_event_queue,
    resolve_scheduler,
)

SCHEDULERS = list(SCHEDULER_NAMES)


class TestResolution:
    def test_explicit_names(self):
        assert resolve_scheduler("calendar") == "calendar"
        assert resolve_scheduler("heap") == "heap"
        assert resolve_scheduler(" HEAP ") == "heap"

    def test_unknown_explicit_name_raises(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            resolve_scheduler("btree")

    def test_default_is_calendar(self, monkeypatch):
        monkeypatch.delenv(SCHEDULER_ENV, raising=False)
        assert resolve_scheduler() == "calendar"
        assert Simulator().scheduler == "calendar"

    def test_env_var_selects_heap(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV, "heap")
        assert Simulator().scheduler == "heap"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV, "heap")
        assert Simulator(scheduler="calendar").scheduler == "calendar"

    def test_garbage_env_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV, "splay-tree")
        with pytest.warns(UserWarning, match="splay-tree"):
            assert resolve_scheduler() == "calendar"

    def test_factory_returns_matching_kind(self):
        assert isinstance(make_event_queue("heap"), HeapEventQueue)
        assert isinstance(make_event_queue("calendar"), CalendarEventQueue)


# --------------------------------------------------------------- trace rig


def _run_trace(scheduler, seed, n_initial=32, until=None, max_events=2000):
    """Drive a randomized self-scheduling workload and record the dispatch
    trace.  The RNG is consumed inside callbacks, so the trace (and the
    RNG stream itself) only matches across queues if the dispatch order
    matches exactly -- any divergence amplifies immediately.
    """
    sim = Simulator(scheduler=scheduler)
    rng = random.Random(seed)
    trace = []
    counter = [0]
    # 0.0 and tiny delays force same-timestamp ties and stragglers
    # (inserts that land inside the calendar queue's active batch).
    delays = [0.0, 1e-9, 1e-7, 1e-7, 1e-6, 1e-6, 5e-6, 1e-4]

    def fire(tag):
        trace.append((sim.now, tag))
        for _ in range(rng.randrange(3)):
            counter[0] += 1
            sim.schedule(rng.choice(delays), fire, counter[0])

    for index in range(n_initial):
        sim.schedule(rng.choice([1e-6, 2e-6, 2e-6, 3e-6]), fire, -index)
    sim.run(until=until, max_events=max_events)
    return trace, sim.events_processed, sim.now


class TestHeapCalendarEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_identical_dispatch_trace(self, seed):
        heap = _run_trace("heap", seed)
        calendar = _run_trace("calendar", seed)
        assert calendar == heap

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_identical_trace_with_until_horizon(self, seed):
        heap = _run_trace("heap", seed, until=4e-6, max_events=None)
        calendar = _run_trace("calendar", seed, until=4e-6, max_events=None)
        assert calendar == heap

    def test_same_timestamp_ties_fifo_across_queues(self):
        for scheduler in SCHEDULERS:
            sim = Simulator(scheduler=scheduler)
            order = []
            # Interleave two timestamps; ties must dispatch in scheduling
            # order regardless of interleaving.
            for index in range(50):
                sim.schedule(1e-6, order.append, ("a", index))
                sim.schedule(2e-6, order.append, ("b", index))
            sim.run()
            expected = [("a", i) for i in range(50)] + [
                ("b", i) for i in range(50)
            ]
            assert order == expected, scheduler

    def test_until_is_inclusive_and_resumable(self):
        traces = {}
        for scheduler in SCHEDULERS:
            sim = Simulator(scheduler=scheduler)
            trace = []

            def fire(tag, sim=sim, trace=trace):
                trace.append((sim.now, tag))
                if tag < 40:
                    sim.schedule(1e-6, fire, tag + 2)

            sim.schedule(1e-6, fire, 0)
            sim.schedule(2e-6, fire, 1)
            sim.run(until=5e-6)  # inclusive: the event AT 5e-6 runs
            cut = len(trace)
            assert trace and trace[-1][0] == pytest.approx(5e-6)
            assert sim.now == 5e-6
            sim.run()  # resume to idle
            traces[scheduler] = (cut, trace)
        assert traces["calendar"] == traces["heap"]

    def test_max_events_stepping_matches_one_shot(self):
        """Draining in small max_events steps must visit the same trace as
        one uninterrupted run -- exercises counter sync and batch-boundary
        resume in the calendar queue."""
        full = _run_trace("calendar", seed=7, max_events=1500)[0]
        for scheduler in SCHEDULERS:
            sim = Simulator(scheduler=scheduler)
            rng = random.Random(7)
            trace = []
            counter = [0]
            delays = [0.0, 1e-9, 1e-7, 1e-7, 1e-6, 1e-6, 5e-6, 1e-4]

            def fire(tag, sim=sim, rng=rng, trace=trace, counter=counter):
                trace.append((sim.now, tag))
                for _ in range(rng.randrange(3)):
                    counter[0] += 1
                    sim.schedule(rng.choice(delays), fire, counter[0])

            for index in range(32):
                sim.schedule(rng.choice([1e-6, 2e-6, 2e-6, 3e-6]), fire, -index)
            while sim.events_processed < 1500 and sim.pending_events:
                sim.run(max_events=min(37, 1500 - sim.events_processed))
            assert trace == full, scheduler

    def test_pending_events_agree(self):
        for scheduler in SCHEDULERS:
            sim = Simulator(scheduler=scheduler)
            for index in range(10):
                sim.schedule(1e-6 * (index + 1), lambda: None)
            assert sim.pending_events == 10, scheduler
            sim.run(until=5e-6)
            assert sim.pending_events == 5, scheduler
            sim.run()
            assert sim.pending_events == 0, scheduler


class TestTimerInterplay:
    """Timer's deadline-polling leaves stale wake-ups in the queue; they
    must be inert on both queues and the firing time must be exact."""

    def _rto_pattern(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        # ACK-clocked restarts: push the deadline out 20 times, then go
        # quiet and let the RTO elapse.
        for index in range(20):
            sim.schedule(index * 1e-4, timer.restart, 3e-4)
        sim.run()
        return fired, sim.events_processed, sim.now

    def test_restart_pattern_fires_identically(self):
        assert self._rto_pattern("calendar") == self._rto_pattern("heap")

    def test_late_cancel_suppresses_on_both(self):
        for scheduler in SCHEDULERS:
            sim = Simulator(scheduler=scheduler)
            fired = []
            timer = Timer(sim, lambda: fired.append(sim.now))
            timer.restart(1e-3)
            sim.schedule(9e-4, timer.cancel)  # just before expiry
            sim.run()
            assert fired == [], scheduler
            assert sim.pending_events == 0, scheduler

    def test_cancel_restart_storm_matches(self):
        def storm(scheduler):
            sim = Simulator(scheduler=scheduler)
            fired = []
            timer = Timer(sim, lambda: fired.append(sim.now))
            rng = random.Random(13)

            def churn(step):
                action = rng.randrange(3)
                if action == 0:
                    timer.restart(rng.choice([1e-4, 2e-4, 5e-4]))
                elif action == 1:
                    timer.cancel()
                if step < 60:
                    sim.schedule(rng.choice([5e-5, 1e-4]), churn, step + 1)

            sim.schedule(0.0, churn, 0)
            sim.run()
            return fired, sim.events_processed

        assert storm("calendar") == storm("heap")


class TestHeapFallback:
    def _straggler_storm(self, scheduler, n=FALLBACK_MIN_STRAGGLERS + 200):
        """Every dispatch schedules another event far inside the active
        batch window: the pathological case the fallback exists for."""
        sim = Simulator(scheduler=scheduler)
        trace = []

        def gnaw(step):
            trace.append((sim.now, step))
            if step == 0:
                # Beyond the horizon: lands in the far tier, so batch
                # formation (the fallback decision point) actually runs
                # once the straggler storm subsides.
                sim.schedule_at(2.0, trace.append, (2.0, "tail"))
            if step < n:
                sim.schedule(1e-9, gnaw, step + 1)

        # The distant sentinel pins the batch horizon far out, making
        # every 1ns self-reschedule a straggler.
        sim.schedule(1.0, trace.append, (1.0, "sentinel"))
        sim.schedule(1e-9, gnaw, 0)
        sim.run()
        return trace, sim.events_processed, sim.now

    def test_fallback_triggers_and_order_is_preserved(self):
        heap = self._straggler_storm("heap")
        calendar = self._straggler_storm("calendar")
        assert calendar == heap

    def test_fallback_engages_internally(self):
        sim = Simulator(scheduler="calendar")

        def gnaw(step):
            if step == 0:
                sim.schedule_at(2.0, lambda: None)  # far-tier tail
            if step < FALLBACK_MIN_STRAGGLERS + 200:
                sim.schedule(1e-9, gnaw, step + 1)

        sim.schedule(1.0, lambda: None)
        sim.schedule(1e-9, gnaw, 0)
        sim.run()
        assert sim._q._heap is not None  # converted, and still drained fine
        assert sim.scheduler == "calendar"  # reported kind is unchanged
        assert sim.pending_events == 0

    def test_post_fallback_scheduling_still_ordered(self):
        q = make_event_queue("calendar")
        q._convert_to_heap()
        order = []
        q.schedule(2e-6, order.append, "b")
        q.schedule(1e-6, order.append, "a")
        q.schedule(2e-6, order.append, "c")  # tie with "b": FIFO
        q.drain(None, None)
        assert order == ["a", "b", "c"]


class TestFigureEquivalence:
    def test_fig10_cell_bit_identical_across_schedulers(self, monkeypatch):
        """A full microscopic incast cell (topology, DCTCP, RED, monitors)
        must produce byte-identical metrics under either queue."""
        from repro.experiments.executor import Executor
        from repro.experiments.figures import fig10

        cells = {}
        for scheduler in SCHEDULERS:
            monkeypatch.setenv(SCHEDULER_ENV, scheduler)
            result = fig10.run_fig10(
                fanout=20,
                schemes=("DCTCP-RED-Tail",),
                executor=Executor(jobs=1),
            )
            summary = fig10.summarize_for_validation(result)
            cells[scheduler] = summary["cells"]
        assert cells["calendar"] == cells["heap"]
        assert cells["calendar"]  # non-empty: the run actually happened
