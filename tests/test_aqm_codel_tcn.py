"""Unit tests for CoDel and TCN, and contrast tests against ECN#."""

import pytest

from repro.core.codel import Codel
from repro.core.ecn_sharp import EcnSharp, EcnSharpConfig
from repro.core.tcn import Tcn
from repro.sim.packet import Ecn
from repro.sim.units import us

from conftest import StampedPacket


def feed(aqm, now, sojourn, ecn=Ecn.ECT0):
    packet = StampedPacket(sojourn=sojourn, ecn=ecn)
    survived = aqm.on_dequeue(packet, now)
    return packet, survived


class TestCodel:
    def test_no_mark_below_target(self):
        aqm = Codel(target_seconds=us(10), interval_seconds=us(240))
        packet, _ = feed(aqm, now=us(10), sojourn=us(5))
        assert not packet.ce_marked

    def test_no_immediate_mark_on_burst(self):
        """CoDel's defining weakness vs ECN#: a sudden huge sojourn does NOT
        mark until it persists for an interval (Section 3.5)."""
        aqm = Codel(target_seconds=us(10), interval_seconds=us(240))
        packet, _ = feed(aqm, now=us(10), sojourn=us(500))
        assert not packet.ce_marked

    def test_marks_after_persistent_interval(self):
        aqm = Codel(target_seconds=us(10), interval_seconds=us(240))
        feed(aqm, now=us(10), sojourn=us(50))  # starts first_above clock
        packet, _ = feed(aqm, now=us(260), sojourn=us(50))
        assert packet.ce_marked

    def test_dip_resets(self):
        aqm = Codel(target_seconds=us(10), interval_seconds=us(240))
        feed(aqm, now=us(10), sojourn=us(50))
        feed(aqm, now=us(100), sojourn=us(1))
        packet, _ = feed(aqm, now=us(260), sojourn=us(50))
        assert not packet.ce_marked

    def test_control_law_escalates(self):
        aqm = Codel(target_seconds=us(10), interval_seconds=us(100))
        t, marks = 0.0, 0
        for _ in range(3_000):
            t += us(1)
            packet, _ = feed(aqm, now=t, sojourn=us(50))
            marks += packet.ce_marked
        # Escalating control law: well more than 1 mark per interval late on.
        assert marks > 3_000 / 100 * 1.5

    def test_not_ect_dropped_when_marking(self):
        aqm = Codel(target_seconds=us(10), interval_seconds=us(100))
        feed(aqm, now=us(10), sojourn=us(50))
        _, survived = feed(aqm, now=us(150), sojourn=us(50), ecn=Ecn.NOT_ECT)
        assert not survived
        assert aqm.stats.aqm_drops == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Codel(0, us(100))
        with pytest.raises(ValueError):
            Codel(us(10), 0)

    def test_reset(self):
        aqm = Codel(target_seconds=us(10), interval_seconds=us(100))
        feed(aqm, now=us(10), sojourn=us(50))
        feed(aqm, now=us(150), sojourn=us(50))
        aqm.reset()
        assert aqm.stats.marks == 0
        packet, _ = feed(aqm, now=us(200), sojourn=us(50))
        assert not packet.ce_marked  # state machine restarted


class TestTcn:
    def test_instantaneous_marking(self):
        aqm = Tcn(us(150))
        packet, _ = feed(aqm, now=0.0, sojourn=us(151))
        assert packet.ce_marked

    def test_no_mark_at_threshold(self):
        aqm = Tcn(us(150))
        packet, _ = feed(aqm, now=0.0, sojourn=us(150))
        assert not packet.ce_marked

    def test_stateless_across_packets(self):
        aqm = Tcn(us(150))
        feed(aqm, now=0.0, sojourn=us(200))
        packet, _ = feed(aqm, now=us(1), sojourn=us(100))
        assert not packet.ce_marked

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            Tcn(0)


class TestBurstToleranceContrast:
    """The paper's core qualitative claims, as unit-level contrasts."""

    def test_ecn_sharp_marks_burst_codel_does_not(self):
        codel = Codel(target_seconds=us(10), interval_seconds=us(240))
        sharp = EcnSharp(EcnSharpConfig(us(200), us(10), us(240)))
        burst_sojourn = us(400)
        codel_packet, _ = feed(codel, now=us(5), sojourn=burst_sojourn)
        sharp_packet, _ = feed(sharp, now=us(5), sojourn=burst_sojourn)
        assert sharp_packet.ce_marked  # instantaneous component reacts now
        assert not codel_packet.ce_marked  # CoDel waits a full interval

    def test_ecn_sharp_and_tcn_agree_on_instantaneous(self):
        tcn = Tcn(us(200))
        sharp = EcnSharp(EcnSharpConfig(us(200), us(10), us(240)))
        for sojourn in (us(100), us(250), us(190), us(500)):
            tcn_packet, _ = feed(tcn, now=us(5), sojourn=sojourn)
            sharp_packet, _ = feed(sharp, now=us(5), sojourn=sojourn)
            if sojourn > us(200):
                assert tcn_packet.ce_marked == sharp_packet.ce_marked is True

    def test_ecn_sharp_removes_standing_queue_tcn_tolerates(self):
        """A sojourn plateau at 120us (< both instantaneous thresholds):
        TCN never marks; ECN# eventually does."""
        tcn = Tcn(us(200))
        sharp = EcnSharp(EcnSharpConfig(us(200), us(10), us(240)))
        tcn_marks = sharp_marks = 0
        t = 0.0
        for _ in range(1_000):
            t += us(2)
            tcn_packet, _ = feed(tcn, now=t, sojourn=us(120))
            sharp_packet, _ = feed(sharp, now=t, sojourn=us(120))
            tcn_marks += tcn_packet.ce_marked
            sharp_marks += sharp_packet.ce_marked
        assert tcn_marks == 0
        assert sharp_marks >= 3
