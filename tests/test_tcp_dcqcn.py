"""Unit and integration tests for the DCQCN rate-based transport."""

import pytest

from repro.core import EcnSharpConfig, EcnSharpProbabilistic, ProbabilisticConfig
from repro.sim import PacketFactory
from repro.sim.units import gbps, mb, ms, us
from repro.tcp import DcqcnParams, DcqcnSender, open_dcqcn_flow
from repro.topology import build_star

from test_tcp_sender import FakeHost, ack


def make_sender(sim, size_segments=1000, rate=gbps(10), **kwargs):
    host = FakeHost(sim)
    sender = DcqcnSender(
        sim, host, flow_id=1, dst="b", size_bytes=size_segments * 1460,
        line_rate_bps=rate, **kwargs,
    )
    return sender, host


class TestParams:
    def test_defaults_valid(self):
        params = DcqcnParams()
        assert 0 < params.g <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            DcqcnParams(g=0)
        with pytest.raises(ValueError):
            DcqcnParams(cnp_interval=0)
        with pytest.raises(ValueError):
            DcqcnParams(rai=0)


class TestRpAlgorithm:
    def test_starts_at_line_rate(self, sim):
        sender, _ = make_sender(sim)
        assert sender.rc == gbps(10)

    def test_cnp_cuts_rate_and_raises_alpha(self, sim):
        sender, _ = make_sender(sim)
        sender.start()
        alpha_before = sender.alpha
        sender.receive(ack(1, ece=True))
        assert sender.rc == pytest.approx(gbps(10) * (1 - alpha_before / 2))
        assert sender.rt == pytest.approx(gbps(10))
        assert sender.alpha > (1 - sender.params.g) * alpha_before

    def test_cnp_reaction_rate_limited(self, sim):
        sender, _ = make_sender(sim)
        sender.start()
        sender.receive(ack(1, ece=True))
        rate_after_first = sender.rc
        sender.receive(ack(2, ece=True))  # same CNP interval: ignored
        assert sender.rc == rate_after_first
        assert sender.cnps_received == 1

    def test_rate_floor(self, sim):
        sender, _ = make_sender(sim, params=DcqcnParams(min_rate=1e8))
        sender.start()
        for index in range(1, 200):
            sim.run(until=sim.now + us(60))
            sender.receive(ack(index, ece=True))
        assert sender.rc >= 1e8

    def test_fast_recovery_returns_to_target(self, sim):
        sender, _ = make_sender(sim)
        sender.start()
        sender.receive(ack(1, ece=True))  # rc halves, rt = line rate
        cut_rate = sender.rc
        # Run a few increase-timer periods with no further CNPs.
        sim.run(until=sim.now + us(300))
        assert sender.rc > cut_rate
        assert sender.rc <= sender.line_rate

    def test_alpha_decays_without_cnps(self, sim):
        sender, _ = make_sender(sim)
        sender.start()
        sender.alpha = 1.0
        sim.run(until=sim.now + ms(1))
        assert sender.alpha < 0.5

    def test_pacing_spacing_follows_rate(self, sim):
        sender, host = make_sender(sim, rate=gbps(1))
        sender.start()
        sim.run(until=us(100))
        sends = [p.sent_time for p in host.sent]
        assert len(sends) >= 3
        gap = sends[1] - sends[0]
        assert gap == pytest.approx(1460 * 8 / gbps(1), rel=0.01)

    def test_rate_increase_capped_at_line_rate(self, sim):
        sender, _ = make_sender(sim)
        sender.start()
        sim.run(until=sim.now + ms(2))
        assert sender.rc <= sender.line_rate


class TestReliabilityAndCompletion:
    def test_completes_over_real_network(self):
        topo = build_star(n_senders=2)
        flow = open_dcqcn_flow(
            topo.network, PacketFactory(), topo.senders[0], topo.receiver,
            1_000_000, line_rate_bps=gbps(10),
        )
        topo.network.sim.run_until_idle(max_events=20_000_000)
        assert flow.completed
        # Unmarked path: rate never cut, FCT near line rate.
        assert flow.fct < 1.5 * (1_000_000 * 8 / gbps(10)) + ms(1)

    def test_go_back_n_recovers_loss(self):
        # A tiny buffer forces drops; the timeout path must still finish.
        topo = build_star(n_senders=2, buffer_bytes=15_000)
        factory = PacketFactory()
        flows = [
            open_dcqcn_flow(
                topo.network, factory, topo.senders[i], topo.receiver,
                500_000, line_rate_bps=gbps(10),
            )
            for i in range(2)
        ]
        topo.network.sim.run_until_idle(max_events=50_000_000)
        assert all(flow.completed for flow in flows)

    def test_invalid_construction(self, sim):
        with pytest.raises(ValueError):
            make_sender(sim, size_segments=0)
        host = FakeHost(sim)
        with pytest.raises(ValueError):
            DcqcnSender(sim, host, 1, "b", 1000, line_rate_bps=0)

    def test_cannot_start_twice(self, sim):
        sender, _ = make_sender(sim)
        sender.start()
        with pytest.raises(RuntimeError):
            sender.start()


class TestFairnessWithProbabilisticEcnSharp:
    """The Section 3.5 story end to end: DCQCN + probabilistic ECN#."""

    @staticmethod
    def run_pair(aqm_factory, until=0.04):
        topo = build_star(n_senders=4, aqm_factory=aqm_factory, buffer_bytes=mb(4))
        factory = PacketFactory()
        flows = [
            open_dcqcn_flow(
                topo.network, factory, topo.senders[i], topo.receiver,
                50_000_000, line_rate_bps=gbps(10),
            )
            for i in range(2)
        ]
        topo.network.run(until=until)
        return [flow.sink.expected for flow in flows], topo

    def test_two_flows_converge_to_fair_share(self):
        def aqm():
            return EcnSharpProbabilistic(
                EcnSharpConfig(us(220), us(10), us(240)),
                ProbabilisticConfig(ins_min=us(40), ins_max=us(200), pmax=0.1),
                seed=2,
            )

        delivered, topo = self.run_pair(aqm)
        assert min(delivered) / max(delivered) > 0.85  # near-equal shares
        assert topo.bottleneck.stats.dropped_total == 0
        total_goodput = sum(delivered) * 1460 * 8 / 0.04
        assert total_goodput > 0.8 * gbps(10)  # and the link stays busy
