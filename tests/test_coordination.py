"""Tests for the multi-writer coordination layer: the advisory store
lock, the lease board, graceful shutdown, store merging, and canonical
store fingerprints."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.scenarios import CampaignStore, CellRecord
from repro.scenarios.coordination import (
    GracefulShutdown,
    LeaseBoard,
    LockTimeout,
    MergeConflictError,
    StoreLock,
    default_worker_id,
    merge_stores,
    store_fingerprint,
)


def record(cell="k1", status="ok", metric=1.0, sha="abc", shash="h"):
    """A CellRecord whose key is (shash, (cell,))."""
    return CellRecord(
        scenario="s", scenario_hash=shash, cell_key=cell, component="c",
        tokens=(cell,), status=status, metrics={"m": metric}, failures=(),
        git_sha=sha, version="0.1",
    )


def dead_pid():
    """A pid guaranteed dead: a reaped child of this process."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


class TestStoreLock:
    def test_acquire_writes_pid_and_release_unlinks(self, tmp_path):
        lock = StoreLock(tmp_path / "s.lock")
        lock.acquire()
        body = (tmp_path / "s.lock").read_text().split()
        assert int(body[0]) == os.getpid()
        lock.release()
        assert not (tmp_path / "s.lock").exists()

    def test_context_manager(self, tmp_path):
        with StoreLock(tmp_path / "s.lock"):
            assert (tmp_path / "s.lock").exists()
        assert not (tmp_path / "s.lock").exists()

    def test_contention_times_out(self, tmp_path):
        path = tmp_path / "s.lock"
        with StoreLock(path):
            second = StoreLock(path, timeout=0.2, stale_after=60.0)
            with pytest.raises(LockTimeout, match=str(os.getpid())):
                second.acquire()

    def test_dead_pid_lock_is_broken_immediately(self, tmp_path):
        path = tmp_path / "s.lock"
        import socket

        path.write_text(f"{dead_pid()} {socket.gethostname()}\n")
        lock = StoreLock(path, timeout=5.0, stale_after=3600.0)
        with lock:
            assert lock.broken_stale == 1
            assert int(path.read_text().split()[0]) == os.getpid()

    def test_old_cross_host_lock_is_broken_by_mtime(self, tmp_path):
        path = tmp_path / "s.lock"
        path.write_text(f"{os.getpid()} not-this-host\n")
        os.utime(path, (time.time() - 120, time.time() - 120))
        lock = StoreLock(path, timeout=5.0, stale_after=30.0)
        with lock:
            assert lock.broken_stale == 1

    def test_heartbeat_refreshes_mtime(self, tmp_path):
        path = tmp_path / "s.lock"
        with StoreLock(path) as lock:
            os.utime(path, (time.time() - 120, time.time() - 120))
            lock.heartbeat()
            assert time.time() - path.stat().st_mtime < 60


class TestLeaseBoard:
    def key(self, name):
        return ("h", (name,))

    def test_claim_release_roundtrip(self, tmp_path):
        board = LeaseBoard(tmp_path / "s.leases.jsonl", ttl=60.0)
        board.claim([self.key("a")], "w1")
        assert board.load()[self.key("a")].state == "claimed"
        board.release([self.key("a")], "w1")
        assert board.load()[self.key("a")].state == "released"

    def test_partition_skips_other_workers_live_leases(self, tmp_path):
        board = LeaseBoard(tmp_path / "l.jsonl", ttl=60.0)
        pending = [self.key("a"), self.key("b")]
        board.claim([self.key("a")], "other")
        claimable, reclaimed = board.partition(pending, "me")
        assert claimable == [self.key("b")]
        assert reclaimed == []

    def test_partition_reclaims_own_live_lease(self, tmp_path):
        board = LeaseBoard(tmp_path / "l.jsonl", ttl=60.0)
        board.claim([self.key("a")], "me")
        claimable, reclaimed = board.partition([self.key("a")], "me")
        assert claimable == [self.key("a")]
        assert reclaimed == []  # resuming one's own work is not a reclaim

    def test_partition_reclaims_stale_lease(self, tmp_path):
        board = LeaseBoard(tmp_path / "l.jsonl", ttl=60.0)
        board.claim([self.key("a")], "dead-worker", now=time.time() - 120)
        claimable, reclaimed = board.partition([self.key("a")], "me")
        assert claimable == [self.key("a")]
        assert reclaimed == [(self.key("a"), "dead-worker")]

    def test_partition_honours_limit_in_order(self, tmp_path):
        board = LeaseBoard(tmp_path / "l.jsonl", ttl=60.0)
        pending = [self.key(n) for n in ("a", "b", "c")]
        claimable, _ = board.partition(pending, "me", limit=2)
        assert claimable == pending[:2]

    def test_released_lease_is_claimable_again(self, tmp_path):
        board = LeaseBoard(tmp_path / "l.jsonl", ttl=60.0)
        board.claim([self.key("a")], "other")
        board.release([self.key("a")], "other")
        claimable, reclaimed = board.partition([self.key("a")], "me")
        assert claimable == [self.key("a")]
        assert reclaimed == []

    def test_torn_lease_line_is_skipped(self, tmp_path):
        path = tmp_path / "l.jsonl"
        board = LeaseBoard(path, ttl=60.0)
        board.claim([self.key("a")], "w1")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": ["h", ["b"]], "worker": "w')  # torn
        assert set(board.load()) == {self.key("a")}
        # the next append heals the torn trailing line first
        board.claim([self.key("c")], "w1")
        assert set(board.load()) == {self.key("a"), self.key("c")}

    def test_rejects_nonpositive_ttl(self, tmp_path):
        with pytest.raises(ValueError, match="ttl"):
            LeaseBoard(tmp_path / "l.jsonl", ttl=0)

    def test_default_worker_id_carries_pid(self):
        assert default_worker_id().endswith(f":{os.getpid()}")


class TestGracefulShutdown:
    def test_latches_sigint_and_restores_handler(self):
        before = signal.getsignal(signal.SIGINT)
        with GracefulShutdown() as shutdown:
            assert not shutdown.requested
            os.kill(os.getpid(), signal.SIGINT)
            assert shutdown.requested
            assert shutdown.signum == signal.SIGINT
            assert shutdown.exit_code == 130
        assert signal.getsignal(signal.SIGINT) is before

    def test_sigterm_exit_code(self):
        with GracefulShutdown() as shutdown:
            os.kill(os.getpid(), signal.SIGTERM)
            assert shutdown.exit_code == 128 + signal.SIGTERM


class TestMerge:
    def store(self, tmp_path, name, records):
        store = CampaignStore(tmp_path / name)
        store.append(records)
        return store

    def test_disjoint_union(self, tmp_path):
        a = self.store(tmp_path, "a.jsonl", [record("k1")])
        b = self.store(tmp_path, "b.jsonl", [record("k2")])
        merged = merge_stores([a, b], output=tmp_path / "m.jsonl")
        assert len(merged.records) == 2
        assert merged.ok_cells == 2
        assert merged.duplicates_collapsed == 0
        assert merged.summary_line() == (
            "cells=2 ok=2 failed=0 inputs=2 collapsed=0"
        )

    def test_ok_beats_failed(self, tmp_path):
        a = self.store(tmp_path, "a.jsonl", [record("k1", status="failed")])
        b = self.store(tmp_path, "b.jsonl", [record("k1", status="ok")])
        merged = merge_stores([a, b])
        assert merged.records[0].status == "ok"
        assert merged.duplicates_collapsed == 1

    def test_provenance_only_differences_are_not_conflicts(self, tmp_path):
        a = self.store(tmp_path, "a.jsonl", [record("k1", sha="aaa")])
        b = self.store(tmp_path, "b.jsonl", [record("k1", sha="bbb")])
        merged = merge_stores([a, b])
        assert len(merged.records) == 1
        assert merged.records[0].git_sha == "aaa"  # first ok wins

    def test_ok_ok_content_conflict_raises(self, tmp_path):
        a = self.store(tmp_path, "a.jsonl", [record("k1", metric=1.0)])
        b = self.store(tmp_path, "b.jsonl", [record("k1", metric=2.0)])
        with pytest.raises(MergeConflictError, match="disagree on content"):
            merge_stores([a, b], output=tmp_path / "m.jsonl")
        assert not (tmp_path / "m.jsonl").exists()  # nothing written

    def test_no_ok_last_input_wins(self, tmp_path):
        a = self.store(
            tmp_path, "a.jsonl", [record("k1", status="failed", metric=1.0)]
        )
        b = self.store(
            tmp_path, "b.jsonl", [record("k1", status="failed", metric=2.0)]
        )
        merged = merge_stores([a, b])
        assert merged.records[0].metrics["m"] == 2.0
        assert merged.failed_cells == 1

    def test_merge_is_idempotent(self, tmp_path):
        self.store(tmp_path, "a.jsonl", [record("k1"), record("k2")])
        self.store(
            tmp_path, "b.jsonl", [record("k2"), record("k3", status="failed")]
        )
        once = tmp_path / "once.jsonl"
        merge_stores([tmp_path / "a.jsonl", tmp_path / "b.jsonl"], output=once)
        twice = tmp_path / "twice.jsonl"
        merge_stores([once, tmp_path / "b.jsonl"], output=twice)
        assert once.read_bytes() == twice.read_bytes()

    def test_output_may_be_an_input(self, tmp_path):
        a = self.store(tmp_path, "a.jsonl", [record("k1")])
        self.store(tmp_path, "b.jsonl", [record("k2")])
        merge_stores(
            [tmp_path / "a.jsonl", tmp_path / "b.jsonl"], output=a.path
        )
        assert len(CampaignStore(a.path).load()) == 2

    def test_merged_output_is_canonically_sorted(self, tmp_path):
        self.store(tmp_path, "a.jsonl", [record("k2"), record("k1")])
        out = tmp_path / "m.jsonl"
        merge_stores([tmp_path / "a.jsonl"], output=out)
        keys = [json.loads(line)["cell_key"]
                for line in out.read_text().splitlines()]
        assert keys == ["k1", "k2"]

    def test_sidecars_merge_with_latest_wins_dedupe(self, tmp_path):
        a = self.store(tmp_path, "a.jsonl", [record("k1")])
        b = self.store(tmp_path, "b.jsonl", [record("k2")])
        a.append_resources([
            {"scenario": "s", "cell_key": "k1", "wall_seconds": 1.0},
        ])
        b.append_resources([
            {"scenario": "s", "cell_key": "k1", "wall_seconds": 9.0},
            {"scenario": "s", "cell_key": "k2", "wall_seconds": 2.0},
        ])
        out = tmp_path / "m.jsonl"
        merged = merge_stores([a, b], output=out)
        assert merged.resource_rows == 2
        assert merged.resource_rows_collapsed == 1
        assert merged.summary_line().endswith(
            "resources=2 resources_collapsed=1"
        )
        rows = CampaignStore(out).load_resources()
        by_key = {row["cell_key"]: row for row in rows}
        assert by_key["k1"]["wall_seconds"] == 9.0  # latest input wins
        assert by_key["k2"]["wall_seconds"] == 2.0

    def test_sidecar_merge_is_idempotent(self, tmp_path):
        a = self.store(tmp_path, "a.jsonl", [record("k1")])
        b = self.store(tmp_path, "b.jsonl", [record("k2")])
        a.append_resources([{"scenario": "s", "cell_key": "k1", "w": 1}])
        b.append_resources([{"scenario": "s", "cell_key": "k2", "w": 2}])
        once = tmp_path / "once.jsonl"
        merge_stores([a, b], output=once)
        twice = tmp_path / "twice.jsonl"
        merge_stores([CampaignStore(once), b], output=twice)
        assert (
            CampaignStore(once).resources_path.read_bytes()
            == CampaignStore(twice).resources_path.read_bytes()
        )

    def test_missing_sidecars_do_not_block_merge(self, tmp_path):
        a = self.store(tmp_path, "a.jsonl", [record("k1")])
        out = tmp_path / "m.jsonl"
        merged = merge_stores([a], output=out)
        assert merged.resource_rows == 0
        # no rows -> no sidecar file, and the summary keeps its legacy shape
        assert not CampaignStore(out).resources_path.exists()
        assert "resources=" not in merged.summary_line()

    def test_cli_merge_conflict_exits_nonzero(self, tmp_path):
        from repro.cli import main

        self.store(tmp_path, "a.jsonl", [record("k1", metric=1.0)])
        self.store(tmp_path, "b.jsonl", [record("k1", metric=2.0)])
        status = main([
            "scenario", "merge", str(tmp_path / "a.jsonl"),
            str(tmp_path / "b.jsonl"), "--out", str(tmp_path / "m.jsonl"),
        ])
        assert status == 1

    def test_cli_merge_missing_store_exits_two(self, tmp_path):
        from repro.cli import main

        status = main([
            "scenario", "merge", str(tmp_path / "absent.jsonl"),
            "--out", str(tmp_path / "m.jsonl"),
        ])
        assert status == 2


class TestStoreFingerprint:
    def test_append_order_does_not_matter(self, tmp_path):
        forward = CampaignStore(tmp_path / "f.jsonl")
        forward.append([record("k1"), record("k2")])
        backward = CampaignStore(tmp_path / "b.jsonl")
        backward.append([record("k2")])
        backward.append([record("k1")])
        assert store_fingerprint(forward) == store_fingerprint(backward)

    def test_latest_record_wins_in_fingerprint(self, tmp_path):
        once = CampaignStore(tmp_path / "o.jsonl")
        once.append([record("k1", status="ok")])
        healed = CampaignStore(tmp_path / "h.jsonl")
        healed.append([record("k1", status="failed")])
        healed.append([record("k1", status="ok")])
        assert store_fingerprint(once) == store_fingerprint(healed)

    def test_content_difference_changes_fingerprint(self, tmp_path):
        a = CampaignStore(tmp_path / "a.jsonl")
        a.append([record("k1", metric=1.0)])
        b = CampaignStore(tmp_path / "b.jsonl")
        b.append([record("k1", metric=2.0)])
        assert store_fingerprint(a) != store_fingerprint(b)

    def test_empty_store_is_empty_bytes(self, tmp_path):
        assert store_fingerprint(tmp_path / "absent.jsonl") == b""
