"""Tests for the paper-trend invariant registry, on synthetic results."""

from repro.experiments.fct import FctSummary
from repro.experiments.figures.fig6_fig7 import FctVsLoadResult
from repro.experiments.figures.fig8 import Fig8Result
from repro.experiments.figures.fig10 import Fig10Result, MicroscopicRun
from repro.experiments.figures.fig11 import Fig11Result
from repro.experiments.figures.fig12 import Fig12Result
from repro.sim.units import ms
from repro.validation.invariants import REGISTRY, evaluate_figure
from repro.validation.stats import FAIL, PASS, SKIP


def summary(short_avg=1.0, large_avg=10.0, overall_avg=2.0):
    return FctSummary(
        n_flows=100,
        overall_avg=overall_avg,
        overall_p99=overall_avg * 4,
        short_avg=short_avg,
        short_p99=short_avg * 3,
        large_avg=large_avg,
        n_short=80,
        n_large=5,
    )


def micro_run(scheme, standing, floor=None, drops=0, timeouts=0):
    return MicroscopicRun(
        scheme=scheme,
        samples=([], []),
        standing_queue_pkts=standing,
        floor_queue_pkts=floor if floor is not None else standing,
        peak_queue_pkts=int(standing * 2),
        drops=drops,
        marks=100,
        query_timeouts=timeouts,
    )


def by_name(verdicts):
    return {v.name: v for v in verdicts}


class TestFig6:
    def make(self, ecn_short=0.8, ecn_large=10.5):
        return FctVsLoadResult(
            workload_name="web-search",
            loads=(0.5, 0.8),
            schemes=("DCTCP-RED-Tail", "ECN#"),
            summaries={
                0.5: {
                    "DCTCP-RED-Tail": summary(),
                    "ECN#": summary(short_avg=ecn_short, large_avg=ecn_large),
                },
                0.8: {
                    "DCTCP-RED-Tail": summary(),
                    "ECN#": summary(short_avg=ecn_short, large_avg=ecn_large),
                },
            },
        )

    def test_healthy_result_passes(self):
        verdicts = by_name(evaluate_figure("fig6", self.make()))
        assert verdicts["fig6.short_avg_improvement"].status == PASS
        assert verdicts["fig6.large_flow_parity"].status == PASS

    def test_no_gain_fails_named_invariant(self):
        verdicts = by_name(evaluate_figure("fig6", self.make(ecn_short=1.05)))
        bad = verdicts["fig6.short_avg_improvement"]
        assert bad.status == FAIL
        assert bad.value is not None and bad.value < 0.02
        assert "short-flow" in bad.detail

    def test_large_flow_regression_fails(self):
        verdicts = by_name(evaluate_figure("fig6", self.make(ecn_large=15.0)))
        assert verdicts["fig6.large_flow_parity"].status == FAIL

    def test_none_result_skips_everything(self):
        verdicts = evaluate_figure("fig6", None)
        assert len(verdicts) == len(REGISTRY["fig6"])
        assert all(v.status == SKIP for v in verdicts)


class TestFig8:
    def make(self, gain_low=0.05, gain_high=0.15, overall=1.0):
        def cell(gain):
            return {
                "DCTCP-RED-Tail": summary(),
                "ECN#": summary(
                    short_avg=(1 - gain), overall_avg=2.0 * overall
                ),
            }

        return Fig8Result(
            variations=(3.0, 5.0),
            loads=(0.8,),
            summaries={3.0: {0.8: cell(gain_low)}, 5.0: {0.8: cell(gain_high)}},
        )

    def test_growing_gain_passes(self):
        verdicts = by_name(evaluate_figure("fig8", self.make()))
        assert verdicts["fig8.gain_grows_with_variation"].status == PASS
        assert verdicts["fig8.overall_parity"].status == PASS

    def test_collapsing_gain_fails(self):
        result = self.make(gain_low=0.20, gain_high=0.01)
        verdicts = by_name(evaluate_figure("fig8", result))
        assert verdicts["fig8.gain_grows_with_variation"].status == FAIL

    def test_overall_regression_fails(self):
        verdicts = by_name(evaluate_figure("fig8", self.make(overall=1.5)))
        assert verdicts["fig8.overall_parity"].status == FAIL


class TestFig10:
    def make(self, sharp_standing=20.0, sharp_floor=15.0, red_standing=170.0):
        return Fig10Result(
            runs={
                "DCTCP-RED-Tail": micro_run("DCTCP-RED-Tail", red_standing),
                "ECN#": micro_run("ECN#", sharp_standing, floor=sharp_floor),
            },
            fanout=100,
            burst_time=ms(20),
        )

    def test_collapse_passes(self):
        verdicts = by_name(evaluate_figure("fig10", self.make()))
        assert verdicts["fig10.persistent_queue_collapse"].status == PASS
        assert verdicts["fig10.ecn_sharp_floor"].status == PASS
        assert verdicts["fig10.red_tail_standing_queue"].status == PASS

    def test_no_collapse_fails_with_ratio(self):
        verdicts = by_name(
            evaluate_figure("fig10", self.make(sharp_standing=160.0))
        )
        bad = verdicts["fig10.persistent_queue_collapse"]
        assert bad.status == FAIL
        assert bad.value > 0.4
        assert "ratio" in bad.detail

    def test_high_floor_fails(self):
        verdicts = by_name(
            evaluate_figure("fig10", self.make(sharp_floor=90.0))
        )
        assert verdicts["fig10.ecn_sharp_floor"].status == FAIL

    def test_missing_scheme_skips(self):
        result = Fig10Result(
            runs={"ECN#": micro_run("ECN#", 20.0)},
            fanout=100,
            burst_time=ms(20),
        )
        verdicts = by_name(evaluate_figure("fig10", result))
        assert verdicts["fig10.persistent_queue_collapse"].status == SKIP
        assert verdicts["fig10.red_tail_standing_queue"].status == SKIP
        assert verdicts["fig10.ecn_sharp_floor"].status == PASS


class TestFig11:
    def make(self, codel_onset=150, sharp_onset=None):
        fanouts = (100, 150, 175)
        schemes = ("DCTCP-RED-Tail", "CoDel", "ECN#")

        def run_for(scheme, fanout):
            onset = codel_onset if scheme == "CoDel" else sharp_onset
            collapsed = onset is not None and fanout >= onset
            return micro_run(
                scheme, 50.0, timeouts=5 if collapsed else 0
            )

        return Fig11Result(
            fanouts=fanouts,
            schemes=schemes,
            runs={
                fanout: {s: run_for(s, fanout) for s in schemes}
                for fanout in fanouts
            },
        )

    def test_codel_collapses_ecn_sharp_survives(self):
        verdicts = by_name(evaluate_figure("fig11", self.make()))
        assert verdicts["fig11.codel_collapse_in_sweep"].status == PASS
        assert verdicts["fig11.ecn_sharp_outlasts_codel"].status == PASS

    def test_codel_never_collapsing_fails(self):
        verdicts = by_name(
            evaluate_figure("fig11", self.make(codel_onset=None))
        )
        assert verdicts["fig11.codel_collapse_in_sweep"].status == FAIL
        # With no CoDel onset the ordering claim is unanswerable.
        assert verdicts["fig11.ecn_sharp_outlasts_codel"].status == SKIP

    def test_ecn_sharp_collapsing_first_fails(self):
        verdicts = by_name(
            evaluate_figure(
                "fig11", self.make(codel_onset=175, sharp_onset=100)
            )
        )
        assert verdicts["fig11.ecn_sharp_outlasts_codel"].status == FAIL


class TestFig12:
    def make(self, spread=0.05):
        base = 1.0
        values = {100.0: base, 250.0: base * (1 + spread)}
        targets = {6.0: base, 18.0: base * (1 + spread)}
        return Fig12Result(
            intervals_us=(100.0, 250.0),
            targets_us=(6.0, 18.0),
            interval_fct={"web-search": dict(values)},
            target_fct={"web-search": dict(targets)},
        )

    def test_small_spread_passes(self):
        verdicts = by_name(evaluate_figure("fig12", self.make()))
        assert verdicts["fig12.sensitivity_spread"].status == PASS

    def test_large_spread_fails(self):
        verdicts = by_name(evaluate_figure("fig12", self.make(spread=0.5)))
        bad = verdicts["fig12.sensitivity_spread"]
        assert bad.status == FAIL
        assert bad.value > 0.20


class TestRegistryShape:
    def test_every_validated_figure_has_invariants(self):
        for figure in ("fig6", "fig7", "fig8", "fig10", "fig11", "fig12"):
            assert REGISTRY[figure], figure

    def test_names_carry_figure_prefix(self):
        for figure, invariants in REGISTRY.items():
            for invariant in invariants:
                assert invariant.name.startswith(f"{figure}.")
                assert invariant.figure == figure

    def test_unknown_figure_evaluates_empty(self):
        assert evaluate_figure("fig99", object()) == []
