"""Tests for deterministic chaos injection: directive parsing, the
injection points, and subprocess convergence of shared campaigns under
kills, torn writes and cache corruption."""

import os
from pathlib import Path

import pytest

import repro
import repro.testing.chaos as chaos
from repro.experiments.executor import Executor
from repro.scenarios import CampaignStore, run_campaign, store_fingerprint
from repro.scenarios.coordination import merge_stores
from repro.telemetry import Telemetry, activate
from repro.testing import parse_chaos_directives, run_chaos_campaign

from test_executor import tiny_spec
from test_scenarios_campaign import executor, tiny_scenario


@pytest.fixture(autouse=True)
def _fresh_chaos_counts():
    chaos.reset_chaos_counts()
    yield
    chaos.reset_chaos_counts()


class TestDirectiveGrammar:
    def test_modes_and_counts(self):
        assert parse_chaos_directives("kill_after") == (("kill_after", 1),)
        assert parse_chaos_directives("torn_write:3") == (("torn_write", 3),)
        assert parse_chaos_directives(
            "kill_before:2; corrupt_cache"
        ) == (("kill_before", 2), ("corrupt_cache", 1))

    def test_empty_is_no_directives(self):
        assert parse_chaos_directives("") == ()
        assert parse_chaos_directives(" ; ") == ()

    def test_unknown_mode_warns_and_skips(self):
        with pytest.warns(UserWarning, match="unknown mode"):
            directives = parse_chaos_directives("explode:1;kill_after:2")
        assert directives == (("kill_after", 2),)

    def test_bad_count_warns_and_skips(self):
        with pytest.warns(UserWarning, match="not an integer"):
            assert parse_chaos_directives("kill_after:soon") == ()
        with pytest.warns(UserWarning, match=">= 1"):
            assert parse_chaos_directives("kill_after:0") == ()

    def test_reads_environment_by_default(self, monkeypatch):
        monkeypatch.setenv(chaos.CHAOS_ENV, "kill_after:4")
        assert parse_chaos_directives() == (("kill_after", 4),)


class TestInjectionPoints:
    def test_tear_truncates_first_record_without_newline(self):
        payload = '{"record": "one"}\n{"record": "two"}\n'
        torn = chaos._tear(payload)
        assert torn == '{"record'
        assert not torn.endswith("\n")

    def test_disabled_is_a_passthrough(self, monkeypatch):
        monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)
        assert chaos.chaos_store_append("x\n") == ("x\n", False)

    def test_kill_after_fires_on_the_counted_append(self, monkeypatch):
        monkeypatch.setenv(chaos.CHAOS_ENV, "kill_after:2")
        assert chaos.chaos_store_append("a\n") == ("a\n", False)
        assert chaos.chaos_store_append("b\n") == ("b\n", True)
        assert chaos.chaos_store_append("c\n") == ("c\n", False)

    def test_torn_write_returns_torn_payload_and_dies(self, monkeypatch):
        monkeypatch.setenv(chaos.CHAOS_ENV, "torn_write:1")
        payload = '{"record": "one"}\n'
        torn, die = chaos.chaos_store_append(payload)
        assert die
        assert torn == chaos._tear(payload)

    def test_kill_before_exits_without_writing(self, monkeypatch):
        class Exited(BaseException):
            pass

        def fake_exit(code):
            raise Exited(code)

        monkeypatch.setenv(chaos.CHAOS_ENV, "kill_before:1")
        monkeypatch.setattr(os, "_exit", fake_exit)
        with pytest.raises(Exited):
            chaos.chaos_store_append("a\n")

    def test_corrupt_cache_truncates_entry(self, monkeypatch, tmp_path):
        monkeypatch.setenv(chaos.CHAOS_ENV, "corrupt_cache:1")
        victim = tmp_path / "entry.pkl"
        victim.write_bytes(b"x" * 100)
        telemetry = Telemetry(trace=True, trace_categories=["resilience"])
        with activate(telemetry):
            chaos.chaos_cache_store(victim)
        assert victim.stat().st_size == 50
        registry = telemetry.registry
        assert (
            registry.counter(
                "chaos_injections_total", mode="corrupt_cache"
            ).value
            == 1
        )
        kinds = [e.kind for e in telemetry.recorder.events("resilience")]
        assert kinds == ["chaos_injection"]


class TestInProcessChaosCampaign:
    def test_torn_write_heals_on_resume(self, monkeypatch, tmp_path):
        """A torn shard append (chaos in-process, with os._exit stubbed to
        an exception) leaves a store whose resume converges byte-for-byte
        in content to a clean run's fingerprint."""

        class Exited(BaseException):
            pass

        monkeypatch.setattr(os, "_exit", lambda code: (_ for _ in ()).throw(
            Exited(code)
        ))
        scenario = tiny_scenario()
        store = tmp_path / "chaotic.jsonl"
        monkeypatch.setenv(chaos.CHAOS_ENV, "torn_write:1")
        with pytest.raises(Exited):
            run_campaign([scenario], store, executor())
        raw = store.read_bytes()
        assert raw and not raw.endswith(b"\n")  # genuinely torn

        monkeypatch.delenv(chaos.CHAOS_ENV)
        chaos.reset_chaos_counts()
        with pytest.warns(UserWarning, match="unreadable record"):
            resumed = run_campaign([scenario], store, executor())
        assert resumed.executed_cells == 2  # the torn shard re-ran

        clean = tmp_path / "clean.jsonl"
        run_campaign([scenario], clean, executor())
        with pytest.warns(UserWarning, match="unreadable record"):
            chaotic_fingerprint = store_fingerprint(store)
        assert chaotic_fingerprint == store_fingerprint(clean)

    def test_corrupt_cache_entry_quarantined_on_reread(
        self, monkeypatch, tmp_path
    ):
        spec = tiny_spec()
        monkeypatch.setenv(chaos.CHAOS_ENV, "corrupt_cache:1")
        first = Executor(jobs=1, cache=True, cache_dir=tmp_path, retries=0)
        baseline = first.run([spec])[0]

        monkeypatch.delenv(chaos.CHAOS_ENV)
        second = Executor(jobs=1, cache=True, cache_dir=tmp_path, retries=0)
        telemetry = Telemetry()
        with activate(telemetry):
            with pytest.warns(UserWarning, match="quarantined"):
                again = second.run([spec])[0]
        assert second.stats.cache_hits == 0  # never silently re-read
        assert second.stats.executed == 1
        assert second.cache.corrupt_quarantined == 1
        assert telemetry.registry.counter("cache_corrupt_total").value == 1
        assert list(tmp_path.glob("*.corrupt"))
        assert again.summary.overall_avg == baseline.summary.overall_avg


def write_scenario(tmp_path) -> Path:
    """The tiny two-cell scenario as a JSON file for subprocess workers."""
    import json

    path = tmp_path / "scenario.json"
    path.write_text(json.dumps(tiny_scenario().to_dict()))
    return path


def clean_fingerprint(tmp_path) -> bytes:
    store = tmp_path / "clean.jsonl"
    run_campaign([tiny_scenario()], store, executor())
    return store_fingerprint(store)


@pytest.fixture()
def subprocess_env(monkeypatch, tmp_path):
    """Subprocess workers must import repro and share this test's cache."""
    src = str(Path(repro.__file__).resolve().parent.parent)
    existing = os.environ.get("PYTHONPATH", "")
    monkeypatch.setenv(
        "PYTHONPATH", src + (os.pathsep + existing if existing else "")
    )


class TestConvergence:
    """End-to-end: shared campaigns driven to convergence under chaos must
    settle a store whose cell records exactly match a clean single-writer
    run -- no duplicated and no lost cells."""

    def test_two_writers_survive_kill_and_cache_corruption(
        self, subprocess_env, tmp_path
    ):
        scenario_path = write_scenario(tmp_path)
        store = tmp_path / "shared.jsonl"
        report = run_chaos_campaign(
            scenario_path, store,
            chaos="kill_after:1;corrupt_cache:1",
            writers=2, chaos_rounds=1, lease_ttl=0.75,
        )
        assert report.converged, [r.summaries for r in report.rounds]
        assert report.kill_count >= 1
        assert store_fingerprint(store) == clean_fingerprint(tmp_path)
        # Merging the survivor store with a clean store must be a clean,
        # conflict-free collapse (determinism held under chaos).
        clean = tmp_path / "clean.jsonl"
        merged = merge_stores([store, clean], output=tmp_path / "m.jsonl")
        assert len(merged.records) == 2
        assert merged.ok_cells == 2

    def test_torn_write_converges_and_is_counted(
        self, subprocess_env, tmp_path
    ):
        scenario_path = write_scenario(tmp_path)
        store = tmp_path / "shared.jsonl"
        report = run_chaos_campaign(
            scenario_path, store, chaos="torn_write:1",
            writers=1, chaos_rounds=1, lease_ttl=0.75,
        )
        assert report.converged, [r.summaries for r in report.rounds]
        assert report.rounds[0].exit_codes == [chaos.CHAOS_EXIT_CODE]
        campaign_store = CampaignStore(store)
        with pytest.warns(UserWarning, match="unreadable record"):
            fingerprint = store_fingerprint(campaign_store)
        assert fingerprint == clean_fingerprint(tmp_path)
        assert campaign_store.load_stats.torn_lines == 1

    def test_kill_before_reclaims_dead_workers_cells_exactly_once(
        self, subprocess_env, tmp_path
    ):
        scenario_path = write_scenario(tmp_path)
        store = tmp_path / "shared.jsonl"
        report = run_chaos_campaign(
            scenario_path, store, chaos="kill_before:1",
            writers=1, chaos_rounds=1, lease_ttl=0.75,
        )
        assert report.converged, [r.summaries for r in report.rounds]
        assert report.rounds[0].exit_codes == [chaos.CHAOS_EXIT_CODE]
        summaries = [
            s for r in report.rounds for s in r.summaries if s is not None
        ]
        # The killed worker appended nothing, so the reclaiming pass
        # re-recorded each of its cells exactly once, via stale leases.
        assert sum(s["executed"] for s in summaries) == 2
        assert sum(s["reclaimed"] for s in summaries) == 2
        assert len(store.read_text().splitlines()) == 2  # no duplicates
        assert store_fingerprint(store) == clean_fingerprint(tmp_path)
