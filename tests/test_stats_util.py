"""Tests for the shared percentile helper in ``repro.core.stats_util``."""

import numpy as np
import pytest

from repro.core.stats_util import mean_or_none, percentile, percentile_or_none


class TestPercentile:
    def test_single_element(self):
        assert percentile([7.5], 0) == 7.5
        assert percentile([7.5], 50) == 7.5
        assert percentile([7.5], 99) == 7.5

    def test_two_elements_interpolates(self):
        assert percentile([0.0, 10.0], 50) == 5.0
        assert percentile([0.0, 10.0], 25) == 2.5
        assert percentile([0.0, 10.0], 99) == pytest.approx(9.9)

    def test_endpoints(self):
        values = [3.0, 1.0, 2.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 3.0

    def test_unsorted_input(self):
        assert percentile([9.0, 1.0, 5.0], 50) == 5.0

    @pytest.mark.parametrize("p", [0, 10, 25, 50, 75, 90, 95, 99, 100])
    def test_matches_numpy_linear(self, p):
        rng = np.random.default_rng(12)
        values = rng.exponential(1.0, size=37).tolist()
        assert percentile(values, p) == pytest.approx(
            float(np.percentile(values, p))
        )

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    @pytest.mark.parametrize("p", [-1, 101])
    def test_out_of_range_raises(self, p):
        with pytest.raises(ValueError):
            percentile([1.0], p)


class TestOptionalHelpers:
    def test_percentile_or_none(self):
        assert percentile_or_none([], 50) is None
        assert percentile_or_none([4.0], 50) == 4.0

    def test_mean_or_none(self):
        assert mean_or_none([]) is None
        assert mean_or_none([1.0, 3.0]) == 2.0


class TestConsumersShareInterpolation:
    """fct.py and monitor.py must agree on percentile semantics."""

    def test_fct_p99_uses_shared_helper(self):
        from repro.experiments.fct import FctSummary, FlowRecord

        records = [
            FlowRecord(
                flow_id=i,
                size_bytes=1_000,
                fct=float(i + 1),
                start_time=0.0,
                timeouts=0,
                retransmissions=0,
            )
            for i in range(100)
        ]
        summary = FctSummary.from_records(records)
        assert summary.short_p99 == pytest.approx(
            float(np.percentile([r.fct for r in records], 99))
        )

    def test_monitor_percentile_matches_numpy(self):
        from repro.sim.monitor import QueueMonitor, QueueSample

        monitor = QueueMonitor.__new__(QueueMonitor)
        monitor.samples = [
            QueueSample(float(i), pkts, pkts * 1500)
            for i, pkts in enumerate([1, 2, 3, 10])
        ]
        assert monitor.percentile(50) == pytest.approx(
            float(np.percentile([1, 2, 3, 10], 50))
        )
