"""Odds and ends: example compilation, not-ECT handling, stats plumbing."""

import pathlib
import py_compile

import pytest

from repro.core import Codel, EcnSharp, EcnSharpConfig, NullAqm, SojournRed
from repro.core.base import MarkingStats
from repro.sim.packet import Ecn
from repro.sim.units import us

from conftest import StampedPacket

EXAMPLES = sorted((pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


class TestExamplesCompile:
    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_example_compiles(self, path, tmp_path):
        py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)

    def test_at_least_seven_examples_ship(self):
        assert len(EXAMPLES) >= 7


class TestNotEctHandling:
    """RFC 3168: marking decisions applied to not-ECT packets become drops."""

    def test_ecn_sharp_drops_not_ect_on_instantaneous(self):
        aqm = EcnSharp(EcnSharpConfig(us(200), us(10), us(240)))
        packet = StampedPacket(sojourn=us(300), ecn=Ecn.NOT_ECT)
        survived = aqm.on_dequeue(packet, now=us(5))
        assert not survived
        assert aqm.stats.aqm_drops == 1
        assert aqm.stats.marks == 0

    def test_ecn_sharp_drops_not_ect_on_persistent(self):
        aqm = EcnSharp(EcnSharpConfig(us(200), us(10), us(240)))
        aqm.on_dequeue(StampedPacket(sojourn=us(50)), now=us(5))
        packet = StampedPacket(sojourn=us(50), ecn=Ecn.NOT_ECT)
        survived = aqm.on_dequeue(packet, now=us(5) + us(241))
        assert not survived

    def test_sojourn_red_drops_not_ect(self):
        aqm = SojournRed(us(100))
        packet = StampedPacket(sojourn=us(200), ecn=Ecn.NOT_ECT)
        assert not aqm.on_dequeue(packet, now=0.0)

    def test_ect1_is_markable(self):
        aqm = SojournRed(us(100))
        packet = StampedPacket(sojourn=us(200), ecn=Ecn.ECT1)
        assert aqm.on_dequeue(packet, now=0.0)
        assert packet.ce_marked


class TestStatsPlumbing:
    def test_marking_stats_repr(self):
        stats = MarkingStats()
        stats.marks = 3
        assert "marks=3" in repr(stats)

    def test_null_aqm_counts_packets(self):
        aqm = NullAqm()
        aqm.on_enqueue(StampedPacket(sojourn=0.0), now=0.0, queue_bytes=0)
        assert aqm.stats.packets_seen == 1
        assert aqm.stats.marks == 0

    def test_codel_reset_clears_control_law(self):
        aqm = Codel(target_seconds=us(10), interval_seconds=us(100))
        aqm.on_dequeue(StampedPacket(sojourn=us(50)), now=us(5))
        aqm.on_dequeue(StampedPacket(sojourn=us(50)), now=us(150))
        assert aqm.stats.marks >= 1
        aqm.reset()
        assert aqm.stats.marks == 0
        assert not aqm._marking
