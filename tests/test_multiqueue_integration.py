"""Integration: sojourn-time AQMs composed with multi-queue schedulers.

The property ECN# inherits from TCN (Section 3.2): because the congestion
signal is per-packet time-in-queue, it stays meaningful when the egress
port runs a packet scheduler -- each service's packets carry their own
queueing delay, whatever the scheduler interleaving.  Queue-length marking
has no per-service meaning, which is why the paper's Figure 13 compares
sojourn-based schemes only.
"""

import pytest

from repro.core import EcnSharp, EcnSharpConfig, Tcn
from repro.sim import DwrrScheduler, PacketFactory, QueueMonitor
from repro.sim.units import gbps, ms, us
from repro.tcp import open_flow
from repro.topology import build_star


def build(aqm_factory, weights=(2.0, 1.0, 1.0)):
    return build_star(
        n_senders=6,
        aqm_factory=aqm_factory,
        bottleneck_scheduler_factory=lambda: DwrrScheduler(list(weights)),
    )


class TestDwrrWithSojournAqm:
    def test_weights_preserved_under_marking(self):
        topo = build(lambda: Tcn(us(150)))
        factory = PacketFactory()
        flows = [
            open_flow(
                topo.network, factory, topo.senders[i], topo.receiver,
                40_000_000, service=i,
            )
            for i in range(3)
        ]
        topo.network.run(until=ms(20))
        delivered = [flow.sink.expected for flow in flows]
        total = sum(delivered)
        assert delivered[0] / total == pytest.approx(0.5, abs=0.05)
        assert delivered[1] / total == pytest.approx(0.25, abs=0.05)
        assert delivered[2] / total == pytest.approx(0.25, abs=0.05)

    def test_idle_service_capacity_redistributed(self):
        topo = build(lambda: Tcn(us(150)))
        factory = PacketFactory()
        # Only services 1 and 2 are active: they split the link 1:1.
        flows = [
            open_flow(
                topo.network, factory, topo.senders[i], topo.receiver,
                40_000_000, service=i + 1,
            )
            for i in range(2)
        ]
        topo.network.run(until=ms(20))
        delivered = [flow.sink.expected for flow in flows]
        assert delivered[0] == pytest.approx(delivered[1], rel=0.1)
        # And the link stayed busy (work conservation).
        assert sum(delivered) * 1460 * 8 / ms(20) > 0.85 * gbps(10)

    def test_ecn_sharp_contains_cross_service_queueing(self):
        """A backlogged low-weight service must not see unbounded sojourn:
        ECN# marks its packets (their sojourn reflects DWRR waiting) and the
        sender backs off to its fair share."""
        topo = build(lambda: EcnSharp(EcnSharpConfig(us(220), us(10), us(240))))
        factory = PacketFactory()
        heavy = open_flow(
            topo.network, factory, topo.senders[0], topo.receiver,
            40_000_000, service=2,  # weight 1 of 4
        )
        competitor = open_flow(
            topo.network, factory, topo.senders[1], topo.receiver,
            40_000_000, service=0,  # weight 2 of 4
        )
        monitor = QueueMonitor(topo.sim, topo.bottleneck, interval=us(50), start=ms(5))
        topo.network.run(until=ms(15))
        # Marking bounded the aggregate queue despite two saturating flows.
        assert monitor.average_packets() < 350
        assert heavy.sender.stats.ece_acks > 0
        assert competitor.sink.expected > heavy.sink.expected  # weight order

    def test_service_class_travels_with_acks(self):
        topo = build(lambda: Tcn(us(150)))
        factory = PacketFactory()
        flow = open_flow(
            topo.network, factory, topo.senders[0], topo.receiver, 50_000, service=1
        )
        topo.network.sim.run_until_idle(max_events=10_000_000)
        assert flow.completed
        assert flow.sink.service == 1
