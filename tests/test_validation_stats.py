"""Tests for the validation statistics layer (no scipy available)."""

import math

import pytest

from repro.validation.stats import (
    COUNT_BAND,
    DEFAULT_BAND,
    FAIL,
    PASS,
    SKIP,
    WARN,
    ToleranceBand,
    bootstrap_ci,
    compare_samples,
    mann_whitney_u,
    student_t_two_sided_p,
    welch_t_test,
)


class TestBootstrapCi:
    def test_deterministic_for_fixed_seed(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        a = bootstrap_ci(samples, seed=7)
        b = bootstrap_ci(samples, seed=7)
        assert (a.low, a.high) == (b.low, b.high)

    def test_contains_true_mean(self):
        samples = list(range(1, 30))
        ci = bootstrap_ci([float(s) for s in samples], seed=0)
        assert ci.low <= 15.0 <= ci.high
        assert ci.contains(15.0)

    def test_single_sample_degenerate(self):
        ci = bootstrap_ci([4.2])
        assert ci.low == ci.high == 4.2
        assert ci.n_resamples == 0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])


class TestStudentT:
    def test_reference_value(self):
        # scipy.stats.t.sf(2.0, 10) * 2 == 0.07338803..
        assert student_t_two_sided_p(2.0, 10) == pytest.approx(
            0.0733880, abs=1e-3
        )

    def test_zero_statistic_is_one(self):
        assert student_t_two_sided_p(0.0, 5) == pytest.approx(1.0)

    def test_large_statistic_tiny_p(self):
        assert student_t_two_sided_p(50.0, 30) < 1e-10

    def test_symmetry(self):
        assert student_t_two_sided_p(-2.5, 8) == pytest.approx(
            student_t_two_sided_p(2.5, 8)
        )


class TestWelch:
    def test_identical_samples_p_one(self):
        result = welch_t_test([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert result is not None
        assert result.p_value == pytest.approx(1.0, abs=1e-9)

    def test_clearly_different_rejects(self):
        a = [1.0, 1.1, 0.9, 1.05, 0.95]
        b = [5.0, 5.1, 4.9, 5.05, 4.95]
        result = welch_t_test(a, b)
        assert result.p_value < 0.001

    def test_insufficient_samples_none(self):
        assert welch_t_test([1.0], [1.0, 2.0]) is None

    def test_zero_variance_equal_means(self):
        result = welch_t_test([2.0, 2.0], [2.0, 2.0])
        assert result.p_value == 1.0

    def test_zero_variance_distinct_means(self):
        result = welch_t_test([2.0, 2.0], [3.0, 3.0])
        assert result.p_value == 0.0


class TestMannWhitney:
    def test_clearly_shifted_rejects(self):
        a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        b = [11.0, 12.0, 13.0, 14.0, 15.0, 16.0]
        result = mann_whitney_u(a, b)
        assert result.p_value < 0.01

    def test_identical_distributions_high_p(self):
        a = [1.0, 3.0, 5.0, 7.0]
        b = [2.0, 4.0, 6.0, 8.0]
        result = mann_whitney_u(a, b)
        assert result.p_value > 0.3

    def test_all_tied_p_one(self):
        result = mann_whitney_u([2.0, 2.0], [2.0, 2.0])
        assert result.p_value == 1.0

    def test_p_in_unit_interval(self):
        result = mann_whitney_u([1.0, 2.0], [1.5, 2.5])
        assert 0.0 <= result.p_value <= 1.0
        assert math.isfinite(result.statistic)


class TestCompareSamples:
    def test_equal_samples_pass(self):
        c = compare_samples("fig6", "cell", "m", [1.0, 1.01], [1.0, 1.01])
        assert c.status == PASS

    def test_small_drift_passes_within_band(self):
        c = compare_samples("fig6", "cell", "m", [1.02, 1.03], [1.0, 1.01])
        assert c.status == PASS

    def test_moderate_drift_warns(self):
        c = compare_samples("fig6", "cell", "m", [1.10, 1.11], [1.0, 1.01])
        assert c.status == WARN

    def test_large_separated_shift_fails(self):
        c = compare_samples("fig6", "cell", "m", [2.0, 2.01], [1.0, 1.01])
        assert c.status == FAIL
        assert c.rel_err > DEFAULT_BAND.rel_fail

    def test_large_shift_overlapping_ranges_demotes_to_warn(self):
        # Big relative error but overlapping, statistically indistinct
        # samples: downgraded to WARN rather than FAIL.
        current = [0.5, 3.5]
        baseline = [1.0, 2.2]
        c = compare_samples("fig6", "cell", "m", current, baseline)
        assert c.status == WARN

    def test_single_sample_big_shift_fails(self):
        # n=1 cells (fig10/fig11) have no statistical escape hatch.
        c = compare_samples("fig10", "cell", "m", [200.0], [100.0])
        assert c.status == FAIL

    def test_missing_sides_skip(self):
        assert compare_samples("f", "c", "m", [], [1.0]).status == SKIP
        assert compare_samples("f", "c", "m", [1.0], []).status == SKIP

    def test_zero_baseline_exact_match_passes(self):
        c = compare_samples("f", "c", "drops", [0.0], [0.0], band=COUNT_BAND)
        assert c.status == PASS

    def test_count_band_abs_warn_tolerates_small_counts(self):
        c = compare_samples("f", "c", "drops", [1.0], [0.0], band=COUNT_BAND)
        assert c.status == PASS  # abs_warn=2.0 soaks tiny count jitter

    def test_to_dict_round_trip_fields(self):
        c = compare_samples("fig6", "cell", "m", [1.0, 1.1], [1.0, 1.1])
        payload = c.to_dict()
        assert payload["figure"] == "fig6"
        assert payload["status"] == PASS
        assert "baseline_ci" in payload

    def test_custom_band(self):
        band = ToleranceBand(rel_warn=0.5, rel_fail=0.9)
        c = compare_samples("f", "c", "m", [1.4], [1.0], band=band)
        assert c.status == PASS
