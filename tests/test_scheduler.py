"""Unit tests for packet schedulers (FIFO, strict priority, DWRR)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.scheduler import DwrrScheduler, FifoScheduler, StrictPriorityScheduler

from conftest import make_packet


class TestFifo:
    def test_single_queue_order(self):
        scheduler = FifoScheduler()
        for seq in range(4):
            scheduler.enqueue(make_packet(seq=seq))
        assert [scheduler.dequeue().seq for _ in range(4)] == [0, 1, 2, 3]

    def test_empty_returns_none(self):
        assert FifoScheduler().dequeue() is None

    def test_out_of_range_service_uses_last_queue(self):
        scheduler = FifoScheduler()
        scheduler.enqueue(make_packet(service=7))
        assert scheduler.total_packets == 1

    def test_totals(self):
        scheduler = FifoScheduler()
        scheduler.enqueue(make_packet(size=100))
        scheduler.enqueue(make_packet(size=200))
        assert scheduler.total_bytes == 300
        assert scheduler.total_packets == 2


class TestStrictPriority:
    def test_low_index_first(self):
        scheduler = StrictPriorityScheduler(num_queues=3)
        scheduler.enqueue(make_packet(seq=1, service=2))
        scheduler.enqueue(make_packet(seq=2, service=0))
        scheduler.enqueue(make_packet(seq=3, service=1))
        order = [scheduler.dequeue().service for _ in range(3)]
        assert order == [0, 1, 2]

    def test_starvation_of_low_priority(self):
        scheduler = StrictPriorityScheduler(num_queues=2)
        scheduler.enqueue(make_packet(service=1))
        scheduler.enqueue(make_packet(service=0))
        assert scheduler.dequeue().service == 0


class TestDwrrBasics:
    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            DwrrScheduler([])
        with pytest.raises(ValueError):
            DwrrScheduler([1.0, 0.0])

    def test_single_queue_is_fifo(self):
        scheduler = DwrrScheduler([1.0])
        for seq in range(3):
            scheduler.enqueue(make_packet(seq=seq))
        assert [scheduler.dequeue().seq for _ in range(3)] == [0, 1, 2]

    def test_empty_returns_none_and_resets(self):
        scheduler = DwrrScheduler([2.0, 1.0])
        assert scheduler.dequeue() is None

    def test_work_conserving(self):
        # A single backlogged queue gets everything even with weight 1/100.
        scheduler = DwrrScheduler([100.0, 1.0])
        for seq in range(5):
            scheduler.enqueue(make_packet(seq=seq, service=1))
        served = [scheduler.dequeue() for _ in range(5)]
        assert all(p is not None and p.service == 1 for p in served)


class TestDwrrShares:
    @staticmethod
    def run_shares(weights, n_packets=3000, size=1500):
        scheduler = DwrrScheduler(weights)
        # Keep all queues persistently backlogged.
        for queue_index in range(len(weights)):
            for seq in range(n_packets):
                scheduler.enqueue(make_packet(seq=seq, service=queue_index, size=size))
        served_bytes = [0] * len(weights)
        for _ in range(n_packets):
            packet = scheduler.dequeue()
            served_bytes[packet.service] += packet.size
        return served_bytes

    def test_2_1_1_shares(self):
        served = self.run_shares([2.0, 1.0, 1.0])
        total = sum(served)
        assert served[0] / total == pytest.approx(0.5, abs=0.02)
        assert served[1] / total == pytest.approx(0.25, abs=0.02)
        assert served[2] / total == pytest.approx(0.25, abs=0.02)

    def test_equal_weights_equal_shares(self):
        served = self.run_shares([1.0, 1.0])
        assert served[0] == pytest.approx(served[1], rel=0.05)

    @given(
        weights=st.lists(
            st.floats(min_value=0.5, max_value=8.0), min_size=2, max_size=4
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_shares_proportional_to_weights(self, weights):
        served = self.run_shares(weights, n_packets=2000)
        total_weight = sum(weights)
        total_bytes = sum(served)
        for share, weight in zip(served, weights):
            assert share / total_bytes == pytest.approx(
                weight / total_weight, abs=0.05
            )

    def test_mixed_packet_sizes_fair_in_bytes(self):
        scheduler = DwrrScheduler([1.0, 1.0])
        # Queue 0 sends jumbo-ish packets, queue 1 small ones.
        for seq in range(2000):
            scheduler.enqueue(make_packet(seq=seq, service=0, size=1500))
        for seq in range(20000):
            scheduler.enqueue(make_packet(seq=seq, service=1, size=150))
        served_bytes = [0, 0]
        for _ in range(8000):
            packet = scheduler.dequeue()
            served_bytes[packet.service] += packet.size
        ratio = served_bytes[0] / served_bytes[1]
        assert ratio == pytest.approx(1.0, abs=0.15)

    def test_idle_queue_banks_no_credit(self):
        scheduler = DwrrScheduler([1.0, 1.0], base_quantum=1500)
        # Only queue 0 is busy for a while...
        for seq in range(100):
            scheduler.enqueue(make_packet(seq=seq, service=0))
        for _ in range(100):
            scheduler.dequeue()
        # ...then queue 1 wakes up; it must not burst ahead of queue 0.
        for seq in range(100):
            scheduler.enqueue(make_packet(seq=seq, service=0))
            scheduler.enqueue(make_packet(seq=seq, service=1))
        served = [0, 0]
        for _ in range(100):
            served[scheduler.dequeue().service] += 1
        assert abs(served[0] - served[1]) <= 2
