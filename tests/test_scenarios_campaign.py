"""Tests for campaign orchestration: resumable execution over the JSONL
store, crash safety, failure re-execution, and telemetry accounting."""

import json

import pytest

from repro.experiments.executor import Executor
from repro.scenarios import (
    CampaignStore,
    CellRecord,
    Scenario,
    compile_scenario,
    render_store_report,
    run_campaign,
)
from repro.telemetry import Telemetry, activate

from test_scenarios_schema import base_dict


def tiny_scenario(name="campaign-unit", loads=(0.2, 0.4), seed=7):
    """Two fast cells (one scheme, tiny flow counts)."""
    data = base_dict(name=name, run={"seed": seed})
    data["workloads"][0].update({"loads": list(loads), "n_flows": 6})
    return Scenario.from_dict(data)


def executor():
    return Executor(jobs=1, cache=False, retries=0)


class TestRunAndResume:
    def test_first_pass_executes_every_cell(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        result = run_campaign([tiny_scenario()], store, executor())
        assert result.summary_line() == "cells=2 executed=2 skipped=0 failed=0"
        index = CampaignStore(store).load()
        assert len(index) == 2
        for record in index.values():
            assert record.status == "ok"
            assert "overall_avg" in record.metrics
            assert record.version

    def test_rerun_skips_everything_and_appends_nothing(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        scenario = tiny_scenario()
        first = run_campaign([scenario], store, executor())
        content = store.read_bytes()
        second = run_campaign([scenario], store, executor())
        assert second.executed_cells == 0
        assert second.skipped_cells == 2
        assert store.read_bytes() == content
        # the skipped pass still surfaces the stored records
        assert {r.cell_key for r in second.records} == {
            r.cell_key for r in first.records
        }

    def test_interrupted_store_is_bit_identical_after_resume(self, tmp_path):
        """Kill after one cell (max_cells), resume, and compare the store
        byte-for-byte against an uninterrupted campaign."""
        scenario = tiny_scenario()
        interrupted = tmp_path / "interrupted.jsonl"
        partial = run_campaign([scenario], interrupted, executor(),
                               max_cells=1)
        assert partial.executed_cells == 1
        resumed = run_campaign([scenario], interrupted, executor())
        assert resumed.executed_cells == 1
        assert resumed.skipped_cells == 1

        uninterrupted = tmp_path / "uninterrupted.jsonl"
        run_campaign([scenario], uninterrupted, executor())
        assert interrupted.read_bytes() == uninterrupted.read_bytes()

    def test_scenario_edit_invalidates_records(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        run_campaign([tiny_scenario(seed=7)], store, executor())
        # same name, different seed: a new content hash, so nothing is reused
        edited = run_campaign([tiny_scenario(seed=8)], store, executor())
        assert edited.executed_cells == 2
        assert edited.skipped_cells == 0


class TestFailureHandling:
    def test_failed_cell_reexecutes_on_rerun(self, tmp_path, monkeypatch):
        scenario = tiny_scenario()
        store = tmp_path / "campaign.jsonl"
        victim = compile_scenario(scenario).cells[0].specs[0].token()
        monkeypatch.setenv("REPRO_FAULT_INJECT", f"raise:{victim}")
        first = run_campaign([scenario], store, executor())
        assert first.executed_cells == 2
        assert first.failed_cells == 1
        failed = [r for r in first.records if r.status == "failed"]
        assert len(failed) == 1
        assert failed[0].failures[0]["exc"] == "InjectedFault"

        monkeypatch.delenv("REPRO_FAULT_INJECT")
        second = run_campaign([scenario], store, executor())
        assert second.executed_cells == 1  # only the failed cell
        assert second.skipped_cells == 1
        assert all(r.status == "ok"
                   for r in CampaignStore(store).load().values())

    def test_torn_trailing_line_is_skipped_and_healed(self, tmp_path):
        scenario = tiny_scenario()
        store = tmp_path / "campaign.jsonl"
        run_campaign([scenario], store, executor())
        lines = store.read_text().splitlines()
        # tear the second record mid-write, no trailing newline
        store.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])

        with pytest.warns(UserWarning, match="unreadable record"):
            resumed = run_campaign([scenario], store, executor())
        assert resumed.executed_cells == 1
        assert resumed.skipped_cells == 1
        # the healed store parses completely and settles every cell ok
        with pytest.warns(UserWarning):
            index = CampaignStore(store).load()
        assert len(index) == 2
        assert all(r.status == "ok" for r in index.values())
        # and a further rerun is a pure skip
        with pytest.warns(UserWarning):
            final = run_campaign([scenario], store, executor())
        assert final.executed_cells == 0


class TestStore:
    def test_records_round_trip(self, tmp_path):
        record = CellRecord(
            scenario="s", scenario_hash="h", cell_key="k", component="c",
            tokens=("t1", "t2"), status="ok", metrics={"m": 1.0},
            failures=(), git_sha="abc", version="0.1",
        )
        store = CampaignStore(tmp_path / "s.jsonl")
        store.append([record])
        assert store.load() == {record.key: record}

    def test_latest_record_wins(self, tmp_path):
        store = CampaignStore(tmp_path / "s.jsonl")
        old = CellRecord("s", "h", "k", "c", ("t",), "failed", {}, (),
                         None, "0.1")
        new = CellRecord("s", "h", "k", "c", ("t",), "ok", {"m": 2.0}, (),
                         None, "0.1")
        store.append([old])
        store.append([new])
        assert store.load()[("h", ("t",))].status == "ok"

    def test_records_carry_no_timestamps(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        run_campaign([tiny_scenario()], store, executor())
        for line in store.read_text().splitlines():
            payload = json.loads(line)
            assert set(payload) == {
                "scenario", "scenario_hash", "cell_key", "component",
                "tokens", "status", "metrics", "failures", "git_sha",
                "version",
            }


class TestTelemetryAndReport:
    def test_campaign_cells_counter(self, tmp_path):
        scenario = tiny_scenario()
        store = tmp_path / "campaign.jsonl"
        telemetry = Telemetry()
        with activate(telemetry):
            run_campaign([scenario], store, executor())
            run_campaign([scenario], store, executor())
        registry = telemetry.registry
        assert registry.counter("campaign_cells_total", status="ok").value == 2
        assert (
            registry.counter("campaign_cells_total", status="skipped").value
            == 2
        )
        assert (
            registry.counter("campaign_cells_total", status="failed").value
            == 0
        )

    def test_report_renders_cells_and_filters_by_hash(self, tmp_path):
        scenario = tiny_scenario()
        store = tmp_path / "campaign.jsonl"
        run_campaign([scenario], store, executor())
        report = render_store_report(store)
        assert "campaign-unit" in report
        assert "ws|load=0.2|scheme=ECN#" in report
        assert "overall_avg" in report
        # filtering by an edited scenario (different hash) hides the records
        filtered = render_store_report(store, [tiny_scenario(seed=99)])
        assert "no campaign records" in filtered

    def test_report_on_missing_store(self, tmp_path):
        assert "no campaign records" in render_store_report(
            tmp_path / "absent.jsonl"
        )
