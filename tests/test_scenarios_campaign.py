"""Tests for campaign orchestration: resumable execution over the JSONL
store, crash safety, failure re-execution, shared multi-writer mode, and
telemetry accounting."""

import json
import time

import pytest

from repro.experiments.executor import Executor
from repro.scenarios import (
    CampaignStore,
    CellRecord,
    LeaseBoard,
    Scenario,
    compile_scenario,
    render_store_report,
    run_campaign,
    store_fingerprint,
)
from repro.telemetry import Telemetry, activate

from test_scenarios_schema import base_dict


def tiny_scenario(name="campaign-unit", loads=(0.2, 0.4), seed=7):
    """Two fast cells (one scheme, tiny flow counts)."""
    data = base_dict(name=name, run={"seed": seed})
    data["workloads"][0].update({"loads": list(loads), "n_flows": 6})
    return Scenario.from_dict(data)


def executor():
    return Executor(jobs=1, cache=False, retries=0)


class TestRunAndResume:
    def test_first_pass_executes_every_cell(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        result = run_campaign([tiny_scenario()], store, executor())
        assert result.summary_line() == "cells=2 executed=2 skipped=0 failed=0"
        index = CampaignStore(store).load()
        assert len(index) == 2
        for record in index.values():
            assert record.status == "ok"
            assert "overall_avg" in record.metrics
            assert record.version

    def test_rerun_skips_everything_and_appends_nothing(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        scenario = tiny_scenario()
        first = run_campaign([scenario], store, executor())
        content = store.read_bytes()
        second = run_campaign([scenario], store, executor())
        assert second.executed_cells == 0
        assert second.skipped_cells == 2
        assert store.read_bytes() == content
        # the skipped pass still surfaces the stored records
        assert {r.cell_key for r in second.records} == {
            r.cell_key for r in first.records
        }

    def test_interrupted_store_is_bit_identical_after_resume(self, tmp_path):
        """Kill after one cell (max_cells), resume, and compare the store
        byte-for-byte against an uninterrupted campaign."""
        scenario = tiny_scenario()
        interrupted = tmp_path / "interrupted.jsonl"
        partial = run_campaign([scenario], interrupted, executor(),
                               max_cells=1)
        assert partial.executed_cells == 1
        resumed = run_campaign([scenario], interrupted, executor())
        assert resumed.executed_cells == 1
        assert resumed.skipped_cells == 1

        uninterrupted = tmp_path / "uninterrupted.jsonl"
        run_campaign([scenario], uninterrupted, executor())
        assert interrupted.read_bytes() == uninterrupted.read_bytes()

    def test_scenario_edit_invalidates_records(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        run_campaign([tiny_scenario(seed=7)], store, executor())
        # same name, different seed: a new content hash, so nothing is reused
        edited = run_campaign([tiny_scenario(seed=8)], store, executor())
        assert edited.executed_cells == 2
        assert edited.skipped_cells == 0


class TestFailureHandling:
    def test_failed_cell_reexecutes_on_rerun(self, tmp_path, monkeypatch):
        scenario = tiny_scenario()
        store = tmp_path / "campaign.jsonl"
        victim = compile_scenario(scenario).cells[0].specs[0].token()
        monkeypatch.setenv("REPRO_FAULT_INJECT", f"raise:{victim}")
        first = run_campaign([scenario], store, executor())
        assert first.executed_cells == 2
        assert first.failed_cells == 1
        failed = [r for r in first.records if r.status == "failed"]
        assert len(failed) == 1
        assert failed[0].failures[0]["exc"] == "InjectedFault"

        monkeypatch.delenv("REPRO_FAULT_INJECT")
        second = run_campaign([scenario], store, executor())
        assert second.executed_cells == 1  # only the failed cell
        assert second.skipped_cells == 1
        assert all(r.status == "ok"
                   for r in CampaignStore(store).load().values())

    def test_torn_trailing_line_is_skipped_and_healed(self, tmp_path):
        scenario = tiny_scenario()
        store = tmp_path / "campaign.jsonl"
        run_campaign([scenario], store, executor())
        lines = store.read_text().splitlines()
        # tear the second record mid-write, no trailing newline
        store.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])

        with pytest.warns(UserWarning, match="unreadable record"):
            resumed = run_campaign([scenario], store, executor())
        assert resumed.executed_cells == 1
        assert resumed.skipped_cells == 1
        # the healed store parses completely and settles every cell ok
        with pytest.warns(UserWarning):
            index = CampaignStore(store).load()
        assert len(index) == 2
        assert all(r.status == "ok" for r in index.values())
        # and a further rerun is a pure skip
        with pytest.warns(UserWarning):
            final = run_campaign([scenario], store, executor())
        assert final.executed_cells == 0


class TestStore:
    def test_records_round_trip(self, tmp_path):
        record = CellRecord(
            scenario="s", scenario_hash="h", cell_key="k", component="c",
            tokens=("t1", "t2"), status="ok", metrics={"m": 1.0},
            failures=(), git_sha="abc", version="0.1",
        )
        store = CampaignStore(tmp_path / "s.jsonl")
        store.append([record])
        assert store.load() == {record.key: record}

    def test_latest_record_wins(self, tmp_path):
        store = CampaignStore(tmp_path / "s.jsonl")
        old = CellRecord("s", "h", "k", "c", ("t",), "failed", {}, (),
                         None, "0.1")
        new = CellRecord("s", "h", "k", "c", ("t",), "ok", {"m": 2.0}, (),
                         None, "0.1")
        store.append([old])
        store.append([new])
        assert store.load()[("h", ("t",))].status == "ok"

    def test_load_stats_counts_lines_and_torn(self, tmp_path):
        store = CampaignStore(tmp_path / "s.jsonl")
        assert store.load() == {}
        assert store.load_stats.lines == 0
        run_campaign([tiny_scenario()], store.path, executor())
        store.load()
        assert store.load_stats.lines == 2
        assert store.load_stats.records == 2
        assert store.load_stats.torn_lines == 0
        lines = store.path.read_text().splitlines()
        store.path.write_text(lines[0] + "\n" + lines[1][:10])
        with pytest.warns(UserWarning, match="unreadable record"):
            store.load()
        assert store.load_stats.torn_lines == 1
        assert store.load_stats.records == 1

    def test_torn_lines_surface_in_store_report(self, tmp_path):
        store = tmp_path / "s.jsonl"
        run_campaign([tiny_scenario()], store, executor())
        lines = store.read_text().splitlines()
        store.write_text(lines[0] + "\n" + lines[1][:10])
        with pytest.warns(UserWarning, match="unreadable record"):
            report = render_store_report(store)
        assert "campaign_store_torn_lines_total 1" in report

    def test_append_resources_heals_torn_sidecar(self, tmp_path):
        store = CampaignStore(tmp_path / "s.jsonl")
        store.append_resources([{"cell": "a"}])
        with open(store.resources_path, "a", encoding="utf-8") as handle:
            handle.write('{"cell": "to')  # torn write, no newline
        store.append_resources([{"cell": "b"}])
        rows = store.load_resources()
        assert rows[0] == {"cell": "a"}
        assert rows[-1] == {"cell": "b"}  # not glued onto the torn line

    def test_sidecar_gap_does_not_affect_resume(self, tmp_path, monkeypatch):
        """A crash between store.append and append_resources (records
        durable, sidecar row lost) must leave the store resumable to the
        uninterrupted bytes."""
        scenario = tiny_scenario()
        gap = tmp_path / "gap.jsonl"
        monkeypatch.setattr(
            CampaignStore, "append_resources", lambda self, rows: None
        )
        run_campaign([scenario], gap, executor(), max_cells=1)
        monkeypatch.undo()
        assert not CampaignStore(gap).resources_path.exists()

        resumed = run_campaign([scenario], gap, executor())
        assert resumed.executed_cells == 1
        assert resumed.skipped_cells == 1
        clean = tmp_path / "clean.jsonl"
        run_campaign([scenario], clean, executor())
        assert gap.read_bytes() == clean.read_bytes()

    def test_records_carry_no_timestamps(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        run_campaign([tiny_scenario()], store, executor())
        for line in store.read_text().splitlines():
            payload = json.loads(line)
            assert set(payload) == {
                "scenario", "scenario_hash", "cell_key", "component",
                "tokens", "status", "metrics", "failures", "git_sha",
                "version",
            }


class TestSharedMode:
    """In-process coverage of the multi-writer path (cross-process
    interleavings live in test_chaos.py)."""

    def cell_keys(self, scenario):
        compiled = compile_scenario(scenario)
        shash = scenario.content_hash()
        return [(shash, tuple(cell.tokens())) for cell in compiled.cells]

    def test_shared_single_worker_matches_single_writer(self, tmp_path):
        scenario = tiny_scenario()
        shared = CampaignStore(tmp_path / "shared.jsonl")
        result = run_campaign(
            [scenario], shared, executor(), shared=True, worker_id="w1",
            lease_ttl=60.0,
        )
        assert result.summary_line() == "cells=2 executed=2 skipped=0 failed=0"
        single = tmp_path / "single.jsonl"
        run_campaign([scenario], single, executor())
        assert store_fingerprint(shared) == store_fingerprint(single)
        # coordination state is sidecar-only: leases released, lock gone
        assert shared.leases_path.exists()
        assert not shared.lock_path.exists()
        leases = LeaseBoard(shared.leases_path, ttl=60.0).load()
        assert all(lease.state == "released" for lease in leases.values())

    def test_shared_rerun_skips_everything(self, tmp_path):
        scenario = tiny_scenario()
        store = tmp_path / "shared.jsonl"
        run_campaign([scenario], store, executor(), shared=True,
                     worker_id="w1", lease_ttl=60.0)
        again = run_campaign([scenario], store, executor(), shared=True,
                             worker_id="w2", lease_ttl=60.0)
        assert again.executed_cells == 0
        assert again.skipped_cells == 2

    def test_live_foreign_lease_is_left_alone(self, tmp_path):
        scenario = tiny_scenario()
        store = CampaignStore(tmp_path / "shared.jsonl")
        keys = self.cell_keys(scenario)
        LeaseBoard(store.leases_path, ttl=60.0).claim([keys[0]], "other")
        result = run_campaign(
            [scenario], store, executor(), shared=True, worker_id="me",
            lease_ttl=60.0,
        )
        assert result.executed_cells == 1  # only the unleased cell
        assert result.reclaimed_leases == 0
        assert len(store.load()) == 1

    def test_stale_lease_is_reclaimed_and_counted(self, tmp_path):
        scenario = tiny_scenario()
        store = CampaignStore(tmp_path / "shared.jsonl")
        keys = self.cell_keys(scenario)
        LeaseBoard(store.leases_path, ttl=60.0).claim(
            keys, "dead-worker", now=time.time() - 120
        )
        telemetry = Telemetry()
        with activate(telemetry):
            result = run_campaign(
                [scenario], store, executor(), shared=True, worker_id="me",
                lease_ttl=60.0,
            )
        assert result.executed_cells == 2
        assert result.reclaimed_leases == 2
        assert result.summary_line() == (
            "cells=2 executed=2 skipped=0 failed=0 reclaimed=2"
        )
        assert (
            telemetry.registry.counter("campaign_lease_reclaims_total").value
            == 2
        )

    def test_duplicate_key_last_record_wins_after_reclaim(self, tmp_path):
        """A reclaimed lease re-runs a cell whose first run's append raced
        in after all: the store then holds two records for the key and the
        later one wins on load."""
        scenario = tiny_scenario()
        store = CampaignStore(tmp_path / "shared.jsonl")
        run_campaign([scenario], store, executor(), shared=True,
                     worker_id="w1", lease_ttl=60.0)
        index = store.load()
        key, re_run = next(iter(index.items()))
        store.append([re_run])  # the duplicate append
        assert len(store.load()) == 2  # still one record per key
        assert store.load_stats.records == 3  # three lines read
        assert store.load()[key] == re_run

    def test_interrupt_latch_stops_between_shards(self, tmp_path):
        class FakeShutdown:
            requested = True
            signum = 15

        result = run_campaign(
            [tiny_scenario()], tmp_path / "s.jsonl", executor(),
            shared=True, worker_id="w1", lease_ttl=60.0,
            shutdown=FakeShutdown(),
        )
        assert result.interrupted
        assert result.interrupt_signum == 15
        assert result.executed_cells == 0
        assert result.summary_line().endswith(" interrupted")


class TestTelemetryAndReport:
    def test_campaign_cells_counter(self, tmp_path):
        scenario = tiny_scenario()
        store = tmp_path / "campaign.jsonl"
        telemetry = Telemetry()
        with activate(telemetry):
            run_campaign([scenario], store, executor())
            run_campaign([scenario], store, executor())
        registry = telemetry.registry
        assert registry.counter("campaign_cells_total", status="ok").value == 2
        assert (
            registry.counter("campaign_cells_total", status="skipped").value
            == 2
        )
        assert (
            registry.counter("campaign_cells_total", status="failed").value
            == 0
        )

    def test_report_renders_cells_and_filters_by_hash(self, tmp_path):
        scenario = tiny_scenario()
        store = tmp_path / "campaign.jsonl"
        run_campaign([scenario], store, executor())
        report = render_store_report(store)
        assert "campaign-unit" in report
        assert "ws|load=0.2|scheme=ECN#" in report
        assert "overall_avg" in report
        # filtering by an edited scenario (different hash) hides the records
        filtered = render_store_report(store, [tiny_scenario(seed=99)])
        assert "no campaign records" in filtered

    def test_report_on_missing_store(self, tmp_path):
        assert "no campaign records" in render_store_report(
            tmp_path / "absent.jsonl"
        )
