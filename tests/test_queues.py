"""Unit tests for packet queues and the shared buffer pool."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.queues import BufferPool, PacketQueue

from conftest import make_packet


class TestPacketQueue:
    def test_starts_empty(self):
        queue = PacketQueue()
        assert queue.is_empty()
        assert queue.byte_length == 0
        assert queue.packet_length == 0
        assert queue.peek() is None

    def test_fifo_order(self):
        queue = PacketQueue()
        packets = [make_packet(seq=i) for i in range(5)]
        for packet in packets:
            queue.push(packet)
        assert [queue.pop().seq for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_byte_accounting(self):
        queue = PacketQueue()
        queue.push(make_packet(size=1500))
        queue.push(make_packet(size=40))
        assert queue.byte_length == 1540
        queue.pop()
        assert queue.byte_length == 40

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            PacketQueue().pop()

    def test_peek_does_not_remove(self):
        queue = PacketQueue()
        queue.push(make_packet(seq=7))
        assert queue.peek().seq == 7
        assert queue.packet_length == 1

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=9000), max_size=100)
    )
    @settings(max_examples=50, deadline=None)
    def test_accounting_invariant(self, sizes):
        queue = PacketQueue()
        for size in sizes:
            queue.push(make_packet(size=size))
        assert queue.byte_length == sum(sizes)
        assert queue.packet_length == len(sizes)
        popped = 0
        while not queue.is_empty():
            popped += queue.pop().size
        assert popped == sum(sizes)
        assert queue.byte_length == 0


class TestBufferPool:
    def test_reserve_within_capacity(self):
        pool = BufferPool(1000)
        assert pool.try_reserve(600)
        assert pool.used_bytes == 600
        assert pool.free_bytes == 400

    def test_reserve_over_capacity_fails_atomically(self):
        pool = BufferPool(1000)
        assert pool.try_reserve(900)
        assert not pool.try_reserve(200)
        assert pool.used_bytes == 900  # failed reservation left no residue

    def test_exact_fill(self):
        pool = BufferPool(1000)
        assert pool.try_reserve(1000)
        assert not pool.try_reserve(1)

    def test_release_returns_space(self):
        pool = BufferPool(1000)
        pool.try_reserve(1000)
        pool.release(400)
        assert pool.try_reserve(400)

    def test_underflow_detected(self):
        pool = BufferPool(1000)
        with pytest.raises(RuntimeError):
            pool.release(1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(0)

    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(min_value=1, max_value=500)),
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_never_exceeds_capacity(self, ops):
        pool = BufferPool(2000)
        reserved = []
        for is_reserve, size in ops:
            if is_reserve:
                if pool.try_reserve(size):
                    reserved.append(size)
            elif reserved:
                pool.release(reserved.pop())
            assert 0 <= pool.used_bytes <= pool.capacity_bytes
            assert pool.used_bytes == sum(reserved)
