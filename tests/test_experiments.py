"""Unit tests for the experiment harness: FCT stats, reporting, runners."""

import numpy as np
import pytest

from repro.core.red import SojournRed
from repro.experiments.fct import (
    LARGE_FLOW_MIN,
    SHORT_FLOW_MAX,
    FctCollector,
    FctSummary,
    FlowRecord,
)
from repro.experiments.report import fmt_ratio, fmt_us, format_table
from repro.experiments.runner import (
    Scale,
    estimate_star_network_rtt,
    pool_results,
    run_leafspine_fct,
    run_star_fct,
)
from repro.experiments.schemes import SCHEME_ORDER, bytes_to_sojourn
from repro.experiments.schemes import simulation_schemes as make_simulation_schemes
from repro.experiments.schemes import testbed_schemes as make_testbed_schemes
from repro.sim.units import gbps, kb, us
from repro.workloads import WEB_SEARCH


def record(size, fct, timeouts=0):
    return FlowRecord(
        flow_id=0, size_bytes=size, fct=fct, start_time=0.0,
        timeouts=timeouts, retransmissions=0,
    )


class TestFctSummary:
    def test_breakdown_boundaries(self):
        records = [
            record(SHORT_FLOW_MAX, 1e-3),  # short (inclusive)
            record(SHORT_FLOW_MAX + 1, 2e-3),  # neither
            record(LARGE_FLOW_MIN, 3e-3),  # large (inclusive)
        ]
        summary = FctSummary.from_records(records)
        assert summary.n_short == 1
        assert summary.n_large == 1
        assert summary.short_avg == pytest.approx(1e-3)
        assert summary.large_avg == pytest.approx(3e-3)
        assert summary.overall_avg == pytest.approx(2e-3)

    def test_empty_categories_are_none(self):
        summary = FctSummary.from_records([record(500_000, 1e-3)])
        assert summary.short_avg is None
        assert summary.large_avg is None
        assert summary.overall_avg is not None

    def test_p99(self):
        records = [record(1_000, 1e-3)] * 95 + [record(1_000, 100e-3)] * 5
        summary = FctSummary.from_records(records)
        assert summary.short_p99 > 50e-3

    def test_normalization(self):
        mine = FctSummary.from_records([record(1_000, 1e-3)])
        base = FctSummary.from_records([record(1_000, 2e-3)])
        norm = mine.normalized_to(base)
        assert norm.short_avg == pytest.approx(0.5)
        assert norm.large_avg is None  # no large flows on either side

    def test_collector_totals(self):
        collector = FctCollector()
        assert len(collector) == 0
        collector.records.append(record(1_000, 1e-3, timeouts=2))
        collector.records.append(record(1_000, 1e-3, timeouts=1))
        assert collector.total_timeouts() == 3


class TestReport:
    def test_fmt_us(self):
        assert fmt_us(1.5e-3) == "1,500"
        assert fmt_us(None) == "-"

    def test_fmt_ratio(self):
        assert fmt_ratio(0.876) == "0.88"
        assert fmt_ratio(None) == "-"

    def test_format_table_alignment(self):
        table = format_table(["a", "bbbb"], [[1, 2], [333, 4]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbbb" in lines[1]
        assert len(lines) == 5

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])


class TestSchemes:
    def test_bytes_to_sojourn_paper_values(self):
        assert bytes_to_sojourn(kb(250), gbps(10)) == pytest.approx(us(204.8))
        assert bytes_to_sojourn(kb(80), gbps(10)) == pytest.approx(us(65.536))

    def test_testbed_scheme_inventory(self):
        schemes = make_testbed_schemes()
        assert set(SCHEME_ORDER) <= set(schemes)
        for factory in schemes.values():
            first, second = factory(), factory()
            assert first is not second  # fresh instance per port

    def test_simulation_schemes_include_tcn(self):
        assert "TCN" in make_simulation_schemes()

    def test_ecn_sharp_testbed_parameters(self):
        aqm = make_testbed_schemes()["ECN#"]()
        assert aqm.config.ins_target == pytest.approx(us(200))
        assert aqm.config.pst_target == pytest.approx(us(85))
        assert aqm.config.pst_interval == pytest.approx(us(200))


class TestScale:
    def test_reduced_smaller_than_paper(self):
        reduced, paper = Scale.reduced(), Scale.paper()
        assert reduced.n_flows_web_search < paper.n_flows_web_search
        assert len(reduced.loads) < len(paper.loads)
        assert not reduced.full and paper.full

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not Scale.from_env().full
        monkeypatch.setenv("REPRO_FULL", "1")
        assert Scale.from_env().full

    def test_from_env_case_insensitive(self, monkeypatch):
        for raw in ("TRUE", "Yes", " on "):
            monkeypatch.setenv("REPRO_FULL", raw)
            assert Scale.from_env().full
        for raw in ("0", "False", "OFF", "no"):
            monkeypatch.setenv("REPRO_FULL", raw)
            assert not Scale.from_env().full

    def test_from_env_warns_on_unrecognized(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "enable")
        with pytest.warns(UserWarning, match="REPRO_FULL"):
            assert not Scale.from_env().full


class TestRunners:
    def test_star_run_end_to_end(self):
        result = run_star_fct(
            aqm_factory=lambda: SojournRed(us(200)),
            workload=WEB_SEARCH,
            load=0.4,
            n_flows=30,
            seed=1,
        )
        assert result.summary.n_flows == 30
        assert result.summary.overall_avg > 0
        assert result.events > 0

    def test_same_seed_same_arrivals(self):
        """Paired comparison: identical seeds give identical flow sizes."""
        results = [
            run_star_fct(
                aqm_factory=lambda: SojournRed(us(200)),
                workload=WEB_SEARCH,
                load=0.4,
                n_flows=20,
                seed=7,
            )
            for _ in range(2)
        ]
        sizes = [
            sorted(r.size_bytes for r in result.collector.records)
            for result in results
        ]
        assert sizes[0] == sizes[1]

    def test_different_seed_different_arrivals(self):
        def run(seed):
            return run_star_fct(
                aqm_factory=lambda: SojournRed(us(200)),
                workload=WEB_SEARCH,
                load=0.4,
                n_flows=20,
                seed=seed,
            )

        sizes_a = sorted(r.size_bytes for r in run(1).collector.records)
        sizes_b = sorted(r.size_bytes for r in run(2).collector.records)
        assert sizes_a != sizes_b

    def test_network_rtt_estimate(self):
        rtt = estimate_star_network_rtt()
        assert us(8) < rtt < us(15)

    def test_leafspine_run_end_to_end(self):
        result = run_leafspine_fct(
            aqm_factory=lambda: SojournRed(us(220)),
            workload=WEB_SEARCH,
            load=0.3,
            n_flows=20,
            seed=2,
            dims=(2, 2, 2),
        )
        assert result.summary.n_flows == 20

    def test_marks_accounted(self):
        result = run_star_fct(
            aqm_factory=lambda: SojournRed(us(30)),  # aggressive: will mark
            workload=WEB_SEARCH,
            load=0.6,
            n_flows=30,
            seed=3,
        )
        assert result.marks > 0
        assert result.instant_marks == result.marks


class TestPooling:
    def run(self, seed):
        return run_star_fct(
            aqm_factory=lambda: SojournRed(us(200)),
            workload=WEB_SEARCH,
            load=0.4,
            n_flows=15,
            seed=seed,
        )

    def test_pooled_manifest_aggregates(self):
        results = [self.run(seed) for seed in (5, 6, 7)]
        pooled = pool_results(results)
        manifest = pooled.manifest
        assert manifest is not None
        assert manifest.params["n_seeds"] == 3
        assert manifest.params["seeds"] == [5, 6, 7]
        assert manifest.events == sum(r.events for r in results)
        assert manifest.wall_seconds == pytest.approx(
            sum(r.manifest.wall_seconds for r in results)
        )

    def test_pooled_counters_and_records(self):
        results = [self.run(seed) for seed in (5, 6)]
        pooled = pool_results(results)
        assert pooled.summary.n_flows == 30
        assert pooled.marks == sum(r.marks for r in results)
        assert pooled.events == sum(r.events for r in results)
        assert len(pooled.collector.records) == 30
