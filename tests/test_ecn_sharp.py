"""Unit and property tests for ECN# (Algorithm 1 + instantaneous marking).

These tests pin down the exact semantics of the paper's Algorithm 1:
persistent-queue detection via ``first_above_time``, conservative marking
with the ``pst_interval / sqrt(marking_count)`` cadence, and the composition
with the instantaneous cut-off threshold.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ecn_sharp import EcnSharp, EcnSharpConfig
from repro.sim.units import us

from conftest import StampedPacket


def make_aqm(ins=us(200), pst=us(10), interval=us(240)):
    return EcnSharp(EcnSharpConfig(ins_target=ins, pst_target=pst, pst_interval=interval))


def feed(aqm, now, sojourn):
    """Run one packet with the given sojourn through the AQM; returns the
    packet so callers can inspect the mark."""
    packet = StampedPacket(sojourn=sojourn)
    aqm.on_dequeue(packet, now)
    return packet


class TestConfig:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            EcnSharpConfig(0, us(10), us(240))
        with pytest.raises(ValueError):
            EcnSharpConfig(us(200), -1, us(240))
        with pytest.raises(ValueError):
            EcnSharpConfig(us(200), us(10), 0)

    def test_rejects_pst_above_ins(self):
        with pytest.raises(ValueError):
            EcnSharpConfig(ins_target=us(10), pst_target=us(20), pst_interval=us(240))

    def test_from_targets_convenience(self):
        aqm = EcnSharp.from_targets(us(200), us(85), us(200))
        assert aqm.config.pst_target == us(85)


class TestInstantaneousMarking:
    def test_marks_above_ins_target(self):
        aqm = make_aqm()
        packet = feed(aqm, now=0.0, sojourn=us(250))
        assert packet.ce_marked
        assert aqm.stats.instant_marks == 1
        assert aqm.stats.persistent_marks == 0

    def test_no_mark_below(self):
        aqm = make_aqm()
        packet = feed(aqm, now=0.0, sojourn=us(5))
        assert not packet.ce_marked

    def test_burst_marks_immediately(self):
        """Unlike CoDel, the very first over-threshold packet is marked --
        no interval needs to elapse (burst tolerance, Section 3.3)."""
        aqm = make_aqm()
        packet = feed(aqm, now=0.0, sojourn=us(500))
        assert packet.ce_marked


class TestPersistentDetection:
    def test_no_detection_before_interval(self):
        aqm = make_aqm()
        # Sojourn above pst_target but below ins_target, for < interval.
        assert not feed(aqm, now=0.0, sojourn=us(50)).ce_marked
        assert not feed(aqm, now=us(100), sojourn=us(50)).ce_marked
        assert not feed(aqm, now=us(239), sojourn=us(50)).ce_marked

    def test_detection_after_interval(self):
        aqm = make_aqm()
        feed(aqm, now=0.0, sojourn=us(50))  # sets first_above_time
        packet = feed(aqm, now=us(241), sojourn=us(50))
        assert packet.ce_marked
        assert aqm.stats.persistent_marks == 1

    def test_dip_below_target_resets_detection(self):
        aqm = make_aqm()
        feed(aqm, now=0.0, sojourn=us(50))
        feed(aqm, now=us(120), sojourn=us(5))  # queue drained briefly
        packet = feed(aqm, now=us(241), sojourn=us(50))
        assert not packet.ce_marked  # the clock restarted at 241

    def test_first_above_restarts_after_reset(self):
        aqm = make_aqm()
        feed(aqm, now=0.0, sojourn=us(50))
        feed(aqm, now=us(120), sojourn=us(5))
        feed(aqm, now=us(200), sojourn=us(50))  # new first_above_time
        assert not feed(aqm, now=us(400), sojourn=us(50)).ce_marked
        assert feed(aqm, now=us(200) + us(241), sojourn=us(50)).ce_marked


class TestConservativeMarking:
    def test_one_mark_then_wait_one_interval(self):
        aqm = make_aqm()
        feed(aqm, now=0.0, sojourn=us(50))
        first = feed(aqm, now=us(250), sojourn=us(50))
        assert first.ce_marked
        # Immediately after the first mark, nothing more is marked until
        # marking_next (= now + interval) passes.
        assert not feed(aqm, now=us(300), sojourn=us(50)).ce_marked
        assert not feed(aqm, now=us(488), sojourn=us(50)).ce_marked
        assert feed(aqm, now=us(492), sojourn=us(50)).ce_marked

    def test_interval_shrinks_with_sqrt_count(self):
        """While the queue persists, successive marks come closer together:
        gap_k ~ interval / sqrt(k)."""
        aqm = make_aqm(interval=us(100))
        feed(aqm, now=0.0, sojourn=us(50))
        mark_times = []
        t = 0.0
        step = us(1)
        while len(mark_times) < 6 and t < us(2_000):
            t += step
            if feed(aqm, now=t, sojourn=us(50)).ce_marked:
                mark_times.append(t)
        gaps = [b - a for a, b in zip(mark_times, mark_times[1:])]
        # Gaps are decreasing (within one step's quantisation).
        for earlier, later in zip(gaps, gaps[1:]):
            assert later <= earlier + step
        # The k-th gap tracks interval/sqrt(k+1).
        assert gaps[-1] < gaps[0]

    def test_marking_state_clears_when_queue_expires(self):
        aqm = make_aqm()
        feed(aqm, now=0.0, sojourn=us(50))
        feed(aqm, now=us(250), sojourn=us(50))  # marking engaged
        feed(aqm, now=us(300), sojourn=us(1))  # queue drained
        assert not aqm._marking_state
        # A fresh persistent episode needs a fresh full interval again.
        feed(aqm, now=us(400), sojourn=us(50))
        assert not feed(aqm, now=us(500), sojourn=us(50)).ce_marked
        assert feed(aqm, now=us(645), sojourn=us(50)).ce_marked

    def test_marking_count_escalates(self):
        aqm = make_aqm(interval=us(100))
        feed(aqm, now=0.0, sojourn=us(50))
        t = 0.0
        for _ in range(3_000):
            t += us(1)
            feed(aqm, now=t, sojourn=us(50))
        assert aqm._marking_count > 5


class TestComposition:
    def test_instant_and_persistent_counted_separately(self):
        aqm = make_aqm()
        feed(aqm, now=0.0, sojourn=us(300))  # instant
        feed(aqm, now=us(10), sojourn=us(50))
        feed(aqm, now=us(300), sojourn=us(50))  # persistent
        assert aqm.stats.instant_marks == 1
        assert aqm.stats.persistent_marks == 1
        assert aqm.stats.marks == 2

    def test_persistent_state_tracks_during_instant_marks(self):
        """Sojourns above ins_target also exceed pst_target, so the
        persistent detector keeps running during an instantaneous episode."""
        aqm = make_aqm()
        feed(aqm, now=0.0, sojourn=us(300))
        feed(aqm, now=us(250), sojourn=us(300))
        assert aqm._marking_state  # persistent congestion recognised

    def test_reset_restores_pristine_state(self):
        aqm = make_aqm()
        feed(aqm, now=0.0, sojourn=us(300))
        feed(aqm, now=us(250), sojourn=us(50))
        aqm.reset()
        assert aqm.stats.marks == 0
        assert not aqm._marking_state
        assert aqm._first_above_time is None
        assert not feed(aqm, now=us(500), sojourn=us(50)).ce_marked


class TestAlgorithmProperties:
    @given(
        sojourns=st.lists(
            st.floats(min_value=0.0, max_value=400e-6, allow_nan=False),
            min_size=10,
            max_size=300,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_low_sojourn_never_marks(self, sojourns):
        """Packets below pst_target are never marked, whatever the history."""
        aqm = make_aqm(pst=us(10))
        t = 0.0
        for sojourn in sojourns:
            t += us(3)
            feed(aqm, now=t, sojourn=sojourn)
        final = feed(aqm, now=t + us(3), sojourn=us(5))
        assert not final.ce_marked

    @given(
        sojourns=st.lists(
            st.sampled_from([0.0, 5e-6, 50e-6, 120e-6, 300e-6]),
            min_size=20,
            max_size=200,
        ),
        gap_us=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_above_ins_always_marks(self, sojourns, gap_us):
        """The instantaneous guarantee: sojourn > ins_target => marked."""
        aqm = make_aqm()
        t = 0.0
        for sojourn in sojourns:
            t += us(gap_us)
            packet = feed(aqm, now=t, sojourn=sojourn)
            if sojourn > aqm.config.ins_target:
                assert packet.ce_marked

    @given(
        gap_us=st.integers(min_value=1, max_value=40),
        sojourn_us=st.integers(min_value=11, max_value=180),
    )
    @settings(max_examples=40, deadline=None)
    def test_persistent_marking_is_conservative(self, gap_us, sojourn_us):
        """Over one interval after detection, ECN# marks at most a handful
        of packets (vs cut-off marking which would mark all of them)."""
        aqm = make_aqm(interval=us(240))
        t, marked, total = 0.0, 0, 0
        while t < us(240 * 3):
            t += us(gap_us)
            total += 1
            if feed(aqm, now=t, sojourn=us(sojourn_us)).ce_marked:
                marked += 1
        # Conservative: at most ~1 mark per shrinking interval; over 3
        # intervals that is far fewer than the packet count.
        assert marked <= 12
        assert marked < total

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_deterministic_given_trace(self, seed):
        import random

        rng = random.Random(seed)
        trace = [
            (us(3) * (i + 1), rng.choice([0.0, 20e-6, 60e-6, 250e-6]))
            for i in range(200)
        ]

        def run():
            aqm = make_aqm()
            return [feed(aqm, now=t, sojourn=s).ce_marked for t, s in trace]

        assert run() == run()
