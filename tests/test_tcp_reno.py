"""Unit tests for ECN-enabled NewReno (lambda = 1 reaction)."""

import pytest

from repro.sim.units import MSS
from repro.tcp.reno import RenoSender

from test_tcp_sender import FakeHost, ack


def make_reno(sim, size_segments=1000, **kwargs):
    host = FakeHost(sim)
    kwargs.setdefault("init_cwnd", 10.0)
    sender = RenoSender(
        sim, host, flow_id=1, dst="b", size_bytes=size_segments * MSS, **kwargs
    )
    return sender, host


class TestEcnReaction:
    def test_halves_on_ece(self, sim):
        sender, _ = make_reno(sim)
        sender.start()
        for seq in range(1, 11):
            sender.receive(ack(seq))
        cwnd_before = sender.cwnd
        sender.receive(ack(11, ece=True))
        assert sender.cwnd == pytest.approx(cwnd_before / 2, rel=0.01)

    def test_once_per_window(self, sim):
        sender, _ = make_reno(sim)
        sender.start()
        for seq in range(1, 11):
            sender.receive(ack(seq))
        cwnd_before = sender.cwnd
        # Multiple ECE acks within the same window of data: one reduction.
        sender.receive(ack(11, ece=True))
        after_first = sender.cwnd
        sender.receive(ack(12, ece=True))
        sender.receive(ack(13, ece=True))
        assert after_first == pytest.approx(cwnd_before / 2, rel=0.05)
        assert sender.cwnd >= after_first  # grew, never cut again

    def test_new_window_allows_new_cut(self, sim):
        sender, _ = make_reno(sim)
        sender.start()
        sender.receive(ack(1, ece=True))
        first_cut_cwnd = sender.cwnd
        # Drain past the reduction epoch (send_next at cut time).
        epoch_end = sender._cwr_point
        for seq in range(2, epoch_end + 1):
            sender.receive(ack(seq, ece=False))
        grown = sender.cwnd
        assert grown > first_cut_cwnd
        sender.receive(ack(epoch_end + 1, ece=True))
        assert sender.cwnd == pytest.approx(grown / 2, rel=0.2)

    def test_floor_of_two_segments(self, sim):
        sender, _ = make_reno(sim, init_cwnd=2.0)
        sender.start()
        sender.receive(ack(1, ece=True))
        assert sender.cwnd >= 2.0

    def test_no_reaction_without_ece(self, sim):
        sender, _ = make_reno(sim)
        sender.start()
        for seq in range(1, 11):
            sender.receive(ack(seq, ece=False))
        assert sender.cwnd == pytest.approx(20.0)

    def test_ecn_signals_counted(self, sim):
        sender, _ = make_reno(sim)
        sender.start()
        sender.receive(ack(1, ece=True))
        assert sender.stats.ecn_signals == 1
        assert sender.stats.ece_acks == 1
