"""Fault-tolerance tests: injection grammar, the executor recovery matrix
(raise / hang / worker-exit across jobs=1 and jobs=N), failure pooling,
figure gap rendering, telemetry failure records, and the CLI exit-code
contract.

All fault scenarios are driven by the deterministic ``REPRO_FAULT_INJECT``
hook, so nothing here depends on flaky timing except the hang tests, which
use a generous per-spec timeout to absorb worker spawn cost.
"""

import pytest

from repro.experiments.executor import Executor, run_grid, seed_specs
from repro.experiments.faults import (
    FailedCell,
    InjectedFault,
    RunFailure,
    gather_failures,
    is_failure,
    maybe_inject_fault,
    parse_fault_directives,
)
from repro.experiments.report import format_failure_table
from repro.experiments.runner import pool_results
from repro.experiments.specs import AqmSpec, RunSpec
from repro.sim.units import us
from repro.workloads import WEB_SEARCH

from test_executor import result_fingerprint, tiny_spec

# Generous: must absorb worker spawn + numpy import before the spec starts.
HANG_TIMEOUT = 8.0


def grid_specs(n=4, label="RED-Tail"):
    """A small grid of independent star cells, seeds 3..3+n-1."""
    return [tiny_spec(seed=3 + offset, label=label) for offset in range(n)]


def inject(monkeypatch, directive):
    monkeypatch.setenv("REPRO_FAULT_INJECT", directive)


class TestDirectiveParsing:
    def test_empty_and_missing(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
        assert parse_fault_directives() == ()
        assert parse_fault_directives("") == ()
        assert parse_fault_directives(" ; ; ") == ()

    def test_grammar(self):
        assert parse_fault_directives("raise:ECN#") == (("raise", "ECN#", None),)
        assert parse_fault_directives("hang:seed=3|;exit:TCN:2") == (
            ("hang", "seed=3|", None),
            ("exit", "TCN", 2),
        )
        # Empty substring matches everything.
        assert parse_fault_directives("raise") == (("raise", "", None),)

    def test_unknown_action_warns_and_skips(self):
        with pytest.warns(UserWarning, match="unknown action"):
            assert parse_fault_directives("explode:ECN#") == ()

    def test_bad_max_attempt_warns_and_skips(self):
        with pytest.warns(UserWarning, match="not an integer"):
            assert parse_fault_directives("raise:ECN#:soon") == ()

    def test_injection_is_a_noop_without_directives(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
        maybe_inject_fault(tiny_spec(), attempt=0)  # must not raise

    def test_substring_targets_one_spec(self, monkeypatch):
        inject(monkeypatch, "raise:seed=4|")
        maybe_inject_fault(tiny_spec(seed=3), attempt=0)
        with pytest.raises(InjectedFault):
            maybe_inject_fault(tiny_spec(seed=4), attempt=0)

    def test_max_attempt_bounds_firing(self, monkeypatch):
        inject(monkeypatch, "raise:seed=3|:2")
        for attempt in (0, 1):
            with pytest.raises(InjectedFault):
                maybe_inject_fault(tiny_spec(seed=3), attempt=attempt)
        maybe_inject_fault(tiny_spec(seed=3), attempt=2)  # fault exhausted

    def test_exit_in_main_process_raises_instead(self, monkeypatch):
        # os._exit in the parent would kill the test run; the hook must
        # degrade to an exception outside worker processes.
        inject(monkeypatch, "exit:seed=3|")
        with pytest.raises(InjectedFault, match="worker-exit"):
            maybe_inject_fault(tiny_spec(seed=3), attempt=0)


class TestRunFailureRecord:
    def test_from_exception_is_picklable_and_typed(self):
        import pickle

        try:
            raise ValueError("boom")
        except ValueError as exc:
            failure = RunFailure.from_exception(tiny_spec(), exc, attempts=2)
        assert failure.kind == "exception"
        assert failure.exc_type == "ValueError"
        assert failure.message == "boom"
        assert "ValueError: boom" in failure.traceback
        assert failure.attempts == 2
        assert pickle.loads(pickle.dumps(failure)) == failure

    def test_stall_kind(self):
        from repro.sim.engine import SimulationStalled

        stall = SimulationStalled(clock=0.5, events=100, pending=3)
        failure = RunFailure.from_exception(tiny_spec(), stall, attempts=1)
        assert failure.kind == "stall"

    def test_to_dict_and_summary_line(self):
        failure = RunFailure.timeout(tiny_spec(seed=3), 5.0, attempts=1)
        data = failure.to_dict()
        assert data["kind"] == "timeout"
        assert data["seed"] == 3
        assert "traceback" not in data  # headline only; full text on record
        assert "timeout" in failure.summary_line()

    def test_format_failure_table(self):
        failure = RunFailure.timeout(tiny_spec(seed=3), 5.0, attempts=2)
        table = format_failure_table([failure])
        assert failure.spec_key in table
        assert "timeout" in table


class TestInProcessRecovery:
    def test_raise_isolates_one_cell(self, monkeypatch):
        inject(monkeypatch, "raise:seed=4|")
        executor = Executor(jobs=1, retries=1)
        results = executor.run(grid_specs(4))
        kinds = [type(r).__name__ for r in results]
        assert kinds == [
            "ExperimentResult", "RunFailure", "ExperimentResult",
            "ExperimentResult",
        ]
        assert results[1].kind == "exception"
        assert results[1].attempts == 2  # initial try + 1 retry
        assert executor.failures == [results[1]]
        assert executor.stats.failed == 1
        assert executor.stats.retried == 1

    def test_retry_then_succeed(self, monkeypatch):
        inject(monkeypatch, "raise:seed=3|:1")  # fails attempt 0 only
        executor = Executor(jobs=1, retries=1)
        results = executor.run([tiny_spec(seed=3)])
        assert not is_failure(results[0])
        assert executor.stats.failed == 0
        assert executor.stats.retried == 1

    def test_zero_retries_fails_after_one_attempt(self, monkeypatch):
        inject(monkeypatch, "raise:seed=3|")
        executor = Executor(jobs=1, retries=0)
        failure = executor.run([tiny_spec(seed=3)])[0]
        assert is_failure(failure)
        assert failure.attempts == 1
        assert executor.stats.retried == 0

    def test_survivors_bit_identical_to_clean_run(self, monkeypatch):
        specs = grid_specs(4)
        clean = [result_fingerprint(r) for r in Executor(jobs=1).run(specs)]

        inject(monkeypatch, "raise:seed=5|")
        damaged = Executor(jobs=1, retries=0).run(specs)
        for index, result in enumerate(damaged):
            if index == 2:  # seed 5
                assert is_failure(result)
            else:
                assert result_fingerprint(result) == clean[index]

    def test_failures_are_never_cached(self, monkeypatch, tmp_path):
        spec = tiny_spec(seed=3)
        inject(monkeypatch, "raise:seed=3|")
        executor = Executor(jobs=1, retries=0, cache=True, cache_dir=tmp_path)
        assert is_failure(executor.run([spec])[0])
        # Fault cleared: the spec must re-execute, not replay the failure.
        monkeypatch.delenv("REPRO_FAULT_INJECT")
        result = executor.run([spec])[0]
        assert not is_failure(result)
        assert executor.stats.cache_hits == 0


class TestPoolRecovery:
    def test_raise_in_worker_isolates_one_cell(self, monkeypatch):
        specs = grid_specs(4)
        clean = [result_fingerprint(r) for r in Executor(jobs=1).run(specs)]

        inject(monkeypatch, "raise:seed=4|")
        executor = Executor(jobs=4, retries=1)
        results = executor.run(specs)
        assert is_failure(results[1])
        assert results[1].kind == "exception"
        assert results[1].attempts == 2
        for index in (0, 2, 3):
            assert result_fingerprint(results[index]) == clean[index]
        assert executor.stats.failed == 1

    def test_worker_exit_rebuilds_pool_and_completes_grid(self, monkeypatch):
        specs = grid_specs(4)
        clean = [result_fingerprint(r) for r in Executor(jobs=1).run(specs)]

        inject(monkeypatch, "exit:seed=4|")
        executor = Executor(jobs=2, retries=1)
        results = executor.run(specs)
        # The dying worker breaks the pool; the executor must rebuild it,
        # requeue the innocent in-flight specs, and (after retries) give
        # the poisoned spec an in-process attempt -- where the directive
        # raises instead of exiting, producing a recorded failure.
        assert is_failure(results[1])
        assert executor.stats.pool_rebuilds >= 1
        for index in (0, 2, 3):
            assert result_fingerprint(results[index]) == clean[index]

    def test_worker_exit_fault_cleared_by_attempt_bound_recovers(
        self, monkeypatch
    ):
        # Worker dies on attempt 0 only: the BrokenProcessPool retry must
        # bring the cell back clean with no recorded failure.
        specs = grid_specs(4)
        inject(monkeypatch, "exit:seed=4|:1")
        executor = Executor(jobs=2, retries=1)
        results = executor.run(specs)
        assert not any(is_failure(r) for r in results)
        assert executor.stats.failed == 0
        assert executor.stats.pool_rebuilds >= 1

    def test_hang_with_timeout_marks_failure_and_grid_survives(
        self, monkeypatch
    ):
        specs = grid_specs(4)
        clean = [result_fingerprint(r) for r in Executor(jobs=1).run(specs)]

        inject(monkeypatch, "hang:seed=6|")
        executor = Executor(jobs=2, retries=1, spec_timeout=HANG_TIMEOUT)
        results = executor.run(specs)
        assert is_failure(results[3])
        assert results[3].kind == "timeout"
        assert executor.stats.timeouts == 1
        for index in (0, 1, 2):
            assert result_fingerprint(results[index]) == clean[index]

    def test_spec_timeout_forces_pool_even_at_jobs_1(self, monkeypatch):
        inject(monkeypatch, "hang:seed=3|")
        executor = Executor(jobs=1, retries=0, spec_timeout=HANG_TIMEOUT)
        results = executor.run([tiny_spec(seed=3), tiny_spec(seed=4)])
        assert is_failure(results[0])
        assert results[0].kind == "timeout"
        assert not is_failure(results[1])


class TestFailurePooling:
    def _mixed_results(self, monkeypatch):
        specs = seed_specs(tiny_spec(seed=3), 3)
        inject(monkeypatch, "raise:seed=4|")
        return Executor(jobs=1, retries=0).run(specs)

    def test_pool_results_pools_around_failures(self, monkeypatch):
        results = self._mixed_results(monkeypatch)
        survivors = [r for r in results if not is_failure(r)]
        pooled = pool_results(results)
        assert not is_failure(pooled)
        assert len(pooled.failures) == 1
        assert pooled.failures[0].seed == 4
        # Survivor-only pooling is exactly what a clean 2-seed pool gives.
        assert result_fingerprint(pooled) == result_fingerprint(
            pool_results(survivors)
        )

    def test_all_failed_cell_degrades_to_failed_cell(self, monkeypatch):
        inject(monkeypatch, "raise:star|")  # every star spec
        results = Executor(jobs=1, retries=0).run(seed_specs(tiny_spec(), 2))
        cell = pool_results(results)
        assert isinstance(cell, FailedCell)
        assert is_failure(cell)
        assert len(cell.failures) == 2
        # The duck-typed surface the figure modules consume.
        assert cell.n_flows == 0
        assert cell.summary.overall_avg is None
        assert cell.marks == 0 and cell.drops == 0

    def test_gather_failures_flattens_all_shapes(self, monkeypatch):
        results = self._mixed_results(monkeypatch)
        pooled = pool_results(results)
        failed_cell = FailedCell([RunFailure.timeout(tiny_spec(), 1.0, 1)])
        flat = gather_failures([pooled, failed_cell, *results])
        assert len(flat) == 3  # pooled's one + cell's one + raw one

    def test_run_grid_carries_failures_per_cell(self, monkeypatch):
        inject(monkeypatch, "raise:seed=4|")
        cells = [
            seed_specs(tiny_spec(seed=3), 2),   # loses seed 4
            seed_specs(tiny_spec(seed=9), 1),   # untouched
        ]
        pooled = run_grid(cells, Executor(jobs=1, retries=0))
        assert len(pooled[0].failures) == 1
        assert pooled[1].failures == []


class TestFigureGapRendering:
    def test_fig10_renders_gap_for_failed_scheme(self):
        from repro.experiments.figures import fig10

        failure = RunFailure.timeout(tiny_spec(label="CoDel"), 5.0, 1)
        good = fig10.MicroscopicRun(
            scheme="ECN#", samples=([], []), standing_queue_pkts=8.0,
            floor_queue_pkts=7.5, peak_queue_pkts=90, drops=0, marks=10,
        )
        result = fig10.Fig10Result(
            runs={"ECN#": good, "CoDel": failure}, fanout=100, burst_time=0.02
        )
        rendered = fig10.render(result)
        assert "(timeout)" in rendered
        assert "8.0" in rendered  # the surviving scheme still prints

    def test_fig11_accessors_treat_failures_as_gaps(self):
        from repro.experiments.figures import fig11

        failure = RunFailure.timeout(tiny_spec(label="CoDel"), 5.0, 1)
        good = __import__(
            "repro.experiments.figures.fig10", fromlist=["MicroscopicRun"]
        ).MicroscopicRun(
            scheme="ECN#", samples=([], []), standing_queue_pkts=8.0,
            floor_queue_pkts=7.5, peak_queue_pkts=90, drops=3, marks=10,
            query_fcts=[0.001, 0.002],
        )
        result = fig11.Fig11Result(
            fanouts=(100,),
            schemes=("ECN#", "CoDel"),
            runs={100: {"ECN#": good, "CoDel": failure}},
        )
        assert result.avg_query_fct(100, "CoDel") is None
        assert result.p99_query_fct(100, "CoDel") is None
        assert result.first_loss_fanout("CoDel") is None
        assert result.first_loss_fanout("ECN#") == 100
        rendered = fig11.render(result)
        assert "(timeout)" in rendered

    def test_fig13_ratio_none_when_either_side_failed(self):
        from repro.experiments.figures import fig13

        good = fig13.SchedulerRun(
            scheme="ECN#",
            goodputs=[
                [9.6e9, 0.0, 0.0],
                [6.4e9, 3.2e9, 0.0],
                [4.8e9, 2.4e9, 2.4e9],
            ],
            probe_fcts=[0.001],
        )
        failure = RunFailure.timeout(tiny_spec(label="TCN"), 5.0, 1)
        result = fig13.Fig13Result(runs={"ECN#": good, "TCN": failure})
        assert result.probe_fct_ratio() is None
        rendered = fig13.render(result)
        assert "(timeout)" in rendered
        assert "ratio: -" in rendered


class TestTelemetryFailures:
    def test_failures_reach_counters_recorder_and_snapshot(self, monkeypatch):
        from repro.telemetry import Telemetry, activate

        inject(monkeypatch, "raise:seed=4|")
        telemetry = Telemetry(trace_categories=["failure"], metrics=True)
        with activate(telemetry):
            executor = Executor(jobs=1, retries=0)
            executor.run(grid_specs(3))
        assert len(telemetry.failures) == 1
        assert telemetry.failures[0].kind == "exception"

        snapshot = telemetry.snapshot()
        assert snapshot["failures"][0]["seed"] == 4
        counters = {
            name: value
            for name, value in snapshot["metrics"]["counters"].items()
            if "run_failures_total" in name
        }
        assert sum(counters.values()) == 1

        events = telemetry.recorder.events("failure")
        assert len(events) == 1
        assert events[0].kind == "exception"
        assert events[0].fields["spec"] == telemetry.failures[0].spec_key


class TestStalledRunBecomesFailure:
    def test_drain_stall_is_recorded_as_stall_failure(self, monkeypatch):
        # Starve the drain budget so the run cannot reach idle: the engine
        # raises SimulationStalled and the executor records kind="stall".
        monkeypatch.setenv("REPRO_STALL_EVENTS", "50")
        executor = Executor(jobs=1, retries=0)
        failure = executor.run([tiny_spec(seed=3)])[0]
        assert is_failure(failure)
        assert failure.kind == "stall"
        assert failure.exc_type == "SimulationStalled"
        assert "pending" in failure.message or "events" in failure.message


class TestCliFailureContract:
    def _tiny_scale(self):
        from dataclasses import replace

        from repro.experiments.runner import Scale

        return replace(
            Scale.reduced(),
            n_flows_web_search=8,
            n_seeds=2,
        )

    def test_partial_failure_prints_table_and_exits_zero(
        self, monkeypatch, capsys
    ):
        from repro.cli import main
        from repro.experiments.runner import Scale

        tiny = self._tiny_scale()
        monkeypatch.setattr(Scale, "from_env", classmethod(lambda cls: tiny))
        inject(monkeypatch, "raise:seed=8|")
        assert main(["run", "fig2", "--no-cache", "--retries", "0"]) == 0
        out = capsys.readouterr().out
        assert "run(s) failed" in out
        assert "failed=5" in out  # one seed of each of 5 threshold cells
        assert "Figure 2" in out  # the figure still rendered

    def test_total_failure_exits_nonzero(self, monkeypatch, capsys):
        from repro.cli import main
        from repro.experiments.runner import Scale

        tiny = self._tiny_scale()
        monkeypatch.setattr(Scale, "from_env", classmethod(lambda cls: tiny))
        inject(monkeypatch, "raise:star|")
        assert main(["run", "fig2", "--no-cache", "--retries", "0"]) == 1
        captured = capsys.readouterr()
        assert "no usable results" in captured.err
        assert "run(s) failed" in captured.out

    def test_retry_and_timeout_flags_reach_executor(self, monkeypatch):
        import repro.cli as cli_module

        captured = {}
        real_executor = cli_module.Executor

        def spy(**kwargs):
            captured.update(kwargs)
            return real_executor(**kwargs)

        monkeypatch.setattr(cli_module, "Executor", spy)
        cli_module.main(["run", "fig5", "--retries", "2", "--spec-timeout", "30"])
        assert captured["retries"] == 2
        assert captured["spec_timeout"] == 30.0
