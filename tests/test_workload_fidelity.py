"""Workload fidelity: sampled flow-size statistics must match the
analytic CDF statistics within a (seeded, deterministic) bootstrap CI."""

import numpy as np
import pytest

from repro.validation.stats import bootstrap_ci
from repro.workloads.datamining import DATA_MINING
from repro.workloads.websearch import WEB_SEARCH

WORKLOADS = [WEB_SEARCH, DATA_MINING]
N_SAMPLES = 4000


def draw(workload, seed=2024):
    rng = np.random.default_rng(seed)
    return workload.sample(rng, size=N_SAMPLES).astype(float).tolist()


class TestSampledMean:
    @pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
    def test_analytic_mean_inside_bootstrap_ci(self, workload):
        samples = draw(workload)
        ci = bootstrap_ci(samples, confidence=0.99, seed=5)
        analytic = workload.mean()
        assert ci.contains(analytic), (
            f"{workload.name}: analytic mean {analytic:.0f} outside "
            f"bootstrap CI [{ci.low:.0f}, {ci.high:.0f}]"
        )

    @pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
    def test_deterministic_for_fixed_seed(self, workload):
        assert draw(workload) == draw(workload)


class TestSampledMedian:
    @pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
    def test_analytic_median_inside_bootstrap_ci(self, workload):
        samples = draw(workload)
        ci = bootstrap_ci(
            samples,
            confidence=0.99,
            seed=5,
            statistic=lambda values: float(np.median(values)),
        )
        analytic = workload.quantile(0.5)
        assert ci.low <= analytic <= ci.high, (
            f"{workload.name}: analytic median {analytic:.0f} outside "
            f"bootstrap CI [{ci.low:.0f}, {ci.high:.0f}]"
        )


class TestDistributionShape:
    def test_web_search_median_is_paper_value(self):
        assert WEB_SEARCH.quantile(0.5) == pytest.approx(15_000, rel=0.3)

    def test_data_mining_more_skewed_than_web_search(self):
        # Data mining: most flows tiny, mean dominated by elephants.
        assert DATA_MINING.quantile(0.5) < WEB_SEARCH.quantile(0.5)
        assert DATA_MINING.mean() > WEB_SEARCH.mean()
