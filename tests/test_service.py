"""Tests for the campaign results service: store index revalidation, the
query engine, the summary-tier LRU cache, HTTP dispatch (ETag / 304 /
content negotiation), the stdlib client against a live daemon, and
concurrent serving while a ``--shared``-style writer appends cells."""

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.scenarios import CampaignStore, CellRecord
from repro.scenarios.coordination import StoreLock, store_fingerprint
from repro.service import (
    Query,
    QueryError,
    ResultsService,
    ServiceClient,
    ServiceUnavailable,
    StoreIndex,
    SummaryCache,
    render,
    run_query,
    scheme_of,
)
from repro.service.daemon import _make_server
from repro.telemetry import Telemetry


def record(scenario="fig10", cell="incast|fanout=100|scheme=ECN#",
           token="t1", status="ok", metrics=None, fidelity="packet",
           shash="h1"):
    return CellRecord(
        scenario=scenario, scenario_hash=shash, cell_key=cell,
        component="incast", tokens=(token,), status=status,
        metrics={"m": 1.0} if metrics is None else metrics, failures=(),
        git_sha=None, version="0.1", fidelity=fidelity,
    )


def make_store(path, records):
    store = CampaignStore(path)
    store.append(records)
    return store


def counters(service):
    return service.telemetry.registry.snapshot()["counters"]


# ---------------------------------------------------------------- StoreIndex


class TestStoreIndex:
    def test_discovery_excludes_sidecars(self, tmp_path):
        make_store(tmp_path / "a.jsonl", [record()])
        make_store(tmp_path / "sub" / "b.jsonl", [record()])
        (tmp_path / "a.resources.jsonl").write_text("{}\n")
        (tmp_path / "a.leases.jsonl").write_text("{}\n")
        index = StoreIndex(tmp_path)
        assert index.discover() == ["a", "sub/b"]

    def test_get_loads_once_while_unchanged(self, tmp_path):
        make_store(tmp_path / "a.jsonl", [record()])
        index = StoreIndex(tmp_path)
        first = index.get("a")
        second = index.get("a")
        assert first is second
        assert index.store_loads == 1

    def test_append_invalidates_probe(self, tmp_path):
        store = make_store(tmp_path / "a.jsonl", [record(token="t1")])
        index = StoreIndex(tmp_path)
        before = index.get("a")
        store.append([record(token="t2")])
        after = index.get("a")
        assert index.store_loads == 2
        assert len(after.records) == 2
        assert after.etag_seed != before.etag_seed

    def test_sidecar_append_invalidates_probe(self, tmp_path):
        store = make_store(tmp_path / "a.jsonl", [record()])
        index = StoreIndex(tmp_path)
        index.get("a")
        store.append_resources([{"scenario": "fig10", "cell_key": "k",
                                 "wall_seconds": 1.0}])
        entry = index.get("a")
        assert index.store_loads == 2
        assert len(entry.resources) == 1

    def test_fingerprint_matches_store_fingerprint(self, tmp_path):
        store = make_store(tmp_path / "a.jsonl",
                           [record(token="t1"), record(token="t2")])
        entry = StoreIndex(tmp_path).get("a")
        assert entry.fingerprint == store_fingerprint(store)

    def test_path_escape_rejected(self, tmp_path):
        (tmp_path.parent / "outside.jsonl").write_text("")
        index = StoreIndex(tmp_path)
        assert index.get("../outside") is None
        assert index.get("/etc/passwd") is None
        assert index.get("") is None

    def test_unknown_store_is_none(self, tmp_path):
        assert StoreIndex(tmp_path).get("nope") is None


# --------------------------------------------------------------------- query


class TestQuery:
    def grid(self):
        return [
            record(cell="web|load=0.4|scheme=A", token="s|A|seed=1",
                   metrics={"fct": 1.0, "drops": 0.0}),
            record(cell="web|load=0.6|scheme=A", token="s|A|seed=2",
                   metrics={"fct": 3.0, "drops": 1.0}),
            record(cell="web|load=0.4|scheme=B", token="s|B|seed=1",
                   metrics={"fct": 2.0}),
            record(cell="web|load=0.6|scheme=B", token="s|B|seed=2",
                   metrics={"fct": 4.0}, status="failed"),
            record(scenario="other", cell="web|load=0.4|scheme=A",
                   token="s|A|seed=9", metrics={"fct": 9.0},
                   fidelity="fluid", shash="h2"),
        ]

    def test_scheme_of(self):
        assert scheme_of("web|load=0.4|scheme=ECN#") == "ECN#"
        assert scheme_of("no-scheme-here") == ""

    def test_unknown_param_rejected(self):
        with pytest.raises(QueryError):
            Query.from_params({"bogus": "x"})

    def test_bad_status_and_mode_rejected(self):
        with pytest.raises(QueryError):
            Query.from_params({"status": "weird"})
        with pytest.raises(QueryError):
            Query.from_params({"mode": "weird"})

    def test_filters(self):
        grid = self.grid()
        by_scheme = run_query(grid, Query(scheme="A", metric="fct",
                                          mode="cells"))
        assert [c["value"] for c in by_scheme["cells"]] == [1.0, 3.0, 9.0]
        by_scenario = run_query(grid, Query(scenario="other", mode="cells"))
        assert by_scenario["count"] == 1
        by_fidelity = run_query(grid, Query(fidelity="fluid", mode="cells"))
        assert by_fidelity["cells"][0]["scenario"] == "other"
        by_token = run_query(grid, Query(token="seed=1", metric="fct",
                                         mode="cells"))
        assert by_token["count"] == 2
        failed = run_query(grid, Query(status="failed", mode="cells"))
        assert failed["cells"][0]["status"] == "failed"

    def test_summary_aggregates(self):
        grid = self.grid()
        result = run_query(grid, Query(scenario="fig10", metric="fct"))
        rows = {r["scheme"]: r for r in result["summaries"]}
        assert rows["A"]["count"] == 2
        assert rows["A"]["mean"] == pytest.approx(2.0)
        assert rows["A"]["p50"] == pytest.approx(2.0)
        assert rows["A"]["min"] == 1.0 and rows["A"]["max"] == 3.0
        # The failed B cell is excluded by the default status=ok filter.
        assert rows["B"]["count"] == 1

    def test_query_hash_stable_and_distinct(self):
        assert Query(metric="fct").query_hash() == \
            Query(metric="fct").query_hash()
        assert Query(metric="fct").query_hash() != \
            Query(metric="drops").query_hash()

    def test_render_deterministic(self):
        result = run_query(self.grid(), Query(metric="fct"))
        assert render(result, "json") == render(result, "json")
        csv_body = render(run_query(self.grid(), Query(mode="cells")), "csv")
        lines = csv_body.decode().splitlines()
        assert lines[0].startswith("store,scenario,cell_key")
        with pytest.raises(QueryError):
            render(result, "xml")


# --------------------------------------------------------------------- cache


class TestSummaryCache:
    def test_lru_eviction_by_bytes(self):
        cache = SummaryCache(max_bytes=100)
        cache.put(("s", "q1", "json"), b"x" * 60)
        cache.put(("s", "q2", "json"), b"x" * 30)
        assert cache.get(("s", "q1", "json")) is not None  # q1 now MRU
        cache.put(("s", "q3", "json"), b"x" * 35)  # evicts q2 (LRU)
        assert cache.get(("s", "q2", "json")) is None
        assert cache.get(("s", "q1", "json")) is not None
        assert cache.evictions == 1

    def test_oversized_body_not_retained(self):
        cache = SummaryCache(max_bytes=10)
        cache.put(("s", "q", "json"), b"x" * 50)
        assert cache.get(("s", "q", "json")) is None
        assert cache.stats()["bytes"] == 0

    def test_ttl_expiry(self):
        clock = [0.0]
        cache = SummaryCache(max_bytes=1000, ttl=5.0,
                             clock=lambda: clock[0])
        cache.put(("s", "q", "json"), b"body")
        clock[0] = 4.0
        assert cache.get(("s", "q", "json")) == b"body"
        clock[0] = 10.0
        assert cache.get(("s", "q", "json")) is None
        assert cache.evictions == 1

    def test_telemetry_counters(self):
        telemetry = Telemetry(metrics=True, profile=False)
        cache = SummaryCache(max_bytes=100, telemetry=telemetry)
        cache.get(("s", "q", "json"))
        cache.put(("s", "q", "json"), b"b")
        cache.get(("s", "q", "json"))
        snap = telemetry.registry.snapshot()["counters"]
        assert snap["service_cache_misses_total"] == 1
        assert snap["service_cache_hits_total"] == 1


# ------------------------------------------------------------ dispatch (HTTP)


class TestDispatch:
    def service(self, tmp_path, records=None):
        make_store(tmp_path / "a.jsonl",
                   records or [record(token="t1",
                                      metrics={"fct": 1.0, "drops": 2.0})])
        return ResultsService(tmp_path)

    def test_query_json_and_csv(self, tmp_path):
        svc = self.service(tmp_path)
        js = svc.dispatch("/query", {"metric": "fct"}, {})
        assert js.status == 200 and js.content_type == "application/json"
        payload = json.loads(js.body)
        assert payload["summaries"][0]["metric"] == "fct"
        csv_resp = svc.dispatch("/query", {"format": "csv"}, {})
        assert csv_resp.content_type == "text/csv"
        accept = svc.dispatch("/query", {}, {"Accept": "text/csv"})
        assert accept.content_type == "text/csv"

    def test_warm_query_zero_store_reads(self, tmp_path):
        """Acceptance: a repeated query is served entirely from the summary
        cache -- zero store reads, asserted via telemetry counters."""
        svc = self.service(tmp_path)
        first = svc.dispatch("/query", {"metric": "fct"}, {})
        assert first.cache_state == "miss"
        snap = counters(svc)
        assert snap["service_store_loads_total"] == 1
        assert snap["service_cache_misses_total"] == 1
        for _ in range(5):
            warm = svc.dispatch("/query", {"metric": "fct"}, {})
            assert warm.cache_state == "hit"
            assert warm.body == first.body
        snap = counters(svc)
        assert snap["service_store_loads_total"] == 1  # zero extra reads
        assert snap["service_cache_hits_total"] == 5

    def test_etag_304_and_flip_on_append(self, tmp_path):
        svc = self.service(tmp_path)
        first = svc.dispatch("/query", {"metric": "fct"}, {})
        not_modified = svc.dispatch("/query", {"metric": "fct"},
                                    {"If-None-Match": first.etag})
        assert not_modified.status == 304
        assert not_modified.body == b""
        assert not_modified.cache_state == "not_modified"
        CampaignStore(tmp_path / "a.jsonl").append([record(token="t2")])
        changed = svc.dispatch("/query", {"metric": "fct"},
                               {"If-None-Match": first.etag})
        assert changed.status == 200
        assert changed.etag != first.etag

    def test_etag_varies_by_query_and_format(self, tmp_path):
        svc = self.service(tmp_path)
        a = svc.dispatch("/query", {"metric": "fct"}, {})
        b = svc.dispatch("/query", {"metric": "drops"}, {})
        c = svc.dispatch("/query", {"metric": "fct", "format": "csv"}, {})
        assert len({a.etag, b.etag, c.etag}) == 3

    def test_errors(self, tmp_path):
        svc = self.service(tmp_path)
        assert svc.dispatch("/nope", {}, {}).status == 404
        assert svc.dispatch("/query", {"store": "ghost"}, {}).status == 404
        bad = svc.dispatch("/query", {"bogus": "x"}, {})
        assert bad.status == 400
        assert b"bogus" in bad.body

    def test_healthz_and_metricz(self, tmp_path):
        svc = self.service(tmp_path)
        health = json.loads(svc.dispatch("/healthz", {}, {}).body)
        assert health["status"] == "ok" and health["stores"] == 1
        svc.dispatch("/query", {}, {})
        metricz = json.loads(svc.dispatch("/metricz", {}, {}).body)
        assert metricz["store_loads"] == 1
        assert "service_cache_misses_total" in metricz["metrics"]["counters"]
        assert metricz["cache"]["entries"] == 1

    def test_stores_and_resources_routes(self, tmp_path):
        svc = self.service(tmp_path)
        CampaignStore(tmp_path / "a.jsonl").append_resources(
            [{"scenario": "fig10", "cell_key": "k", "wall_seconds": 2.0}]
        )
        stores = json.loads(svc.dispatch("/stores", {}, {}).body)
        assert stores["stores"][0]["name"] == "a"
        assert stores["stores"][0]["cells"] == 1
        resources = json.loads(
            svc.dispatch("/resources", {"store": "a"}, {}).body
        )
        assert resources["resources"]["a"][0]["wall_seconds"] == 2.0

    def test_goldens_route(self, tmp_path):
        golden_dir = tmp_path / "baselines"
        golden_dir.mkdir()
        (golden_dir / "tiny.json").write_text('{"cells": {}}')
        make_store(tmp_path / "stores" / "a.jsonl", [record()])
        svc = ResultsService(tmp_path / "stores", golden_dir=golden_dir)
        listing = json.loads(svc.dispatch("/goldens", {}, {}).body)
        assert listing["goldens"] == ["tiny"]
        golden = svc.dispatch("/goldens", {"name": "tiny"}, {})
        assert json.loads(golden.body) == {"cells": {}}
        assert svc.dispatch("/goldens", {"name": "ghost"}, {}).status == 404
        assert svc.dispatch("/goldens", {"name": "../x"}, {}).status == 400

    def test_fluid_fidelity_round_trip(self, tmp_path):
        """fidelity is denormalized onto records (elided when packet) and
        queryable end to end."""
        fluid = record(token="tf", fidelity="fluid",
                       metrics={"fct": 5.0})
        svc = self.service(tmp_path, records=[record(token="tp"), fluid])
        got = json.loads(svc.dispatch(
            "/query", {"fidelity": "fluid", "mode": "cells"}, {}
        ).body)
        assert got["count"] == 1
        assert got["cells"][0]["fidelity"] == "fluid"
        # packet elision keeps serialized packet records field-free
        line = (tmp_path / "a.jsonl").read_text().splitlines()[0]
        assert "fidelity" not in json.loads(line)


# ----------------------------------------------------------- live HTTP server


@pytest.fixture
def live_service(tmp_path):
    store = make_store(
        tmp_path / "a.jsonl",
        [record(token="t1", metrics={"fct": 1.0})],
    )
    service = ResultsService(tmp_path)
    server = _make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield store, service, ServiceClient(f"http://{host}:{port}")
    finally:
        server.shutdown()
        server.server_close()


class TestClient:
    def test_healthz_stores_query(self, live_service):
        _store, _service, client = live_service
        assert client.healthz()["status"] == "ok"
        assert client.stores()["stores"][0]["name"] == "a"
        response = client.query({"metric": "fct"})
        assert response.status == 200
        assert response.etag
        assert response.json()["count"] == 1

    def test_304_round_trip(self, live_service):
        _store, _service, client = live_service
        first = client.query({"metric": "fct"})
        again = client.query({"metric": "fct"}, etag=first.etag)
        assert again.status == 304
        assert again.body == b""

    def test_csv_accept(self, live_service):
        _store, _service, client = live_service
        response = client.query({"mode": "cells"}, accept="text/csv")
        assert response.content_type.startswith("text/csv")
        assert response.body.decode().splitlines()[0].startswith("store,")

    def test_metricz_counts_requests(self, live_service):
        _store, _service, client = live_service
        client.query({"metric": "fct"})
        metricz = client.metricz()
        requests = {
            key: value
            for key, value in metricz["metrics"]["counters"].items()
            if key.startswith("service_requests_total")
        }
        assert any("endpoint=query" in key for key in requests)

    def test_unreachable_raises_service_unavailable(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServiceUnavailable):
            client.healthz()


class TestConcurrentServing:
    def test_readers_with_shared_writer(self, live_service):
        """Satellite: clients hammer one daemon while a --shared-style
        writer appends cells under the store lock.  No torn responses,
        every body parses, ETags flip exactly when the fingerprint
        changes, and 304s keep working on unchanged content."""
        store, _service, client = live_service
        stop = threading.Event()
        appended = []

        def writer():
            for index in range(8):
                with StoreLock(store.lock_path, timeout=5.0):
                    store.append([record(token=f"w{index}",
                                         metrics={"fct": float(index)})])
                appended.append(index)
                time.sleep(0.01)
            stop.set()

        def reader(worker):
            seen = []
            while not stop.is_set() or len(seen) == 0:
                response = client.query({"mode": "cells"})
                assert response.status == 200
                payload = response.json()  # raises on a torn body
                assert payload["count"] >= 1
                seen.append((response.etag, response.body))
            return seen

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        with ThreadPoolExecutor(max_workers=4) as pool:
            results = [pool.submit(reader, w) for w in range(4)]
            seen = [f.result(timeout=30) for f in results]
        writer_thread.join(timeout=10)
        assert len(appended) == 8

        # Byte-correctness: one ETag maps to exactly one body, across
        # every thread.
        body_by_etag = {}
        for thread_seen in seen:
            for etag, body in thread_seen:
                assert body_by_etag.setdefault(etag, body) == body

        # Settled state: ETag now stable and flips only with content.
        final = client.query({"mode": "cells"})
        assert final.json()["count"] == 9 * 1  # 1 seed + 8 appended cells
        repeat = client.query({"mode": "cells"}, etag=final.etag)
        assert repeat.status == 304
        store.append([record(token="one-more")])
        flipped = client.query({"mode": "cells"}, etag=final.etag)
        assert flipped.status == 200
        assert flipped.etag != final.etag


# ------------------------------------------------------------------ CLI verbs


class TestCli:
    def test_query_in_process(self, tmp_path, capsys):
        from repro.cli import main

        make_store(tmp_path / "a.jsonl",
                   [record(token="t1", metrics={"fct": 1.5})])
        etag_file = tmp_path / "etag.txt"
        assert main(["query", "--store-dir", str(tmp_path),
                     "--metric", "fct",
                     "--etag-out", str(etag_file)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summaries"][0]["mean"] == 1.5
        etag = etag_file.read_text().strip()
        assert main(["query", "--store-dir", str(tmp_path),
                     "--metric", "fct",
                     "--if-none-match", etag]) == 0
        assert "not modified" in capsys.readouterr().out

    def test_query_csv_out_file(self, tmp_path):
        from repro.cli import main

        make_store(tmp_path / "a.jsonl", [record()])
        out = tmp_path / "result.csv"
        assert main(["query", "--store-dir", str(tmp_path),
                     "--mode", "cells", "--format", "csv",
                     "--out", str(out)]) == 0
        assert out.read_text().splitlines()[0].startswith("store,")

    def test_query_needs_source(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["query"])

    def test_query_url_fallback_to_store_dir(self, tmp_path, capsys):
        from repro.cli import main

        make_store(tmp_path / "a.jsonl", [record()])
        assert main(["query", "--url", "http://127.0.0.1:9",
                     "--store-dir", str(tmp_path)]) == 0
        assert json.loads(capsys.readouterr().out)["count"] == 1


# ------------------------------------------------------- obs metricz section


class TestObsMetricz:
    def test_report_renders_service_section(self, tmp_path):
        from repro.obs import build_report

        svc = ResultsService(tmp_path)
        make_store(tmp_path / "a.jsonl", [record()])
        svc.dispatch("/query", {}, {})
        svc.dispatch("/query", {}, {})
        dump = tmp_path / "metricz.json"
        dump.write_bytes(svc.dispatch("/metricz", {}, {}).body)
        report = build_report(metricz=dump)
        markdown = report.to_markdown()
        assert "## Results service" in markdown
        assert "summary-cache hit rate %" in markdown
        assert report.service["cache"]["hits"] == 1
