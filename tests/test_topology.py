"""Unit tests for topology builders (star/dumbbell/incast, leaf-spine)."""

import pytest

from repro.core.red import SojournRed
from repro.sim.packet import PacketFactory
from repro.sim.scheduler import DwrrScheduler
from repro.sim.units import gbps, us
from repro.tcp import open_flow
from repro.topology import build_dumbbell, build_incast, build_leafspine, build_star


class TestStar:
    def test_dumbbell_has_seven_senders(self):
        topo = build_dumbbell()
        assert len(topo.senders) == 7
        assert topo.receiver.name == "recv"

    def test_incast_has_sixteen_senders(self):
        topo = build_incast()
        assert len(topo.senders) == 16

    def test_bottleneck_is_switch_to_receiver(self):
        topo = build_star(n_senders=3)
        assert topo.bottleneck.peer is topo.receiver

    def test_aqm_factory_gives_fresh_instances(self):
        instances = []

        def factory():
            aqm = SojournRed(us(100))
            instances.append(aqm)
            return aqm

        build_star(n_senders=3, aqm_factory=factory)
        # One per switch egress port: 3 to senders + 1 to receiver.
        assert len(instances) == 4
        assert len(set(map(id, instances))) == 4

    def test_delay_stages_installed(self):
        topo = build_star(n_senders=3)
        for host in topo.senders:
            assert topo.stage_for(host) is host.egress_delay_fn

    def test_host_uplink_buffer_deeper_than_switch(self):
        topo = build_star(n_senders=2)
        host_uplink = topo.senders[0].uplink
        assert host_uplink.buffer.capacity_bytes > topo.bottleneck.buffer.capacity_bytes

    def test_custom_bottleneck_scheduler(self):
        topo = build_star(
            n_senders=2,
            bottleneck_scheduler_factory=lambda: DwrrScheduler([2.0, 1.0, 1.0]),
        )
        assert isinstance(topo.bottleneck.scheduler, DwrrScheduler)
        assert topo.bottleneck.scheduler.num_queues == 3

    def test_invalid_sender_count(self):
        with pytest.raises(ValueError):
            build_star(n_senders=0)

    def test_end_to_end_flow(self):
        topo = build_star(n_senders=2)
        flow = open_flow(
            topo.network, PacketFactory(), topo.senders[0], topo.receiver, 10_000
        )
        topo.network.sim.run_until_idle()
        assert flow.completed


class TestLeafSpine:
    def test_dimensions(self):
        topo = build_leafspine(n_spines=2, n_leaves=3, hosts_per_leaf=4)
        assert len(topo.spines) == 2
        assert len(topo.leaves) == 3
        assert len(topo.hosts) == 12
        assert len(topo.hosts_by_leaf) == 3

    def test_paper_scale_dimensions_by_default(self):
        # Default args are the paper's 8x8x16; just verify arithmetic (do
        # not build it -- 128 hosts is slow to wire in a unit test).
        import inspect

        signature = inspect.signature(build_leafspine)
        assert signature.parameters["n_spines"].default == 8
        assert signature.parameters["n_leaves"].default == 8
        assert signature.parameters["hosts_per_leaf"].default == 16

    def test_leaf_of(self):
        topo = build_leafspine(n_spines=2, n_leaves=2, hosts_per_leaf=3)
        assert topo.leaf_of(0) == 0
        assert topo.leaf_of(2) == 0
        assert topo.leaf_of(3) == 1

    def test_ecmp_routes_across_spines(self):
        topo = build_leafspine(n_spines=4, n_leaves=2, hosts_per_leaf=2)
        leaf0 = topo.leaves[0]
        remote_host = topo.hosts_by_leaf[1][0]
        # Towards a remote rack, all 4 spine uplinks are equal cost.
        assert len(leaf0.routes[remote_host.name]) == 4
        # Towards a local host there is exactly one route.
        local_host = topo.hosts_by_leaf[0][0]
        assert len(leaf0.routes[local_host.name]) == 1

    def test_cross_rack_flow_completes(self):
        topo = build_leafspine(n_spines=2, n_leaves=2, hosts_per_leaf=2)
        src = topo.hosts_by_leaf[0][0]
        dst = topo.hosts_by_leaf[1][1]
        flow = open_flow(topo.network, PacketFactory(), src, dst, 100_000)
        topo.network.sim.run_until_idle()
        assert flow.completed

    def test_same_rack_flow_completes(self):
        topo = build_leafspine(n_spines=2, n_leaves=2, hosts_per_leaf=2)
        src, dst = topo.hosts_by_leaf[0]
        flow = open_flow(topo.network, PacketFactory(), src, dst, 100_000)
        topo.network.sim.run_until_idle()
        assert flow.completed

    def test_aqm_on_every_fabric_port(self):
        instances = []

        def factory():
            aqm = SojournRed(us(100))
            instances.append(aqm)
            return aqm

        build_leafspine(n_spines=2, n_leaves=2, hosts_per_leaf=2, aqm_factory=factory)
        # leaf->host: 4; leaf->spine: 4; spine->leaf: 4.
        assert len(instances) == 12

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            build_leafspine(n_spines=0, n_leaves=2, hosts_per_leaf=2)

    def test_flows_spread_over_spines(self):
        """Many flows between two racks should use multiple spine paths."""
        topo = build_leafspine(n_spines=4, n_leaves=2, hosts_per_leaf=2)
        factory = PacketFactory()
        src = topo.hosts_by_leaf[0][0]
        dst = topo.hosts_by_leaf[1][0]
        for _ in range(32):
            open_flow(topo.network, factory, src, dst, 5_000)
        topo.network.sim.run_until_idle()
        used_spines = sum(
            1
            for spine in topo.spines
            if any(port.stats.tx_packets > 0 for port in spine.ports)
        )
        assert used_spines >= 2


class TestOversubscription:
    def fabric_ports(self, topo):
        uplinks, downlinks, host_links = [], [], []
        for leaf in topo.leaves:
            for port in leaf.ports:
                if "->spine" in port.name:
                    uplinks.append(port)
                else:
                    host_links.append(port)
        for spine in topo.spines:
            downlinks.extend(spine.ports)
        return uplinks, downlinks, host_links

    def test_uplinks_run_at_fraction_of_host_rate(self):
        topo = build_leafspine(
            n_spines=2, n_leaves=2, hosts_per_leaf=2,
            link_rate_bps=gbps(10), oversubscription=2.0,
        )
        uplinks, downlinks, host_links = self.fabric_ports(topo)
        assert uplinks and downlinks and host_links
        for port in uplinks + downlinks:
            assert port.rate_bps == gbps(10) / 2.0
        for port in host_links:
            assert port.rate_bps == gbps(10)

    def test_default_ratio_leaves_rates_untouched(self):
        topo = build_leafspine(n_spines=2, n_leaves=2, hosts_per_leaf=2,
                               link_rate_bps=gbps(10))
        uplinks, downlinks, host_links = self.fabric_ports(topo)
        for port in uplinks + downlinks + host_links:
            assert port.rate_bps == gbps(10)

    def test_undersubscription_rejected(self):
        with pytest.raises(ValueError, match="oversubscription must be >= 1"):
            build_leafspine(n_spines=2, n_leaves=2, hosts_per_leaf=2,
                            oversubscription=0.5)

    def test_oversubscribed_fabric_still_completes_flows(self):
        topo = build_leafspine(n_spines=2, n_leaves=2, hosts_per_leaf=2,
                               oversubscription=4.0)
        src = topo.hosts_by_leaf[0][0]
        dst = topo.hosts_by_leaf[1][0]
        flow = open_flow(topo.network, PacketFactory(), src, dst, 100_000)
        topo.network.sim.run_until_idle()
        assert flow.completed
