"""Tests for the match-action pipeline and the ECN# P4 program.

The crown jewel is the differential test: the pipeline implementation of
Algorithm 1 (integer ticks, single-access registers, lookup-table sqrt) must
agree with the pure-Python reference ``repro.core.EcnSharp`` on long random
traces, and with a hand-written integer-exact reference everywhere.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ecn_sharp import EcnSharp, EcnSharpConfig
from repro.dataplane.ecn_sharp_p4 import SQRT_TABLE_SIZE, EcnSharpPipeline
from repro.dataplane.pipeline import MatchActionTable, Pipeline
from repro.dataplane.registers import RegisterFile
from repro.dataplane.timestamp import TICK_SECONDS

from conftest import StampedPacket


class TestMatchActionTable:
    def test_default_action_only(self):
        seen = []
        table = MatchActionTable("t", default_action=lambda meta: seen.append(meta["x"]))
        table.apply({"x": 1})
        assert seen == [1]
        assert table.entry_count == 0

    def test_match_selects_action(self):
        table = MatchActionTable(
            "t",
            match=lambda meta: meta["key"],
            actions={
                "a": lambda meta: meta.update(out="A"),
                "b": lambda meta: meta.update(out="B"),
            },
            default_action=lambda meta: meta.update(out="default"),
        )
        for key, expected in (("a", "A"), ("b", "B"), ("zz", "default")):
            meta = {"key": key}
            table.apply(meta)
            assert meta["out"] == expected

    def test_actions_without_match_rejected(self):
        with pytest.raises(ValueError):
            MatchActionTable("t", actions={"a": lambda meta: None})

    def test_hit_count(self):
        table = MatchActionTable("t", default_action=lambda meta: None)
        for _ in range(3):
            table.apply({})
        assert table.hit_count == 3


class TestPipeline:
    def test_tables_run_in_order(self):
        pipeline = Pipeline()
        pipeline.add_table(MatchActionTable("a", default_action=lambda m: m.update(x=1)))
        pipeline.add_table(
            MatchActionTable("b", default_action=lambda m: m.update(y=m["x"] + 1))
        )
        meta = pipeline.process({})
        assert meta == {"x": 1, "y": 2}

    def test_each_process_is_one_register_pass(self):
        pipeline = Pipeline()
        array = pipeline.registers.declare("r", 1)
        pipeline.add_table(
            MatchActionTable(
                "t", default_action=lambda m: array.read_modify_write(0, lambda o: (o + 1, o))
            )
        )
        pipeline.process({})
        pipeline.process({})
        assert array.peek(0) == 2


class TestEcnSharpPipelineBasics:
    def make(self, ins=195, pst=10, interval=234):
        return EcnSharpPipeline(ins, pst, interval)

    def test_resource_budget_matches_paper(self):
        report = self.make().resource_report()
        assert report["tables"] == 7
        assert report["register_arrays_32"] == 5
        assert report["register_arrays_64"] == 2
        assert report["table_entries"] < 10  # "less than 10 entries"

    def test_instantaneous_mark(self):
        pipeline = self.make()
        meta = pipeline.process_packet(10_000, sojourn_ticks=300)
        assert meta["mark"] and meta["mark_kind"] == "instant"

    def test_no_mark_when_quiet(self):
        pipeline = self.make()
        meta = pipeline.process_packet(10_000, sojourn_ticks=2)
        assert not meta["mark"]

    def test_persistent_mark_after_interval(self):
        pipeline = self.make()
        t_ns = 1_000_000
        pipeline.process_packet(t_ns, sojourn_ticks=50)
        t_ns += 240 * 1024  # > interval later
        meta = pipeline.process_packet(t_ns, sojourn_ticks=50)
        assert meta["mark"] and meta["mark_kind"] == "persistent"

    def test_per_port_state_isolated(self):
        pipeline = self.make()
        t_ns = 1_000_000
        pipeline.process_packet(t_ns, sojourn_ticks=50, port=0)
        meta = pipeline.process_packet(t_ns + 240 * 1024, sojourn_ticks=50, port=1)
        assert not meta["mark"]  # port 1 has no history

    def test_mark_counter_register(self):
        pipeline = self.make()
        pipeline.process_packet(10_000, sojourn_ticks=300, port=3)
        pipeline.process_packet(20_000, sojourn_ticks=300, port=3)
        assert pipeline.reg_mark_counter.peek(3) == 2

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            EcnSharpPipeline(0, 10, 240)

    def test_sqrt_lookup_values(self):
        pipeline = self.make(interval=240)
        assert pipeline._delta_for(1) == 240
        assert pipeline._delta_for(4) == 120
        assert pipeline._delta_for(SQRT_TABLE_SIZE + 50) == pipeline._delta_for(
            SQRT_TABLE_SIZE
        )


def _int_reference(ins, pst, interval, trace):
    """Hand-written Algorithm 1 over integer ticks: the oracle."""
    first_above = None
    marking_state = False
    marking_count = 0
    marking_next = 0.0
    decisions = []
    for now, sojourn in trace:
        if sojourn < pst:
            first_above = None
            detected = False
        elif first_above is None:
            first_above = now
            detected = False
        else:
            detected = now > first_above + interval
        if marking_state:
            if not detected:
                marking_state = False
                persistent = False
            elif now > marking_next:
                marking_count += 1
                marking_next += max(1, int(round(interval / math.sqrt(marking_count))))
                persistent = True
            else:
                persistent = False
        elif detected:
            marking_state = True
            marking_count = 1
            marking_next = now + interval
            persistent = True
        else:
            persistent = False
        decisions.append(sojourn > ins or persistent)
    return decisions


def _random_trace(seed, length=3000, max_gap_ticks=40):
    rng = random.Random(seed)
    trace = []
    now = 1000
    for _ in range(length):
        now += rng.randint(1, max_gap_ticks)
        sojourn = rng.choice((0, 1, 5, 9, 10, 11, 30, 80, 150, 195, 196, 250))
        trace.append((now, sojourn))
    return trace


class TestDifferential:
    @pytest.mark.parametrize("seed", range(5))
    def test_pipeline_matches_integer_oracle(self, seed):
        ins, pst, interval = 195, 10, 234
        trace = _random_trace(seed)
        pipeline = EcnSharpPipeline(ins, pst, interval)
        pipeline_decisions = [
            bool(pipeline.process_packet(now * 1024, sojourn)["mark"])
            for now, sojourn in trace
        ]
        oracle = _int_reference(ins, pst, interval, trace)
        assert pipeline_decisions == oracle

    @pytest.mark.parametrize("seed", range(3))
    def test_pipeline_matches_float_reference_closely(self, seed):
        """The production reference uses float seconds; agreement must be
        near-total (rounding of the sqrt lookup can shift a mark by one
        packet occasionally)."""
        ins, pst, interval = 195, 10, 234
        trace = _random_trace(seed, length=5000)
        pipeline = EcnSharpPipeline(ins, pst, interval)
        reference = EcnSharp(
            EcnSharpConfig(
                ins_target=float(ins), pst_target=float(pst), pst_interval=float(interval)
            )
        )
        agree = 0
        for now, sojourn in trace:
            meta = pipeline.process_packet(now * 1024, sojourn)
            packet = StampedPacket(sojourn=float(sojourn))
            reference.on_dequeue(packet, float(now))
            agree += int(bool(meta["mark"]) == packet.ce_marked)
        assert agree / len(trace) > 0.995

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_oracle_agreement_any_seed(self, seed):
        ins, pst, interval = 100, 5, 120
        trace = _random_trace(seed, length=500, max_gap_ticks=20)
        pipeline = EcnSharpPipeline(ins, pst, interval)
        pipeline_decisions = [
            bool(pipeline.process_packet(now * 1024, sojourn)["mark"])
            for now, sojourn in trace
        ]
        assert pipeline_decisions == _int_reference(ins, pst, interval, trace)

    def test_line_rate_trace_no_access_violations(self):
        """A back-to-back 10G packet trace (one packet per ~1.2us) runs the
        whole program without tripping the register discipline."""
        pipeline = EcnSharpPipeline(195, 10, 234)
        t_ns = 0
        for index in range(10_000):
            t_ns += 1200
            pipeline.process_packet(t_ns, sojourn_ticks=index % 300)
