"""Transport integration: real transfers over the simulated network."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.red import SojournRed
from repro.sim.packet import PacketFactory
from repro.sim.units import gbps, kb, mb, us
from repro.tcp import open_flow
from repro.topology import build_star

from conftest import make_two_host_network


def transfer(size_bytes, cc="dctcp", n_background=0, buffer_bytes=mb(1)):
    """One flow (plus optional competitors) over a 4-sender star."""
    topo = build_star(n_senders=4, buffer_bytes=buffer_bytes)
    factory = PacketFactory()
    main = open_flow(topo.network, factory, topo.senders[0], topo.receiver, size_bytes, cc=cc)
    competitors = [
        open_flow(topo.network, factory, topo.senders[1 + i], topo.receiver, size_bytes, cc=cc)
        for i in range(n_background)
    ]
    topo.network.sim.run_until_idle(max_events=50_000_000)
    return topo, main, competitors


class TestReliableDelivery:
    @pytest.mark.parametrize("size", [1, 100, 1460, 1461, 100_000, 5_000_000])
    def test_every_size_completes(self, size):
        _, flow, _ = transfer(size)
        assert flow.completed
        assert flow.sink.expected == flow.sender.total_segments

    @pytest.mark.parametrize("cc", ["dctcp", "reno"])
    def test_both_transports_complete(self, cc):
        _, flow, _ = transfer(500_000, cc=cc)
        assert flow.completed

    def test_fct_close_to_line_rate_for_bulk(self):
        _, flow, _ = transfer(10_000_000)
        goodput = flow.size_bytes * 8 / flow.fct
        assert goodput > 0.8 * gbps(10)

    def test_short_flow_fct_close_to_rtt(self):
        _, flow, _ = transfer(1000)
        # One segment: RTT ~ 4x2us prop + serialization; FCT well under 50us.
        assert flow.fct < us(50)

    def test_completes_despite_tiny_switch_buffer(self):
        # 15KB buffer forces drops; retransmission must still finish the flow.
        topo, flow, _ = transfer(2_000_000, n_background=2, buffer_bytes=15_000)
        assert flow.completed
        total_drops = sum(p.stats.dropped_total for p in topo.switch.ports)
        assert total_drops > 0  # the scenario actually exercised loss


class TestFairnessAndSharing:
    def test_two_flows_share_fairly_with_marking(self):
        topo = build_star(
            n_senders=4, aqm_factory=lambda: SojournRed(us(60))
        )
        factory = PacketFactory()
        flows = [
            open_flow(topo.network, factory, topo.senders[i], topo.receiver, 8_000_000)
            for i in range(2)
        ]
        topo.network.sim.run_until_idle(max_events=50_000_000)
        fcts = [flow.fct for flow in flows]
        assert max(fcts) / min(fcts) < 1.3  # near-equal completion

    def test_aggregate_goodput_near_capacity(self):
        topo = build_star(n_senders=4, aqm_factory=lambda: SojournRed(us(60)))
        factory = PacketFactory()
        flows = [
            open_flow(topo.network, factory, topo.senders[i], topo.receiver, 4_000_000)
            for i in range(3)
        ]
        topo.network.sim.run_until_idle(max_events=50_000_000)
        total_bytes = sum(flow.size_bytes for flow in flows)
        duration = max(flow.sink.completion_time for flow in flows)
        assert total_bytes * 8 / duration > 0.75 * gbps(10)

    def test_marking_keeps_queue_bounded(self):
        topo = build_star(n_senders=4, aqm_factory=lambda: SojournRed(us(60)))
        factory = PacketFactory()
        for index in range(3):
            open_flow(topo.network, factory, topo.senders[index], topo.receiver, 4_000_000)
        from repro.sim.monitor import QueueMonitor

        monitor = QueueMonitor(
            topo.sim, topo.bottleneck, interval=us(20), stop=0.008
        )
        topo.network.run(until=0.009)
        # 60us sojourn at 10G ~ 50 packets; cut-off marking bounds the queue
        # near the threshold (plus slow-start overshoot transients).
        assert monitor.average_packets() < 150


class TestOpenFlowApi:
    def test_same_host_rejected(self):
        topo = build_star(n_senders=2)
        factory = PacketFactory()
        with pytest.raises(ValueError):
            open_flow(topo.network, factory, topo.senders[0], topo.senders[0], 1000)

    def test_unknown_cc_rejected(self):
        topo = build_star(n_senders=2)
        factory = PacketFactory()
        with pytest.raises(ValueError):
            open_flow(
                topo.network, factory, topo.senders[0], topo.receiver, 1000, cc="bbr"
            )

    def test_fct_before_completion_raises(self):
        topo = build_star(n_senders=2)
        factory = PacketFactory()
        flow = open_flow(topo.network, factory, topo.senders[0], topo.receiver, 1000)
        with pytest.raises(RuntimeError):
            _ = flow.fct

    def test_on_complete_receives_handle(self):
        topo = build_star(n_senders=2)
        factory = PacketFactory()
        seen = []
        flow = open_flow(
            topo.network, factory, topo.senders[0], topo.receiver, 1000,
            on_complete=seen.append,
        )
        topo.network.sim.run_until_idle()
        assert seen == [flow]

    def test_start_time_honoured(self):
        topo = build_star(n_senders=2)
        factory = PacketFactory()
        flow = open_flow(
            topo.network, factory, topo.senders[0], topo.receiver, 1000,
            start_time=0.005,
        )
        topo.network.sim.run_until_idle()
        assert flow.sink.completion_time > 0.005


class TestPropertyTransfers:
    @given(size=st.integers(min_value=1, max_value=300_000))
    @settings(max_examples=20, deadline=None)
    def test_any_size_delivers_exactly_once(self, size):
        _, flow, _ = transfer(size)
        assert flow.completed
        sink = flow.sink
        # Everything arrived, nothing left buffered out of order.
        assert sink.expected == flow.sender.total_segments
        assert not sink._out_of_order

    @given(
        sizes=st.lists(
            st.integers(min_value=1_000, max_value=200_000), min_size=2, max_size=4
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_concurrent_flows_all_complete(self, sizes):
        topo = build_star(n_senders=4, aqm_factory=lambda: SojournRed(us(100)))
        factory = PacketFactory()
        flows = [
            open_flow(
                topo.network,
                factory,
                topo.senders[index % len(topo.senders)],
                topo.receiver,
                size,
            )
            for index, size in enumerate(sizes)
        ]
        topo.network.sim.run_until_idle(max_events=50_000_000)
        assert all(flow.completed for flow in flows)
