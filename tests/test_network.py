"""Unit tests for nodes, switches, hosts, wiring and ECMP routing."""

import pytest

from repro.sim.network import Network
from repro.sim.units import gbps, us

from conftest import make_packet, make_two_host_network


class TestConstruction:
    def test_duplicate_names_rejected(self):
        net = Network()
        net.add_host("x")
        with pytest.raises(ValueError):
            net.add_switch("x")

    def test_connect_creates_two_ports(self):
        net = Network()
        a, b = net.add_host("a"), net.add_host("b")
        port_ab, port_ba = net.connect(a, b, gbps(10), us(1))
        assert port_ab.peer is b and port_ba.peer is a
        assert a.neighbors["b"] is port_ab

    def test_per_direction_buffer_override(self):
        net = Network()
        a, b = net.add_host("a"), net.add_host("b")
        port_ab, port_ba = net.connect(
            a, b, gbps(10), us(1), buffer_bytes=1000, buffer_bytes_a_to_b=9999
        )
        assert port_ab.buffer.capacity_bytes == 9999
        assert port_ba.buffer.capacity_bytes == 1000


class TestRouting:
    def test_two_host_delivery(self):
        net, a, b, _ = make_two_host_network()
        received = []

        class _Endpoint:
            def receive(self, packet):
                received.append(packet.seq)

        b.register_endpoint(1, _Endpoint())
        a.transmit(make_packet(flow_id=1, seq=42, src="a", dst="b"))
        net.sim.run()
        assert received == [42]

    def test_switch_without_route_raises(self):
        net = Network()
        a = net.add_host("a")
        sw = net.add_switch("sw")
        net.connect(a, sw, gbps(10), us(1))
        # No route computed for unknown destination "zzz".
        net.compute_routes()
        packet = make_packet(dst="zzz")
        with pytest.raises(RuntimeError):
            sw.receive(packet)

    def test_ecmp_multiple_equal_paths(self):
        # diamond: a - s1 - {s2, s3} - s4 - b
        net = Network()
        a, b = net.add_host("a"), net.add_host("b")
        s1, s2, s3, s4 = (net.add_switch(f"s{i}") for i in range(1, 5))
        net.connect(a, s1, gbps(10), us(1))
        net.connect(s1, s2, gbps(10), us(1))
        net.connect(s1, s3, gbps(10), us(1))
        net.connect(s2, s4, gbps(10), us(1))
        net.connect(s3, s4, gbps(10), us(1))
        net.connect(s4, b, gbps(10), us(1))
        net.compute_routes()
        assert len(s1.routes["b"]) == 2  # two equal-cost next hops
        assert len(s4.routes["b"]) == 1

    def test_ecmp_is_per_flow_deterministic(self):
        net = Network()
        a, b = net.add_host("a"), net.add_host("b")
        s1, s2, s3, s4 = (net.add_switch(f"s{i}") for i in range(1, 5))
        net.connect(a, s1, gbps(10), us(1))
        net.connect(s1, s2, gbps(10), us(1))
        net.connect(s1, s3, gbps(10), us(1))
        net.connect(s2, s4, gbps(10), us(1))
        net.connect(s3, s4, gbps(10), us(1))
        net.connect(s4, b, gbps(10), us(1))
        net.compute_routes()
        ports = s1.routes["b"]
        from repro.sim.network import _ecmp_hash

        first = _ecmp_hash(17, s1._salt) % len(ports)
        for _ in range(10):
            assert _ecmp_hash(17, s1._salt) % len(ports) == first

    def test_ecmp_spreads_flows(self):
        from repro.sim.network import _ecmp_hash

        counts = [0, 0, 0, 0]
        for flow_id in range(1000):
            counts[_ecmp_hash(flow_id, salt=3) % 4] += 1
        # Roughly uniform: every path gets 15-35% of flows.
        assert all(150 <= count <= 350 for count in counts)


class TestHost:
    def test_single_uplink_enforced(self):
        net = Network()
        a = net.add_host("a")
        with pytest.raises(RuntimeError):
            _ = a.uplink  # no ports yet

    def test_duplicate_endpoint_rejected(self):
        net, a, b, _ = make_two_host_network()

        class _Endpoint:
            def receive(self, packet):
                pass

        a.register_endpoint(5, _Endpoint())
        with pytest.raises(ValueError):
            a.register_endpoint(5, _Endpoint())

    def test_unknown_flow_packet_consumed_silently(self):
        net, a, b, _ = make_two_host_network()
        a.transmit(make_packet(flow_id=99, src="a", dst="b"))
        net.sim.run()  # must not raise

    def test_egress_delay_applied(self):
        net, a, b, _ = make_two_host_network()
        arrivals = []

        class _Endpoint:
            def receive(self, packet):
                arrivals.append(net.sim.now)

        b.register_endpoint(1, _Endpoint())
        a.egress_delay_fn = lambda packet: us(100)
        a.transmit(make_packet(flow_id=1, src="a", dst="b"))
        net.sim.run()
        assert arrivals[0] >= us(100)

    def test_unregister_endpoint_idempotent(self):
        net, a, _, _ = make_two_host_network()
        a.unregister_endpoint(123)  # no error
