"""Integration tests asserting the paper's qualitative results at small scale.

Each test runs a miniature version of an evaluation scenario and asserts the
*ordering/shape* the paper reports (who wins, roughly by how much), not
absolute numbers.  These are the guardrails that keep the reproduction
honest while staying fast enough for CI.
"""

import numpy as np
import pytest

from repro.core import Codel, EcnSharp, EcnSharpConfig, SojournRed
from repro.experiments.fct import FctCollector
from repro.experiments.runner import run_star_fct
from repro.sim.monitor import QueueMonitor
from repro.sim.packet import PacketFactory
from repro.sim.units import gbps, ms, us
from repro.tcp import open_flow
from repro.topology import build_incast
from repro.workloads import WEB_SEARCH, TransportConfig, launch_query


def sim_ecn_sharp():
    return EcnSharp(EcnSharpConfig(us(220), us(10), us(240)))


def sim_codel():
    return Codel(target_seconds=us(10), interval_seconds=us(240))


def sim_red_tail():
    return SojournRed(us(220))


class TestStandingQueueShape:
    """Figure 10's core claim: ECN# collapses the standing queue RED-Tail
    tolerates, without dropping packets."""

    @staticmethod
    def standing_queue(aqm_factory, seed=3):
        topo = build_incast(aqm_factory=aqm_factory)
        factory = PacketFactory()
        # Four small-RTT long flows build the standing queue.
        for index in range(4):
            open_flow(
                topo.network, factory, topo.senders[index], topo.receiver, 30_000_000
            )
        monitor = QueueMonitor(
            topo.sim, topo.bottleneck, interval=us(10), start=ms(5), stop=ms(15)
        )
        topo.network.run(until=ms(15))
        return monitor.average_packets(), topo.bottleneck.stats.dropped_total

    def test_red_tail_keeps_threshold_queue(self):
        queue, drops = self.standing_queue(sim_red_tail)
        # 220us at 10G ~ 183 packets of standing queue (paper: 182).
        assert 100 < queue < 260
        assert drops == 0

    def test_ecn_sharp_collapses_queue(self):
        # The early 5-15ms window sits on ECN#'s convergence ramp
        # (Algorithm 1's sqrt escalation restarts whenever a packet dips
        # below pst_target), so the reduction here is partial; the converged
        # floor -- the paper's 95.6% claim -- is asserted by the Figure 10
        # bench via the best-5ms-window metric.
        red_queue, _ = self.standing_queue(sim_red_tail)
        sharp_queue, drops = self.standing_queue(sim_ecn_sharp)
        assert sharp_queue < red_queue * 0.65
        assert drops == 0

    def test_throughput_preserved_despite_queue_collapse(self):
        def goodput(aqm_factory):
            topo = build_incast(aqm_factory=aqm_factory)
            factory = PacketFactory()
            flows = [
                open_flow(
                    topo.network, factory, topo.senders[i], topo.receiver, 30_000_000
                )
                for i in range(4)
            ]
            topo.network.run(until=ms(15))
            return sum(f.sink.expected for f in flows)

        red = goodput(sim_red_tail)
        sharp = goodput(sim_ecn_sharp)
        assert sharp >= red * 0.93  # no meaningful throughput loss


class TestBurstToleranceShape:
    """Figure 11's core claim: CoDel collapses under incast well before
    ECN# does."""

    @staticmethod
    def burst(aqm_factory, fanout=100, seed=0):
        topo = build_incast(aqm_factory=aqm_factory)
        collector = FctCollector()
        launch_query(
            topo.network,
            PacketFactory(),
            topo.senders,
            topo.receiver,
            fanout=fanout,
            start_time=0.001,
            rng=np.random.default_rng(seed),
            transport=TransportConfig(init_cwnd=2.0),
            on_flow_complete=collector.record,
        )
        topo.network.sim.run_until_idle(max_events=100_000_000)
        return collector, topo.bottleneck.stats.dropped_total

    def test_codel_drops_at_100(self):
        _, drops = self.burst(sim_codel, fanout=100)
        assert drops > 0

    def test_ecn_sharp_clean_at_100(self):
        collector, drops = self.burst(sim_ecn_sharp, fanout=100)
        assert drops == 0
        assert collector.total_timeouts() == 0

    def test_ecn_sharp_supports_higher_fanout_than_codel(self):
        codel_losses = {
            fanout: self.burst(sim_codel, fanout)[1] for fanout in (50, 100)
        }
        sharp_losses = {
            fanout: self.burst(sim_ecn_sharp, fanout)[1] for fanout in (50, 100, 150)
        }
        assert codel_losses[100] > 0
        assert sharp_losses[150] == 0  # at least 1.5x CoDel's breaking point

    def test_timeouts_drive_codel_fct(self):
        codel_collector, _ = self.burst(sim_codel, fanout=100)
        sharp_collector, _ = self.burst(sim_ecn_sharp, fanout=100)
        codel_p99 = np.percentile([r.fct for r in codel_collector.records], 99)
        sharp_p99 = np.percentile([r.fct for r in sharp_collector.records], 99)
        assert codel_collector.total_timeouts() > 0
        assert codel_p99 > sharp_p99


class TestFctShape:
    """Figures 2/6's core claims on the testbed star under RTT variation."""

    _cache = {}

    @classmethod
    def run(cls, scheme_name, aqm_factory, seed=21, load=0.5, n_flows=120):
        key = (scheme_name, seed, load, n_flows)
        if key not in cls._cache:
            result = run_star_fct(
                aqm_factory=aqm_factory,
                workload=WEB_SEARCH,
                load=load,
                n_flows=n_flows,
                seed=seed,
            )
            # At this scale the paper's >=10MB "large" bucket can be nearly
            # empty; a 2MB boundary populates the throughput-sensitive
            # bucket (the ordering claims are unaffected by the cut point).
            cls._cache[key] = result.collector.summary(large_min=2_000_000)
        return cls._cache[key]

    def test_ecn_sharp_beats_red_tail_on_short_flows(self):
        from repro.experiments.schemes import testbed_schemes as schemes

        factories = schemes()
        tail = self.run("DCTCP-RED-Tail", factories["DCTCP-RED-Tail"])
        sharp = self.run("ECN#", factories["ECN#"])
        assert sharp.short_p99 < tail.short_p99
        assert sharp.short_avg <= tail.short_avg * 1.02

    def test_ecn_sharp_matches_red_tail_on_large_flows(self):
        from repro.experiments.schemes import testbed_schemes as schemes

        factories = schemes()
        tail = self.run("DCTCP-RED-Tail", factories["DCTCP-RED-Tail"])
        sharp = self.run("ECN#", factories["ECN#"])
        assert sharp.large_avg == pytest.approx(tail.large_avg, rel=0.12)

    def test_red_avg_hurts_large_flows(self):
        from repro.experiments.schemes import testbed_schemes as schemes

        factories = schemes()
        tail = self.run("DCTCP-RED-Tail", factories["DCTCP-RED-Tail"])
        avg = self.run("DCTCP-RED-AVG", factories["DCTCP-RED-AVG"])
        assert avg.large_avg > tail.large_avg * 1.1  # throughput loss

    def test_low_threshold_worst_tail_latency_inversion(self):
        """Fig 2: the 250KB threshold has materially worse short-flow p99
        than the 50KB threshold; the 50KB threshold has worse large-avg."""
        from repro.experiments.schemes import bytes_to_sojourn
        from repro.sim.units import kb

        low = self.run("RED-50KB", lambda: SojournRed(bytes_to_sojourn(kb(50), gbps(10))))
        high = self.run("RED-250KB", lambda: SojournRed(bytes_to_sojourn(kb(250), gbps(10))))
        assert high.short_p99 > low.short_p99
        assert low.large_avg > high.large_avg
