"""Unit tests for Equations 1-2 and the Section 3.4 rule of thumb."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import (
    LAMBDA_DCTCP,
    LAMBDA_ECN_TCP,
    derive_ecn_sharp_params,
    marking_threshold_bytes,
    marking_threshold_seconds,
)
from repro.sim.units import gbps, us


class TestEquation1:
    def test_paper_example_250kb(self):
        # lambda=1, C=10G, RTT=200us -> K = 250KB (the testbed tail value).
        k = marking_threshold_bytes(LAMBDA_ECN_TCP, gbps(10), us(200))
        assert k == pytest.approx(250_000, abs=2)

    def test_dctcp_lambda_shrinks_threshold(self):
        k_tcp = marking_threshold_bytes(LAMBDA_ECN_TCP, gbps(10), us(200))
        k_dctcp = marking_threshold_bytes(LAMBDA_DCTCP, gbps(10), us(200))
        assert k_dctcp == pytest.approx(k_tcp * 0.17, rel=0.01)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            marking_threshold_bytes(0, gbps(10), us(200))
        with pytest.raises(ValueError):
            marking_threshold_bytes(1, -1, us(200))


class TestEquation2:
    def test_t_equals_k_over_c(self):
        k = marking_threshold_bytes(1.0, gbps(10), us(200))
        t = marking_threshold_seconds(1.0, us(200))
        assert t == pytest.approx(k * 8 / gbps(10), rel=1e-4)

    @given(
        lam=st.floats(min_value=0.05, max_value=1.0),
        rtt=st.floats(min_value=1e-6, max_value=1e-3),
        capacity=st.floats(min_value=1e9, max_value=1e11),
    )
    @settings(max_examples=50)
    def test_equations_consistent(self, lam, rtt, capacity):
        k = marking_threshold_bytes(lam, capacity, rtt)
        t = marking_threshold_seconds(lam, rtt)
        # int() truncation of K quantizes at one byte = 8/capacity secs
        assert k * 8 / capacity == pytest.approx(t, rel=0.01, abs=16 / capacity)


class TestRuleOfThumb:
    def test_derivation_from_samples(self):
        rng = np.random.default_rng(1)
        samples = rng.uniform(us(70), us(210), size=10_000)
        params = derive_ecn_sharp_params(samples)
        assert params.ins_target == pytest.approx(params.rtt_high_percentile)
        assert params.pst_target == pytest.approx(params.rtt_avg)
        assert params.pst_interval == pytest.approx(params.rtt_high_percentile)
        assert params.ins_target > params.pst_target

    def test_burst_scale_shrinks_interval(self):
        samples = [us(100)] * 100
        default = derive_ecn_sharp_params(samples)
        bursty = derive_ecn_sharp_params(samples, burst_scale=0.5)
        assert bursty.pst_interval == pytest.approx(default.pst_interval * 0.5)

    def test_lambda_scales_targets(self):
        samples = [us(100)] * 100
        params = derive_ecn_sharp_params(samples, lam=0.5)
        assert params.ins_target == pytest.approx(us(50))

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            derive_ecn_sharp_params([])

    def test_nonpositive_samples_rejected(self):
        with pytest.raises(ValueError):
            derive_ecn_sharp_params([us(100), 0.0])

    def test_invalid_percentile_rejected(self):
        with pytest.raises(ValueError):
            derive_ecn_sharp_params([us(100)], high_percentile=0)

    @given(
        rtts=st.lists(
            st.floats(min_value=1e-6, max_value=1e-3), min_size=2, max_size=200
        )
    )
    @settings(max_examples=50)
    def test_derived_params_always_valid_config(self, rtts):
        """The rule of thumb always yields a constructible EcnSharpConfig."""
        from repro.core.ecn_sharp import EcnSharpConfig

        params = derive_ecn_sharp_params(rtts)
        config = EcnSharpConfig(
            params.ins_target, params.pst_target, params.pst_interval
        )
        assert config.pst_target <= config.ins_target
