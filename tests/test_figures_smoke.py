"""Smoke tests: every figure module runs at tiny scale and renders.

The full-size reproductions live in benchmarks/; these only verify that the
harness plumbing works end to end (runs, collects, normalizes, renders).
"""

import pytest

from repro.experiments.figures import (
    fig2,
    fig3,
    fig5,
    fig6_fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    table1,
)
from repro.sim.units import ms


class TestTable1:
    def test_runs_and_renders(self):
        result = table1.run_table1(seed=1, n_samples=500)
        assert len(result.cases) == 5
        assert result.variation_ratio > 2.0
        text = table1.render(result)
        assert "Networking Stack" in text and "2.68x" in text


class TestFig2:
    def test_runs_and_renders(self):
        result = fig2.run_fig2(n_flows=25, thresholds_kb=(50, 250))
        norm = result.normalized("overall_avg")
        assert norm[50] == pytest.approx(1.0)
        assert "Figure 2" in fig2.render(result)


class TestFig3:
    def test_runs_and_renders(self):
        result = fig3.run_fig3(n_flows=25, variations=(2.0, 4.0))
        assert set(result.thresholds_us) == {2.0, 4.0}
        # Tail threshold is above avg threshold for both variations.
        for variation in (2.0, 4.0):
            avg_t, tail_t = result.thresholds_us[variation]
            assert tail_t > avg_t
        assert "Figure 3" in fig3.render(result)


class TestFig5:
    def test_runs_and_renders(self):
        result = fig5.run_fig5()
        assert result.means["data-mining"] > result.means["web-search"]
        text = fig5.render(result)
        assert "web-search" in text


class TestFig6Fig7:
    def test_fig6_runs_and_renders(self):
        result = fig6_fig7.run_fig6(loads=(0.5,), n_flows=25)
        norm = result.normalized(0.5, "DCTCP-RED-Tail")
        assert norm.overall_avg == pytest.approx(1.0)
        assert "web-search" in fig6_fig7.render(result)

    def test_fig7_runs_and_renders(self):
        result = fig6_fig7.run_fig7(loads=(0.5,), n_flows=15)
        assert "data-mining" in fig6_fig7.render(result)


class TestFig8:
    def test_runs_and_renders(self):
        result = fig8.run_fig8(variations=(3.0,), loads=(0.5,), n_flows=25)
        assert result.nfct(3.0, 0.5, "overall_avg") is not None
        assert "Figure 8" in fig8.render(result)


class TestFig9:
    def test_runs_and_renders(self):
        result = fig9.run_fig9(loads=(0.3,), n_flows=20, dims=(2, 2, 2))
        assert result.nfct(0.3, "DCTCP-RED-Tail", "overall_avg") == pytest.approx(1.0)
        assert "leaf-spine" in fig9.render(result)


class TestFig10:
    def test_runs_and_renders(self):
        result = fig10.run_fig10(fanout=30, schemes=("DCTCP-RED-Tail", "ECN#"))
        tail = result.runs["DCTCP-RED-Tail"]
        sharp = result.runs["ECN#"]
        assert tail.queries_completed > 0
        assert sharp.standing_queue_pkts < tail.standing_queue_pkts
        assert "Figure 10" in fig10.render(result)


class TestFig11:
    def test_runs_and_renders(self):
        result = fig11.run_fig11(fanouts=(25,), schemes=("ECN#",))
        assert result.avg_query_fct(25, "ECN#") is not None
        assert "Figure 11" in fig11.render(result)


class TestFig12:
    def test_runs_and_renders(self):
        result = fig12.run_fig12(
            n_flows_web=15,
            n_flows_mining=10,
            intervals_us=(150.0, 250.0),
            targets_us=(10.0, 18.0),
        )
        assert result.interval_spread("web-search") is not None
        assert "Figure 12" in fig12.render(result)


class TestFig13:
    def test_runs_and_renders(self):
        result = fig13.run_fig13(phase=ms(8))
        text = fig13.render(result)
        assert "DWRR" in text
        ecn_run = result.runs["ECN#"]
        # Phase 1: only flow 1 active; it should clearly dominate.
        assert ecn_run.goodputs[0][0] > 5 * max(
            ecn_run.goodputs[0][1], ecn_run.goodputs[0][2], 1.0
        )
