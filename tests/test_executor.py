"""Tests for run specs, the parallel executor, the result cache (with
checksum integrity and gc), and deterministic retry backoff."""

import os
import pickle
import time

import pytest

from repro.experiments.executor import (
    _CHECKSUM_MAGIC,
    CacheGcStats,
    Executor,
    ResultCache,
    get_default_executor,
    run_grid,
    seed_specs,
    set_default_executor,
)
from repro.core.red import SojournRed
from repro.telemetry import Telemetry, activate
from repro.experiments.runner import pool_results
from repro.experiments.schemes import build_aqm
from repro.experiments.schemes import testbed_scheme_specs as make_testbed_scheme_specs
from repro.experiments.specs import AqmSpec, RunSpec, resolve_workload
from repro.sim.units import us
from repro.workloads import WEB_SEARCH

SUMMARY_FIELDS = (
    "n_flows", "overall_avg", "overall_p99", "short_avg", "short_p99",
    "large_avg", "n_short", "n_large",
)


def tiny_spec(seed=3, sojourn=us(200), label="RED-Tail", load=0.4):
    return RunSpec.star(
        AqmSpec.make("sojourn-red", sojourn=sojourn),
        workload=WEB_SEARCH.name,
        load=load,
        n_flows=12,
        seed=seed,
        label=label,
    )


class TestAqmSpec:
    def test_build_constructs_fresh_instances(self):
        spec = AqmSpec.make("sojourn-red", sojourn=us(200))
        aqm = spec.build()
        assert isinstance(aqm, SojournRed)
        assert spec.build() is not aqm

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown AQM"):
            build_aqm("no-such-aqm", {})

    def test_roundtrip(self):
        spec = AqmSpec.make("codel", target=us(10), interval=us(240))
        assert AqmSpec.from_dict(spec.to_dict()) == spec


class TestRunSpec:
    def test_roundtrip_and_hash_stability(self):
        spec = RunSpec.leafspine(
            AqmSpec.make("tcn", threshold=us(150)),
            workload=WEB_SEARCH.name,
            load=0.5,
            n_flows=100,
            seed=7,
            label="TCN",
            variation=3.0,
            rtt_min=us(80),
            transport={"init_cwnd": 2.0},
            dims=(4, 4, 4),
        )
        again = RunSpec.from_dict(spec.to_dict())
        # JSON turns tuples into lists; the roundtrip must re-freeze them so
        # equality, hashing and the cache key all still line up.
        assert again == spec
        assert hash(again) == hash(spec)
        assert again.spec_hash() == spec.spec_hash()

    def test_hash_changes_with_params(self):
        assert tiny_spec(seed=3).spec_hash() != tiny_spec(seed=4).spec_hash()
        assert (
            tiny_spec(sojourn=us(200)).spec_hash()
            != tiny_spec(sojourn=us(210)).spec_hash()
        )

    def test_specs_are_picklable(self):
        spec = tiny_spec()
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_from_dict_rejects_unknown_fields(self):
        data = tiny_spec().to_dict()
        data["bogus"] = 1
        with pytest.raises(ValueError, match="unknown RunSpec fields"):
            RunSpec.from_dict(data)

    def test_unknown_workload_raises(self):
        with pytest.raises(ValueError, match="unknown workload"):
            resolve_workload("no-such-workload")


class TestSeedSpecs:
    def test_expands_consecutive_seeds(self):
        specs = seed_specs(tiny_spec(seed=10), 3)
        assert [s.seed for s in specs] == [10, 11, 12]
        assert all(s.label == "RED-Tail" for s in specs)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            seed_specs(tiny_spec(), 0)


def result_fingerprint(result):
    """Everything the figures consume: summary fields, counters, and the
    exact per-flow FCT list (bit-identical, not just approximately equal)."""
    return (
        tuple(getattr(result.summary, f) for f in SUMMARY_FIELDS),
        result.marks,
        result.drops,
        result.timeouts,
        tuple(r.fct for r in result.collector.records),
    )


class TestExecutorDeterminism:
    def grid(self):
        """Two schemes x two seeds of a tiny star run."""
        schemes = make_testbed_scheme_specs()
        return [
            spec.with_seed(seed)
            for name in ("DCTCP-RED-Tail", "ECN#")
            for seed in (3, 4)
            for spec in [
                RunSpec.star(
                    schemes[name],
                    workload=WEB_SEARCH.name,
                    load=0.4,
                    n_flows=12,
                    seed=seed,
                    label=name,
                )
            ]
        ]

    def test_serial_parallel_and_cache_identical(self, tmp_path):
        specs = self.grid()

        serial = Executor(jobs=1)
        baseline = [result_fingerprint(r) for r in serial.run(specs)]
        assert serial.stats.executed == len(specs)

        parallel = Executor(jobs=4, cache=True, cache_dir=tmp_path)
        first = parallel.run(specs)
        assert [result_fingerprint(r) for r in first] == baseline
        assert parallel.stats.executed == len(specs)
        assert parallel.stats.cache_hits == 0

        warm = parallel.run(specs)
        assert [result_fingerprint(r) for r in warm] == baseline
        assert parallel.stats.executed == len(specs)  # nothing re-simulated
        assert parallel.stats.cache_hits == len(specs)

    def test_results_in_submission_order(self, tmp_path):
        specs = self.grid()
        results = Executor(jobs=2).run(specs)
        for spec, result in zip(specs, results):
            assert result.manifest.seed == spec.seed


class TestResultCache:
    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        spec = tiny_spec()
        executor = Executor(jobs=1, cache=True, cache_dir=tmp_path)
        baseline = result_fingerprint(executor.run([spec])[0])

        executor.cache.path(spec).write_bytes(b"not a pickle")
        again = result_fingerprint(executor.run([spec])[0])
        assert again == baseline
        assert executor.stats.executed == 2  # recomputed, not crashed
        assert executor.stats.cache_hits == 0

    def test_key_mixes_in_code_tag(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        before = cache.key(spec)
        import repro.experiments.executor as executor_module

        monkeypatch.setattr(
            executor_module,
            "CACHE_SCHEMA_VERSION",
            executor_module.CACHE_SCHEMA_VERSION + 1,
        )
        assert cache.key(spec) != before

    def test_missing_entry_is_a_miss(self, tmp_path):
        assert ResultCache(tmp_path).load(tiny_spec()) == (False, None)

    def test_none_result_is_a_hit(self, tmp_path):
        # A legitimately-None cached result must replay as a hit, not
        # silently re-execute every time (the presence tag is the point).
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        cache.store(spec, None)
        assert cache.load(spec) == (True, None)

    def test_unpicklable_result_skips_store_without_tmp_leak(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        with pytest.warns(UserWarning, match="not picklable"):
            cache.store(spec, lambda: None)  # lambdas cannot pickle
        assert cache.load(spec) == (False, None)
        assert list(tmp_path.glob("*.tmp")) == []


class TestCacheIntegrity:
    def test_entries_carry_a_checksum_footer(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        cache.store(spec, {"answer": 42})
        blob = cache.path(spec).read_bytes()
        assert _CHECKSUM_MAGIC in blob
        assert cache.load(spec) == (True, {"answer": 42})
        assert cache.corrupt_quarantined == 0

    def test_truncated_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        cache.store(spec, {"answer": 42})
        path = cache.path(spec)
        path.write_bytes(path.read_bytes()[:-4])  # lose the digest tail
        telemetry = Telemetry()
        with activate(telemetry):
            with pytest.warns(UserWarning, match="quarantined"):
                assert cache.load(spec) == (False, None)
        assert cache.corrupt_quarantined == 1
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()
        assert telemetry.registry.counter("cache_corrupt_total").value == 1
        # the quarantined entry is gone, so a re-load is a plain miss
        assert cache.load(spec) == (False, None)
        assert cache.corrupt_quarantined == 1

    def test_legacy_footerless_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        path = cache.path(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps({"spec": spec.to_dict()}))
        with pytest.warns(UserWarning, match="quarantined"):
            assert cache.load(spec) == (False, None)

    def test_checksum_valid_but_unpicklable_is_plain_miss(self, tmp_path):
        """Environment mismatch (valid bytes this env cannot unpickle) must
        not be treated as corruption: the entry stays."""
        import hashlib

        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        payload = b"\x80\x05not really a pickle"
        path = cache.path(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(
            payload + _CHECKSUM_MAGIC + hashlib.sha256(payload).digest()
        )
        assert cache.load(spec) == (False, None)
        assert cache.corrupt_quarantined == 0
        assert path.exists()


class TestCacheGc:
    def entry(self, tmp_path, name, size=100, age=0.0, now=None):
        path = tmp_path / name
        path.write_bytes(b"x" * size)
        if age:
            stamp = (now or time.time()) - age
            os.utime(path, (stamp, stamp))
        return path

    def test_removes_corrupt_and_tmp_always(self, tmp_path):
        cache = ResultCache(tmp_path)
        self.entry(tmp_path, "a.pkl")
        self.entry(tmp_path, "b.pkl.corrupt")
        self.entry(tmp_path, "c.tmp")
        self.entry(tmp_path, "unrelated.txt")
        stats = cache.gc()
        assert stats.scanned == 3  # unrelated files are not ours
        assert stats.removed == 2
        assert stats.corrupt_removed == 1
        assert stats.kept == 1
        assert (tmp_path / "a.pkl").exists()
        assert not (tmp_path / "b.pkl.corrupt").exists()
        assert not (tmp_path / "c.tmp").exists()

    def test_keep_corrupt_for_inspection(self, tmp_path):
        cache = ResultCache(tmp_path)
        self.entry(tmp_path, "b.pkl.corrupt")
        stats = cache.gc(remove_corrupt=False)
        assert stats.corrupt_removed == 0
        assert stats.corrupt_kept == 1
        assert "corrupt_kept=1" in stats.summary_line()
        assert (tmp_path / "b.pkl.corrupt").exists()

    def test_age_eviction(self, tmp_path):
        cache = ResultCache(tmp_path)
        now = time.time()
        self.entry(tmp_path, "old.pkl", age=3600, now=now)
        self.entry(tmp_path, "new.pkl", age=10, now=now)
        stats = cache.gc(max_age_seconds=600, now=now)
        assert stats.removed == 1
        assert not (tmp_path / "old.pkl").exists()
        assert (tmp_path / "new.pkl").exists()

    def test_size_retention_keeps_newest_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        now = time.time()
        self.entry(tmp_path, "oldest.pkl", size=100, age=300, now=now)
        self.entry(tmp_path, "middle.pkl", size=100, age=200, now=now)
        self.entry(tmp_path, "newest.pkl", size=100, age=100, now=now)
        stats = cache.gc(max_bytes=250, now=now)
        assert stats.kept == 2
        assert stats.kept_bytes == 200
        assert not (tmp_path / "oldest.pkl").exists()
        assert (tmp_path / "newest.pkl").exists()
        assert (tmp_path / "middle.pkl").exists()

    def test_missing_directory_is_a_noop(self, tmp_path):
        stats = ResultCache(tmp_path / "absent").gc(max_bytes=0)
        assert stats == CacheGcStats()

    def test_summary_line(self):
        stats = CacheGcStats(scanned=3, removed=1, removed_bytes=10,
                             kept=2, kept_bytes=20, corrupt_removed=1,
                             corrupt_kept=1)
        assert stats.summary_line() == (
            "scanned=3 removed=1 removed_bytes=10 kept=2 kept_bytes=20 "
            "corrupt_removed=1 corrupt_kept=1"
        )


class TestRetryBackoff:
    def test_disabled_by_default(self):
        executor = Executor(jobs=1)
        assert executor.retry_backoff is None
        assert executor._backoff_delay(tiny_spec(), 3) == 0.0

    def test_zero_disables_and_negative_rejected(self):
        assert Executor(jobs=1, retry_backoff=0).retry_backoff is None
        with pytest.raises(ValueError, match="retry_backoff"):
            Executor(jobs=1, retry_backoff=-1.0)

    def test_first_attempt_never_delayed(self):
        executor = Executor(jobs=1, retry_backoff=1.0)
        assert executor._backoff_delay(tiny_spec(), 0) == 0.0

    def test_deterministic_exponential_with_jitter(self):
        executor = Executor(jobs=1, retry_backoff=0.1)
        spec = tiny_spec()
        first = executor._backoff_delay(spec, 1)
        assert first == executor._backoff_delay(spec, 1)  # seeded, stable
        assert 0.05 <= first < 0.15  # base * [0.5, 1.5)
        second = executor._backoff_delay(spec, 2)
        assert 0.1 <= second < 0.3  # base * 2 * [0.5, 1.5)
        # decorrelated across specs: a failure burst does not retry in
        # lockstep
        assert first != executor._backoff_delay(tiny_spec(seed=4), 1)

    def test_capped(self):
        executor = Executor(jobs=1, retry_backoff=100.0)
        assert (
            executor._backoff_delay(tiny_spec(), 5)
            == Executor.BACKOFF_CAP_SECONDS
        )

    def test_retry_sleeps_the_backoff_in_the_attempt(self, monkeypatch):
        """An injected first-attempt failure with backoff on must sleep
        exactly the seeded delay before the retry attempt."""
        import repro.experiments.executor as executor_module

        slept = []
        monkeypatch.setattr(
            executor_module.time, "sleep", lambda s: slept.append(s)
        )
        spec = tiny_spec()
        monkeypatch.setenv("REPRO_FAULT_INJECT", f"raise:{spec.token()}:1")
        executor = Executor(jobs=1, retries=1, retry_backoff=0.01)
        result = executor.run([spec])[0]
        assert result.summary.n_flows > 0  # the retry succeeded
        assert executor.stats.retried == 1
        assert slept == [executor._backoff_delay(spec, 1)]

    def test_from_env_reads_backoff(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.25")
        assert Executor.from_env().retry_backoff == 0.25
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        assert Executor.from_env().retry_backoff is None
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "soon")
        with pytest.warns(UserWarning, match="REPRO_RETRY_BACKOFF"):
            assert Executor.from_env().retry_backoff is None


class TestRunGrid:
    def test_pools_each_cell(self):
        cells = [seed_specs(tiny_spec(seed=3), 2), seed_specs(tiny_spec(seed=9), 1)]
        executor = Executor(jobs=1)
        pooled = run_grid(cells, executor)
        assert len(pooled) == 2
        assert pooled[0].manifest.params["n_seeds"] == 2
        assert pooled[0].manifest.params["seeds"] == [3, 4]
        # Pooling through the grid matches pooling by hand.
        by_hand = pool_results(executor.run(seed_specs(tiny_spec(seed=3), 2)))
        assert result_fingerprint(pooled[0]) == result_fingerprint(by_hand)

    def test_custom_pool_callable(self):
        cells = [seed_specs(tiny_spec(seed=3), 2)]
        counts = run_grid(cells, Executor(jobs=1), pool=len)
        assert counts == [2]


class TestDefaultExecutor:
    def test_from_env_reads_jobs_and_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        executor = Executor.from_env()
        assert executor.jobs == 3
        assert executor.cache is not None
        assert executor.cache.directory == tmp_path

    def test_from_env_defaults_hermetic(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        executor = Executor.from_env()
        assert executor.jobs == 1
        assert executor.cache is None
        assert executor.retries == 1
        assert executor.spec_timeout is None

    def test_from_env_warns_on_unparseable_jobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.warns(UserWarning, match="REPRO_JOBS"):
            executor = Executor.from_env()
        assert executor.jobs == 1

    def test_from_env_reads_fault_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "3")
        monkeypatch.setenv("REPRO_SPEC_TIMEOUT", "2.5")
        executor = Executor.from_env()
        assert executor.retries == 3
        assert executor.spec_timeout == 2.5

    def test_from_env_warns_on_unparseable_fault_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "lots")
        monkeypatch.setenv("REPRO_SPEC_TIMEOUT", "soon")
        with pytest.warns(UserWarning) as caught:
            executor = Executor.from_env()
        messages = [str(w.message) for w in caught]
        assert any("REPRO_RETRIES" in m for m in messages)
        assert any("REPRO_SPEC_TIMEOUT" in m for m in messages)
        assert executor.retries == 1
        assert executor.spec_timeout is None

    def test_set_default_round_trips(self):
        mine = Executor(jobs=1)
        previous = set_default_executor(mine)
        try:
            assert get_default_executor() is mine
        finally:
            set_default_executor(previous)
