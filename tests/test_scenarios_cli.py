"""Tests for the ``repro scenario`` CLI verbs and ``--dry-run``."""

import pytest

from repro.cli import main

from test_scenarios_campaign import tiny_scenario

SCENARIO_TOML = """\
schema_version = 1
name = "cli-unit"

[rtt]
min_us = 70.0
variation = 3.0
shape = "testbed"

[schemes]
preset = "testbed"
only = ["ECN#"]

[run]
seed = 7

[[workloads]]
name = "ws"
kind = "fct"
workload = "web-search"
loads = [0.2]
n_flows = 6
"""


@pytest.fixture
def scenario_file(tmp_path):
    path = tmp_path / "cli_unit.toml"
    path.write_text(SCENARIO_TOML)
    return path


class TestListAndCheck:
    def test_list_library(self, capsys):
        assert main(["scenario", "list", "scenarios"]) == 0
        out = capsys.readouterr().out
        assert "fig6_websearch.toml" in out
        assert "cells=8 specs=16" in out

    def test_check_library(self, capsys):
        assert main(["scenario", "check", "scenarios"]) == 0
        out = capsys.readouterr().out
        assert out.count("  ok") >= 7

    def test_check_single_file(self, scenario_file, capsys):
        assert main(["scenario", "check", str(scenario_file)]) == 0
        assert "cli-unit  cells=1 specs=1  ok" in capsys.readouterr().out

    def test_schema_error_exits_2_with_path(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text(
            SCENARIO_TOML.replace("[rtt]", "frobnicate = 1\n[rtt]", 1)
        )
        assert main(["scenario", "check", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "bad.toml.frobnicate" in err
        assert "unknown field" in err

    def test_compile_error_exits_1(self, tmp_path, capsys):
        bad = tmp_path / "bad_compile.toml"
        bad.write_text(
            SCENARIO_TOML.replace(
                'kind = "fct"\nworkload = "web-search"\n'
                "loads = [0.2]\nn_flows = 6",
                'kind = "incast"\nfanouts = [50]',
            )
            + '\n[topology]\nkind = "leafspine"\n'
        )
        assert main(["scenario", "check", str(bad)]) == 1
        assert "star topology" in capsys.readouterr().err

    def test_missing_directory_exits_2(self, tmp_path, capsys):
        assert main(["scenario", "list", str(tmp_path / "absent")]) == 2
        assert "error" in capsys.readouterr().err


class TestScenarioRun:
    def test_run_then_resume_executes_zero(self, scenario_file, tmp_path,
                                           capsys):
        store = tmp_path / "campaign.jsonl"
        argv = ["scenario", "run", str(scenario_file), "--store", str(store),
                "--no-cache"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cells=1 executed=1 skipped=0 failed=0" in out
        assert store.exists()

        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cells=1 executed=0 skipped=1 failed=0" in out

    def test_dry_run_simulates_nothing(self, scenario_file, tmp_path, capsys):
        store = tmp_path / "campaign.jsonl"
        argv = ["scenario", "run", str(scenario_file), "--store", str(store),
                "--no-cache", "--dry-run"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "dry run: scenario cli-unit (1 cells, 1 specs)" in out
        assert "nothing simulated" in out
        assert "miss" in out
        assert not store.exists()

    def test_dry_run_reports_cache_hits(self, scenario_file, tmp_path,
                                        capsys):
        store = tmp_path / "campaign.jsonl"
        cache = tmp_path / "cache"
        base = ["scenario", "run", str(scenario_file), "--store", str(store),
                "--cache-dir", str(cache)]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "1 cached, 0 to execute" in out

    def test_report_renders_store(self, scenario_file, tmp_path, capsys):
        store = tmp_path / "campaign.jsonl"
        assert main(["scenario", "run", str(scenario_file), "--store",
                     str(store), "--no-cache"]) == 0
        capsys.readouterr()
        assert main(["scenario", "report", str(scenario_file), "--store",
                     str(store)]) == 0
        out = capsys.readouterr().out
        assert "scenario cli-unit" in out
        assert "ws|load=0.2|scheme=ECN#" in out

    def test_report_on_empty_store(self, tmp_path, capsys):
        assert main(["scenario", "report", "--store",
                     str(tmp_path / "none.jsonl")]) == 0
        assert "no campaign records" in capsys.readouterr().out


class TestExperimentDryRun:
    def test_run_dry_run_prints_grid_without_simulating(self, capsys):
        assert main(["run", "fig6", "--dry-run", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "dry run: resolved spec grid for fig6" in out
        assert "nothing simulated" in out
        assert "to execute" in out

    def test_run_dry_run_gridless_experiment(self, capsys):
        assert main(["run", "fig5", "--dry-run"]) == 0
        assert "builds no executor spec grid" in capsys.readouterr().out
