"""Tests for machine-readable grid export: report.to_json/to_csv and the
CLI's ``--results-out``."""

import csv
import json

import pytest

from repro.experiments.report import to_csv, to_json


class TestToJson:
    def test_returns_sorted_indented_text(self):
        text = to_json({"b": 1, "a": [1, 2]})
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text) == {"b": 1, "a": [1, 2]}

    def test_writes_file(self, tmp_path):
        path = tmp_path / "out.json"
        text = to_json({"x": 1.5}, str(path))
        assert path.read_text() == text


class TestToCsv:
    def test_round_trips_through_csv_reader(self, tmp_path):
        path = tmp_path / "out.csv"
        to_csv(
            ["figure", "cell", "value"],
            [["fig5", "a", 1.25], ["fig5", "b", 2.5]],
            str(path),
        )
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows == [
            ["figure", "cell", "value"],
            ["fig5", "a", "1.25"],
            ["fig5", "b", "2.5"],
        ]

    def test_returns_text_without_path(self):
        text = to_csv(["h"], [["v"]])
        assert text == "h\nv\n"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            to_csv(["a", "b"], [["only-one"]])


class TestCliResultsOut:
    def test_fig5_results_out_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "fig5.json"
        assert main(["run", "fig5", "--results-out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["figure"] == "fig5"
        assert "workload=web-search" in payload["cells"]
        assert "mean_bytes" in payload["cells"]["workload=web-search"]
        assert "results written" in capsys.readouterr().out

    def test_fig5_results_out_csv(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "fig5.csv"
        assert main(["run", "fig5", "--results-out", str(out)]) == 0
        with open(out, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["figure", "cell", "metric", "value"]
        assert any(row[1] == "workload=data-mining" for row in rows[1:])

    def test_missing_directory_rejected_before_running(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(
                [
                    "run", "fig5",
                    "--results-out", str(tmp_path / "nope" / "x.json"),
                ]
            )

    def test_table1_results_out(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "table1.json"
        assert main(["run", "table1", "--results-out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["figure"] == "table1"
        assert payload["derived"]["variation_ratio"] > 1.5
