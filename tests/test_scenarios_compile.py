"""Tests for scenario compilation: the compiled RunSpec grids of the
library's figure re-expressions must equal the figure modules' own grids
cell for cell (spec identity is cache identity, so equal specs means
bit-identical summaries), plus elision rules and incast constraints."""

from pathlib import Path

import pytest

from repro.experiments.executor import DryRunComplete, DryRunExecutor, Executor
from repro.experiments.faults import RunFailure
from repro.experiments.figures.fig6_fig7 import run_fct_vs_load
from repro.experiments.figures.fig10 import run_fig10
from repro.experiments.figures.fig11 import run_fig11
from repro.scenarios import (
    Scenario,
    ScenarioError,
    check_scenario,
    compile_scenario,
    load_scenario,
    summarize_cell,
)
from repro.workloads import WEB_SEARCH

from test_scenarios_schema import SCENARIO_DIR, base_dict


def captured_grid(run):
    """The flat spec list an experiment runner hands its executor."""
    executor = DryRunExecutor()
    try:
        run(executor)
    except DryRunComplete:
        pass
    return executor.captured


# ------------------------------------------- figure-grid equivalence (tier 1)


class TestFigureEquivalence:
    """The acceptance criterion: the fig6/fig10/fig11 scenario files compile
    to exactly the specs the figure modules submit, in the same order."""

    def test_fig6_scenario_matches_figure_grid(self):
        figure = captured_grid(
            lambda ex: run_fct_vs_load(
                WEB_SEARCH, loads=(0.5, 0.8), n_flows=80,
                seed=21, n_seeds=2, executor=ex,
            )
        )
        compiled = compile_scenario(
            load_scenario(SCENARIO_DIR / "fig6_websearch.toml")
        )
        assert compiled.specs() == figure
        assert len(compiled.cells) == 8  # 2 loads x 4 testbed schemes
        assert compiled.n_specs == 16  # x 2 seeds

    def test_fig10_scenario_matches_figure_grid(self):
        figure = captured_grid(lambda ex: run_fig10(fanout=100, seed=51,
                                                    executor=ex))
        compiled = compile_scenario(
            load_scenario(SCENARIO_DIR / "fig10_microscopic.toml")
        )
        assert compiled.specs() == figure

    def test_fig11_scenario_matches_figure_grid(self):
        figure = captured_grid(lambda ex: run_fig11(seed=61, executor=ex))
        compiled = compile_scenario(
            load_scenario(SCENARIO_DIR / "fig11_fanout.toml")
        )
        assert compiled.specs() == figure
        assert len(compiled.cells) == 18  # 6 fanouts x 3 schemes

    def test_compilation_is_deterministic(self):
        scenario = load_scenario(SCENARIO_DIR / "fig6_websearch.toml")
        first = compile_scenario(scenario)
        second = compile_scenario(scenario)
        assert first.specs() == second.specs()
        assert [c.key for c in first.cells] == [c.key for c in second.cells]
        assert [c.tokens() for c in first.cells] == [
            c.tokens() for c in second.cells
        ]


# ----------------------------------------------------------- grid structure


class TestGridStructure:
    def test_cell_keys_encode_load_and_scheme(self):
        compiled = compile_scenario(Scenario.from_dict(base_dict()))
        assert [cell.key for cell in compiled.cells] == [
            "ws|load=0.5|scheme=ECN#"
        ]
        assert compiled.cells[0].metric_source == "fct"

    def test_seed_expansion_follows_figure_convention(self):
        scenario = Scenario.from_dict(base_dict(run={"seed": 1, "n_seeds": 3}))
        cell = compile_scenario(scenario).cells[0]
        assert [spec.seed for spec in cell.specs] == [1, 2, 3]
        # seed aside, the expanded specs are the same experiment
        assert len({spec.with_seed(0) for spec in cell.specs}) == 1

    def test_star_rtt_shape_elided_only_at_rig_default(self):
        testbed = compile_scenario(Scenario.from_dict(base_dict()))
        assert testbed.cells[0].specs[0].rtt_shape is None  # rig default

        data = base_dict(rtt={"min_us": 70.0, "variation": 3.0,
                              "shape": "fabric"})
        fabric = compile_scenario(Scenario.from_dict(data))
        assert fabric.cells[0].specs[0].rtt_shape == "fabric"

    def test_leafspine_pins_dims_and_elides_unity_oversubscription(self):
        data = base_dict(
            topology={"kind": "leafspine", "spines": 2, "leaves": 2,
                      "hosts_per_leaf": 2},
            rtt={"min_us": 80.0, "variation": 3.0, "shape": "fabric"},
        )
        compiled = compile_scenario(Scenario.from_dict(data))
        spec = compiled.cells[0].specs[0]
        extras = dict(spec.extras)
        assert extras["dims"] == (2, 2, 2)
        assert "oversubscription" not in extras
        assert spec.rtt_shape is None  # fabric is the leafspine default

    def test_oversubscription_reaches_spec_extras(self):
        compiled = compile_scenario(
            load_scenario(SCENARIO_DIR / "oversub_leafspine_2to1.toml")
        )
        for spec in compiled.specs():
            extras = dict(spec.extras)
            assert extras["oversubscription"] == 2.0
            assert extras["dims"] == (4, 4, 4)

    def test_incast_rig_defaults_elided(self):
        data = base_dict()
        data["workloads"] = [
            {"name": "q", "kind": "incast", "fanouts": [50],
             "rtt": {"min_us": 80.0, "variation": 3.0, "shape": "fabric"}},
        ]
        compiled = compile_scenario(Scenario.from_dict(data))
        cell = compiled.cells[0]
        assert cell.metric_source == "micro"
        assert dict(cell.specs[0].extras) == {"fanout": 50}

    def test_incast_nondefault_rtt_kept(self):
        data = base_dict()
        data["workloads"] = [
            {"name": "q", "kind": "incast", "fanouts": [50],
             "rtt": {"min_us": 100.0, "variation": 4.0, "shape": "fabric"}},
        ]
        compiled = compile_scenario(Scenario.from_dict(data))
        extras = dict(compiled.cells[0].specs[0].extras)
        assert extras["rtt_min"] == pytest.approx(100e-6)
        assert extras["variation"] == 4.0

    def test_transport_overrides_reach_fct_specs(self):
        data = base_dict(transport={"cc": "reno", "min_rto_us": 900.0})
        compiled = compile_scenario(Scenario.from_dict(data))
        transport = dict(compiled.cells[0].specs[0].transport)
        assert transport["cc"] == "reno"
        assert transport["min_rto"] == pytest.approx(900e-6)


# ------------------------------------------------------- incast constraints


class TestIncastConstraints:
    def incast_dict(self, **overrides):
        data = base_dict()
        data["workloads"] = [
            {"name": "q", "kind": "incast", "fanouts": [50],
             "rtt": {"min_us": 80.0, "variation": 3.0, "shape": "fabric"}},
        ]
        data.update(overrides)
        return data

    def test_incast_on_leafspine_rejected(self):
        data = self.incast_dict(
            topology={"kind": "leafspine"},
            rtt={"min_us": 80.0, "variation": 3.0, "shape": "fabric"},
        )
        with pytest.raises(ScenarioError, match="star topology"):
            compile_scenario(Scenario.from_dict(data))

    def test_incast_inheriting_non_fabric_shape_rejected(self):
        data = self.incast_dict()
        del data["workloads"][0]["rtt"]  # inherits the testbed shape
        with pytest.raises(ScenarioError, match="own \\[rtt\\] table"):
            compile_scenario(Scenario.from_dict(data))

    def test_incast_with_transport_overrides_rejected(self):
        data = self.incast_dict(transport={"cc": "reno"})
        with pytest.raises(ScenarioError, match="\\[transport\\]"):
            compile_scenario(Scenario.from_dict(data))


# ------------------------------------------------------------- summarising


class TestSummarize:
    def tiny_cell(self):
        data = base_dict()
        data["workloads"][0].update({"loads": [0.2], "n_flows": 6})
        return compile_scenario(Scenario.from_dict(data)).cells[0]

    def test_ok_cell_metrics(self):
        cell = self.tiny_cell()
        runs = Executor(jobs=1, cache=False).run(list(cell.specs))
        summary = summarize_cell(cell, runs)
        assert summary["status"] == "ok"
        assert summary["failures"] == []
        assert "overall_avg" in summary["metrics"]

    def test_any_failed_seed_fails_the_cell(self):
        cell = self.tiny_cell()
        runs = Executor(jobs=1, cache=False).run(list(cell.specs))
        failure = RunFailure(
            spec_key=cell.specs[0].token(), kind="exception",
            exc_type="RuntimeError", message="boom",
        )
        summary = summarize_cell(cell, list(runs) + [failure])
        assert summary["status"] == "failed"
        assert summary["metrics"] == {}
        assert summary["failures"][0]["exc"] == "RuntimeError"


# --------------------------------------------------------------- deep check


class TestCheckScenario:
    def test_library_deep_checks(self):
        for path in sorted(SCENARIO_DIR.glob("*.toml")):
            check_scenario(load_scenario(path))

    def test_bad_aqm_params_name_the_scheme(self):
        data = base_dict(
            schemes={"define": [{"name": "Broken", "kind": "codel",
                                 "params": {"bogus_knob": 1.0}}]}
        )
        with pytest.raises(ScenarioError) as exc_info:
            check_scenario(Scenario.from_dict(data))
        message = str(exc_info.value)
        assert "Broken" in message
        assert "bogus_knob" in message
