"""Unit tests for unit conversions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import units


class TestTime:
    def test_us(self):
        assert units.us(250) == pytest.approx(250e-6)

    def test_ms(self):
        assert units.ms(5) == pytest.approx(5e-3)

    def test_ns(self):
        assert units.ns(1024) == pytest.approx(1.024e-6)

    def test_roundtrip_us(self):
        assert units.to_us(units.us(123.4)) == pytest.approx(123.4)

    def test_roundtrip_ms(self):
        assert units.to_ms(units.ms(7.7)) == pytest.approx(7.7)

    @given(st.floats(min_value=0.0, max_value=1e9, allow_nan=False))
    def test_us_roundtrip_property(self, value):
        assert units.to_us(units.us(value)) == pytest.approx(value, rel=1e-12)


class TestSizes:
    def test_kb_is_1024(self):
        assert units.kb(1) == 1024

    def test_mb(self):
        assert units.mb(2) == 2 * 1024 * 1024

    def test_paper_threshold_250kb(self):
        # The 250KB testbed threshold is ~170 full-size packets.
        assert units.kb(250) // units.MTU == 170


class TestRates:
    def test_gbps(self):
        assert units.gbps(10) == 10e9

    def test_mbps(self):
        assert units.mbps(100) == 100e6

    def test_transmission_delay_1500b_10g(self):
        # The paper: ~1.2 us to serialize a 1.5KB packet at 10 Gbps.
        delay = units.transmission_delay(1500, units.gbps(10))
        assert delay == pytest.approx(1.2e-6)

    def test_transmission_delay_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            units.transmission_delay(1500, 0)

    def test_bdp(self):
        # C x RTT at 10G and 200us = 250KB (the paper's tail threshold).
        bdp = units.bandwidth_delay_product(units.gbps(10), units.us(200))
        assert bdp == pytest.approx(250_000, abs=1)  # float rounding

    def test_bdp_rejects_negative(self):
        with pytest.raises(ValueError):
            units.bandwidth_delay_product(-1, 0.1)

    @given(
        size=st.integers(min_value=1, max_value=9000),
        rate=st.floats(min_value=1e6, max_value=1e12),
    )
    def test_transmission_delay_positive_and_linear(self, size, rate):
        delay = units.transmission_delay(size, rate)
        assert delay > 0
        assert units.transmission_delay(2 * size, rate) == pytest.approx(2 * delay)


class TestFraming:
    def test_mss_plus_headers_is_mtu(self):
        assert units.MSS + units.HEADER_SIZE == units.MTU

    def test_ack_size_is_headers(self):
        assert units.ACK_SIZE == units.HEADER_SIZE
