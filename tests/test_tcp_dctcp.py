"""Unit tests for DCTCP's alpha estimator and fractional window cut.

Reaction timing follows Linux DCTCP: the *first* ECE of a window enters CWR
immediately (cut by the current alpha, at most once per window of data);
alpha itself is refreshed once per window from the marked-byte fraction.
"""

import pytest

from repro.sim.packet import Ecn, Packet
from repro.sim.units import ACK_SIZE, MSS, ms
from repro.tcp.dctcp import DCTCP_G, DctcpSender

from test_tcp_sender import FakeHost, ack


def make_dctcp(sim, size_segments=1000, **kwargs):
    host = FakeHost(sim)
    kwargs.setdefault("init_cwnd", 10.0)
    sender = DctcpSender(
        sim, host, flow_id=1, dst="b", size_bytes=size_segments * MSS, **kwargs
    )
    return sender, host


class TestAlphaEstimator:
    def test_initial_alpha_is_one(self, sim):
        sender, _ = make_dctcp(sim)
        assert sender.alpha == 1.0

    def test_alpha_decays_without_marks(self, sim):
        sender, _ = make_dctcp(sim)
        sender.start()
        for seq in range(1, 11):
            sender.receive(ack(seq, ece=False))
        # One or two window boundaries passed with F=0: alpha *= (1-g)^k.
        assert (1.0 - DCTCP_G) ** 2 <= sender.alpha <= (1.0 - DCTCP_G)

    def test_alpha_converges_to_mark_fraction(self, sim):
        sender, _ = make_dctcp(sim, size_segments=100_000)
        sender.start()
        # Steady state: every ACK marked -> F = 1 -> alpha -> 1.
        sender.alpha = 0.0
        seq = 0
        for _ in range(600):
            seq += 1
            sender.receive(ack(seq, ece=True))
        assert sender.alpha == pytest.approx(1.0, abs=0.05)

    def test_alpha_tracks_partial_fraction(self, sim):
        sender, _ = make_dctcp(sim, size_segments=100_000, g=0.5)
        sender.start()
        sender.alpha = 0.0
        # Alternate marked/unmarked ACKs.  The repeated cuts shrink the
        # window to a couple of segments, so per-window F oscillates around
        # 0.5 rather than settling exactly there; alpha must track the
        # long-run marked fraction, not collapse to 0 or saturate at 1.
        for seq in range(1, 1001):
            sender.receive(ack(seq, ece=(seq % 2 == 0)))
        assert 0.25 <= sender.alpha <= 0.75

    def test_invalid_g_rejected(self, sim):
        with pytest.raises(ValueError):
            make_dctcp(sim, g=0.0)
        with pytest.raises(ValueError):
            make_dctcp(sim, g=1.5)

    def test_invalid_alpha_rejected(self, sim):
        with pytest.raises(ValueError):
            make_dctcp(sim, init_alpha=-0.1)


class TestWindowCut:
    def test_cut_is_immediate_and_uses_current_alpha(self, sim):
        sender, _ = make_dctcp(sim, size_segments=100_000, init_alpha=0.4)
        sender.start()
        cwnd_before = sender.cwnd
        sender.receive(ack(1, ece=True))  # first ECE -> enter CWR now
        # the cut runs first; the same ACK then adds ~1/cwnd of CA growth
        assert sender.cwnd == pytest.approx(cwnd_before * (1 - 0.4 / 2), rel=0.03)

    def test_no_cut_without_marks(self, sim):
        sender, _ = make_dctcp(sim)
        sender.start()
        for seq in range(1, 11):
            sender.receive(ack(seq, ece=False))
        assert sender.cwnd == pytest.approx(20.0)  # pure slow start

    def test_at_most_one_cut_per_window(self, sim):
        sender, _ = make_dctcp(sim, size_segments=100_000, init_alpha=1.0)
        sender.start()
        cwnd_before = sender.cwnd
        sender.receive(ack(1, ece=True))  # one cut: halves (alpha = 1)
        after_first = sender.cwnd
        assert after_first == pytest.approx(cwnd_before / 2, rel=0.05)
        # Further ECEs inside the same window of data do not cut again.
        for seq in range(2, 11):
            sender.receive(ack(seq, ece=True))
        assert sender.cwnd >= after_first

    def test_new_window_allows_new_cut(self, sim):
        sender, _ = make_dctcp(sim, size_segments=100_000, init_alpha=1.0)
        sender.start()
        sender.receive(ack(1, ece=True))
        epoch_end = sender._cwr_point
        for seq in range(2, epoch_end + 1):
            sender.receive(ack(seq, ece=False))
        grown = sender.cwnd
        sender.receive(ack(epoch_end + 1, ece=True))
        assert sender.cwnd < grown

    def test_slow_start_overshoot_bounded(self, sim):
        """The fix the immediate CWR provides: a mark during slow start
        caps cwnd right away instead of a doubling-window later."""
        sender, _ = make_dctcp(sim, size_segments=100_000, init_alpha=1.0)
        sender.start()
        # Grow to cwnd 40 in slow start.
        for seq in range(1, 31):
            sender.receive(ack(seq, ece=False))
        assert sender.cwnd == pytest.approx(40.0)
        sender.receive(ack(31, ece=True))
        assert sender.cwnd <= 24.0  # cut immediately (alpha decayed slightly), not at window end

    def test_duplicate_acks_not_counted_in_bytes(self, sim):
        sender, _ = make_dctcp(sim)
        sender.start()
        sender.receive(ack(1, ece=True))
        acked_before = sender._acked_bytes
        sender.receive(ack(1, ece=True))  # duplicate
        assert sender._acked_bytes == acked_before

    def test_small_alpha_small_cut(self, sim):
        """DCTCP's whole point: a gentle reduction under light marking."""
        sender, _ = make_dctcp(sim, size_segments=100_000, init_alpha=0.1)
        sender.start()
        cwnd_before = sender.cwnd
        sender.receive(ack(1, ece=True))
        # cut fraction alpha/2 = 0.05 -> cwnd drops ~5% (plus ~1/cwnd CA growth).
        assert sender.cwnd == pytest.approx(cwnd_before * 0.95, rel=0.03)
