"""Unit tests for RTT probing and statistics."""

import numpy as np
import pytest

from repro.measurement import RttProber, summarize_rtts
from repro.netem.profiles import RttProfile
from repro.sim.packet import PacketFactory
from repro.sim.units import us
from repro.topology import build_star
from repro.experiments.runner import estimate_star_network_rtt


class TestSummarize:
    def test_basic_statistics(self):
        samples = [us(100)] * 50 + [us(200)] * 50
        summary = summarize_rtts(samples)
        assert summary.mean == pytest.approx(us(150))
        assert summary.n_samples == 100
        assert summary.p99 == pytest.approx(us(200))

    def test_microsecond_conversion(self):
        summary = summarize_rtts([us(100)])
        micro = summary.as_microseconds()
        assert micro.mean == pytest.approx(100)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_rtts([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            summarize_rtts([-1.0])


class TestProber:
    def run_probes(self, n_probes=40, profile=None):
        topo = build_star(n_senders=3)
        prober = RttProber(
            network=topo.network,
            factory=PacketFactory(),
            senders=topo.senders,
            receiver=topo.receiver,
            n_probes=n_probes,
            rng=np.random.default_rng(1),
            rtt_profile=profile,
            network_rtt=estimate_star_network_rtt(),
            delay_stage_of=topo.stage_for if profile else None,
        )
        prober.start()
        topo.network.sim.run_until_idle(max_events=10_000_000)
        return prober

    def test_collects_requested_samples(self):
        prober = self.run_probes(n_probes=25)
        assert prober.done
        assert len(prober.samples) == 25

    def test_uncongested_probe_measures_base_rtt(self):
        prober = self.run_probes(n_probes=10)
        expected = estimate_star_network_rtt()
        for sample in prober.samples:
            # 1-byte probes: data is 41B not 1500B, so a little faster
            # than the full-MTU estimate.
            assert 0 < sample <= expected * 1.1

    def test_profile_shifts_measurements(self):
        profile = RttProfile.from_variation(us(70), 3.0)
        prober = self.run_probes(n_probes=60, profile=profile)
        samples = np.array(prober.samples)
        assert np.all(samples >= us(60))
        assert np.all(samples <= us(230))
        assert samples.max() > samples.min() * 1.3  # variation visible

    def test_sequential_probing(self):
        """Probes are request/response: never two in flight."""
        prober = self.run_probes(n_probes=10)
        # Sequentiality implies strictly increasing measurement order with
        # gaps of at least one RTT; verified via sample count == n_probes
        # and no duplicate bursts (each probe launched on completion).
        assert len(prober.samples) == 10

    def test_validation(self):
        topo = build_star(n_senders=2)
        with pytest.raises(ValueError):
            RttProber(
                network=topo.network,
                factory=PacketFactory(),
                senders=topo.senders,
                receiver=topo.receiver,
                n_probes=0,
                rng=np.random.default_rng(0),
            )
        with pytest.raises(ValueError):
            RttProber(
                network=topo.network,
                factory=PacketFactory(),
                senders=[],
                receiver=topo.receiver,
                n_probes=5,
                rng=np.random.default_rng(0),
            )
        with pytest.raises(ValueError):
            RttProber(
                network=topo.network,
                factory=PacketFactory(),
                senders=topo.senders,
                receiver=topo.receiver,
                n_probes=5,
                rng=np.random.default_rng(0),
                rtt_profile=RttProfile.from_variation(us(70), 2.0),
            )

    def test_thresholds_derivable_from_probe_data(self):
        """The full operator loop: probe -> derive ECN# parameters."""
        from repro.core import derive_ecn_sharp_params
        from repro.core.ecn_sharp import EcnSharp, EcnSharpConfig

        profile = RttProfile.from_variation(us(70), 3.0)
        prober = self.run_probes(n_probes=80, profile=profile)
        params = derive_ecn_sharp_params(prober.samples)
        aqm = EcnSharp(
            EcnSharpConfig(params.ins_target, params.pst_target, params.pst_interval)
        )
        assert aqm.config.ins_target > us(100)
