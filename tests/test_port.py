"""Unit tests for egress ports: serialization, buffering, AQM hook points."""

import pytest

from repro.core.base import Aqm, NullAqm
from repro.core.red import DctcpRed
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.packet import Ecn
from repro.sim.port import Port
from repro.sim.units import gbps, us

from conftest import make_packet


class _Sink:
    """Records packet arrivals with timestamps."""

    def __init__(self, sim):
        self.sim = sim
        self.arrivals = []

    def receive(self, packet):
        self.arrivals.append((self.sim.now, packet))


def make_port(sim, rate=gbps(10), delay=us(2), buffer_bytes=15000, aqm=None):
    port = Port(sim, "p", rate, delay, buffer_bytes, aqm=aqm)
    sink = _Sink(sim)
    port.peer = sink
    return port, sink


class TestSerialization:
    def test_single_packet_timing(self, sim):
        port, sink = make_port(sim)
        port.send(make_packet(size=1500))
        sim.run()
        # 1500B at 10G = 1.2us serialization + 2us propagation.
        assert sink.arrivals[0][0] == pytest.approx(3.2e-6)

    def test_back_to_back_packets_serialize_sequentially(self, sim):
        port, sink = make_port(sim)
        port.send(make_packet(seq=0, size=1500))
        port.send(make_packet(seq=1, size=1500))
        sim.run()
        t0, t1 = sink.arrivals[0][0], sink.arrivals[1][0]
        assert t1 - t0 == pytest.approx(1.2e-6)  # one serialization apart

    def test_fifo_delivery_order(self, sim):
        port, sink = make_port(sim)
        for seq in range(10):
            port.send(make_packet(seq=seq))
        sim.run()
        assert [p.seq for _, p in sink.arrivals] == list(range(10))

    def test_idle_port_restarts(self, sim):
        port, sink = make_port(sim)
        port.send(make_packet(seq=0))
        sim.run()
        port.send(make_packet(seq=1))
        sim.run()
        assert len(sink.arrivals) == 2

    def test_tx_stats(self, sim):
        port, _ = make_port(sim)
        port.send(make_packet(size=1500))
        port.send(make_packet(size=40))
        sim.run()
        assert port.stats.tx_packets == 2
        assert port.stats.tx_bytes == 1540

    def test_unconnected_port_rejects(self, sim):
        port = Port(sim, "p", gbps(10), us(2), 10000)
        with pytest.raises(RuntimeError):
            port.send(make_packet())


class TestBuffering:
    def test_overflow_drops_at_tail(self, sim):
        port, sink = make_port(sim, buffer_bytes=3000)
        for seq in range(4):
            port.send(make_packet(seq=seq, size=1500))
        sim.run()
        # One in flight is possible; buffer holds 2 x 1500.
        assert port.stats.dropped_overflow >= 1
        delivered = {p.seq for _, p in sink.arrivals}
        assert 0 in delivered  # head was never dropped

    def test_on_drop_callback(self, sim):
        port, _ = make_port(sim, buffer_bytes=1500)
        drops = []
        port.on_drop = lambda packet, reason: drops.append((packet.seq, reason))
        for seq in range(3):
            port.send(make_packet(seq=seq))
        sim.run()
        assert drops and all(reason == "overflow" for _, reason in drops)

    def test_buffer_released_after_transmit(self, sim):
        port, _ = make_port(sim, buffer_bytes=3000)
        port.send(make_packet(size=1500))
        sim.run()
        assert port.buffer.used_bytes == 0

    def test_queue_accessors(self, sim):
        port, _ = make_port(sim)
        for seq in range(5):
            port.send(make_packet(seq=seq))
        # One packet immediately entered serialization; 4 queued.
        assert port.queue_packets == 4
        assert port.queue_bytes == 4 * 1500


class _DequeueDropAqm(Aqm):
    """Drops every packet at dequeue (models CoDel dropping not-ECT)."""

    def on_dequeue(self, packet, now):
        return False


class _EnqueueVetoAqm(Aqm):
    """Rejects every packet at enqueue."""

    def on_enqueue(self, packet, now, queue_bytes):
        return False


class TestAqmHooks:
    def test_enqueue_marking_sees_prior_occupancy(self, sim):
        aqm = DctcpRed(threshold_bytes=1500)
        port, sink = make_port(sim, aqm=aqm)
        for seq in range(3):
            port.send(make_packet(seq=seq))
        sim.run()
        # First packet saw queue 0 (tx immediately); second saw 0 (first was
        # in flight, queue empty); third saw 1500 -> marked.
        marked = [p.seq for _, p in sink.arrivals if p.ce_marked]
        assert marked == [2]

    def test_enqueue_veto_counts_aqm_drop(self, sim):
        port, sink = make_port(sim, aqm=_EnqueueVetoAqm())
        port.send(make_packet())
        sim.run()
        assert port.stats.dropped_aqm == 1
        assert sink.arrivals == []

    def test_dequeue_drop_skips_to_next(self, sim):
        port, sink = make_port(sim, aqm=_DequeueDropAqm())
        for seq in range(3):
            port.send(make_packet(seq=seq))
        sim.run()
        assert sink.arrivals == []
        assert port.stats.dropped_aqm == 3
        assert port.buffer.used_bytes == 0  # accounting stayed clean

    def test_default_aqm_is_null(self, sim):
        port, _ = make_port(sim)
        assert isinstance(port.aqm, NullAqm)

    def test_enqueue_timestamp_stamped(self, sim):
        port, sink = make_port(sim)
        sim.schedule(us(5), port.send, make_packet())
        sim.run()
        _, packet = sink.arrivals[0]
        assert packet.enqueue_time == pytest.approx(us(5))


class TestFastPath:
    """Opt-in closed-form path (REPRO_PORT_FAST=1): delivery times must be
    float-identical to the event-driven loop's; buffer accounting and stats
    must settle identically at idle."""

    def _deliveries(self, monkeypatch, enabled, sends):
        monkeypatch.setenv("REPRO_PORT_FAST", "1" if enabled else "0")
        sim = Simulator()
        port, sink = make_port(sim)
        for at, size in sends:
            sim.schedule(at, port.send, make_packet(size=size))
        sim.run()
        return (
            [(t, p.size) for t, p in sink.arrivals],
            port.stats.tx_packets,
            port.stats.tx_bytes,
            port.stats.enqueued_packets,
            port.buffer.used_bytes,
        )

    def test_delivery_times_float_identical_to_event_loop(self, monkeypatch):
        sends = [(0.0, 1500), (0.0, 1500), (us(1), 40), (us(1.2), 9000),
                 (us(30), 1500)]
        assert self._deliveries(monkeypatch, True, sends) == self._deliveries(
            monkeypatch, False, sends
        )

    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PORT_FAST", raising=False)
        sim = Simulator()
        port, _ = make_port(sim)
        port.send(make_packet())
        sim.run()
        assert port._fast is False

    def test_opt_in_engages_only_without_hooks(self, monkeypatch):
        monkeypatch.setenv("REPRO_PORT_FAST", "1")
        sim = Simulator()
        plain, _ = make_port(sim)
        plain.send(make_packet())
        assert plain._fast is True
        aqmed, _ = make_port(sim, aqm=DctcpRed(30000))
        aqmed.send(make_packet())
        assert aqmed._fast is False
        sim.run()

    def test_overflow_drops_and_buffer_settles(self, monkeypatch):
        monkeypatch.setenv("REPRO_PORT_FAST", "1")
        sim = Simulator()
        port, sink = make_port(sim, buffer_bytes=3000)
        # The head packet's reservation frees at service start (t=0), so 3
        # of 5 are admitted -- identical to the event-driven loop.
        for _ in range(5):
            port.send(make_packet(size=1500))
        sim.run()
        assert port.stats.dropped_overflow == 2
        assert len(sink.arrivals) == 3
        assert port.buffer.used_bytes == 0
        assert port.stats.tx_packets == 3

    def test_queue_occupancy_counts_unserved_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_PORT_FAST", "1")
        sim = Simulator()
        port, _ = make_port(sim)
        for _ in range(3):
            port.send(make_packet(size=1500))
        # First packet entered service immediately; two are waiting.
        assert port.queue_packets == 2
        assert port.queue_bytes == 3000
        sim.run()
        assert port.queue_packets == 0
        assert port.queue_bytes == 0
