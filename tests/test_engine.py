"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import (
    SimulationError,
    SimulationStalled,
    Simulator,
    Timer,
)


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(0.3, order.append, "c")
        sim.schedule(0.1, order.append, "a")
        sim.schedule(0.2, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self, sim):
        order = []
        for label in "abcde":
            sim.schedule(0.5, order.append, label)
        sim.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(0.25, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [0.25]
        assert sim.now == 0.25

    def test_schedule_at_absolute_time(self, sim):
        seen = []
        sim.schedule_at(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_nested_scheduling_from_callback(self, sim):
        order = []

        def first():
            order.append("first")
            sim.schedule(0.1, lambda: order.append("nested"))

        sim.schedule(0.1, first)
        sim.schedule(0.5, lambda: order.append("last"))
        sim.run()
        assert order == ["first", "nested", "last"]

    def test_callback_args_passed(self, sim):
        seen = []
        sim.schedule(0.1, lambda a, b: seen.append((a, b)), 1, "x")
        sim.run()
        assert seen == [(1, "x")]

    def test_zero_delay_runs(self, sim):
        seen = []
        sim.schedule(0.0, seen.append, 1)
        sim.run()
        assert seen == [1]


class TestRunControl:
    def test_until_stops_before_later_events(self, sim):
        seen = []
        sim.schedule(0.1, seen.append, "early")
        sim.schedule(0.9, seen.append, "late")
        sim.run(until=0.5)
        assert seen == ["early"]
        assert sim.now == 0.5  # clock advanced to the horizon
        sim.run()
        assert seen == ["early", "late"]

    def test_until_inclusive_of_equal_time(self, sim):
        seen = []
        sim.schedule(0.5, seen.append, "edge")
        sim.run(until=0.5)
        assert seen == ["edge"]

    def test_max_events_bounds_dispatch(self, sim):
        seen = []
        for index in range(10):
            sim.schedule(0.1 * (index + 1), seen.append, index)
        sim.run(max_events=3)
        assert seen == [0, 1, 2]

    def test_events_processed_counter(self, sim):
        for _ in range(5):
            sim.schedule(0.1, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_events_processed_is_live_mid_run_on_heap(self):
        # The heap scheduler updates the counter per dispatch: each
        # callback sees the count of *prior* dispatches, not a value
        # batched in at the end of run().
        sim = Simulator(scheduler="heap")
        observed = []
        for index in range(4):
            sim.schedule(0.1 * (index + 1), lambda: observed.append(sim.events_processed))
        sim.run()
        assert observed == [0, 1, 2, 3]
        assert sim.events_processed == 4

    def test_events_processed_exact_between_runs_on_calendar(self):
        # The calendar scheduler's fast drain syncs the counter at batch
        # boundaries (that is where its throughput comes from), so only
        # exactness *between* run() calls is contractual there.
        sim = Simulator(scheduler="calendar")
        for index in range(4):
            sim.schedule(0.1 * (index + 1), lambda: None)
        sim.run(max_events=2)
        assert sim.events_processed == 2
        sim.run()
        assert sim.events_processed == 4

    def test_events_processed_is_live_when_instrumented(self):
        # With a profiler attached the engine runs the per-event
        # instrumented loop, where both schedulers keep the counter live.
        from repro.telemetry import RunProfiler

        for name in ("calendar", "heap"):
            sim = Simulator(scheduler=name)
            sim.profiler = RunProfiler()
            observed = []
            for index in range(4):
                sim.schedule(
                    0.1 * (index + 1), lambda: observed.append(sim.events_processed)
                )
            sim.run()
            assert observed == [1, 2, 3, 4], name

    def test_events_processed_accumulates_across_runs(self, sim):
        for index in range(6):
            sim.schedule(0.1 * (index + 1), lambda: None)
        sim.run(max_events=2)
        assert sim.events_processed == 2
        sim.run(max_events=2)
        assert sim.events_processed == 4
        sim.run()
        assert sim.events_processed == 6

    def test_profiler_attach_and_record(self, sim):
        from repro.telemetry import RunProfiler

        assert sim.profiler is None  # no active telemetry in tests
        profiler = RunProfiler()
        sim.profiler = profiler
        for index in range(8):
            sim.schedule(0.1 * (index + 1), lambda: None)
        sim.run(max_events=5)
        sim.run()
        assert profiler.runs == 2
        assert profiler.events == 8
        assert profiler.peak_heap_depth >= 1
        assert profiler.virtual_seconds == pytest.approx(0.8)

    def test_run_until_idle_drains(self, sim):
        count = []

        def chain(n):
            count.append(n)
            if n > 0:
                sim.schedule(0.01, chain, n - 1)

        sim.schedule(0.0, chain, 4)
        sim.run_until_idle()
        assert count == [4, 3, 2, 1, 0]
        assert sim.pending_events == 0

    def test_reentrant_run_rejected(self, sim):
        def nested():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(0.1, nested)
        sim.run()


class TestStallDetection:
    def _self_scheduling_loop(self, sim, delay):
        """An event loop that reschedules itself forever."""

        def tick():
            sim.schedule(delay, tick)

        sim.schedule(delay, tick)

    def test_budget_exhaustion_raises_when_opted_in(self, sim):
        self._self_scheduling_loop(sim, delay=0.001)
        with pytest.raises(SimulationStalled) as caught:
            sim.run(max_events=25, raise_on_stall=True)
        stall = caught.value
        assert stall.reason == "budget"
        assert stall.events == 25
        assert stall.pending >= 1
        assert stall.clock == pytest.approx(sim.now)
        assert isinstance(stall, SimulationError)  # typed, catchable

    def test_budget_exhaustion_silent_by_default(self, sim):
        # run(max_events=N) is a cooperative budget for incremental
        # dispatch (tests, benchmarks); only opting in raises.
        self._self_scheduling_loop(sim, delay=0.001)
        sim.run(max_events=25)
        assert sim.events_processed == 25

    def test_run_until_idle_raises_on_stall_by_default(self, sim):
        self._self_scheduling_loop(sim, delay=0.001)
        with pytest.raises(SimulationStalled, match="budget"):
            sim.run_until_idle(max_events=50)

    def test_no_stall_when_budget_exactly_drains(self, sim):
        for index in range(5):
            sim.schedule(0.1 * (index + 1), lambda: None)
        sim.run(max_events=5, raise_on_stall=True)  # heap empty: no stall
        assert sim.pending_events == 0

    def test_until_stop_is_not_a_stall(self, sim):
        # Budget exhausted, but every remaining event lies beyond the
        # horizon: the run legitimately stopped at `until`.
        sim.schedule(0.1, lambda: None)
        sim.schedule(5.0, lambda: None)
        sim.run(until=1.0, max_events=1, raise_on_stall=True)
        assert sim.now == 1.0

    def test_no_progress_detector_catches_zero_delay_loop(self, sim):
        self._self_scheduling_loop(sim, delay=0.0)
        with pytest.raises(SimulationStalled) as caught:
            sim.run(no_progress_limit=100)
        assert caught.value.reason == "no-progress"
        assert caught.value.events >= 100

    def test_no_progress_detector_allows_advancing_clock(self, sim):
        count = []

        def chain(n):
            count.append(n)
            if n > 0:
                sim.schedule(0.01, chain, n - 1)

        sim.schedule(0.0, chain, 300)
        sim.run(no_progress_limit=10)  # clock advances every event
        assert len(count) == 301

    def test_no_progress_detector_records_profiler_run(self, sim):
        from repro.telemetry import RunProfiler

        profiler = RunProfiler()
        sim.profiler = profiler
        self._self_scheduling_loop(sim, delay=0.0)
        with pytest.raises(SimulationStalled):
            sim.run(no_progress_limit=50)
        assert profiler.runs == 1  # the stalled run still gets recorded


class TestTimer:
    def test_fires_after_delay(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.restart(0.2)
        sim.run()
        assert fired == [pytest.approx(0.2)]

    def test_cancel_suppresses(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.restart(0.2)
        timer.cancel()
        sim.run()
        assert fired == []
        assert not timer.armed

    def test_restart_supersedes(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.restart(0.2)
        timer.restart(0.5)
        sim.run()
        assert fired == [pytest.approx(0.5)]

    def test_restart_after_fire(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.restart(0.1)
        sim.run()
        timer.restart(0.1)
        sim.run()
        assert fired == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_armed_and_expiry_tracking(self, sim):
        timer = Timer(sim, lambda: None)
        assert not timer.armed
        timer.restart(0.3)
        assert timer.armed
        assert timer.expiry == pytest.approx(0.3)
        sim.run()
        assert not timer.armed
        assert timer.expiry == float("inf")

    def test_cancel_then_restart(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.restart(0.1)
        timer.cancel()
        timer.restart(0.4)
        sim.run()
        assert fired == [pytest.approx(0.4)]


class TestDeterminism:
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_dispatch_order_is_sorted_and_stable(self, delays):
        sim = Simulator()
        seen = []
        for index, delay in enumerate(delays):
            sim.schedule(delay, lambda i=index, d=delay: seen.append((d, i)))
        sim.run()
        assert seen == sorted(seen)  # by (time, insertion order)

    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_two_identical_runs_agree(self, delays):
        def run_once():
            sim = Simulator()
            trace = []
            for index, delay in enumerate(delays):
                sim.schedule(delay, lambda i=index: trace.append((sim.now, i)))
            sim.run()
            return trace

        assert run_once() == run_once()
