"""Tests for the campaign observability layer: span tracing (including
cross-process stitching and the zero-allocation disabled path), live
progress reporting, per-cell resource attribution, and the offline
``repro obs report`` dashboards."""

import io
import json

import pytest

from repro.experiments.executor import Executor, SpecAttribution
from repro.experiments.specs import AqmSpec, RunSpec
from repro.obs import build_report
from repro.scenarios import CampaignStore, Scenario, run_campaign
from repro.sim.units import us
from repro.telemetry import Telemetry, activate
from repro.telemetry.progress import (
    JsonlHeartbeat,
    ProgressTracker,
    TtyProgress,
    make_progress,
)
from repro.telemetry.spans import NULL_SPAN, Span, SpanTracer, maybe_span
from repro.workloads import WEB_SEARCH

from test_scenarios_schema import base_dict


def tiny_spec(seed=3, load=0.4):
    return RunSpec.star(
        AqmSpec.make("sojourn-red", sojourn=us(200)),
        workload=WEB_SEARCH.name,
        load=load,
        n_flows=12,
        seed=seed,
        label="RED-Tail",
    )


def tiny_scenario(name="obs-unit", loads=(0.2,), seed=7):
    data = base_dict(name=name, run={"seed": seed})
    data["workloads"][0].update({"loads": list(loads), "n_flows": 6})
    return Scenario.from_dict(data)


# ------------------------------------------------------------------- spans


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now


class TestSpan:
    def test_nesting_builds_a_tree(self):
        tracer = SpanTracer()
        with tracer.span("campaign", kind="campaign"):
            with tracer.span("grid", kind="grid"):
                with tracer.span("cell", kind="cell"):
                    pass
                with tracer.span("cell", kind="cell"):
                    pass
        assert len(tracer.roots) == 1
        assert tracer.count() == 4
        assert tracer.max_depth() == 3
        grid = tracer.roots[0].children[0]
        assert [c.name for c in grid.children] == ["cell", "cell"]

    def test_dual_clocks(self):
        tracer = SpanTracer()
        clock = FakeClock(1.0)
        with tracer.span("drain", kind="engine", clock=clock):
            clock.now = 3.5
        span = tracer.roots[0]
        assert span.des_seconds == pytest.approx(2.5)
        assert span.wall_seconds is not None and span.wall_seconds >= 0

    def test_serialization_roundtrip(self):
        tracer = SpanTracer()
        clock = FakeClock(0.0)
        with tracer.span("cell", kind="cell", token="t1"):
            with tracer.span("drain", kind="engine", clock=clock):
                clock.now = 0.25
        payload = tracer.to_list()
        rebuilt = Span.from_dict(payload[0])
        assert rebuilt.name == "cell"
        assert rebuilt.attrs == {"token": "t1"}
        assert rebuilt.children[0].name == "drain"
        assert rebuilt.children[0].des_seconds == pytest.approx(0.25)
        # durations survive the roundtrip (origins do not cross processes)
        assert rebuilt.to_dict() == payload[0]

    def test_adopt_grafts_under_current_span(self):
        worker = SpanTracer()
        with worker.span("cell", kind="cell"):
            pass
        parent = SpanTracer()
        with parent.span("grid", kind="grid"):
            parent.adopt(worker.to_list())
        assert parent.roots[0].children[0].name == "cell"

    def test_maybe_span_without_telemetry_is_null(self):
        assert maybe_span("x") is NULL_SPAN

    def test_maybe_span_with_spanless_telemetry_is_null(self):
        with activate(Telemetry(metrics=False, profile=False)):
            assert maybe_span("x") is NULL_SPAN

    def test_snapshot_includes_spans(self):
        telemetry = Telemetry(metrics=False, profile=False, spans=True)
        with activate(telemetry):
            with maybe_span("campaign", kind="campaign"):
                pass
        snap = telemetry.snapshot()
        assert snap["spans"][0]["name"] == "campaign"


class TestDisabledPathAllocatesNothing:
    def test_executor_run_without_telemetry_allocates_no_spans(self):
        executor = Executor(jobs=1, cache=False, retries=0)
        before = Span.allocated
        executor.run([tiny_spec()])
        assert Span.allocated == before

    def test_null_span_is_reentrant(self):
        with NULL_SPAN:
            with NULL_SPAN:
                pass


def tree_shape(span_dict):
    """Order-insensitive structural fingerprint of a serialized span."""
    return (
        span_dict["name"],
        span_dict["kind"],
        tuple(sorted(
            tree_shape(c) for c in span_dict.get("children", [])
        )),
    )


class TestCrossProcessStitching:
    def run_with_spans(self, jobs):
        telemetry = Telemetry(metrics=False, profile=False, spans=True)
        executor = Executor(jobs=jobs, cache=False, retries=0)
        with activate(telemetry):
            results = executor.run([tiny_spec(seed=3), tiny_spec(seed=4)])
        assert all(r is not None for r in results)
        return telemetry.spans.to_list()

    def test_pool_tree_equivalent_to_inline_tree(self):
        inline = self.run_with_spans(jobs=1)
        pooled = self.run_with_spans(jobs=2)
        assert [tree_shape(s) for s in inline] == [
            tree_shape(s) for s in pooled
        ]
        # the stitched tree carries the worker cell spans with engine phases
        grid = pooled[0]
        assert grid["name"] == "grid"
        cells = grid["children"]
        assert len(cells) == 2
        for cell in cells:
            child_names = {c["name"] for c in cell.get("children", [])}
            assert child_names == {"setup", "drain"}

    def test_worker_spans_record_worker_pid(self):
        import os

        pooled = self.run_with_spans(jobs=2)
        pids = {cell["pid"] for cell in pooled[0]["children"]}
        assert os.getpid() not in pids


# ----------------------------------------------------------------- progress


class TestProgressTracker:
    def test_counts_and_eta(self):
        tracker = ProgressTracker()
        tracker.add_total(4)
        assert tracker.eta_seconds() is None  # no rate yet
        tracker.record("ok", wall_seconds=0.5, events=1000)
        tracker.record("failed")
        tracker.record("cache")
        assert tracker.done == 3
        assert tracker.remaining == 1
        assert tracker.eta_seconds() is not None
        tracker.record("skipped")
        assert tracker.eta_seconds() == 0.0
        snap = tracker.snapshot()
        assert snap["done"] == 4 and snap["total"] == 4
        assert snap["ok"] == 1 and snap["failed"] == 1
        assert snap["cache_hits"] == 1 and snap["skipped"] == 1
        assert snap["events"] == 1000

    def test_events_per_sec_ewma(self):
        tracker = ProgressTracker()
        tracker.add_total(2)
        tracker.record("ok", wall_seconds=1.0, events=1000)
        assert tracker.events_per_sec == pytest.approx(1000.0)
        tracker.record("ok", wall_seconds=1.0, events=2000)
        assert tracker.events_per_sec == pytest.approx(0.3 * 2000 + 0.7 * 1000)

    def test_unknown_status_raises(self):
        with pytest.raises(ValueError, match="unknown progress status"):
            ProgressTracker().record("bogus")


class TestReporters:
    def test_jsonl_heartbeat_lines_are_parseable(self):
        stream = io.StringIO()
        reporter = JsonlHeartbeat(stream=stream, min_interval=0.0)
        reporter.add_total(2)
        reporter.cell_done("ok", wall_seconds=0.1, events=500)
        reporter.retry()
        reporter.cell_done("failed")
        reporter.close()
        lines = [json.loads(l) for l in stream.getvalue().splitlines()]
        assert all(line["kind"] in ("progress", "summary") for line in lines)
        final = lines[-1]
        assert final["kind"] == "summary"
        assert final["done"] == 2 and final["ok"] == 1
        assert final["failed"] == 1 and final["retried"] == 1
        assert final["events"] == 500

    def test_close_is_idempotent(self):
        stream = io.StringIO()
        reporter = JsonlHeartbeat(stream=stream)
        reporter.close()
        once = stream.getvalue()
        reporter.close()
        assert stream.getvalue() == once

    def test_tty_renderer_repaints_one_line(self):
        stream = io.StringIO()
        reporter = TtyProgress(stream=stream, min_interval=0.0)
        reporter.add_total(1)
        reporter.cell_done("ok", wall_seconds=0.1, events=100)
        reporter.close()
        output = stream.getvalue()
        assert output.startswith("\r")
        assert "1/1" in output
        assert output.endswith("\n")

    def test_make_progress_auto_picks_jsonl_for_non_tty(self):
        assert isinstance(
            make_progress("auto", stream=io.StringIO()), JsonlHeartbeat
        )
        with pytest.raises(ValueError):
            make_progress("bogus")


# ------------------------------------------------------------- attribution


class TestResourceAttribution:
    def test_run_records_wall_events_and_rss(self):
        executor = Executor(jobs=1, cache=False, retries=0)
        executor.run([tiny_spec()])
        attribution = executor.last_run_attribution
        assert len(attribution) == 1
        attr = attribution[0]
        assert isinstance(attr, SpecAttribution)
        assert attr.source == "run"
        assert attr.wall_seconds > 0
        assert attr.events > 0
        assert attr.max_rss_kb is None or attr.max_rss_kb > 0
        assert attr.to_dict()["token"] == tiny_spec().token()

    def test_cache_hits_are_attributed_as_cache(self, tmp_path):
        executor = Executor(jobs=1, cache=True, cache_dir=tmp_path, retries=0)
        executor.run([tiny_spec()])
        executor.run([tiny_spec()])
        attr = executor.last_run_attribution[0]
        assert attr.source == "cache"
        assert attr.wall_seconds == 0.0

    def test_obs_payload_never_reaches_the_result(self, tmp_path):
        executor = Executor(jobs=1, cache=True, cache_dir=tmp_path, retries=0)
        first = executor.run([tiny_spec()])[0]
        assert not hasattr(first, "_obs")
        replayed = executor.run([tiny_spec()])[0]
        assert not hasattr(replayed, "_obs")

    def test_progress_reporter_sees_executor_cells(self):
        stream = io.StringIO()
        reporter = JsonlHeartbeat(stream=stream, min_interval=0.0)
        executor = Executor(jobs=1, cache=False, retries=0, progress=reporter)
        executor.run([tiny_spec()])
        reporter.close()
        final = json.loads(stream.getvalue().splitlines()[-1])
        assert final["total"] == 1 and final["ok"] == 1


class TestCampaignResources:
    def test_sidecar_rows_carry_resource_fields(self, tmp_path):
        store_path = tmp_path / "campaign.jsonl"
        run_campaign([tiny_scenario()], store_path,
                     Executor(jobs=1, cache=False, retries=0))
        store = CampaignStore(store_path)
        rows = store.load_resources()
        assert len(rows) == 1
        row = rows[0]
        assert row["scenario"] == "obs-unit"
        assert row["status"] == "ok"
        assert row["wall_seconds"] > 0
        assert row["events"] > 0
        assert row["events_per_sec"] > 0
        assert row["executed_specs"] >= 1
        assert "max_rss_kb" in row and "cache_hits" in row

    def test_main_store_stays_timestamp_free(self, tmp_path):
        """The sidecar absorbs the nondeterminism; the store's record
        schema must not grow resource fields."""
        store_path = tmp_path / "campaign.jsonl"
        run_campaign([tiny_scenario()], store_path,
                     Executor(jobs=1, cache=False, retries=0))
        record = json.loads(store_path.read_text().splitlines()[0])
        assert set(record) == {
            "scenario", "scenario_hash", "cell_key", "component", "tokens",
            "status", "metrics", "failures", "git_sha", "version",
        }

    def test_campaign_progress_counts_cells(self, tmp_path):
        stream = io.StringIO()
        reporter = JsonlHeartbeat(stream=stream, min_interval=0.0)
        store_path = tmp_path / "campaign.jsonl"
        scenario = tiny_scenario()
        run_campaign([scenario], store_path,
                     Executor(jobs=1, cache=False, retries=0),
                     progress=reporter)
        run_campaign([scenario], store_path,
                     Executor(jobs=1, cache=False, retries=0),
                     progress=reporter)
        reporter.close()
        final = json.loads(stream.getvalue().splitlines()[-1])
        assert final["ok"] == 1 and final["skipped"] == 1
        assert final["done"] == final["total"] == 2


# --------------------------------------------------------------- obs report


def synthetic_inputs(tmp_path):
    store = tmp_path / "campaign.jsonl"
    records = [
        {
            "scenario": "s1", "scenario_hash": "h1",
            "cell_key": "ws|load=0.2|scheme=ECN#", "component": "ws",
            "tokens": ["t1"], "status": "ok",
            "metrics": {"overall_avg": 0.001}, "failures": [],
            "git_sha": "abc", "version": "0.1",
        },
        {
            "scenario": "s1", "scenario_hash": "h1",
            "cell_key": "ws|load=0.4|scheme=CoDel", "component": "ws",
            "tokens": ["t2"], "status": "failed",
            "metrics": {},
            "failures": [{"kind": "crash", "exc_type": "RuntimeError"}],
            "git_sha": "abc", "version": "0.1",
        },
    ]
    store.write_text(
        "".join(json.dumps(r) + "\n" for r in records), encoding="utf-8"
    )
    resources = tmp_path / "campaign.resources.jsonl"
    rows = [
        {"scenario": "s1", "cell_key": "ws|load=0.2|scheme=ECN#",
         "status": "ok", "wall_seconds": 2.0, "events": 1000,
         "events_per_sec": 500.0, "max_rss_kb": 40000, "cache_hits": 0,
         "executed_specs": 2, "failed_specs": 0, "git_sha": "abc"},
        {"scenario": "s1", "cell_key": "ws|load=0.4|scheme=CoDel",
         "status": "failed", "wall_seconds": 1.0, "events": 400,
         "events_per_sec": 400.0, "max_rss_kb": 41000, "cache_hits": 1,
         "executed_specs": 1, "failed_specs": 1, "git_sha": "abc"},
    ]
    resources.write_text(
        "".join(json.dumps(r) + "\n" for r in rows), encoding="utf-8"
    )
    trend = tmp_path / "trend.jsonl"
    trend_rows = [
        {"unix_time": 1.0, "git_sha": "aaa", "python": "3.11.7",
         "cpu_count": 4, "events_per_sec": 600000.0, "sweep_speedup": 2.0},
        {"unix_time": 2.0, "git_sha": "bbb", "python": "3.11.7",
         "cpu_count": 4, "events_per_sec": 650000.0, "sweep_speedup": 2.1},
    ]
    trend.write_text(
        "".join(json.dumps(r) + "\n" for r in trend_rows), encoding="utf-8"
    )
    return store, resources, trend


class TestObsReport:
    def test_markdown_covers_every_section(self, tmp_path):
        store, _, trend = synthetic_inputs(tmp_path)
        report = build_report(store=store, trend=trend)
        md = report.to_markdown()
        assert "## Summary" in md
        assert "## Slowest cells" in md
        assert "## Per-scheme time breakdown" in md
        assert "## Failures" in md
        assert "## Engine throughput trend" in md
        assert "crash" in md
        assert "ECN#" in md and "CoDel" in md
        assert "aaa" in md and "bbb" in md
        # cell keys contain '|'; they must be escaped inside table cells
        assert "ws\\|load=0.2\\|scheme=ECN#" in md

    def test_scheme_breakdown_orders_by_wall_time(self, tmp_path):
        store, _, _ = synthetic_inputs(tmp_path)
        report = build_report(store=store)
        assert [row["scheme"] for row in report.scheme_rows] == [
            "ECN#", "CoDel"
        ]
        assert report.scheme_rows[0]["share"] == pytest.approx(2.0 / 3.0)

    def test_html_is_standalone_with_svg_trend(self, tmp_path):
        store, _, trend = synthetic_inputs(tmp_path)
        html_text = build_report(store=store, trend=trend).to_html()
        assert html_text.startswith("<!doctype html>")
        assert "<table>" in html_text
        assert "<svg" in html_text and "polyline" in html_text
        assert "<script" not in html_text
        # unescaped cell key text survives into the table cells
        assert "ws|load=0.2|scheme=ECN#" in html_text

    def test_missing_inputs_yield_empty_sections(self, tmp_path):
        report = build_report(store=tmp_path / "absent.jsonl",
                              trend=tmp_path / "absent-trend.jsonl")
        md = report.to_markdown()
        assert "No trend data" in md
        assert report.total_cells == 0

    def test_latest_sidecar_row_wins(self, tmp_path):
        store, resources, _ = synthetic_inputs(tmp_path)
        with open(resources, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({
                "scenario": "s1", "cell_key": "ws|load=0.2|scheme=ECN#",
                "status": "ok", "wall_seconds": 9.0, "events": 9000,
                "events_per_sec": 1000.0, "max_rss_kb": 1, "cache_hits": 0,
                "executed_specs": 2, "failed_specs": 0, "git_sha": "abc",
            }) + "\n")
        report = build_report(store=store)
        row = next(r for r in report.resources
                   if r["cell_key"] == "ws|load=0.2|scheme=ECN#")
        assert row["wall_seconds"] == 9.0

    def test_checked_in_example_store_renders_offline(self):
        report = build_report(store="examples/obs/campaign.jsonl")
        assert report.total_cells == 3
        assert report.resources  # sidecar auto-discovered
        md = report.to_markdown()
        assert "fig10-microscopic" in md


# --------------------------------------------------------------- CLI wiring


class TestCli:
    def test_obs_report_cli(self, tmp_path, capsys):
        from repro.cli import main

        store, _, trend = synthetic_inputs(tmp_path)
        out_md = tmp_path / "dash.md"
        out_html = tmp_path / "dash.html"
        assert main([
            "obs", "report", "--store", str(store), "--trend", str(trend),
            "--out", str(out_md), "--html", str(out_html),
        ]) == 0
        assert "## Summary" in out_md.read_text()
        assert out_html.read_text().startswith("<!doctype html>")
        captured = capsys.readouterr()
        assert "report written" in captured.out

    def test_obs_report_to_stdout(self, tmp_path, capsys):
        from repro.cli import main

        store, _, _ = synthetic_inputs(tmp_path)
        assert main(["obs", "report", "--store", str(store)]) == 0
        assert "## Summary" in capsys.readouterr().out

    def test_obs_report_requires_an_input(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["obs", "report"])

    def test_quiet_suppresses_diagnostics(self, tmp_path, capsys):
        from repro.cli import main

        store, _, _ = synthetic_inputs(tmp_path)
        out_md = tmp_path / "dash.md"
        assert main(["-q", "obs", "report", "--store", str(store),
                     "--out", str(out_md)]) == 0
        captured = capsys.readouterr()
        assert "report written" not in captured.out
        assert out_md.exists()

    def test_scenario_run_progress_out_and_spans_out(self, tmp_path, capsys,
                                                     scenario_file):
        from repro.cli import main

        heartbeat = tmp_path / "hb.jsonl"
        spans_out = tmp_path / "spans.json"
        store = tmp_path / "campaign.jsonl"
        assert main([
            "scenario", "run", str(scenario_file),
            "--store", str(store), "--no-cache",
            "--progress-out", str(heartbeat), "--spans-out", str(spans_out),
        ]) == 0
        lines = [json.loads(l)
                 for l in heartbeat.read_text().splitlines()]
        assert lines[-1]["kind"] == "summary"
        assert lines[-1]["ok"] == lines[-1]["total"]
        spans = json.loads(spans_out.read_text())["spans"]
        assert spans[0]["name"] == "campaign"
        captured = capsys.readouterr()
        assert "# spans:" in captured.out
        assert "# campaign:" in captured.out


SCENARIO_TOML = """\
schema_version = 1
name = "obs-unit"

[rtt]
min_us = 70.0
variation = 3.0
shape = "testbed"

[schemes]
preset = "testbed"
only = ["ECN#"]

[run]
seed = 7

[[workloads]]
name = "ws"
kind = "fct"
workload = "web-search"
loads = [0.2]
n_flows = 6
"""


@pytest.fixture
def scenario_file(tmp_path):
    path = tmp_path / "obs_unit.toml"
    path.write_text(SCENARIO_TOML)
    return path
