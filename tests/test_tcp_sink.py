"""Unit tests for the TCP receiver (cumulative ACKs, ECE echo, completion)."""

import pytest

from repro.sim.packet import Ecn, Packet
from repro.sim.units import ACK_SIZE, MSS

from test_tcp_sender import FakeHost


def make_sink(sim, total_segments=10, on_complete=None):
    from repro.tcp.sink import TcpSink

    host = FakeHost(sim, name="b")
    sink = TcpSink(
        sim, host, flow_id=1, src="a", total_segments=total_segments,
        on_complete=on_complete,
    )
    return sink, host


def data(seq, ce=False):
    packet = Packet(
        flow_id=1, src="a", dst="b", seq=seq, size=MSS + 40, ecn=Ecn.ECT0
    )
    if ce:
        packet.mark_ce()
    return packet


class TestCumulativeAcks:
    def test_in_order_acks_advance(self, sim):
        sink, host = make_sink(sim)
        for seq in range(3):
            sink.receive(data(seq))
        assert [p.seq for p in host.sent] == [1, 2, 3]
        assert all(p.is_ack for p in host.sent)

    def test_gap_produces_dupacks(self, sim):
        sink, host = make_sink(sim)
        sink.receive(data(0))
        sink.receive(data(2))  # 1 missing
        sink.receive(data(3))
        assert [p.seq for p in host.sent] == [1, 1, 1]

    def test_gap_fill_jumps_cumulative(self, sim):
        sink, host = make_sink(sim)
        sink.receive(data(0))
        sink.receive(data(2))
        sink.receive(data(3))
        sink.receive(data(1))  # fills the hole
        assert host.sent[-1].seq == 4

    def test_duplicate_data_counted(self, sim):
        sink, _ = make_sink(sim)
        sink.receive(data(0))
        sink.receive(data(0))
        assert sink.duplicates_received == 1

    def test_duplicate_out_of_order_counted(self, sim):
        sink, _ = make_sink(sim)
        sink.receive(data(5))
        sink.receive(data(5))
        assert sink.duplicates_received == 1

    def test_acks_are_not_ect(self, sim):
        sink, host = make_sink(sim)
        sink.receive(data(0))
        assert host.sent[0].ecn == Ecn.NOT_ECT
        assert host.sent[0].size == ACK_SIZE

    def test_ignores_acks(self, sim):
        sink, host = make_sink(sim)
        ack_packet = Packet(
            flow_id=1, src="a", dst="b", seq=0, size=ACK_SIZE, is_ack=True
        )
        sink.receive(ack_packet)
        assert host.sent == []


class TestEceEcho:
    def test_ce_echoed_on_triggering_ack(self, sim):
        sink, host = make_sink(sim)
        sink.receive(data(0, ce=True))
        sink.receive(data(1, ce=False))
        assert [p.ece for p in host.sent] == [True, False]

    def test_ce_counted(self, sim):
        sink, _ = make_sink(sim)
        sink.receive(data(0, ce=True))
        sink.receive(data(1, ce=True))
        assert sink.ce_received == 2


class TestCompletion:
    def test_completes_once_all_data_arrives(self, sim):
        fired = []
        sink, _ = make_sink(sim, total_segments=3, on_complete=lambda s: fired.append(s))
        for seq in range(3):
            sink.receive(data(seq))
        assert sink.completed
        assert len(fired) == 1
        assert sink.completion_time == sim.now

    def test_out_of_order_completion(self, sim):
        sink, _ = make_sink(sim, total_segments=3)
        sink.receive(data(2))
        sink.receive(data(0))
        assert not sink.completed
        sink.receive(data(1))
        assert sink.completed

    def test_late_duplicates_still_acked_after_completion(self, sim):
        sink, host = make_sink(sim, total_segments=2)
        sink.receive(data(0))
        sink.receive(data(1))
        sent_before = len(host.sent)
        sink.receive(data(1))  # late retransmit
        assert len(host.sent) == sent_before + 1
        assert host.sent[-1].seq == 2

    def test_invalid_total_rejected(self, sim):
        with pytest.raises(ValueError):
            make_sink(sim, total_segments=0)
