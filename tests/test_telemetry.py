"""Tests for the telemetry subsystem: registry, flight recorder, profiler,
provenance, runtime attachment, and the CLI integration."""

import json

import pytest

from repro.sim.engine import Simulator
from repro.sim.packet import Ecn
from repro.sim.port import Port
from repro.sim.units import gbps, us
from repro.telemetry import (
    CATEGORIES,
    FCT_US_BUCKETS,
    QUEUE_PKT_BUCKETS,
    FlightRecorder,
    Histogram,
    MetricsRegistry,
    RunManifest,
    RunProfiler,
    Snapshotter,
    Telemetry,
    activate,
    dataplane_telemetry,
    get_active,
)

from conftest import make_packet


class _Sink:
    def receive(self, packet):
        pass


def make_port(sim, buffer_bytes=150_000):
    port = Port(sim, "p", gbps(10), us(2), buffer_bytes)
    port.peer = _Sink()
    return port


# --------------------------------------------------------------- registry


class TestHistogram:
    def test_bucket_boundaries_inclusive(self):
        hist = Histogram((10, 20))
        hist.observe(10)  # exactly on a bound -> that bucket
        hist.observe(10.5)
        hist.observe(20)
        hist.observe(21)  # beyond the last bound -> overflow bucket
        assert hist.counts == [1, 2, 1]
        assert hist.count == 4

    def test_percentiles_report_bucket_upper_bounds(self):
        hist = Histogram((1, 2, 4, 8))
        for value in (0.5, 0.6, 1.5, 3.0):
            hist.observe(value)
        assert hist.percentile(50) == 1
        assert hist.percentile(100) == 4
        hist.observe(100.0)  # overflow bucket
        assert hist.percentile(100) == float("inf")

    def test_empty_histogram(self):
        hist = Histogram(FCT_US_BUCKETS)
        assert hist.percentile(99) == 0.0
        assert hist.mean == 0.0

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram((5, 3))

    def test_to_dict_roundtrips_through_json(self):
        hist = Histogram((1, 2))
        hist.observe(0.5)
        data = json.loads(json.dumps(hist.to_dict()))
        assert data["count"] == 1
        assert data["buckets"]["1.0"] == 1


class TestRegistry:
    def test_counter_get_or_create_by_label(self):
        registry = MetricsRegistry()
        registry.counter("drops", port="a").inc()
        registry.counter("drops", port="a").inc(2)
        registry.counter("drops", port="b").inc()
        snap = registry.snapshot()
        assert snap["counters"]["drops{port=a}"] == 3
        assert snap["counters"]["drops{port=b}"] == 1

    def test_gauge_tracks_peak(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(5)
        gauge.set(2)
        assert registry.snapshot()["gauges"]["depth"] == {"value": 2, "peak": 5}

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.histogram("fct_us", FCT_US_BUCKETS, cc="Dctcp").observe(123.0)
        json.dumps(registry.snapshot())


class TestSnapshotter:
    def test_samples_on_the_des_clock(self, sim):
        snapshotter = Snapshotter(sim, interval=us(10))
        values = iter(range(100))
        snapshotter.add_sampler(lambda: {"x": next(values)})
        sim.run(until=us(35))
        assert [row["x"] for row in snapshotter.rows] == [0, 1, 2, 3]
        assert snapshotter.rows[1]["time"] == pytest.approx(us(10))

    def test_row_cap_evicts_oldest(self, sim):
        snapshotter = Snapshotter(sim, interval=us(1), max_rows=5)
        snapshotter.add_sampler(lambda: {})
        sim.run(until=us(20))
        assert len(snapshotter.rows) == 5
        assert snapshotter.rows[0]["time"] > us(14)


# --------------------------------------------------------- flight recorder


class TestFlightRecorder:
    def test_ring_wraparound_evicts_oldest(self):
        recorder = FlightRecorder(capacity=4)
        for index in range(7):
            recorder.emit(float(index), "drop", "overflow", seq=index)
        assert len(recorder) == 4
        assert recorder.emitted == 7
        assert recorder.evicted == 3
        assert [e.fields["seq"] for e in recorder.events()] == [3, 4, 5, 6]

    def test_category_filter_short_circuits(self):
        recorder = FlightRecorder(categories=["drop"])
        assert recorder.wants("drop") and not recorder.wants("queue")
        recorder.emit(0.0, "queue", "enqueue")
        recorder.emit(0.0, "drop", "overflow")
        assert recorder.emitted == 1
        assert recorder.events()[0].category == "drop"

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(categories=["nonsense"])

    def test_jsonl_round_trip(self, tmp_path):
        recorder = FlightRecorder()
        recorder.emit(1.5e-3, "mark", "instant", flow=7, seq=3)
        recorder.emit(2.5e-3, "drop", "overflow", flow=8, seq=0, size=1500)
        path = str(tmp_path / "trace.jsonl")
        assert recorder.export_jsonl(path) == 2
        loaded = FlightRecorder.load_jsonl(path)
        assert len(loaded) == 2
        assert loaded[0].time == 1.5e-3
        assert loaded[0].category == "mark"
        assert loaded[0].kind == "instant"
        assert loaded[0].fields == {"flow": 7, "seq": 3}
        assert loaded[1].fields["size"] == 1500


# ------------------------------------------------------- runtime attachment


class TestRuntimeAttachment:
    def test_no_active_telemetry_attaches_none(self):
        assert get_active() is None
        sim = Simulator()
        port = make_port(sim)
        assert port.telemetry is None
        assert port.aqm.telemetry is None
        assert sim.profiler is None

    def test_profiler_only_telemetry_skips_dataplane(self):
        telemetry = Telemetry(metrics=False)
        assert not telemetry.instruments_dataplane
        with activate(telemetry):
            assert dataplane_telemetry() is None
            sim = Simulator()
            port = make_port(sim)
        assert port.telemetry is None
        assert sim.profiler is telemetry.profiler

    def test_activation_is_scoped(self):
        telemetry = Telemetry(trace=True)
        with activate(telemetry):
            assert get_active() is telemetry
        assert get_active() is None

    def test_port_events_recorded_when_active(self):
        with activate(Telemetry(trace=True)) as telemetry:
            sim = Simulator()
            port = make_port(sim)
            for seq in range(3):
                port.send(make_packet(seq=seq))
            sim.run()
        kinds = {e.kind for e in telemetry.recorder.events("queue")}
        assert kinds == {"enqueue", "dequeue"}
        enqueues = [
            e for e in telemetry.recorder.events("queue") if e.kind == "enqueue"
        ]
        assert len(enqueues) == 3

    def test_drop_events_and_counters(self):
        with activate(Telemetry(trace=True)) as telemetry:
            sim = Simulator()
            port = make_port(sim, buffer_bytes=1500)
            for seq in range(4):
                port.send(make_packet(seq=seq, size=1500))
            sim.run()
        drops = telemetry.recorder.events("drop")
        assert drops and all(e.kind == "overflow" for e in drops)
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["drops_total{port=p,reason=overflow}"] == len(drops)

    def test_mark_events_from_aqm(self):
        from repro.core.red import DctcpRed

        with activate(Telemetry(trace=True)) as telemetry:
            sim = Simulator()
            aqm = DctcpRed(threshold_bytes=1)
            port = Port(sim, "q", gbps(10), us(2), 150_000, aqm=aqm)
            port.peer = _Sink()
            # Three back-to-back sends: the third arrives with the second
            # still queued behind the serializing first, exceeding K=1 byte.
            for seq in range(3):
                port.send(make_packet(seq=seq, ecn=Ecn.ECT0))
            sim.run()
        marks = telemetry.recorder.events("mark")
        assert marks
        assert marks[0].fields["scheme"] == "DctcpRed"
        assert marks[0].time >= 0.0

    def test_port_summary_scrape(self):
        with activate(Telemetry()) as telemetry:
            sim = Simulator()
            port = make_port(sim)
            port.send(make_packet())
            sim.run()
        summary = telemetry.snapshot()["ports"]["p#0"]
        assert summary["tx_packets"] == 1
        assert summary["buffer_peak_bytes"] > 0


# --------------------------------------------------------------- profiler


class TestProfiler:
    def test_engine_records_run(self):
        with activate(Telemetry(metrics=False)) as telemetry:
            sim = Simulator()
            for index in range(10):
                sim.schedule(index * 1e-6, lambda: None)
            sim.run()
        profiler = telemetry.profiler
        assert profiler.runs == 1
        assert profiler.events == 10
        assert profiler.wall_seconds > 0
        assert profiler.virtual_seconds == pytest.approx(9e-6)
        assert "10 events" in profiler.summary_line()

    def test_aggregates_across_simulators(self):
        with activate(Telemetry(metrics=False)) as telemetry:
            for _ in range(3):
                sim = Simulator()
                sim.schedule(0.0, lambda: None)
                sim.run()
        assert telemetry.profiler.runs == 3
        assert telemetry.profiler.events == 3

    def test_to_dict_serializable(self):
        profiler = RunProfiler()
        profiler.record_run(100, 0.5, 2.0, 42)
        data = json.loads(json.dumps(profiler.to_dict()))
        assert data["events_per_second"] == 200.0
        assert data["peak_heap_depth"] == 42


# -------------------------------------------------------------- provenance


class TestProvenance:
    def test_manifest_captures_environment(self):
        manifest = RunManifest.collect("fig10", seed=51, scheme="EcnSharp")
        assert manifest.experiment == "fig10"
        assert manifest.seed == 51
        assert manifest.params["scheme"] == "EcnSharp"
        assert manifest.python
        assert manifest.started_unix > 0

    def test_manifest_json_round_trip(self, tmp_path):
        from repro.experiments.runner import Scale

        manifest = RunManifest.collect("fig6", seed=21, scale=Scale.reduced())
        manifest.finish(wall_seconds=1.25, events=1000)
        path = str(tmp_path / "manifest.json")
        manifest.write_json(path)
        with open(path) as handle:
            data = json.load(handle)
        assert data["seed"] == 21
        assert data["scale"]["full"] is False
        assert data["events"] == 1000
        assert data["wall_seconds"] == 1.25

    def test_runner_attaches_manifest(self):
        from repro.experiments.runner import run_star_fct
        from repro.experiments.schemes import simulation_schemes
        from repro.workloads.websearch import WEB_SEARCH

        result = run_star_fct(
            simulation_schemes()["ECN#"], WEB_SEARCH, 0.3, 5, seed=3
        )
        assert result.manifest is not None
        assert result.manifest.seed == 3
        assert result.manifest.params["scheme"] == "EcnSharp"
        assert result.manifest.events == result.events
        assert result.manifest.wall_seconds > 0


# ------------------------------------------------------------ CLI smoke


class TestCliTelemetry:
    def test_fig10_trace_and_metrics_out(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = str(tmp_path / "t.jsonl")
        metrics_path = str(tmp_path / "m.json")
        assert (
            main(
                [
                    "run", "fig10",
                    "--trace",
                    "--trace-out", trace_path,
                    "--metrics-out", metrics_path,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "# profile:" in out
        assert "# trace:" in out

        events = FlightRecorder.load_jsonl(trace_path)
        assert events
        categories = {e.category for e in events}
        assert "queue" in categories and "mark" in categories

        with open(metrics_path) as handle:
            data = json.load(handle)
        assert data["manifest"]["experiment"] == "fig10"
        assert data["manifest"]["seed"] == 51
        assert data["manifest"]["events"] > 0
        assert data["manifest"]["scale"] is not None
        assert data["metrics"]["counters"]
        assert data["profile"]["events"] > 0
        assert data["series"]  # DES-clock queue-depth time series

    def test_trace_categories_flag(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = str(tmp_path / "cwnd.jsonl")
        assert (
            main(
                [
                    "run", "fig10",
                    "--trace-categories", "cwnd,timer",
                    "--trace-out", trace_path,
                ]
            )
            == 0
        )
        events = FlightRecorder.load_jsonl(trace_path)
        assert events
        assert {e.category for e in events} <= {"cwnd", "timer"}

    def test_plain_run_prints_profile_without_dataplane_hooks(self, capsys):
        from repro.cli import main

        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "# profile:" in out
        assert get_active() is None  # activation cleaned up