"""Tests for golden-baseline serialization and staleness detection."""

import pytest

from repro.validation.baselines import (
    BASELINE_SCHEMA_VERSION,
    Baseline,
    BaselineManifest,
    DirtyTreeError,
    StaleBaselineError,
    ensure_clean_tree,
)


def make_baseline(**manifest_overrides) -> Baseline:
    manifest = BaselineManifest(scale="tiny", git_sha="abc1234")
    for key, value in manifest_overrides.items():
        setattr(manifest, key, value)
    return Baseline(
        manifest=manifest,
        figures={
            "fig10": {
                "params": {"fanout": 100},
                "cells": {
                    "scheme=ECN#": {
                        "metrics": {"standing_queue_pkts": [26.6]},
                        "tokens": ["microscopic|ECN#|seed=51|deadbeef"],
                    }
                },
            }
        },
        bench={"cpu_count": 4, "engine": {"events_per_sec": 1e6}},
    )


class TestRoundTrip:
    def test_save_load_preserves_everything(self, tmp_path):
        baseline = make_baseline()
        path = tmp_path / "tiny.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.manifest.scale == "tiny"
        assert loaded.manifest.git_sha == "abc1234"
        assert loaded.manifest.baseline_schema == BASELINE_SCHEMA_VERSION
        assert loaded.cell_samples("fig10", "scheme=ECN#", "standing_queue_pkts") == [26.6]
        assert loaded.cell_tokens("fig10", "scheme=ECN#") == [
            "microscopic|ECN#|seed=51|deadbeef"
        ]
        assert loaded.bench["engine"]["events_per_sec"] == 1e6

    def test_save_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "tiny.json"
        make_baseline().save(path)
        assert path.exists()

    def test_missing_entries_return_none(self):
        baseline = make_baseline()
        assert baseline.cell_samples("fig10", "scheme=nope", "m") is None
        assert baseline.cell_samples("fig99", "c", "m") is None
        assert baseline.cell_tokens("fig10", "scheme=nope") is None


class TestStaleness:
    def test_current_schema_is_compatible(self):
        make_baseline().check_compatible()

    def test_old_baseline_schema_raises(self):
        baseline = make_baseline(baseline_schema=BASELINE_SCHEMA_VERSION - 1)
        with pytest.raises(StaleBaselineError, match="baseline schema"):
            baseline.check_compatible()

    def test_old_spec_schema_raises(self):
        baseline = make_baseline(spec_schema=-1)
        with pytest.raises(StaleBaselineError, match="spec schema"):
            baseline.check_compatible()

    def test_matching_tokens_pass(self):
        make_baseline().check_tokens(
            "fig10", "scheme=ECN#", ["microscopic|ECN#|seed=51|deadbeef"]
        )

    def test_changed_tokens_raise(self):
        with pytest.raises(StaleBaselineError, match="different run specs"):
            make_baseline().check_tokens(
                "fig10", "scheme=ECN#", ["microscopic|ECN#|seed=51|cafecafe"]
            )

    def test_unknown_cell_tokens_pass_through(self):
        # A cell absent from the baseline surfaces as a missing-baseline
        # SKIP at compare time, not a staleness error.
        make_baseline().check_tokens("fig10", "scheme=new", ["whatever"])


class TestDirtyTreeGuard:
    def test_dirty_tree_refused(self, monkeypatch):
        monkeypatch.setattr(
            "repro.validation.baselines.git_dirty", lambda cwd=None: True
        )
        with pytest.raises(DirtyTreeError):
            ensure_clean_tree()

    def test_force_overrides_and_reports_dirty(self, monkeypatch):
        monkeypatch.setattr(
            "repro.validation.baselines.git_dirty", lambda cwd=None: True
        )
        assert ensure_clean_tree(force=True) is True

    def test_clean_tree_passes(self, monkeypatch):
        monkeypatch.setattr(
            "repro.validation.baselines.git_dirty", lambda cwd=None: False
        )
        assert ensure_clean_tree() is False

    def test_outside_git_passes(self, monkeypatch):
        monkeypatch.setattr(
            "repro.validation.baselines.git_dirty", lambda cwd=None: None
        )
        assert ensure_clean_tree() is False
