"""Unit tests for Algorithm 2: the 32-bit microsecond clock emulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane.registers import RegisterFile
from repro.dataplane.timestamp import EPOCH_TICKS, TICK_SECONDS, TimestampEmulator

NS_PER_EPOCH = 2**32  # the lower-32-bit nanosecond counter's period


def make_clock(verbatim=False):
    registers = RegisterFile()
    clock = TimestampEmulator(registers, ports=4, verbatim_wraparound=verbatim)
    return clock, registers


def read(clock, registers, t_ns, port=0):
    registers.begin_pass()
    return clock.current_time(t_ns, port)


class TestBasicConversion:
    def test_tick_is_1024ns(self):
        assert TICK_SECONDS == pytest.approx(1.024e-6)

    def test_microsecond_granularity(self):
        clock, registers = make_clock()
        assert read(clock, registers, 0) == 0
        assert read(clock, registers, 1024) == 1
        assert read(clock, registers, 10 * 1024) == 10

    def test_sub_tick_resolution_floor(self):
        clock, registers = make_clock()
        assert read(clock, registers, 1023) == 0

    def test_negative_time_rejected(self):
        clock, registers = make_clock()
        registers.begin_pass()
        with pytest.raises(ValueError):
            clock.current_time(-1)

    def test_helpers_roundtrip(self):
        assert TimestampEmulator.ticks_to_seconds(1000) == pytest.approx(1.024e-3)
        # float division can land a hair under the integer; floor semantics.
        assert TimestampEmulator.seconds_to_ticks(1.024e-3) in (999, 1000)
        assert TimestampEmulator.seconds_to_ticks(
            TimestampEmulator.ticks_to_seconds(12345)
        ) in (12344, 12345)


class TestWraparound:
    def test_crosses_4_3s_boundary(self):
        """The raw lower-32-bit approach breaks here; Algorithm 2 must not."""
        clock, registers = make_clock()
        before = read(clock, registers, NS_PER_EPOCH - 2048)
        after = read(clock, registers, NS_PER_EPOCH + 2048)
        assert after > before
        delta_seconds = (after - before) * TICK_SECONDS
        assert delta_seconds == pytest.approx(4096e-9, abs=2e-6)

    def test_multiple_epochs(self):
        clock, registers = make_clock()
        times_ns = [int(k * 0.5 * NS_PER_EPOCH) for k in range(1, 20)]
        readings = [read(clock, registers, t) for t in times_ns]
        assert readings == sorted(readings)
        # Absolute accuracy across ~9 wraps: within one tick each.
        for t_ns, ticks in zip(times_ns, readings):
            assert ticks * 1024 == pytest.approx(t_ns, abs=1024)

    def test_per_port_independent_epochs(self):
        """Each port counts epochs since its own first packet, so absolute
        readings differ across ports -- but every comparison ECN# makes is
        per-port, so only *relative* per-port consistency matters."""
        clock, registers = make_clock()
        read(clock, registers, NS_PER_EPOCH + 5000, port=0)  # port 0 active early
        first = read(clock, registers, NS_PER_EPOCH + 6000, port=1)
        second = read(clock, registers, NS_PER_EPOCH + 6000 + 2048_000, port=1)
        assert (second - first) * 1024 == pytest.approx(2048_000, abs=2048)
        # And port 0's own deltas are unaffected by port 1's activity.
        base = read(clock, registers, NS_PER_EPOCH + 7000, port=0)
        third = read(clock, registers, NS_PER_EPOCH + 7000 + 4096_000, port=0)
        assert (third - base) * 1024 == pytest.approx(4096_000, abs=2048)

    def test_requires_frequent_packets(self):
        """A silent gap longer than one epoch is undetectable -- the clock
        loses an epoch.  Documents the line-rate assumption."""
        clock, registers = make_clock()
        read(clock, registers, 1000)
        # Next packet arrives > 2 epochs later: counter wrapped twice but
        # only one wrap can be observed.
        ticks = read(clock, registers, 2 * NS_PER_EPOCH + 1000)
        assert ticks * 1024 < 2 * NS_PER_EPOCH  # one epoch lost, known limit


class TestVerbatimHazard:
    def test_same_tick_packets_spurious_wrap_with_verbatim_leq(self):
        """The paper's pseudocode uses `<=` for wrap detection: two packets
        inside one 1.024us tick then trigger a bogus epoch increment,
        jumping the clock ~4.3s forward.  The corrected `<` does not."""
        verbatim, registers_v = make_clock(verbatim=True)
        first = read(verbatim, registers_v, 10_000)
        second = read(verbatim, registers_v, 10_100)  # same tick!
        assert second - first >= EPOCH_TICKS  # the spurious 4.3s jump

        corrected, registers_c = make_clock(verbatim=False)
        first = read(corrected, registers_c, 10_000)
        second = read(corrected, registers_c, 10_100)
        assert second == first  # same tick, same reading

    @given(
        gaps_ns=st.lists(
            st.integers(min_value=100, max_value=50_000_000),
            min_size=5,
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_corrected_clock_monotone_under_any_line_rate_trace(self, gaps_ns):
        clock, registers = make_clock()
        t_ns = 0
        previous = -1
        for gap in gaps_ns:
            t_ns += gap
            ticks = read(clock, registers, t_ns)
            assert ticks >= previous
            previous = ticks

    @given(
        gaps_ns=st.lists(
            st.integers(min_value=100, max_value=50_000_000),
            min_size=5,
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_corrected_clock_accurate_within_a_tick(self, gaps_ns):
        clock, registers = make_clock()
        t_ns = 0
        for gap in gaps_ns:
            t_ns += gap
            ticks = read(clock, registers, t_ns)
            assert ticks * 1024 == pytest.approx(t_ns, abs=1024)


class TestAccessDiscipline:
    def test_two_reads_without_pass_reset_rejected(self):
        from repro.dataplane.registers import RegisterAccessViolation

        clock, registers = make_clock()
        registers.begin_pass()
        clock.current_time(1000)
        with pytest.raises(RegisterAccessViolation):
            clock.current_time(2000)  # same pass: ts_low touched twice
