"""Unit tests for workloads: CDFs, Poisson arrivals, incast queries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.packet import PacketFactory
from repro.sim.units import gbps
from repro.topology import build_star
from repro.workloads import (
    DATA_MINING,
    WEB_SEARCH,
    EmpiricalCdf,
    PoissonTrafficGenerator,
    TransportConfig,
    launch_query,
    star_pair_picker,
)
from repro.experiments.fct import FctCollector


class TestEmpiricalCdf:
    def test_quantile_interpolates(self):
        cdf = EmpiricalCdf(points=((100, 0.0), (200, 1.0)))
        assert cdf.quantile(0.5) == pytest.approx(150)

    def test_quantile_endpoints(self):
        cdf = EmpiricalCdf(points=((100, 0.0), (200, 1.0)))
        assert cdf.quantile(0.0) == 100
        assert cdf.quantile(1.0) == 200

    def test_mean_of_uniform(self):
        cdf = EmpiricalCdf(points=((0.0001, 0.0), (100, 1.0)))
        assert cdf.mean() == pytest.approx(50, rel=0.01)

    def test_mass_at_first_point(self):
        # 40% of flows are exactly 100 bytes.
        cdf = EmpiricalCdf(points=((100, 0.4), (200, 1.0)))
        assert cdf.mean() == pytest.approx(0.4 * 100 + 0.6 * 150)

    def test_cdf_at(self):
        cdf = EmpiricalCdf(points=((100, 0.0), (200, 1.0)))
        assert cdf.cdf_at(50) == 0.0
        assert cdf.cdf_at(150) == pytest.approx(0.5)
        assert cdf.cdf_at(500) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalCdf(points=((100, 0.0),))  # too few
        with pytest.raises(ValueError):
            EmpiricalCdf(points=((200, 0.0), (100, 1.0)))  # not increasing
        with pytest.raises(ValueError):
            EmpiricalCdf(points=((100, 0.5), (200, 0.4)))  # decreasing prob
        with pytest.raises(ValueError):
            EmpiricalCdf(points=((100, 0.0), (200, 0.9)))  # doesn't reach 1

    def test_sampling_matches_mean(self):
        rng = np.random.default_rng(1)
        samples = WEB_SEARCH.sample(rng, 200_000)
        assert np.mean(samples) == pytest.approx(WEB_SEARCH.mean(), rel=0.05)

    def test_curve_monotone(self):
        sizes, probs = WEB_SEARCH.curve()
        assert probs == sorted(probs)
        assert probs[-1] == pytest.approx(1.0)

    @given(u=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100)
    def test_quantile_within_support(self, u):
        value = DATA_MINING.quantile(u)
        assert DATA_MINING.points[0][0] <= value <= DATA_MINING.points[-1][0]

    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_quantile_monotone(self, data):
        u1 = data.draw(st.floats(min_value=0.0, max_value=1.0))
        u2 = data.draw(st.floats(min_value=0.0, max_value=1.0))
        lo, hi = sorted((u1, u2))
        assert WEB_SEARCH.quantile(lo) <= WEB_SEARCH.quantile(hi)


class TestPublishedWorkloads:
    def test_web_search_heavy_tail(self):
        # >=50% of flows below 15KB, yet the mean is hundreds of KB.
        assert WEB_SEARCH.cdf_at(15_000) >= 0.5
        assert WEB_SEARCH.mean() > 100_000

    def test_data_mining_heavier_tail(self):
        # Data mining: 80% under 350KB but a 100MB max flow.
        assert DATA_MINING.cdf_at(350_000) == pytest.approx(0.8, abs=0.01)
        assert DATA_MINING.points[-1][0] == 100_000_000
        assert DATA_MINING.mean() > WEB_SEARCH.mean()

    def test_names(self):
        assert WEB_SEARCH.name == "web-search"
        assert DATA_MINING.name == "data-mining"


class TestPoissonGenerator:
    def make_generator(self, load=0.5, n_flows=20, seed=0):
        topo = build_star(n_senders=3)
        rng = np.random.default_rng(seed)
        collector = FctCollector()
        generator = PoissonTrafficGenerator(
            network=topo.network,
            factory=PacketFactory(),
            pair_picker=star_pair_picker(topo.senders, topo.receiver),
            workload=WEB_SEARCH,
            load=load,
            capacity_bps=gbps(10),
            n_flows=n_flows,
            rng=rng,
            on_flow_complete=collector.record,
        )
        return topo, generator, collector

    def test_arrival_rate_formula(self):
        _, generator, _ = self.make_generator(load=0.5)
        expected = 0.5 * gbps(10) / (8 * WEB_SEARCH.mean())
        assert generator.arrival_rate == pytest.approx(expected)

    def test_all_flows_launched_and_completed(self):
        topo, generator, collector = self.make_generator(n_flows=15)
        generator.start()
        topo.network.sim.run_until_idle(max_events=50_000_000)
        assert generator.launched == 15
        assert len(collector) == 15

    def test_interarrivals_mean_close_to_poisson(self):
        topo, generator, _ = self.make_generator(n_flows=200, load=0.3)
        generator.start()
        topo.network.sim.run_until_idle(max_events=100_000_000)
        starts = sorted(flow.start_time for flow in generator.flows)
        gaps = np.diff(starts)
        assert np.mean(gaps) == pytest.approx(generator.mean_interarrival, rel=0.3)

    def test_validation(self):
        topo = build_star(n_senders=2)
        rng = np.random.default_rng(0)
        kwargs = dict(
            network=topo.network,
            factory=PacketFactory(),
            pair_picker=star_pair_picker(topo.senders, topo.receiver),
            workload=WEB_SEARCH,
            capacity_bps=gbps(10),
            n_flows=5,
            rng=rng,
        )
        with pytest.raises(ValueError):
            PoissonTrafficGenerator(load=0.0, **kwargs)
        with pytest.raises(ValueError):
            PoissonTrafficGenerator(load=1.5, **kwargs)

    def test_rtt_profile_requires_stage(self):
        from repro.netem.profiles import RttProfile
        from repro.sim.units import us

        topo = build_star(n_senders=2)
        with pytest.raises(ValueError):
            PoissonTrafficGenerator(
                network=topo.network,
                factory=PacketFactory(),
                pair_picker=star_pair_picker(topo.senders, topo.receiver),
                workload=WEB_SEARCH,
                load=0.5,
                capacity_bps=gbps(10),
                n_flows=5,
                rng=np.random.default_rng(0),
                rtt_profile=RttProfile.from_variation(us(70), 3.0),
            )


class TestIncast:
    def test_fanout_flows_created(self):
        topo = build_star(n_senders=4)
        handles = launch_query(
            topo.network,
            PacketFactory(),
            topo.senders,
            topo.receiver,
            fanout=10,
            start_time=0.001,
            rng=np.random.default_rng(0),
        )
        assert len(handles) == 10
        # Workers spread round-robin over the 4 physical senders.
        sources = {handle.sender.src for handle in handles}
        assert len(sources) == 4

    def test_sizes_in_query_range(self):
        topo = build_star(n_senders=4)
        handles = launch_query(
            topo.network,
            PacketFactory(),
            topo.senders,
            topo.receiver,
            fanout=50,
            start_time=0.001,
            rng=np.random.default_rng(0),
        )
        assert all(3_000 <= handle.size_bytes <= 60_000 for handle in handles)

    def test_all_queries_complete(self):
        topo = build_star(n_senders=4)
        done = []
        launch_query(
            topo.network,
            PacketFactory(),
            topo.senders,
            topo.receiver,
            fanout=20,
            start_time=0.001,
            rng=np.random.default_rng(0),
            transport=TransportConfig(init_cwnd=2.0),
            on_flow_complete=done.append,
        )
        topo.network.sim.run_until_idle(max_events=50_000_000)
        assert len(done) == 20

    def test_validation(self):
        topo = build_star(n_senders=2)
        with pytest.raises(ValueError):
            launch_query(
                topo.network,
                PacketFactory(),
                topo.senders,
                topo.receiver,
                fanout=0,
                start_time=0.0,
                rng=np.random.default_rng(0),
            )
