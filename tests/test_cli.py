"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_with_options(self):
        args = build_parser().parse_args(["run", "fig5", "--seed", "9"])
        assert args.command == "run"
        assert args.experiment == "fig5"
        assert args.seed == 9
        assert not args.full

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_every_paper_artifact_is_registered(self):
        expected = {
            "table1", "fig2", "fig3", "fig5", "fig6", "fig7", "fig8",
            "fig9", "fig10", "fig11", "fig12", "fig13",
        }
        assert set(EXPERIMENTS) == expected


class TestMain:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_fast_experiment(self, capsys):
        assert main(["run", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "completed in" in out

    def test_run_table1_with_seed(self, capsys):
        assert main(["run", "table1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "seed=3" in out
        assert "Networking Stack" in out
