"""Unit tests for figure-module result dataclasses (pure logic, no sims)."""

import pytest

from repro.experiments.fct import FctSummary, FlowRecord
from repro.experiments.figures.fig2 import Fig2Result
from repro.experiments.figures.fig3 import Fig3Result
from repro.experiments.figures.fig6_fig7 import FctVsLoadResult
from repro.experiments.figures.fig8 import Fig8Result
from repro.experiments.figures.fig10 import MicroscopicRun, _best_window_average
from repro.experiments.figures.fig11 import Fig11Result
from repro.experiments.figures.fig12 import _spread
from repro.experiments.figures.fig13 import Fig13Result, SchedulerRun


def summary(overall=1e-3, short=5e-4, short99=1e-3, large=1e-2):
    records = []
    return FctSummary(
        n_flows=10,
        overall_avg=overall,
        overall_p99=overall * 3,
        short_avg=short,
        short_p99=short99,
        large_avg=large,
        n_short=5,
        n_large=2,
    )


class TestFig2Result:
    def test_normalized_to_first_threshold(self):
        result = Fig2Result(
            thresholds_kb=(50, 250),
            summaries={50: summary(overall=1e-3), 250: summary(overall=2e-3)},
            load=0.5,
            variation=3.0,
        )
        norm = result.normalized("overall_avg")
        assert norm[50] == pytest.approx(1.0)
        assert norm[250] == pytest.approx(2.0)

    def test_none_fields_propagate(self):
        none_summary = FctSummary(
            n_flows=1, overall_avg=1e-3, overall_p99=1e-3, short_avg=None,
            short_p99=None, large_avg=None, n_short=0, n_large=0,
        )
        result = Fig2Result(
            thresholds_kb=(50,), summaries={50: none_summary}, load=0.5, variation=3.0
        )
        assert result.normalized("large_avg")[50] is None

    def test_zero_value_normalizes_to_zero(self):
        """A legitimate 0.0 measurement must not be dropped as missing."""
        zero_summary = FctSummary(
            n_flows=1, overall_avg=0.0, overall_p99=0.0, short_avg=0.0,
            short_p99=0.0, large_avg=0.0, n_short=1, n_large=0,
        )
        result = Fig2Result(
            thresholds_kb=(50, 250),
            summaries={50: summary(overall=1e-3), 250: zero_summary},
            load=0.5,
            variation=3.0,
        )
        assert result.normalized("overall_avg")[250] == 0.0

    def test_zero_base_is_none(self):
        zero_summary = FctSummary(
            n_flows=1, overall_avg=0.0, overall_p99=0.0, short_avg=0.0,
            short_p99=0.0, large_avg=0.0, n_short=1, n_large=0,
        )
        result = Fig2Result(
            thresholds_kb=(50, 250),
            summaries={50: zero_summary, 250: summary(overall=1e-3)},
            load=0.5,
            variation=3.0,
        )
        assert result.normalized("overall_avg")[250] is None


class TestFig12Spread:
    def test_ignores_none_keeps_zero(self):
        assert _spread([2e-3, None, 1e-3]) == pytest.approx(1.0)
        assert _spread([0.0, 1e-3]) is None  # zero base: spread undefined
        assert _spread([None, None]) is None
        assert _spread([]) is None


class TestFig3Result:
    def make(self):
        return Fig3Result(
            variations=(2.0,),
            avg_threshold={2.0: summary(large=1.2e-2, short99=8e-4)},
            tail_threshold={2.0: summary(large=1.0e-2, short99=1.6e-3)},
            thresholds_us={2.0: (100.0, 150.0)},
            load=0.5,
        )

    def test_gaps(self):
        result = self.make()
        assert result.large_flow_gap(2.0) == pytest.approx(1.2)
        assert result.short_tail_gap(2.0) == pytest.approx(2.0)


class TestFctVsLoadResult:
    def test_normalization_and_best_gain(self):
        result = FctVsLoadResult(
            workload_name="web-search",
            loads=(0.5,),
            schemes=("DCTCP-RED-Tail", "ECN#"),
            summaries={
                0.5: {
                    "DCTCP-RED-Tail": summary(short=1e-3),
                    "ECN#": summary(short=8e-4),
                }
            },
        )
        assert result.normalized(0.5, "ECN#").short_avg == pytest.approx(0.8)
        assert result.best_short_avg_gain("ECN#") == pytest.approx(0.2)


class TestFig8Result:
    def test_nfct(self):
        result = Fig8Result(
            variations=(3.0,),
            loads=(0.5,),
            summaries={
                3.0: {
                    0.5: {
                        "DCTCP-RED-Tail": summary(short99=2e-3),
                        "ECN#": summary(short99=1e-3),
                    }
                }
            },
        )
        assert result.nfct(3.0, 0.5, "short_p99") == pytest.approx(0.5)


class TestFig10Helpers:
    def test_best_window_average_finds_floor(self):
        # 10ms of high queue then 10ms of low queue, 1ms samples.
        samples = [(t * 1e-3, 100) for t in range(10)]
        samples += [(1e-2 + t * 1e-3, 10) for t in range(10)]
        floor = _best_window_average(samples, window=5e-3)
        assert floor == pytest.approx(10, abs=1)

    def test_best_window_empty(self):
        assert _best_window_average([], window=5e-3) == 0.0

    def test_short_trace_falls_back_to_mean(self):
        samples = [(0.0, 10), (1e-4, 20)]
        assert _best_window_average(samples, window=5e-3) == pytest.approx(15)


def micro_run(name, fcts, drops=0):
    return MicroscopicRun(
        scheme=name,
        samples=([], []),
        standing_queue_pkts=0.0,
        floor_queue_pkts=0.0,
        peak_queue_pkts=0,
        drops=drops,
        marks=0,
        query_fcts=fcts,
        query_timeouts=0,
        queries_completed=len(fcts),
    )


class TestFig11Result:
    def test_first_loss_onset(self):
        result = Fig11Result(
            fanouts=(50, 100),
            schemes=("CoDel",),
            runs={
                50: {"CoDel": micro_run("CoDel", [1e-3], drops=0)},
                100: {"CoDel": micro_run("CoDel", [1e-3], drops=5)},
            },
        )
        assert result.first_loss_fanout("CoDel") == 100

    def test_no_loss_returns_none(self):
        result = Fig11Result(
            fanouts=(50,),
            schemes=("ECN#",),
            runs={50: {"ECN#": micro_run("ECN#", [1e-3])}},
        )
        assert result.first_loss_fanout("ECN#") is None

    def test_fct_statistics(self):
        result = Fig11Result(
            fanouts=(50,),
            schemes=("ECN#",),
            runs={50: {"ECN#": micro_run("ECN#", [1e-3, 3e-3])}},
        )
        assert result.avg_query_fct(50, "ECN#") == pytest.approx(2e-3)
        assert result.p99_query_fct(50, "ECN#") > 2.9e-3


class TestFig13Result:
    def test_share_ratios_and_fct_ratio(self):
        run_sharp = SchedulerRun(
            scheme="ECN#",
            goodputs=[[9.6e9, 0, 0], [6.4e9, 3.2e9, 0], [4.8e9, 2.4e9, 2.4e9]],
            probe_fcts=[8e-4],
        )
        run_tcn = SchedulerRun(
            scheme="TCN",
            goodputs=[[9.6e9, 0, 0], [6.4e9, 3.2e9, 0], [4.8e9, 2.4e9, 2.4e9]],
            probe_fcts=[1e-3],
        )
        result = Fig13Result(runs={"ECN#": run_sharp, "TCN": run_tcn})
        assert run_sharp.phase3_share_ratios() == (
            pytest.approx(2.0),
            pytest.approx(2.0),
        )
        assert result.probe_fct_ratio() == pytest.approx(0.8)

    def test_missing_probe_data(self):
        run = SchedulerRun(scheme="x", goodputs=[[0, 0, 0]] * 3, probe_fcts=[])
        assert run.avg_probe_fct() is None
        assert run.phase3_share_ratios() is None
