"""Unit tests for the Section 3.5 extension: probabilistic ECN#."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ecn_sharp import EcnSharpConfig
from repro.core.ecn_sharp_prob import EcnSharpProbabilistic, ProbabilisticConfig
from repro.sim.units import us

from conftest import StampedPacket


def make_aqm(ins_min=us(50), ins_max=us(150), pmax=1.0, cutoff=us(220), pst=us(10),
             interval=us(240), seed=1):
    return EcnSharpProbabilistic(
        EcnSharpConfig(ins_target=cutoff, pst_target=pst, pst_interval=interval),
        ProbabilisticConfig(ins_min=ins_min, ins_max=ins_max, pmax=pmax),
        seed=seed,
    )


def feed(aqm, now, sojourn):
    packet = StampedPacket(sojourn=sojourn)
    aqm.on_dequeue(packet, now)
    return packet


class TestRampConfig:
    def test_invalid_ramp(self):
        with pytest.raises(ValueError):
            ProbabilisticConfig(ins_min=0, ins_max=us(100))
        with pytest.raises(ValueError):
            ProbabilisticConfig(ins_min=us(100), ins_max=us(50))
        with pytest.raises(ValueError):
            ProbabilisticConfig(ins_min=us(50), ins_max=us(100), pmax=0.0)

    def test_ramp_above_cutoff_rejected(self):
        with pytest.raises(ValueError):
            make_aqm(ins_min=us(100), ins_max=us(300), cutoff=us(220))


class TestProbabilityRamp:
    def test_zero_below_min(self):
        aqm = make_aqm()
        assert aqm.marking_probability(us(49)) == 0.0

    def test_linear_in_between(self):
        aqm = make_aqm(pmax=0.8)
        assert aqm.marking_probability(us(100)) == pytest.approx(0.4)

    def test_pmax_at_saturation(self):
        aqm = make_aqm(pmax=0.3)
        assert aqm.marking_probability(us(150)) == pytest.approx(0.3)
        assert aqm.marking_probability(us(200)) == pytest.approx(0.3)

    def test_one_above_hard_cutoff(self):
        aqm = make_aqm(pmax=0.3, cutoff=us(220))
        assert aqm.marking_probability(us(221)) == 1.0

    @given(sojourn_us=st.floats(min_value=0, max_value=500))
    @settings(max_examples=60)
    def test_probability_monotone_nondecreasing(self, sojourn_us):
        aqm = make_aqm(pmax=0.5)
        p1 = aqm.marking_probability(us(sojourn_us))
        p2 = aqm.marking_probability(us(sojourn_us) + us(1))
        assert 0.0 <= p1 <= 1.0
        assert p2 >= p1 - 1e-12


class TestMarkingBehaviour:
    def test_empirical_rate_matches_ramp(self):
        aqm = make_aqm(pmax=1.0, seed=3)
        marked = 0
        for index in range(4000):
            packet = feed(aqm, now=us(index), sojourn=us(100))  # p = 0.5
            marked += packet.ce_marked
        assert marked / 4000 == pytest.approx(0.5, abs=0.05)

    def test_hard_cutoff_always_marks(self):
        aqm = make_aqm()
        for index in range(50):
            packet = feed(aqm, now=us(index), sojourn=us(250))
            assert packet.ce_marked

    def test_persistent_component_still_works(self):
        """The Algorithm 1 part is unchanged: a sub-ramp sojourn plateau
        still triggers conservative persistent marks."""
        aqm = make_aqm(ins_min=us(50), ins_max=us(150), pst=us(10))
        marks = 0
        t = 0.0
        for _ in range(2000):
            t += us(2)
            packet = feed(aqm, now=t, sojourn=us(30))  # below the ramp
            marks += packet.ce_marked
        assert marks >= 2
        assert aqm.stats.persistent_marks == marks

    def test_deterministic_with_seed(self):
        def run(seed):
            aqm = make_aqm(seed=seed)
            return [
                feed(aqm, now=us(i), sojourn=us(100)).ce_marked for i in range(500)
            ]

        assert run(7) == run(7)
        assert run(7) != run(8)
