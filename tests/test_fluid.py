"""Tests for the flow-level fluid fast model: fidelity plumbing on run
specs, the analytic marker banks, bit-identical determinism through the
executor (inline, pooled, and cache-replayed), fluid-vs-packet agreement
on the paper's headline effects, and fidelity threading through the
scenario layer."""

import math

import numpy as np
import pytest

from repro.experiments.executor import Executor
from repro.experiments.runner import run_star_fct
from repro.experiments.schemes import simulation_scheme_specs
from repro.experiments.schemes import testbed_scheme_specs as scheme_specs
from repro.experiments.specs import (
    FIDELITIES,
    AqmSpec,
    RunSpec,
    resolve_fidelity,
)
from repro.fluid import build_marker_bank, choose_dt, run_fluid_microscopic, run_fluid_star_fct
from repro.fluid.marking import CodelMarkerBank, EcnSharpMarkerBank, StepMarkerBank
from repro.scenarios import Scenario, ScenarioError, compile_scenario
from repro.sim.units import us
from repro.validation.crossfid import (
    CROSSFID_FCT_BAND,
    CROSSFID_MARK_BAND,
    CROSSFID_QUEUE_BAND,
    crossfid_band_for,
)
from repro.workloads import WEB_SEARCH


def fluid_spec(seed=3, label="DCTCP-RED-Tail", load=0.5, n_flows=24):
    return RunSpec.star(
        scheme_specs()[label],
        workload=WEB_SEARCH.name,
        load=load,
        n_flows=n_flows,
        seed=seed,
        label=label,
        fidelity="fluid",
    )


def result_signature(result):
    """Everything determinism should pin: metrics, counters, step count."""
    return (
        result.summary.metrics(),
        result.marks,
        result.instant_marks,
        result.persistent_marks,
        result.drops,
        result.events,
        tuple((r.flow_id, r.size_bytes, r.fct) for r in result.collector.records),
    )


class TestFidelitySpecs:
    def test_unknown_extras_key_raises(self):
        with pytest.raises(ValueError, match="fidelty"):
            RunSpec.star(
                AqmSpec.make("sojourn-red", sojourn=us(200)),
                workload=WEB_SEARCH.name,
                load=0.4,
                n_flows=12,
                seed=1,
                label="RED-Tail",
                fidelty="fluid",  # typo'd key must fail loudly, not no-op
            )

    def test_invalid_fidelity_value_raises(self):
        with pytest.raises(ValueError, match="unknown fidelity"):
            RunSpec.star(
                AqmSpec.make("sojourn-red", sojourn=us(200)),
                workload=WEB_SEARCH.name,
                load=0.4,
                n_flows=12,
                seed=1,
                label="RED-Tail",
                fidelity="fliud",
            )

    def test_default_fidelity_is_packet(self):
        spec = fluid_spec().with_fidelity("packet")
        assert spec.fidelity == "packet"
        assert "fidelity" not in dict(spec.extras)

    def test_with_fidelity_packet_preserves_token(self):
        # Pre-fluid cache entries must stay addressable: the canonical
        # packet spec never mentions fidelity in its token.
        base = RunSpec.star(
            AqmSpec.make("sojourn-red", sojourn=us(200)),
            workload=WEB_SEARCH.name,
            load=0.4,
            n_flows=12,
            seed=1,
            label="RED-Tail",
        )
        assert base.with_fidelity("packet").token() == base.token()
        fluid = base.with_fidelity("fluid")
        assert fluid.fidelity == "fluid"
        assert fluid.token() != base.token()
        assert fluid.with_fidelity("packet").token() == base.token()

    def test_with_fidelity_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown fidelity"):
            fluid_spec().with_fidelity("analytic")

    def test_spec_roundtrips_through_dict(self):
        spec = fluid_spec()
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_resolve_fidelity_precedence(self, monkeypatch):
        assert resolve_fidelity() == "packet"
        monkeypatch.setenv("REPRO_FIDELITY", "fluid")
        assert resolve_fidelity() == "fluid"
        assert resolve_fidelity("packet") == "packet"  # explicit beats env
        monkeypatch.setenv("REPRO_FIDELITY", "fliud")
        with pytest.raises(ValueError, match="unknown fidelity"):
            resolve_fidelity()

    def test_fidelities_registry(self):
        assert FIDELITIES == ("packet", "fluid")


class TestMarkerBanks:
    def test_step_bank_is_a_threshold(self):
        bank = StepMarkerBank(us(200), n_ports=2)
        sojourn = np.array([us(300), us(100)])
        pkts = np.ones(2)
        marks = bank.step(sojourn, now=0.0, dt=us(10), pkts=pkts)
        assert marks.fraction.tolist() == [1.0, 0.0]
        assert marks.instant.tolist() == [1.0, 0.0]
        assert marks.persistent.tolist() == [0.0, 0.0]

    def test_step_bank_rejects_bad_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            StepMarkerBank(0.0, n_ports=1)

    def test_codel_waits_one_interval_then_escalates(self):
        target, interval, dt = us(85), us(200), us(50)
        bank = CodelMarkerBank(target, interval, n_ports=1)
        sojourn = np.array([us(120)])
        pkts = np.ones(1)
        fractions = [
            float(bank.step(sojourn, now=k * dt, dt=dt, pkts=pkts).fraction[0])
            for k in range(5)
        ]
        # Silent until one interval above target, then a discrete first
        # mark, then the sqrt(count)/interval rate (0.25 events per step).
        assert fractions[0] == 0.0
        assert fractions[1] == 0.0
        assert fractions[2] == 0.0
        assert fractions[3] == 1.0
        assert fractions[4] == pytest.approx(dt / interval)

    def test_codel_resets_below_target(self):
        target, interval, dt = us(85), us(200), us(50)
        bank = CodelMarkerBank(target, interval, n_ports=1)
        pkts = np.ones(1)
        above = np.array([us(120)])
        for k in range(4):
            bank.step(above, now=k * dt, dt=dt, pkts=pkts)
        assert bool(bank.law.marking[0])
        bank.step(np.array([us(10)]), now=4 * dt, dt=dt, pkts=pkts)
        assert not bool(bank.law.marking[0])
        # Another dwell is required before marking resumes.
        resumed = bank.step(above, now=5 * dt, dt=dt, pkts=pkts)
        assert float(resumed.fraction[0]) == 0.0

    def test_ecn_sharp_instant_overrides_persistent(self):
        bank = EcnSharpMarkerBank(
            ins_target=us(200), pst_target=us(50), pst_interval=us(100), n_ports=1
        )
        pkts = np.ones(1)
        # Dwell between pst and ins targets long enough to arm persistence.
        for k in range(4):
            armed = bank.step(np.array([us(120)]), now=k * us(50), dt=us(50), pkts=pkts)
        assert float(armed.persistent[0]) > 0.0
        assert float(armed.instant[0]) == 0.0
        # Above ins_target everything is instant-marked; persistent
        # contribution is suppressed packet-by-packet.
        spiked = bank.step(np.array([us(300)]), now=4 * us(50), dt=us(50), pkts=pkts)
        assert float(spiked.instant[0]) == 1.0
        assert float(spiked.persistent[0]) == 0.0
        assert float(spiked.fraction[0]) == 1.0

    def test_ecn_sharp_rejects_inverted_targets(self):
        with pytest.raises(ValueError, match="pst_target"):
            EcnSharpMarkerBank(
                ins_target=us(50), pst_target=us(100), pst_interval=us(100), n_ports=1
            )

    def test_build_marker_bank_dispatch(self):
        assert isinstance(
            build_marker_bank("sojourn-red", {"sojourn": us(200)}, 1), StepMarkerBank
        )
        assert isinstance(
            build_marker_bank("tcn", {"threshold": us(200)}, 1), StepMarkerBank
        )
        assert isinstance(
            build_marker_bank("codel", {"target": us(85), "interval": us(200)}, 1),
            CodelMarkerBank,
        )
        assert isinstance(
            build_marker_bank(
                "ecn-sharp",
                {"ins_target": us(200), "pst_target": us(50), "pst_interval": us(100)},
                1,
            ),
            EcnSharpMarkerBank,
        )
        with pytest.raises(ValueError, match="no fluid marking model"):
            build_marker_bank("no-such-aqm", {}, 1)

    def test_choose_dt_tracks_rtt(self):
        assert choose_dt(us(80)) == pytest.approx(us(10))
        assert choose_dt(us(2)) == pytest.approx(us(1))  # floor
        assert choose_dt(1.0) == pytest.approx(us(20))  # ceiling


class TestFluidDeterminism:
    def test_inline_runs_are_bit_identical(self):
        spec = fluid_spec()
        ex = Executor(jobs=1)
        first = ex.run([spec])[0]
        second = ex.run([spec])[0]
        assert result_signature(first) == result_signature(second)

    def test_pool_matches_inline(self):
        spec = fluid_spec()
        inline = Executor(jobs=1).run([spec])[0]
        pooled = Executor(jobs=2).run([spec, fluid_spec(seed=4)])[0]
        assert result_signature(inline) == result_signature(pooled)

    def test_cache_replay_matches_fresh(self, tmp_path):
        spec = fluid_spec()
        ex = Executor(jobs=1, cache=True, cache_dir=tmp_path / "cache")
        fresh = ex.run([spec])[0]
        replayed = ex.run([spec])[0]
        assert ex.stats.cache_hits == 1
        assert result_signature(fresh) == result_signature(replayed)

    def test_fidelities_occupy_distinct_cache_cells(self, tmp_path):
        fluid = fluid_spec(n_flows=12)
        packet = fluid.with_fidelity("packet")
        ex = Executor(jobs=1, cache=True, cache_dir=tmp_path / "cache")
        results = ex.run([fluid, packet])
        assert ex.stats.cache_hits == 0
        assert ex.stats.executed == 2
        # The fluid engine reports steps in `events`; the packet engine
        # reports simulator events -- orders of magnitude apart.
        assert results[0].events != results[1].events


class TestFluidAgreement:
    """The fluid model must reproduce the paper's *effects*, not just run."""

    def test_fig6_short_flow_gain_survives_in_fluid(self):
        schemes = scheme_specs()
        kwargs = dict(workload=WEB_SEARCH, load=0.8, n_flows=80, seed=22)
        ecn = run_fluid_star_fct(schemes["ECN#"], **kwargs)
        red = run_fluid_star_fct(schemes["DCTCP-RED-Tail"], **kwargs)
        gain = 1.0 - ecn.summary.short_avg / red.summary.short_avg
        assert gain >= 0.02  # measured ~7.3% at this cell
        # Large flows must not pay for it (fig6's parity invariant).
        assert ecn.summary.large_avg <= red.summary.large_avg * 1.15

    def test_fluid_fct_within_crossfid_band_of_packet(self):
        spec = scheme_specs()["DCTCP-RED-Tail"]
        kwargs = dict(workload=WEB_SEARCH, load=0.5, n_flows=40, seed=7)
        fluid = run_fluid_star_fct(spec, **kwargs)
        packet = run_star_fct(spec.build, **kwargs)
        for metric in ("overall_avg", "short_avg"):
            f = fluid.summary.metrics()[metric]
            p = packet.summary.metrics()[metric]
            rel_err = abs(f - p) / p
            assert rel_err <= CROSSFID_FCT_BAND.rel_fail, (
                f"{metric}: fluid={f:.6g} packet={p:.6g} rel_err={rel_err:.2%}"
            )

    def test_fig10_queue_collapse_in_fluid(self):
        schemes = simulation_scheme_specs()
        red = run_fluid_microscopic(schemes["DCTCP-RED-Tail"], "DCTCP-RED-Tail")
        ecn = run_fluid_microscopic(schemes["ECN#"], "ECN#")
        # Tail-threshold RED keeps a large standing queue; ECN#'s
        # persistent marking collapses it (the paper's Figure 10).
        assert red.standing_queue_pkts > 80.0
        assert ecn.standing_queue_pkts <= 0.4 * red.standing_queue_pkts
        assert ecn.floor_queue_pkts <= 40.0
        assert ecn.query_timeouts == 0  # fluid model has no RTOs

    def test_fluid_requires_dctcp(self):
        from repro.workloads.arrivals import TransportConfig

        with pytest.raises(ValueError, match="DCTCP only"):
            run_fluid_star_fct(
                scheme_specs()["DCTCP-RED-Tail"],
                workload=WEB_SEARCH,
                load=0.4,
                n_flows=8,
                seed=1,
                transport=TransportConfig(cc="reno"),
            )


class TestCrossfidBands:
    def test_band_selection(self):
        assert crossfid_band_for("mark_fraction") is CROSSFID_MARK_BAND
        assert crossfid_band_for("standing_queue_pkts") is CROSSFID_QUEUE_BAND
        assert crossfid_band_for("floor_queue_pkts") is CROSSFID_QUEUE_BAND
        assert crossfid_band_for("overall_avg") is CROSSFID_FCT_BAND
        assert crossfid_band_for("short_p99") is CROSSFID_FCT_BAND

    def test_bands_are_looser_than_gate_bands(self):
        # Cross-fidelity comparison tolerates model error that a
        # same-fidelity regression gate must not.
        from repro.validation.stats import ToleranceBand

        default = ToleranceBand()
        assert CROSSFID_FCT_BAND.rel_fail > default.rel_fail
        assert CROSSFID_QUEUE_BAND.rel_fail > default.rel_fail


class TestScenarioFidelity:
    def scenario_dict(self, run=None):
        return {
            "schema_version": 1,
            "name": "unit-fluid",
            "rtt": {"min_us": 70.0, "variation": 3.0, "shape": "testbed"},
            "schemes": {"preset": "testbed", "only": ["ECN#"]},
            "run": run or {"seed": 1},
            "workloads": [
                {
                    "name": "ws",
                    "kind": "fct",
                    "workload": "web-search",
                    "loads": [0.5],
                    "n_flows": 10,
                },
            ],
        }

    def test_run_fidelity_roundtrips(self):
        data = self.scenario_dict(run={"seed": 1, "fidelity": "fluid"})
        scenario = Scenario.from_dict(data)
        assert scenario.fidelity == "fluid"
        assert scenario.to_dict()["run"]["fidelity"] == "fluid"
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_omitted_fidelity_stays_canonical(self):
        scenario = Scenario.from_dict(self.scenario_dict())
        assert scenario.fidelity is None
        assert "fidelity" not in scenario.to_dict()["run"]

    def test_invalid_fidelity_rejected_with_path(self):
        data = self.scenario_dict(run={"seed": 1, "fidelity": "fliud"})
        with pytest.raises(ScenarioError, match="run.fidelity"):
            Scenario.from_dict(data)

    def test_compile_threads_fidelity_to_every_spec(self):
        scenario = Scenario.from_dict(self.scenario_dict())
        compiled = compile_scenario(scenario, fidelity="fluid")
        specs = [s for cell in compiled.cells for s in cell.specs]
        assert specs and all(s.fidelity == "fluid" for s in specs)

    def test_scenario_fidelity_used_when_cli_silent(self):
        data = self.scenario_dict(run={"seed": 1, "fidelity": "fluid"})
        compiled = compile_scenario(Scenario.from_dict(data))
        assert all(
            s.fidelity == "fluid" for cell in compiled.cells for s in cell.specs
        )

    def test_cli_fidelity_beats_scenario(self):
        data = self.scenario_dict(run={"seed": 1, "fidelity": "fluid"})
        compiled = compile_scenario(Scenario.from_dict(data), fidelity="packet")
        assert all(
            s.fidelity == "packet" for cell in compiled.cells for s in cell.specs
        )

    def test_env_fidelity_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIDELITY", "fluid")
        compiled = compile_scenario(Scenario.from_dict(self.scenario_dict()))
        assert all(
            s.fidelity == "fluid" for cell in compiled.cells for s in cell.specs
        )

    def test_packet_compile_tokens_unchanged(self, monkeypatch):
        # Compiling at packet fidelity (by any route) must produce the
        # exact pre-fluid spec tokens, so existing caches stay warm.
        scenario = Scenario.from_dict(self.scenario_dict())
        default_tokens = [
            t for cell in compile_scenario(scenario).cells for t in cell.tokens()
        ]
        explicit_tokens = [
            t
            for cell in compile_scenario(scenario, fidelity="packet").cells
            for t in cell.tokens()
        ]
        assert explicit_tokens == default_tokens
