"""Unit tests for packets and ECN codepoints."""

import pytest

from repro.sim.packet import Ecn, Packet, PacketFactory

from conftest import make_packet


class TestEcnCodepoints:
    def test_not_ect_is_not_capable(self):
        assert not Ecn.is_ect(Ecn.NOT_ECT)

    @pytest.mark.parametrize("codepoint", [Ecn.ECT0, Ecn.ECT1, Ecn.CE])
    def test_capable_codepoints(self, codepoint):
        assert Ecn.is_ect(codepoint)


class TestPacket:
    def test_defaults(self):
        packet = make_packet()
        assert packet.ecn == Ecn.ECT0
        assert not packet.is_ack
        assert not packet.ce_marked
        assert not packet.retransmission

    def test_mark_ce(self):
        packet = make_packet()
        packet.mark_ce()
        assert packet.ce_marked
        assert packet.ecn == Ecn.CE

    def test_mark_ce_idempotent(self):
        packet = make_packet()
        packet.mark_ce()
        packet.mark_ce()
        assert packet.ce_marked

    def test_mark_not_ect_rejected(self):
        packet = make_packet(ecn=Ecn.NOT_ECT)
        with pytest.raises(ValueError):
            packet.mark_ce()

    def test_sojourn_time(self):
        packet = make_packet()
        packet.enqueue_time = 1.0
        assert packet.sojourn_time(1.0005) == pytest.approx(0.0005)

    def test_sojourn_before_enqueue_rejected(self):
        packet = make_packet()
        with pytest.raises(ValueError):
            packet.sojourn_time(1.0)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Packet(flow_id=0, src="a", dst="b", seq=0, size=0)

    def test_service_class_carried(self):
        packet = make_packet(service=2)
        assert packet.service == 2


class TestPacketFactory:
    def test_ids_are_unique_and_sequential(self):
        factory = PacketFactory()
        ids = [factory.next_flow_id() for _ in range(100)]
        assert ids == list(range(100))

    def test_independent_factories(self):
        one, two = PacketFactory(), PacketFactory()
        assert one.next_flow_id() == two.next_flow_id() == 0
