"""Tests for incast worker-response jitter and runner pooling."""

import numpy as np
import pytest

from repro.experiments.runner import pool_results, run_star_fct, run_star_fct_pooled
from repro.core.red import SojournRed
from repro.sim.packet import PacketFactory
from repro.sim.units import us
from repro.topology import build_star
from repro.workloads import WEB_SEARCH, launch_query


class TestQueryJitter:
    def launch(self, jitter):
        topo = build_star(n_senders=4)
        handles = launch_query(
            topo.network,
            PacketFactory(),
            topo.senders,
            topo.receiver,
            fanout=30,
            start_time=0.001,
            rng=np.random.default_rng(3),
            jitter=jitter,
        )
        return handles

    def test_zero_jitter_synchronized(self):
        handles = self.launch(jitter=0.0)
        assert all(h.start_time == 0.001 for h in handles)

    def test_jitter_spreads_starts(self):
        handles = self.launch(jitter=us(300))
        starts = [h.start_time for h in handles]
        assert min(starts) >= 0.001
        assert max(starts) <= 0.001 + us(300)
        assert max(starts) > min(starts)  # actually spread

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            self.launch(jitter=-1e-6)


class TestPooling:
    def run_one(self, seed):
        return run_star_fct(
            aqm_factory=lambda: SojournRed(us(200)),
            workload=WEB_SEARCH,
            load=0.4,
            n_flows=15,
            seed=seed,
        )

    def test_pool_merges_records(self):
        results = [self.run_one(1), self.run_one(2)]
        pooled = pool_results(results)
        assert pooled.summary.n_flows == 30
        assert pooled.marks == results[0].marks + results[1].marks
        assert pooled.events == results[0].events + results[1].events

    def test_pool_empty_rejected(self):
        with pytest.raises(ValueError):
            pool_results([])

    def test_pooled_runner_equivalent_to_manual_pool(self):
        pooled = run_star_fct_pooled(
            aqm_factory=lambda: SojournRed(us(200)),
            workload=WEB_SEARCH,
            load=0.4,
            n_flows=15,
            seed=1,
            n_seeds=2,
        )
        manual = pool_results([self.run_one(1), self.run_one(2)])
        assert pooled.summary.n_flows == manual.summary.n_flows
        assert pooled.summary.overall_avg == pytest.approx(manual.summary.overall_avg)

    def test_invalid_n_seeds(self):
        with pytest.raises(ValueError):
            run_star_fct_pooled(
                aqm_factory=lambda: SojournRed(us(200)),
                workload=WEB_SEARCH,
                load=0.4,
                n_flows=5,
                seed=1,
                n_seeds=0,
            )
