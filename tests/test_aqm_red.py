"""Unit tests for DCTCP-RED variants (queue-length, sojourn, probabilistic)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.red import DctcpRed, ProbabilisticRed, SojournRed
from repro.sim.packet import Ecn
from repro.sim.units import us

from conftest import StampedPacket, make_packet


class TestDctcpRed:
    def test_below_threshold_no_mark(self):
        aqm = DctcpRed(threshold_bytes=10_000)
        packet = make_packet()
        assert aqm.on_enqueue(packet, now=0.0, queue_bytes=9_999)
        assert not packet.ce_marked

    def test_at_threshold_marks(self):
        aqm = DctcpRed(threshold_bytes=10_000)
        packet = make_packet()
        assert aqm.on_enqueue(packet, now=0.0, queue_bytes=10_000)
        assert packet.ce_marked
        assert aqm.stats.instant_marks == 1

    def test_cutoff_marks_every_packet_above(self):
        aqm = DctcpRed(threshold_bytes=1_000)
        packets = [make_packet(seq=i) for i in range(5)]
        for packet in packets:
            aqm.on_enqueue(packet, now=0.0, queue_bytes=5_000)
        assert all(p.ce_marked for p in packets)

    def test_not_ect_dropped_instead(self):
        aqm = DctcpRed(threshold_bytes=1_000)
        packet = make_packet(ecn=Ecn.NOT_ECT)
        assert not aqm.on_enqueue(packet, now=0.0, queue_bytes=5_000)
        assert aqm.stats.aqm_drops == 1

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            DctcpRed(0)

    def test_reset_clears_stats(self):
        aqm = DctcpRed(1_000)
        aqm.on_enqueue(make_packet(), 0.0, 5_000)
        aqm.reset()
        assert aqm.stats.marks == 0


class TestSojournRed:
    def test_marks_above_threshold(self):
        aqm = SojournRed(us(100))
        packet = StampedPacket(sojourn=us(150))
        assert aqm.on_dequeue(packet, now=1.0)
        assert packet.ce_marked

    def test_no_mark_at_or_below(self):
        aqm = SojournRed(us(100))
        packet = StampedPacket(sojourn=us(100))
        aqm.on_dequeue(packet, now=1.0)
        assert not packet.ce_marked

    def test_equivalent_to_queue_length_through_equation_2(self):
        # K = 250KB at 10G <=> T = 204.8us: same marking decision for a
        # packet that waited behind exactly K bytes.
        from repro.experiments.schemes import bytes_to_sojourn
        from repro.sim.units import gbps, kb

        threshold = bytes_to_sojourn(kb(250), gbps(10))
        aqm = SojournRed(threshold)
        waited_behind_k = StampedPacket(sojourn=kb(250) * 8 / gbps(10) * 1.01)
        aqm.on_dequeue(waited_behind_k, now=0.0)
        assert waited_behind_k.ce_marked


class TestProbabilisticRed:
    def test_probability_ramp(self):
        aqm = ProbabilisticRed(kmin_bytes=1_000, kmax_bytes=3_000, pmax=1.0)
        assert aqm.marking_probability(999) == 0.0
        assert aqm.marking_probability(2_000) == pytest.approx(0.5)
        assert aqm.marking_probability(3_000) == 1.0
        assert aqm.marking_probability(10_000) == 1.0

    def test_pmax_scales_ramp(self):
        aqm = ProbabilisticRed(1_000, 3_000, pmax=0.4)
        assert aqm.marking_probability(2_000) == pytest.approx(0.2)

    def test_always_marks_above_kmax(self):
        aqm = ProbabilisticRed(1_000, 2_000, seed=1)
        packets = [make_packet(seq=i) for i in range(20)]
        for packet in packets:
            aqm.on_enqueue(packet, 0.0, 5_000)
        assert all(p.ce_marked for p in packets)

    def test_never_marks_below_kmin(self):
        aqm = ProbabilisticRed(1_000, 2_000, seed=1)
        packets = [make_packet(seq=i) for i in range(20)]
        for packet in packets:
            aqm.on_enqueue(packet, 0.0, 500)
        assert not any(p.ce_marked for p in packets)

    def test_marking_rate_matches_probability(self):
        aqm = ProbabilisticRed(1_000, 3_000, seed=42)
        marked = 0
        for index in range(4_000):
            packet = make_packet(seq=index)
            aqm.on_enqueue(packet, 0.0, 2_000)  # p = 0.5
            marked += packet.ce_marked
        assert marked / 4_000 == pytest.approx(0.5, abs=0.05)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ProbabilisticRed(2_000, 1_000)
        with pytest.raises(ValueError):
            ProbabilisticRed(1_000, 2_000, pmax=0.0)
        with pytest.raises(ValueError):
            ProbabilisticRed(1_000, 2_000, pmax=1.5)

    @given(queue=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=50)
    def test_probability_is_monotone_and_bounded(self, queue):
        aqm = ProbabilisticRed(5_000, 50_000)
        probability = aqm.marking_probability(queue)
        assert 0.0 <= probability <= 1.0
        assert aqm.marking_probability(queue + 1_000) >= probability
