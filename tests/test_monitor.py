"""Unit tests for queue monitoring and drop tracing."""

import pytest

from repro.sim.monitor import DropTracer, QueueMonitor, QueueSample
from repro.sim.port import Port
from repro.sim.units import gbps, us

from conftest import make_packet


class _Sink:
    def __init__(self):
        self.count = 0

    def receive(self, packet):
        self.count += 1


def make_port(sim, buffer_bytes=150_000):
    port = Port(sim, "p", gbps(10), us(2), buffer_bytes)
    port.peer = _Sink()
    return port


class TestQueueMonitor:
    def test_samples_at_interval(self, sim):
        port = make_port(sim)
        monitor = QueueMonitor(sim, port, interval=us(10))
        sim.run(until=us(95))
        # Samples at 0, 10, ..., 90 us.
        assert len(monitor.samples) == 10

    def test_stop_time_respected(self, sim):
        port = make_port(sim)
        monitor = QueueMonitor(sim, port, interval=us(10), stop=us(30))
        sim.run(until=us(200))
        assert all(sample.time <= us(30) for sample in monitor.samples)
        assert sim.pending_events == 0  # monitor unscheduled itself

    def test_records_queue_depth(self, sim):
        port = make_port(sim)
        for seq in range(9):
            port.send(make_packet(seq=seq))
        monitor = QueueMonitor(sim, port, interval=us(1))
        sim.run(until=us(2))
        # 9 sent, 1 serializing: 8 queued at t=0, draining ~1/1.2us.
        assert monitor.samples[0].packets == 8
        assert monitor.max_packets() == 8
        assert monitor.average_packets() <= 8

    def test_series_shape(self, sim):
        port = make_port(sim)
        monitor = QueueMonitor(sim, port, interval=us(10), stop=us(50))
        sim.run(until=us(100))
        times, packets = monitor.series()
        assert len(times) == len(packets) == len(monitor.samples)

    def test_invalid_interval(self, sim):
        port = make_port(sim)
        with pytest.raises(ValueError):
            QueueMonitor(sim, port, interval=0)

    def test_empty_monitor_stats(self, sim):
        port = make_port(sim)
        monitor = QueueMonitor(sim, port, interval=us(10), start=us(100), stop=us(50))
        sim.run(until=us(200))
        assert monitor.average_packets() == 0.0
        assert monitor.max_packets() == 0
        assert monitor.percentile(99) == 0.0

    def test_series_bytes_matches_samples(self, sim):
        port = make_port(sim)
        for seq in range(5):
            port.send(make_packet(seq=seq))
        monitor = QueueMonitor(sim, port, interval=us(1), stop=us(3))
        sim.run(until=us(10))
        times, byte_counts = monitor.series_bytes()
        assert times == monitor.series()[0]
        assert byte_counts == [s.bytes for s in monitor.samples]
        assert byte_counts[0] == 4 * 1500  # 5 sent, 1 serializing

    def test_percentile_linear_interpolation(self, sim):
        port = make_port(sim)
        monitor = QueueMonitor(sim, port, interval=us(1))
        monitor.samples[:] = [
            QueueSample(float(i), packets, packets * 1500)
            for i, packets in enumerate([1, 2, 3, 4, 10])
        ]
        assert monitor.percentile(50) == 3.0
        assert monitor.percentile(0) == 1.0
        assert monitor.percentile(100) == 10.0
        # rank (5-1)*0.95 = 3.8 -> lerp between 6000 and 15000
        assert monitor.percentile(95, bytes_=True) == pytest.approx(13_200.0)
        assert monitor.percentiles() == pytest.approx(
            {50.0: 3.0, 95.0: 8.8, 99.0: 9.76}
        )

    def test_percentile_rejects_out_of_range(self, sim):
        port = make_port(sim)
        monitor = QueueMonitor(sim, port, interval=us(1))
        with pytest.raises(ValueError):
            monitor.percentile(101)


class TestDropTracer:
    def test_counts_by_reason_and_flow(self, sim):
        port = make_port(sim, buffer_bytes=1500)
        tracer = DropTracer(port)
        for seq in range(3):
            port.send(make_packet(flow_id=7, seq=seq))
        sim.run()
        assert tracer.total >= 1
        assert tracer.by_reason.get("overflow", 0) == tracer.total
        assert tracer.by_flow.get(7, 0) == tracer.total
        assert all(flow == 7 for _, flow, _ in tracer.events)

    def test_no_drops_no_events(self, sim):
        port = make_port(sim)
        tracer = DropTracer(port)
        port.send(make_packet())
        sim.run()
        assert tracer.total == 0

    def test_chains_prior_on_drop_callback(self, sim):
        port = make_port(sim, buffer_bytes=1500)
        seen = []
        port.on_drop = lambda packet, reason: seen.append((packet.seq, reason))
        tracer = DropTracer(port)
        for seq in range(3):
            port.send(make_packet(seq=seq))
        sim.run()
        # Both the pre-existing callback and the tracer observed every drop.
        assert tracer.total >= 1
        assert len(seen) == tracer.total
        assert all(reason == "overflow" for _, reason in seen)

    def test_two_tracers_coexist(self, sim):
        port = make_port(sim, buffer_bytes=1500)
        first = DropTracer(port)
        second = DropTracer(port)
        for seq in range(3):
            port.send(make_packet(seq=seq))
        sim.run()
        assert first.total == second.total >= 1
