"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.base import Aqm
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.packet import Ecn, Packet
from repro.sim.units import gbps, mb, us


@pytest.fixture(autouse=True)
def _hermetic_executor(tmp_path, monkeypatch):
    """Isolate every test from ambient executor state: no inherited
    parallelism, and any cache use (e.g. CLI invocations, which cache by
    default) lands in a per-test temp dir instead of ``~/.cache/repro``."""
    from repro.experiments.executor import set_default_executor

    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_RETRIES", raising=False)
    monkeypatch.delenv("REPRO_SPEC_TIMEOUT", raising=False)
    monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
    monkeypatch.delenv("REPRO_STALL_EVENTS", raising=False)
    monkeypatch.delenv("REPRO_AQM_PERTURB", raising=False)
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    monkeypatch.delenv("REPRO_RETRY_BACKOFF", raising=False)
    monkeypatch.delenv("REPRO_LEASE_TTL", raising=False)
    monkeypatch.delenv("REPRO_FIDELITY", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
    previous = set_default_executor(None)
    yield
    set_default_executor(previous)


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


def make_packet(
    flow_id: int = 0,
    seq: int = 0,
    size: int = 1500,
    is_ack: bool = False,
    ecn: int = Ecn.ECT0,
    src: str = "a",
    dst: str = "b",
    service: int = 0,
) -> Packet:
    """A packet with sensible defaults for unit tests."""
    return Packet(
        flow_id=flow_id,
        src=src,
        dst=dst,
        seq=seq,
        size=size,
        is_ack=is_ack,
        ecn=ecn,
        service=service,
    )


def make_two_host_network(
    rate_bps: float = gbps(10),
    link_delay: float = us(2),
    buffer_bytes: int = mb(1),
    aqm_to_b: Aqm = None,
):
    """host a -- switch -- host b, returning (network, a, b, switch_to_b_port)."""
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    sw = net.add_switch("sw")
    net.connect(a, sw, rate_bps, link_delay, buffer_bytes)
    _, sw_to_b = net.connect(
        b, sw, rate_bps, link_delay, buffer_bytes, aqm_b_to_a=aqm_to_b
    )
    net.compute_routes()
    return net, a, b, sw_to_b


class StampedPacket:
    """Duck-typed packet with a controllable sojourn time, for AQM units."""

    def __init__(self, sojourn: float, ecn: int = Ecn.ECT0, size: int = 1500) -> None:
        self._sojourn = sojourn
        self.ecn = ecn
        self.size = size

    def sojourn_time(self, now: float) -> float:
        return self._sojourn

    def mark_ce(self) -> None:
        if self.ecn == Ecn.NOT_ECT:
            raise ValueError("cannot CE-mark a not-ECT packet")
        self.ecn = Ecn.CE

    @property
    def ce_marked(self) -> bool:
        return self.ecn == Ecn.CE
