"""Declarative scenario descriptions: versioned, typed, TOML/JSON-loadable.

A *scenario* is a complete experiment description -- topology shape,
RTT-variation profile, workload mix with load points, AQM scheme set,
transport configuration, seeds -- expressed as data instead of a
hand-written figure module.  The schema is deliberately a thin, validated
layer over the vocabulary the rest of the stack already speaks:

* AQM schemes resolve through :data:`repro.experiments.schemes.AQM_BUILDERS`
  (by preset name or explicit ``kind`` + ``params``);
* workloads resolve through
  :func:`repro.experiments.specs.resolve_workload`;
* transports resolve through :data:`repro.tcp.factory.CC_VARIANTS`;
* RTT profiles use :class:`repro.netem.profiles.RttProfile` shapes.

Validation is field-level and *actionable*: every error names the offending
path (``scenario.workloads[1].loads[0]: ...``), the bad value, and what
would have been accepted.  ``Scenario.to_dict()`` is canonical -- fields
left at their defaults are omitted -- so ``dict -> Scenario -> dict`` is
the identity on canonically-written input (which all checked-in scenario
files are; the round-trip tests enforce it).

The compiled form (a deterministic :class:`~repro.experiments.specs.RunSpec`
grid) lives in :mod:`repro.scenarios.compile`; campaign execution in
:mod:`repro.scenarios.campaign`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..experiments.specs import FIDELITIES, AqmSpec, stable_hash

__all__ = [
    "SCHEMA_VERSION",
    "SCENARIO_SUFFIXES",
    "ScenarioError",
    "TopologySpec",
    "RttSpec",
    "TransportSpec",
    "SchemeSet",
    "WorkloadSpec",
    "Scenario",
    "load_scenario",
    "load_scenario_dir",
]

SCHEMA_VERSION = 1
"""Bump on incompatible schema changes; files declare the version they
were written against and mismatches are rejected with an explicit error."""

SCENARIO_SUFFIXES = (".toml", ".json")

SCHEME_PRESETS = ("testbed", "simulation")
WORKLOAD_KINDS = ("fct", "incast")
TOPOLOGY_KINDS = ("star", "leafspine")


class ScenarioError(ValueError):
    """A scenario failed validation; ``path`` names the offending field."""

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        super().__init__(f"{path}: {message}")


# ------------------------------------------------------------- field access


_REQUIRED = object()


class _Fields:
    """One table of a scenario document: typed access with path tracking
    and unknown-key rejection."""

    def __init__(self, data: Any, path: str) -> None:
        if not isinstance(data, dict):
            raise ScenarioError(
                path, f"expected a table/object, got {type(data).__name__}"
            )
        self.data = data
        self.path = path
        self._seen: set = set()

    def has(self, key: str) -> bool:
        return key in self.data

    def take(self, key: str, default: Any = _REQUIRED) -> Any:
        self._seen.add(key)
        if key not in self.data:
            if default is _REQUIRED:
                raise ScenarioError(f"{self.path}.{key}", "required field is missing")
            return default
        return self.data[key]

    def string(self, key: str, default: Any = _REQUIRED,
               choices: Optional[Tuple[str, ...]] = None) -> Any:
        value = self.take(key, default)
        if value is default and default is not _REQUIRED:
            return value
        if not isinstance(value, str):
            raise ScenarioError(
                f"{self.path}.{key}",
                f"expected a string, got {type(value).__name__}",
            )
        if choices is not None and value not in choices:
            raise ScenarioError(
                f"{self.path}.{key}",
                f"unknown value {value!r} (choose from {sorted(choices)})",
            )
        return value

    def integer(self, key: str, default: Any = _REQUIRED,
                minimum: Optional[int] = None) -> Any:
        value = self.take(key, default)
        if value is default and default is not _REQUIRED:
            return value
        if isinstance(value, bool) or not isinstance(value, int):
            raise ScenarioError(
                f"{self.path}.{key}",
                f"expected an integer, got {value!r} "
                f"({type(value).__name__})",
            )
        if minimum is not None and value < minimum:
            raise ScenarioError(
                f"{self.path}.{key}", f"must be >= {minimum} (got {value})"
            )
        return value

    def number(self, key: str, default: Any = _REQUIRED,
               minimum: Optional[float] = None,
               exclusive_minimum: bool = False) -> Any:
        value = self.take(key, default)
        if value is default and default is not _REQUIRED:
            return value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ScenarioError(
                f"{self.path}.{key}",
                f"expected a number, got {value!r} ({type(value).__name__})",
            )
        value = float(value)
        if minimum is not None:
            if exclusive_minimum and value <= minimum:
                raise ScenarioError(
                    f"{self.path}.{key}", f"must be > {minimum} (got {value:g})"
                )
            if not exclusive_minimum and value < minimum:
                raise ScenarioError(
                    f"{self.path}.{key}",
                    f"must be >= {minimum} (got {value:g})",
                )
        return value

    def table(self, key: str) -> Optional["_Fields"]:
        value = self.take(key, None)
        if value is None:
            return None
        return _Fields(value, f"{self.path}.{key}")

    def array(self, key: str, default: Any = _REQUIRED) -> Any:
        value = self.take(key, default)
        if value is default and default is not _REQUIRED:
            return value
        if not isinstance(value, list):
            raise ScenarioError(
                f"{self.path}.{key}",
                f"expected an array, got {type(value).__name__}",
            )
        return value

    def finish(self) -> None:
        unknown = sorted(set(self.data) - self._seen)
        if unknown:
            raise ScenarioError(
                f"{self.path}.{unknown[0]}",
                f"unknown field (known fields: {sorted(self._seen)})",
            )


def _number_array(fields: _Fields, key: str, minimum: float,
                  exclusive: bool = True) -> Tuple[float, ...]:
    raw = fields.array(key)
    if not raw:
        raise ScenarioError(f"{fields.path}.{key}", "must not be empty")
    values = []
    for index, value in enumerate(raw):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ScenarioError(
                f"{fields.path}.{key}[{index}]",
                f"expected a number, got {value!r}",
            )
        value = float(value)
        if (value <= minimum) if exclusive else (value < minimum):
            op = ">" if exclusive else ">="
            raise ScenarioError(
                f"{fields.path}.{key}[{index}]",
                f"must be {op} {minimum:g} (got {value:g})",
            )
        values.append(value)
    return tuple(values)


def _int_array(fields: _Fields, key: str, minimum: int) -> Tuple[int, ...]:
    raw = fields.array(key)
    if not raw:
        raise ScenarioError(f"{fields.path}.{key}", "must not be empty")
    values = []
    for index, value in enumerate(raw):
        if isinstance(value, bool) or not isinstance(value, int):
            raise ScenarioError(
                f"{fields.path}.{key}[{index}]",
                f"expected an integer, got {value!r}",
            )
        if value < minimum:
            raise ScenarioError(
                f"{fields.path}.{key}[{index}]",
                f"must be >= {minimum} (got {value})",
            )
        values.append(value)
    return tuple(values)


def _prune(data: Dict[str, Any]) -> Dict[str, Any]:
    """Drop ``None`` values (canonical form omits defaulted fields)."""
    return {k: v for k, v in data.items() if v is not None}


# ------------------------------------------------------------------- pieces


@dataclass(frozen=True)
class TopologySpec:
    """Topology kind and shape.

    ``star`` is the paper's 7-to-1 testbed (``n_senders`` configurable);
    ``leafspine`` is the Section 5.3 fabric with configurable dimensions
    and an optional oversubscription ratio (uplinks run at
    ``link_rate / oversubscription``, see
    :func:`repro.topology.leafspine.build_leafspine`).
    """

    kind: str = "star"
    n_senders: int = 7
    spines: int = 4
    leaves: int = 4
    hosts_per_leaf: int = 4
    oversubscription: float = 1.0

    @classmethod
    def from_fields(cls, fields: Optional[_Fields]) -> "TopologySpec":
        if fields is None:
            return cls()
        kind = fields.string("kind", "star", choices=TOPOLOGY_KINDS)
        if kind == "star":
            spec = cls(kind=kind, n_senders=fields.integer("n_senders", 7, minimum=1))
        else:
            spec = cls(
                kind=kind,
                spines=fields.integer("spines", 4, minimum=1),
                leaves=fields.integer("leaves", 4, minimum=1),
                hosts_per_leaf=fields.integer("hosts_per_leaf", 4, minimum=1),
                oversubscription=fields.number("oversubscription", 1.0, minimum=1.0),
            )
        fields.finish()
        return spec

    def to_dict(self) -> Dict[str, Any]:
        if self.kind == "star":
            return _prune({
                "kind": "star",
                "n_senders": self.n_senders if self.n_senders != 7 else None,
            })
        return _prune({
            "kind": "leafspine",
            "spines": self.spines if self.spines != 4 else None,
            "leaves": self.leaves if self.leaves != 4 else None,
            "hosts_per_leaf": (
                self.hosts_per_leaf if self.hosts_per_leaf != 4 else None
            ),
            "oversubscription": (
                self.oversubscription if self.oversubscription != 1.0 else None
            ),
        })

    @property
    def dims(self) -> Tuple[int, int, int]:
        return (self.spines, self.leaves, self.hosts_per_leaf)


@dataclass(frozen=True)
class RttSpec:
    """A base-RTT variation profile: ``[min_us, min_us * variation]`` with a
    named mixture shape (see :data:`repro.netem.profiles.CLUSTER_SHAPES`)."""

    min_us: float
    variation: float
    shape: str

    @classmethod
    def from_fields(cls, fields: _Fields,
                    default: Optional["RttSpec"] = None) -> "RttSpec":
        from ..netem.profiles import CLUSTER_SHAPES

        shapes = tuple(sorted(CLUSTER_SHAPES))
        if default is None:
            spec = cls(
                min_us=fields.number("min_us", minimum=0.0, exclusive_minimum=True),
                variation=fields.number("variation", minimum=1.0),
                shape=fields.string("shape", choices=shapes),
            )
        else:  # partial override: absent fields fall back to the default
            spec = cls(
                min_us=fields.number(
                    "min_us", default.min_us, minimum=0.0, exclusive_minimum=True
                ),
                variation=fields.number("variation", default.variation, minimum=1.0),
                shape=fields.string("shape", default.shape, choices=shapes),
            )
        fields.finish()
        return spec

    def to_dict(self) -> Dict[str, Any]:
        return {
            "min_us": self.min_us,
            "variation": self.variation,
            "shape": self.shape,
        }

    @property
    def rtt_min_seconds(self) -> float:
        from ..sim.units import us

        return us(self.min_us)


@dataclass(frozen=True)
class TransportSpec:
    """Transport overrides; ``None`` fields keep
    :class:`repro.workloads.arrivals.TransportConfig` defaults."""

    cc: Optional[str] = None
    init_cwnd: Optional[float] = None
    min_rto_us: Optional[float] = None

    @classmethod
    def from_fields(cls, fields: Optional[_Fields]) -> "TransportSpec":
        if fields is None:
            return cls()
        from ..tcp.factory import CC_VARIANTS

        spec = cls(
            cc=fields.string("cc", None, choices=tuple(sorted(CC_VARIANTS))),
            init_cwnd=fields.number(
                "init_cwnd", None, minimum=0.0, exclusive_minimum=True
            ),
            min_rto_us=fields.number(
                "min_rto_us", None, minimum=0.0, exclusive_minimum=True
            ),
        )
        fields.finish()
        return spec

    def to_dict(self) -> Dict[str, Any]:
        return _prune({
            "cc": self.cc,
            "init_cwnd": self.init_cwnd,
            "min_rto_us": self.min_rto_us,
        })

    def overrides(self) -> Dict[str, Any]:
        """The non-default fields as ``TransportConfig`` keyword overrides."""
        from ..sim.units import us

        out: Dict[str, Any] = {}
        if self.cc is not None:
            out["cc"] = self.cc
        if self.init_cwnd is not None:
            out["init_cwnd"] = self.init_cwnd
        if self.min_rto_us is not None:
            out["min_rto"] = us(self.min_rto_us)
        return out


@dataclass(frozen=True)
class SchemeSet:
    """The AQM schemes a scenario compares.

    Either a ``preset`` (``"testbed"``/``"simulation"``, the Section 5
    parameterisations from :mod:`repro.experiments.schemes`, optionally
    narrowed with ``only``) or explicit ``define`` entries mapping a display
    name to an ``AQM_BUILDERS`` kind plus constructor params (seconds, the
    registry's native unit).
    """

    preset: Optional[str] = None
    only: Optional[Tuple[str, ...]] = None
    define: Tuple[Tuple[str, AqmSpec], ...] = ()

    @classmethod
    def from_value(cls, value: Any, path: str) -> "SchemeSet":
        if isinstance(value, str):
            value = {"preset": value}
        fields = _Fields(value, path)
        preset = fields.string("preset", None, choices=SCHEME_PRESETS)
        only_raw = fields.array("only", None)
        entries_raw = fields.array("define", None)
        fields.finish()
        if preset is None and not entries_raw:
            raise ScenarioError(
                path, "needs either 'preset' or at least one 'define' entry"
            )
        if preset is not None and entries_raw:
            raise ScenarioError(path, "'preset' and 'define' are mutually exclusive")

        only: Optional[Tuple[str, ...]] = None
        if only_raw is not None:
            if preset is None:
                raise ScenarioError(f"{path}.only", "only valid with 'preset'")
            available = sorted(_preset_schemes(preset))
            names = []
            for index, name in enumerate(only_raw):
                if not isinstance(name, str):
                    raise ScenarioError(
                        f"{path}.only[{index}]", f"expected a string, got {name!r}"
                    )
                if name not in available:
                    raise ScenarioError(
                        f"{path}.only[{index}]",
                        f"unknown scheme {name!r} in preset {preset!r} "
                        f"(available: {available})",
                    )
                names.append(name)
            if not names:
                raise ScenarioError(f"{path}.only", "must not be empty")
            only = tuple(names)

        define: List[Tuple[str, AqmSpec]] = []
        if entries_raw:
            from ..experiments.schemes import AQM_BUILDERS

            for index, entry in enumerate(entries_raw):
                entry_fields = _Fields(entry, f"{path}.define[{index}]")
                name = entry_fields.string("name")
                kind = entry_fields.string("kind")
                if kind not in AQM_BUILDERS:
                    raise ScenarioError(
                        f"{path}.define[{index}].kind",
                        f"unknown AQM kind {kind!r} "
                        f"(available: {sorted(AQM_BUILDERS)})",
                    )
                params_fields = entry_fields.table("params")
                params: Dict[str, float] = {}
                if params_fields is not None:
                    for key in list(params_fields.data):
                        params[key] = params_fields.number(key)
                    params_fields.finish()
                entry_fields.finish()
                if any(existing == name for existing, _ in define):
                    raise ScenarioError(
                        f"{path}.define[{index}].name",
                        f"duplicate scheme name {name!r}",
                    )
                define.append((name, AqmSpec.make(kind, **params)))
        return cls(preset=preset, only=only, define=tuple(define))

    def to_dict(self) -> Dict[str, Any]:
        if self.preset is not None:
            if self.only is None:
                return {"preset": self.preset}
            return {"preset": self.preset, "only": list(self.only)}
        return {
            "define": [
                {"name": name, "kind": spec.kind, "params": dict(spec.params)}
                for name, spec in self.define
            ]
        }

    def resolve(self) -> Dict[str, AqmSpec]:
        """Display name -> :class:`AqmSpec`, in presentation order."""
        if self.preset is not None:
            specs = _preset_schemes(self.preset)
            if self.only is not None:
                return {name: specs[name] for name in self.only}
            return specs
        return dict(self.define)


def _preset_schemes(preset: str) -> Dict[str, AqmSpec]:
    from ..experiments.schemes import (
        simulation_scheme_specs,
        testbed_scheme_specs,
    )

    if preset == "testbed":
        return testbed_scheme_specs()
    return simulation_scheme_specs()


@dataclass(frozen=True)
class WorkloadSpec:
    """One component of the scenario's traffic mix.

    ``kind="fct"`` is a Poisson FCT sweep of ``workload``-distributed flows
    over the scenario topology at each of ``loads``; ``kind="incast"`` is
    the Figure 10/11 query-burst rig swept over ``fanouts``.  ``rtt`` (a
    partial override of the scenario profile) gives this component its own
    RTT band -- the per-group netem profile of the schema.  ``n_seeds``
    overrides the scenario-level seed pooling for this component only.
    """

    name: str
    kind: str
    workload: Optional[str] = None
    loads: Tuple[float, ...] = ()
    n_flows: int = 0
    fanouts: Tuple[int, ...] = ()
    rtt: Optional[RttSpec] = None
    n_seeds: Optional[int] = None

    @classmethod
    def from_fields(cls, fields: _Fields, scenario_rtt: RttSpec) -> "WorkloadSpec":
        name = fields.string("name")
        kind = fields.string("kind", choices=WORKLOAD_KINDS)
        rtt_fields = fields.table("rtt")
        rtt = (
            RttSpec.from_fields(rtt_fields, default=scenario_rtt)
            if rtt_fields is not None
            else None
        )
        n_seeds = fields.integer("n_seeds", None, minimum=1)
        if kind == "fct":
            workload = fields.string("workload")
            _validate_workload_name(workload, f"{fields.path}.workload")
            spec = cls(
                name=name,
                kind=kind,
                workload=workload,
                loads=_number_array(fields, "loads", minimum=0.0),
                n_flows=fields.integer("n_flows", minimum=1),
                rtt=rtt,
                n_seeds=n_seeds,
            )
        else:
            spec = cls(
                name=name,
                kind=kind,
                fanouts=_int_array(fields, "fanouts", minimum=1),
                rtt=rtt,
                n_seeds=n_seeds,
            )
        fields.finish()
        return spec

    def to_dict(self) -> Dict[str, Any]:
        if self.kind == "fct":
            return _prune({
                "name": self.name,
                "kind": "fct",
                "workload": self.workload,
                "loads": list(self.loads),
                "n_flows": self.n_flows,
                "rtt": self.rtt.to_dict() if self.rtt is not None else None,
                "n_seeds": self.n_seeds,
            })
        return _prune({
            "name": self.name,
            "kind": "incast",
            "fanouts": list(self.fanouts),
            "rtt": self.rtt.to_dict() if self.rtt is not None else None,
            "n_seeds": self.n_seeds,
        })


def _validate_workload_name(name: str, path: str) -> None:
    from ..experiments.specs import resolve_workload

    try:
        resolve_workload(name)
    except ValueError as exc:
        raise ScenarioError(path, str(exc)) from None


# ----------------------------------------------------------------- scenario


@dataclass(frozen=True)
class Scenario:
    """One validated scenario description (see the module docstring)."""

    name: str
    description: str
    topology: TopologySpec
    rtt: RttSpec
    schemes: SchemeSet
    workloads: Tuple[WorkloadSpec, ...]
    seed: int
    n_seeds: int = 1
    transport: TransportSpec = field(default_factory=TransportSpec)
    hypothesis: str = ""
    fidelity: Optional[str] = None
    """Engine fidelity for every cell (``"packet"``/``"fluid"``); ``None``
    defers to the compiler's resolution (CLI flag, then ``REPRO_FIDELITY``,
    then packet)."""
    schema_version: int = SCHEMA_VERSION

    @classmethod
    def from_dict(cls, data: Dict[str, Any], source: str = "scenario") -> "Scenario":
        fields = _Fields(data, source)
        version = fields.integer("schema_version")
        if version != SCHEMA_VERSION:
            raise ScenarioError(
                f"{source}.schema_version",
                f"unsupported version {version} (this build reads "
                f"version {SCHEMA_VERSION})",
            )
        name = fields.string("name")
        if not name or any(c.isspace() or c == "|" for c in name):
            raise ScenarioError(
                f"{source}.name",
                f"must be a non-empty token without whitespace or '|' "
                f"(got {name!r})",
            )
        description = fields.string("description", "")
        hypothesis = fields.string("hypothesis", "")
        topology = TopologySpec.from_fields(fields.table("topology"))
        rtt_fields = fields.table("rtt")
        if rtt_fields is None:
            raise ScenarioError(f"{source}.rtt", "required table is missing")
        rtt = RttSpec.from_fields(rtt_fields)
        schemes = SchemeSet.from_value(
            fields.take("schemes"), f"{source}.schemes"
        )
        run_fields = fields.table("run")
        if run_fields is None:
            raise ScenarioError(f"{source}.run", "required table is missing")
        seed = run_fields.integer("seed", minimum=0)
        n_seeds = run_fields.integer("n_seeds", 1, minimum=1)
        fidelity = run_fields.string("fidelity", None, choices=FIDELITIES)
        run_fields.finish()
        transport = TransportSpec.from_fields(fields.table("transport"))
        workloads_raw = fields.array("workloads")
        if not workloads_raw:
            raise ScenarioError(f"{source}.workloads", "must not be empty")
        workloads = tuple(
            WorkloadSpec.from_fields(
                _Fields(entry, f"{source}.workloads[{index}]"), rtt
            )
            for index, entry in enumerate(workloads_raw)
        )
        names = [w.name for w in workloads]
        if len(set(names)) != len(names):
            duplicate = next(n for n in names if names.count(n) > 1)
            raise ScenarioError(
                f"{source}.workloads",
                f"duplicate component name {duplicate!r}",
            )
        fields.finish()
        return cls(
            name=name,
            description=description,
            topology=topology,
            rtt=rtt,
            schemes=schemes,
            workloads=workloads,
            seed=seed,
            n_seeds=n_seeds,
            transport=transport,
            hypothesis=hypothesis,
            fidelity=fidelity,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Canonical dict form: defaulted optional fields are omitted, so
        ``from_dict(to_dict(s)) == s`` and canonical input round-trips to
        the identical dict."""
        data: Dict[str, Any] = {
            "schema_version": self.schema_version,
            "name": self.name,
        }
        if self.description:
            data["description"] = self.description
        if self.hypothesis:
            data["hypothesis"] = self.hypothesis
        topology = self.topology.to_dict()
        if topology != {"kind": "star"}:
            data["topology"] = topology
        data["rtt"] = self.rtt.to_dict()
        data["schemes"] = self.schemes.to_dict()
        run: Dict[str, Any] = {"seed": self.seed}
        if self.n_seeds != 1:
            run["n_seeds"] = self.n_seeds
        if self.fidelity is not None:
            run["fidelity"] = self.fidelity
        data["run"] = run
        transport = self.transport.to_dict()
        if transport:
            data["transport"] = transport
        data["workloads"] = [w.to_dict() for w in self.workloads]
        return data

    def content_hash(self) -> str:
        """SHA-256 over the canonical dict form: the campaign store's
        scenario identity (any semantic edit changes it)."""
        return stable_hash(self.to_dict())

    def rtt_for(self, component: WorkloadSpec) -> RttSpec:
        return component.rtt if component.rtt is not None else self.rtt

    def seeds_for(self, component: WorkloadSpec) -> int:
        return component.n_seeds if component.n_seeds is not None else self.n_seeds


# ------------------------------------------------------------------ loading


def load_scenario(path: "Path | str") -> Scenario:
    """Load one scenario file (``.toml`` or ``.json``)."""
    path = Path(path)
    source = path.name
    if path.suffix == ".toml":
        import tomllib

        try:
            data = tomllib.loads(path.read_text(encoding="utf-8"))
        except tomllib.TOMLDecodeError as exc:
            raise ScenarioError(source, f"invalid TOML: {exc}") from None
    elif path.suffix == ".json":
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ScenarioError(source, f"invalid JSON: {exc}") from None
    else:
        raise ScenarioError(
            source,
            f"unsupported suffix {path.suffix!r} "
            f"(expected one of {list(SCENARIO_SUFFIXES)})",
        )
    return Scenario.from_dict(data, source=source)


def load_scenario_dir(path: "Path | str") -> List[Tuple[Path, Scenario]]:
    """Load every scenario file in a directory, sorted by filename."""
    path = Path(path)
    if not path.is_dir():
        raise FileNotFoundError(f"scenario directory does not exist: {path}")
    pairs: List[Tuple[Path, Scenario]] = []
    for child in sorted(path.iterdir()):
        if child.suffix in SCENARIO_SUFFIXES and child.is_file():
            pairs.append((child, load_scenario(child)))
    if not pairs:
        raise FileNotFoundError(
            f"no scenario files ({'/'.join(SCENARIO_SUFFIXES)}) in {path}"
        )
    return pairs
