"""Declarative scenarios: describe an experiment as data, run it as a
campaign.

* :mod:`~repro.scenarios.schema` -- versioned, validated TOML/JSON scenario
  descriptions (topology, RTT profile, workload mix, AQM scheme set,
  transport, seeds).
* :mod:`~repro.scenarios.compile` -- pure scenario -> RunSpec-grid compiler;
  compiled grids run through the existing executor/cache/fault layers
  unchanged.
* :mod:`~repro.scenarios.campaign` -- resumable campaign orchestration over
  a directory of scenario files with a crash-safe JSONL result store.

* :mod:`~repro.scenarios.coordination` -- multi-writer resilience: store
  lock, lease-based cell claiming with stale-lease reclamation, graceful
  shutdown, idempotent store merge and canonical store fingerprints.

CLI: ``repro scenario list|check|run|report|merge``.  The checked-in
``scenarios/`` directory holds faithful re-expressions of the paper's
fig6/fig10/fig11 setups plus beyond-paper scenarios (oversubscribed
fabrics, mixed traffic, extreme RTT spread).
"""

from .campaign import (
    CampaignResult,
    CampaignStore,
    CellRecord,
    StoreLoadStats,
    run_campaign,
    render_store_report,
)
from .coordination import (
    GracefulShutdown,
    LeaseBoard,
    LockTimeout,
    MergeConflictError,
    MergeResult,
    StoreLock,
    default_worker_id,
    merge_stores,
    store_fingerprint,
)
from .compile import (
    CompiledScenario,
    ScenarioCell,
    check_scenario,
    compile_scenario,
    summarize_cell,
)
from .schema import (
    SCHEMA_VERSION,
    Scenario,
    ScenarioError,
    load_scenario,
    load_scenario_dir,
)

__all__ = [
    "SCHEMA_VERSION",
    "Scenario",
    "ScenarioError",
    "load_scenario",
    "load_scenario_dir",
    "CompiledScenario",
    "ScenarioCell",
    "compile_scenario",
    "check_scenario",
    "summarize_cell",
    "CampaignStore",
    "CampaignResult",
    "CellRecord",
    "StoreLoadStats",
    "run_campaign",
    "render_store_report",
    "GracefulShutdown",
    "LeaseBoard",
    "LockTimeout",
    "MergeConflictError",
    "MergeResult",
    "StoreLock",
    "default_worker_id",
    "merge_stores",
    "store_fingerprint",
]
