"""Multi-writer campaign coordination: store locks, cell leases, merging.

PR 6's campaign store is crash-safe for a *single* writer: append-only
JSONL, fsync per shard, torn trailing lines skipped on load.  This module
adds what a fleet of workers sharing one campaign needs on top:

* :class:`StoreLock` -- an advisory ``O_CREAT|O_EXCL`` lockfile next to
  the store (``<store>.lock``), holding ``pid host`` and heartbeat-touched
  while held.  A lock whose owner pid is dead (same host) or whose mtime
  is older than ``stale_after`` is *broken* by atomically renaming it
  aside, so a SIGKILLed writer can never wedge the campaign.
* :class:`LeaseBoard` -- lease records in a sidecar JSONL file
  (``<store>.leases.jsonl``, append-only, latest-line-per-key wins) that
  partition pending cells across ``repro scenario run --shared`` workers.
  A claimed lease older than its TTL is stale and may be *reclaimed* by
  another worker, so a killed worker's cells re-run exactly once.  Lease
  and lock files are coordination state only: the main store stays
  byte-compatible with single-writer campaigns.
* :class:`GracefulShutdown` -- SIGINT/SIGTERM latch used by
  ``run_campaign`` so an interrupted worker finishes and appends its
  current shard, releases its leases, and exits ``128+signum`` (130 for
  SIGINT) with the store fully resumable.
* :func:`merge_stores` -- idempotent N-store merge with latest-ok-wins
  semantics and hard conflict detection: two ``ok`` records for the same
  key that disagree on result content abort the merge (that means two
  workers simulated the same cell and got different answers -- a
  determinism bug that must never be papered over).
* :func:`store_fingerprint` -- canonical bytes of a store's settled cell
  records (latest per key, sorted), the equality notion chaos tests use:
  N writers under kills/tears must converge to the same fingerprint as an
  uninterrupted single-writer run.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .campaign import CampaignStore, CellRecord, RecordKey

__all__ = [
    "DEFAULT_LEASE_TTL",
    "DEFAULT_LOCK_STALE",
    "DEFAULT_LOCK_TIMEOUT",
    "GracefulShutdown",
    "Lease",
    "LeaseBoard",
    "LockTimeout",
    "MergeConflictError",
    "MergeResult",
    "StoreLock",
    "canonical_records",
    "default_worker_id",
    "fingerprint_records",
    "merge_resources",
    "merge_stores",
    "store_fingerprint",
]

DEFAULT_LEASE_TTL = 60.0
"""Seconds a claimed lease stays exclusive without being released.  Tuned
for "worker died", not "worker is slow": a worker holds its lease only
while executing one shard, and re-running a cell is merely wasted work
(results are deterministic), never a correctness problem."""

DEFAULT_LOCK_TIMEOUT = 60.0
DEFAULT_LOCK_STALE = 30.0

LEASE_TTL_ENV = "REPRO_LEASE_TTL"


def default_worker_id() -> str:
    """``host:pid`` -- unique per concurrently live worker process."""
    return f"{socket.gethostname()}:{os.getpid()}"


def lease_ttl_from_env(default: float = DEFAULT_LEASE_TTL) -> float:
    raw = os.environ.get(LEASE_TTL_ENV, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value > 0 else default


# ------------------------------------------------------------------- lock


class LockTimeout(RuntimeError):
    """Raised when the store lock cannot be acquired within the timeout."""


class StoreLock:
    """Advisory exclusive lockfile around campaign-store appends.

    Creation is ``O_CREAT|O_EXCL`` (atomic on every filesystem that
    matters here); the file body is ``pid host``.  Liveness has two
    tiers: a dead owner pid on the same host is detected immediately via
    ``kill(pid, 0)``, and a cross-host (or unreadable) lock falls back to
    the heartbeat mtime -- holders re-touch the file between shards, so
    an mtime older than ``stale_after`` marks an abandoned lock.  Breaking
    is rename-based: racing breakers rename the stale file aside, and only
    the winner of that atomic rename unlinks it; everyone then races the
    normal O_EXCL create.
    """

    def __init__(
        self,
        path: "Path | str",
        timeout: float = DEFAULT_LOCK_TIMEOUT,
        stale_after: float = DEFAULT_LOCK_STALE,
        poll_interval: float = 0.05,
    ) -> None:
        self.path = Path(path)
        self.timeout = timeout
        self.stale_after = stale_after
        self.poll_interval = poll_interval
        self.broken_stale = 0
        """Stale locks this instance has broken (observability)."""
        self._held = False

    def acquire(self) -> "StoreLock":
        deadline = time.monotonic() + self.timeout
        self.path.parent.mkdir(parents=True, exist_ok=True)
        while True:
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                if self._break_if_stale():
                    continue
                if time.monotonic() >= deadline:
                    raise LockTimeout(
                        f"could not acquire {self.path} within "
                        f"{self.timeout:g}s (held by {self._describe_holder()})"
                    )
                time.sleep(self.poll_interval)
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(f"{os.getpid()} {socket.gethostname()}\n")
            self._held = True
            return self

    def heartbeat(self) -> None:
        """Refresh the lock's mtime so long shard executions under the
        lock (not the normal pattern, but possible) never look stale."""
        if self._held:
            try:
                os.utime(self.path)
            except OSError:
                pass

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def __enter__(self) -> "StoreLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    # ------------------------------------------------------------ staleness

    def _read_holder(self) -> Tuple[Optional[int], Optional[str], Optional[float]]:
        """``(pid, host, mtime)`` of the current lock, or Nones if it
        vanished or is unreadable (a lock mid-creation has no body yet)."""
        try:
            mtime = self.path.stat().st_mtime
            body = self.path.read_text(encoding="utf-8").split()
        except OSError:
            return None, None, None
        pid: Optional[int] = None
        host: Optional[str] = None
        if body:
            try:
                pid = int(body[0])
            except ValueError:
                pid = None
        if len(body) > 1:
            host = body[1]
        return pid, host, mtime

    def _describe_holder(self) -> str:
        pid, host, _ = self._read_holder()
        if pid is None:
            return "unknown holder"
        return f"pid {pid} on {host or 'unknown host'}"

    def _is_stale(self) -> bool:
        pid, host, mtime = self._read_holder()
        if mtime is None:
            return False  # lock vanished; retry the create immediately
        if (
            pid is not None
            and host == socket.gethostname()
            and not _pid_alive(pid)
        ):
            return True
        return (time.time() - mtime) > self.stale_after

    def _break_if_stale(self) -> bool:
        """Atomically take a stale lock aside; True if this process won
        the break (or the lock vanished) and should retry the create."""
        if not self._is_stale():
            return False
        aside = self.path.with_name(
            f"{self.path.name}.stale.{os.getpid()}"
        )
        try:
            os.replace(self.path, aside)
        except OSError:
            return True  # another breaker won; the path is free to race
        try:
            os.unlink(aside)
        except OSError:
            pass
        self.broken_stale += 1
        return True


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, other user
        return True
    except OSError:  # pragma: no cover - platform oddity: assume alive
        return True
    return True


# ------------------------------------------------------------------ leases


@dataclass(frozen=True)
class Lease:
    """Latest lease state for one cell key."""

    worker: str
    state: str  # "claimed" | "released"
    acquired_at: float

    def is_held(self, now: float, ttl: float) -> bool:
        return self.state == "claimed" and (now - self.acquired_at) < ttl

    def is_stale(self, now: float, ttl: float) -> bool:
        return self.state == "claimed" and (now - self.acquired_at) >= ttl


def _key_to_json(key: RecordKey) -> list:
    return [key[0], list(key[1])]


def _key_from_json(raw) -> Optional[RecordKey]:
    try:
        scenario_hash, tokens = raw
        return (str(scenario_hash), tuple(str(t) for t in tokens))
    except (TypeError, ValueError):
        return None


class LeaseBoard:
    """Append-only lease ledger in the store's ``.leases.jsonl`` sidecar.

    One JSON object per line (``key``, ``worker``, ``state``, ``t``);
    the latest line per key wins.  All mutation happens under the
    :class:`StoreLock`, so appends never interleave; torn lines from a
    crash are skipped on load exactly like the main store's.  The file is
    coordination state, not campaign state: deleting it merely releases
    every lease.
    """

    def __init__(
        self, path: "Path | str", ttl: float = DEFAULT_LEASE_TTL
    ) -> None:
        self.path = Path(path)
        if ttl <= 0:
            raise ValueError("lease ttl must be positive")
        self.ttl = ttl

    def load(self) -> Dict[RecordKey, Lease]:
        index: Dict[RecordKey, Lease] = {}
        if not self.path.exists():
            return index
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn trailing line from a crash
                key = _key_from_json(row.get("key"))
                if key is None:
                    continue
                try:
                    lease = Lease(
                        worker=str(row["worker"]),
                        state=str(row["state"]),
                        acquired_at=float(row["t"]),
                    )
                except (KeyError, TypeError, ValueError):
                    continue
                index[key] = lease
        return index

    def partition(
        self,
        pending: Sequence[RecordKey],
        worker: str,
        limit: Optional[int] = None,
        now: Optional[float] = None,
    ) -> Tuple[List[RecordKey], List[Tuple[RecordKey, str]]]:
        """Select up to ``limit`` claimable keys from ``pending`` in order.

        Returns ``(claimable, reclaimed)`` where ``reclaimed`` pairs each
        key taken over from a stale lease with the worker that abandoned
        it.  Keys under a live lease held by *another* worker are skipped;
        this worker's own live leases are re-claimable (it is resuming its
        own work, e.g. after a lock-released retry).
        """
        if now is None:
            now = time.time()
        index = self.load()
        claimable: List[RecordKey] = []
        reclaimed: List[Tuple[RecordKey, str]] = []
        for key in pending:
            if limit is not None and len(claimable) >= limit:
                break
            lease = index.get(key)
            if lease is not None and lease.is_held(now, self.ttl):
                if lease.worker != worker:
                    continue
            if lease is not None and lease.is_stale(now, self.ttl):
                reclaimed.append((key, lease.worker))
            claimable.append(key)
        return claimable, reclaimed

    def claim(
        self,
        keys: Iterable[RecordKey],
        worker: str,
        now: Optional[float] = None,
    ) -> None:
        self._append(keys, worker, "claimed", now)

    def release(
        self,
        keys: Iterable[RecordKey],
        worker: str,
        now: Optional[float] = None,
    ) -> None:
        self._append(keys, worker, "released", now)

    def _append(
        self,
        keys: Iterable[RecordKey],
        worker: str,
        state: str,
        now: Optional[float],
    ) -> None:
        rows = [
            {
                "key": _key_to_json(key),
                "worker": worker,
                "state": state,
                "t": now if now is not None else time.time(),
            }
            for key in keys
        ]
        if not rows:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Same torn-trailing-line probe as the main store: a crash mid-
        # lease-write must not glue the next lease onto the torn line.
        needs_newline = _needs_newline(self.path)
        with open(self.path, "a", encoding="utf-8") as handle:
            if needs_newline:
                handle.write("\n")
            for row in rows:
                handle.write(
                    json.dumps(row, sort_keys=True, separators=(",", ":"))
                )
                handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())


def _needs_newline(path: Path) -> bool:
    """Whether ``path`` ends mid-line (torn write) and needs termination
    before the next append."""
    try:
        if path.stat().st_size == 0:
            return False
    except OSError:
        return False
    with open(path, "rb") as probe:
        probe.seek(-1, os.SEEK_END)
        return probe.read(1) != b"\n"


# ------------------------------------------------------------- shutdown


class GracefulShutdown:
    """Latch SIGINT/SIGTERM instead of dying mid-shard.

    Inside the context the default handlers are replaced (main thread
    only; elsewhere the latch simply never fires) by one that records the
    signal.  The campaign loop polls :attr:`requested` between shards,
    finishes + appends the in-flight shard, releases its leases, and the
    CLI exits ``128 + signum`` -- 130 for SIGINT, the interrupted-but-
    resumable convention.
    """

    SIGNALS = ("SIGINT", "SIGTERM")

    def __init__(self) -> None:
        self.requested = False
        self.signum: Optional[int] = None
        self._previous: Dict[int, object] = {}

    @property
    def exit_code(self) -> int:
        return 128 + (self.signum or 2)

    def _handler(self, signum, frame) -> None:
        self.requested = True
        self.signum = signum

    def __enter__(self) -> "GracefulShutdown":
        import signal as signal_module
        import threading

        if threading.current_thread() is not threading.main_thread():
            return self  # signals only deliver to the main thread
        for name in self.SIGNALS:
            signum = getattr(signal_module, name, None)
            if signum is None:  # pragma: no cover - platform-dependent
                continue
            try:
                self._previous[signum] = signal_module.signal(
                    signum, self._handler
                )
            except (ValueError, OSError):  # pragma: no cover - embedded use
                pass
        return self

    def __exit__(self, *exc_info) -> None:
        import signal as signal_module

        for signum, previous in self._previous.items():
            try:
                signal_module.signal(signum, previous)
            except (ValueError, OSError):  # pragma: no cover
                pass
        self._previous.clear()


# --------------------------------------------------------------- merging


class MergeConflictError(RuntimeError):
    """Two ``ok`` records for the same key disagree on result content.

    This is never a coordination race -- cell execution is deterministic
    by construction -- so a true ok/ok conflict means the stores were
    produced by semantically different code or inputs and must not be
    silently merged.  ``conflicts`` lists ``(key, details)`` pairs.
    """

    def __init__(self, conflicts: List[Tuple[RecordKey, str]]) -> None:
        self.conflicts = conflicts
        preview = "; ".join(detail for _, detail in conflicts[:3])
        more = "" if len(conflicts) <= 3 else f" (+{len(conflicts) - 3} more)"
        super().__init__(
            f"{len(conflicts)} ok/ok content conflict(s): {preview}{more}"
        )


@dataclass
class MergeResult:
    """Accounting for one :func:`merge_stores` pass."""

    records: List[CellRecord] = field(default_factory=list)
    input_records: int = 0
    ok_cells: int = 0
    failed_cells: int = 0
    duplicates_collapsed: int = 0
    resource_rows: int = 0
    resource_rows_collapsed: int = 0

    def summary_line(self) -> str:
        line = (
            f"cells={len(self.records)} ok={self.ok_cells} "
            f"failed={self.failed_cells} inputs={self.input_records} "
            f"collapsed={self.duplicates_collapsed}"
        )
        # Suffix only when sidecars were actually merged: the base five
        # tokens are a stable grep surface for tests and CI.
        if self.resource_rows:
            line += (
                f" resources={self.resource_rows}"
                f" resources_collapsed={self.resource_rows_collapsed}"
            )
        return line


def _record_content(record: CellRecord) -> dict:
    """The comparable payload of a record: everything except provenance
    (git sha / package version legitimately differ across workers that
    ran the same code state on different checkouts of the same commit --
    but metrics, status and failures must agree).  ``fidelity`` is also
    excluded: it is denormalized from the spec tokens (which embed the
    fidelity-bearing spec hash), so a legacy record written before the
    field existed and a fresh one for the same tokens are the same cell.
    """
    data = record.to_dict()
    data.pop("git_sha", None)
    data.pop("version", None)
    data.pop("fidelity", None)
    return data


def _canonical_sort_key(record: CellRecord):
    return (record.scenario, record.scenario_hash, record.cell_key,
            record.tokens)


def canonical_records(
    stores: Sequence["CampaignStore | Path | str"],
) -> Tuple[Dict[RecordKey, List[CellRecord]], int]:
    """Latest record per key *per store*, plus the total line count.

    Returns ``(key -> [latest record from each store, in store order],
    total input records)``."""
    per_key: Dict[RecordKey, List[CellRecord]] = {}
    total = 0
    for raw in stores:
        store = raw if isinstance(raw, CampaignStore) else CampaignStore(raw)
        index = store.load()
        total += store.load_stats.records
        for key, record in index.items():
            per_key.setdefault(key, []).append(record)
    return per_key, total


def merge_stores(
    inputs: Sequence["CampaignStore | Path | str"],
    output: "CampaignStore | Path | str | None" = None,
) -> MergeResult:
    """Merge N campaign stores into one canonical store.

    Semantics per key: the latest record of each input store is a
    candidate; any ``ok`` candidate beats every non-ok one (latest-ok-
    wins); multiple ``ok`` candidates must agree on content (provenance
    fields aside) or the merge raises :class:`MergeConflictError`; with
    no ``ok`` candidate, the last input's record wins.  The output is
    written atomically in canonical sorted order, which makes the merge
    idempotent: ``merge(merge(A, B), B) == merge(A, B)`` byte-for-byte.

    ``output`` may be one of the inputs (everything is read before the
    atomic replace) or ``None`` to merge without writing.

    Resource sidecars (``<stem>.resources.jsonl``) merge alongside the main
    store: all input sidecar rows are concatenated, deduped by
    ``(scenario, cell_key)`` with the latest (last input, last row) winning,
    and written sorted to the output's sidecar -- so per-cell attribution
    survives a multi-host merge.  Sidecar loss never blocks the merge.
    """
    per_key, total = canonical_records(inputs)
    result = MergeResult(input_records=total)
    conflicts: List[Tuple[RecordKey, str]] = []
    for key in sorted(per_key, key=lambda k: (k[0], k[1])):
        candidates = per_key[key]
        ok = [r for r in candidates if r.status == "ok"]
        if ok:
            baseline = _record_content(ok[0])
            for other in ok[1:]:
                if _record_content(other) != baseline:
                    conflicts.append((
                        key,
                        f"{other.scenario}/{other.cell_key}: two ok records "
                        "disagree on content",
                    ))
                    break
            winner = ok[0]
            result.ok_cells += 1
        else:
            winner = candidates[-1]
            result.failed_cells += 1
        result.duplicates_collapsed += len(candidates) - 1
        result.records.append(winner)
    if conflicts:
        raise MergeConflictError(conflicts)
    result.records.sort(key=_canonical_sort_key)
    merged_resources, input_rows = merge_resources(inputs)
    result.resource_rows = len(merged_resources)
    result.resource_rows_collapsed = input_rows - len(merged_resources)
    if output is not None:
        out_store = (
            output
            if isinstance(output, CampaignStore)
            else CampaignStore(output)
        )
        _write_canonical(out_store.path, result.records)
        if merged_resources:
            _write_jsonl_atomic(out_store.resources_path, merged_resources)
    return result


def merge_resources(
    inputs: Sequence["CampaignStore | Path | str"],
) -> Tuple[List[Dict[str, object]], int]:
    """``(merged sidecar rows, total input rows)`` for ``inputs``.

    Rows are concatenated in input order, deduped by
    ``(scenario, cell_key)`` latest-wins, and sorted by that key so the
    merge is order-independent and idempotent.  Missing sidecars contribute
    nothing (they are observability data, never campaign state)."""
    latest: Dict[Tuple[object, object], Dict[str, object]] = {}
    total = 0
    for raw in inputs:
        store = raw if isinstance(raw, CampaignStore) else CampaignStore(raw)
        rows = store.load_resources()
        total += len(rows)
        for row in rows:
            latest[(row.get("scenario"), row.get("cell_key"))] = row
    merged = [
        latest[key]
        for key in sorted(latest, key=lambda k: (str(k[0]), str(k[1])))
    ]
    return merged, total


def _write_canonical(path: Path, records: Sequence[CellRecord]) -> None:
    """Atomically (re)write ``path`` as one canonical record per line."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".merge-tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(
                json.dumps(record.to_dict(), sort_keys=True,
                           separators=(",", ":"))
            )
            handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _write_jsonl_atomic(path: Path, rows: Sequence[Dict[str, object]]) -> None:
    """Atomically (re)write ``path`` as one compact JSON row per line."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".merge-tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True, separators=(",", ":")))
            handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def fingerprint_records(records: Iterable[CellRecord]) -> bytes:
    """Canonical bytes of a set of settled cells: sorted, serialized
    exactly as the store writes them.  The service's store index calls
    this on records it already holds in memory, avoiding a second disk
    read per revalidation."""
    lines = [
        json.dumps(record.to_dict(), sort_keys=True, separators=(",", ":"))
        for record in sorted(records, key=_canonical_sort_key)
    ]
    return ("\n".join(lines) + "\n").encode("utf-8") if lines else b""


def store_fingerprint(store: "CampaignStore | Path | str") -> bytes:
    """Canonical bytes of a store's settled cells: latest record per key,
    sorted, serialized exactly as the store writes them.  Two stores with
    equal fingerprints settled every cell identically, regardless of
    append interleaving -- the equality chaos/convergence tests assert.
    """
    if not isinstance(store, CampaignStore):
        store = CampaignStore(store)
    return fingerprint_records(store.load().values())
