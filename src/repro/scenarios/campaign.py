"""Campaign orchestration: run a directory of scenarios as one resumable job.

A *campaign* executes every cell of every compiled scenario through the
shared :class:`~repro.experiments.executor.Executor` and appends each
finished cell to a crash-safe JSONL store.  Records are keyed by
``(scenario content-hash, the cell's RunSpec tokens)``: the content hash
pins the scenario semantics (any edit changes it) and the tokens embed each
spec's hash (any parameter change changes them), so stale records can never
be replayed for changed work.

Resume semantics: a rerun loads the store first and only executes cells
with no ``"ok"`` record -- gaps (never ran, e.g. the process was killed)
and failures (every failed cell re-executes until it succeeds).  Because
cell summaries contain no timestamps and records are appended in the
deterministic scenario-order x cell-order, an interrupted-then-resumed
campaign's store is byte-identical to an uninterrupted one.

Crash safety: the store is append-only, one JSON object per line, flushed
and fsynced per shard; a torn trailing line (the process died mid-write) is
skipped with a warning on load and its cell simply re-executes.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..experiments.executor import Executor, get_default_executor
from ..telemetry.provenance import git_sha
from ..telemetry.runtime import get_active
from ..telemetry.spans import maybe_span
from .compile import CompiledScenario, ScenarioCell, compile_scenario, summarize_cell
from .schema import Scenario

__all__ = [
    "CellRecord",
    "CampaignStore",
    "CampaignResult",
    "StoreLoadStats",
    "run_campaign",
    "render_store_report",
    "DEFAULT_STORE",
]

DEFAULT_STORE = "campaign.jsonl"

RecordKey = Tuple[str, Tuple[str, ...]]  # (scenario content hash, spec tokens)


@dataclass(frozen=True)
class CellRecord:
    """One settled campaign cell (one JSONL line).

    ``fidelity`` follows the same elision rule as
    :meth:`~repro.experiments.specs.RunSpec.with_fidelity`: ``"packet"`` is
    the implicit default and is omitted from the serialized record, so
    packet-fidelity stores stay byte-identical to pre-fidelity ones (same
    fingerprints, same resume behavior); only fluid cells carry the field.
    """

    scenario: str
    scenario_hash: str
    cell_key: str
    component: str
    tokens: Tuple[str, ...]
    status: str  # "ok" | "failed"
    metrics: Dict[str, float]
    failures: Tuple[Dict[str, str], ...]
    git_sha: Optional[str]
    version: str
    fidelity: str = "packet"

    @property
    def key(self) -> RecordKey:
        return (self.scenario_hash, self.tokens)

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "scenario": self.scenario,
            "scenario_hash": self.scenario_hash,
            "cell_key": self.cell_key,
            "component": self.component,
            "tokens": list(self.tokens),
            "status": self.status,
            "metrics": self.metrics,
            "failures": list(self.failures),
            "git_sha": self.git_sha,
            "version": self.version,
        }
        if self.fidelity != "packet":
            data["fidelity"] = self.fidelity
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CellRecord":
        return cls(
            scenario=data["scenario"],
            scenario_hash=data["scenario_hash"],
            cell_key=data["cell_key"],
            component=data.get("component", ""),
            tokens=tuple(data["tokens"]),
            status=data["status"],
            metrics=data.get("metrics", {}),
            failures=tuple(data.get("failures", [])),
            git_sha=data.get("git_sha"),
            version=data.get("version", ""),
            fidelity=data.get("fidelity", "packet"),
        )


@dataclass
class StoreLoadStats:
    """What the last :meth:`CampaignStore.load` actually read.

    ``torn_lines`` counts unparseable lines skipped during the load --
    normally 0 or 1 (a single torn trailing write from a crash); more than
    one means the store took damage beyond a clean kill and deserves a
    look.  Surfaced by ``repro scenario report`` and the obs dashboard.
    """

    lines: int = 0
    records: int = 0
    torn_lines: int = 0


def _needs_trailing_newline(path: Path) -> bool:
    """Whether ``path`` ends mid-line (torn write from a crash) and must be
    newline-terminated before the next append, so the torn line cannot glue
    onto the next record and make both unreadable."""
    try:
        if path.stat().st_size == 0:
            return False
    except OSError:
        return False
    with open(path, "rb") as probe:
        probe.seek(-1, os.SEEK_END)
        return probe.read(1) != b"\n"


class CampaignStore:
    """Append-only JSONL store of :class:`CellRecord` lines.

    Resource attribution lives in a *sidecar* file next to the main store
    (``campaign.resources.jsonl`` for ``campaign.jsonl``): cell records are
    deliberately timestamp-free so a resumed campaign's store is
    byte-identical to an uninterrupted one, and wall time / peak RSS are
    exactly the nondeterminism that invariant excludes.  The sidecar is
    append-only observability data -- consumers take the latest row per
    ``(scenario, cell_key)`` -- and losing it never affects resume.

    Two more sidecars exist only for ``--shared`` multi-writer campaigns
    (see :mod:`repro.scenarios.coordination`): ``<store>.lock`` -- the
    advisory lockfile serializing appends -- and ``<stem>.leases.jsonl`` --
    the lease ledger partitioning pending cells across workers.  Both are
    coordination state: deleting them never loses campaign results.
    """

    def __init__(self, path: "Path | str") -> None:
        self.path = Path(path)
        self.load_stats = StoreLoadStats()

    @property
    def resources_path(self) -> Path:
        return self.path.with_name(self.path.stem + ".resources.jsonl")

    @property
    def lock_path(self) -> Path:
        return self.path.with_name(self.path.name + ".lock")

    @property
    def leases_path(self) -> Path:
        return self.path.with_name(self.path.stem + ".leases.jsonl")

    def append_resources(self, rows: Sequence[Dict[str, Any]]) -> None:
        """Append per-cell resource rows to the sidecar (best-effort: the
        sidecar is observability data, not campaign state)."""
        if not rows:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        needs_newline = _needs_trailing_newline(self.resources_path)
        with open(self.resources_path, "a", encoding="utf-8") as handle:
            if needs_newline:
                handle.write("\n")
            for row in rows:
                handle.write(
                    json.dumps(row, sort_keys=True, separators=(",", ":"))
                )
                handle.write("\n")

    def load_resources(self) -> List[Dict[str, Any]]:
        """All readable sidecar rows, in append order (torn lines skipped)."""
        rows: List[Dict[str, Any]] = []
        if not self.resources_path.exists():
            return rows
        with open(self.resources_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    rows.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
        return rows

    def load(self) -> Dict[RecordKey, CellRecord]:
        """Record index, latest record per key winning.  Unparseable lines
        (torn trailing write from a crash) are skipped with a warning and
        counted in :attr:`load_stats`."""
        index: Dict[RecordKey, CellRecord] = {}
        stats = StoreLoadStats()
        self.load_stats = stats
        if not self.path.exists():
            return index
        with open(self.path, "r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                stats.lines += 1
                try:
                    record = CellRecord.from_dict(json.loads(line))
                except (json.JSONDecodeError, KeyError, TypeError):
                    stats.torn_lines += 1
                    warnings.warn(
                        f"{self.path}:{line_no}: skipping unreadable record "
                        "(torn write from an interrupted campaign?)",
                        stacklevel=2,
                    )
                    continue
                stats.records += 1
                index[record.key] = record
        return index

    def append(self, records: Sequence[CellRecord]) -> None:
        """Append one shard's records, fsynced so a crash after return
        cannot lose them (a crash *during* leaves at most one torn line)."""
        if not records:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = "".join(
            json.dumps(record.to_dict(), sort_keys=True,
                       separators=(",", ":")) + "\n"
            for record in records
        )
        die_after_write = False
        if os.environ.get("REPRO_CHAOS"):
            from ..testing.chaos import CHAOS_EXIT_CODE, chaos_store_append

            payload, die_after_write = chaos_store_append(payload)
        # A crash mid-write can leave a torn line with no trailing newline;
        # terminate it first so the next record does not glue onto it and
        # become unreadable too.
        needs_newline = _needs_trailing_newline(self.path)
        with open(self.path, "a", encoding="utf-8") as handle:
            if needs_newline:
                handle.write("\n")
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        if die_after_write:
            os._exit(CHAOS_EXIT_CODE)


@dataclass
class CampaignResult:
    """Accounting for one campaign pass."""

    compiled: List[CompiledScenario]
    records: List[CellRecord] = field(default_factory=list)
    executed_cells: int = 0
    skipped_cells: int = 0
    failed_cells: int = 0
    reclaimed_leases: int = 0
    interrupted: bool = False
    interrupt_signum: Optional[int] = None

    @property
    def total_cells(self) -> int:
        return sum(len(c.cells) for c in self.compiled)

    def summary_line(self) -> str:
        line = (
            f"cells={self.total_cells} executed={self.executed_cells} "
            f"skipped={self.skipped_cells} failed={self.failed_cells}"
        )
        # Suffixes only when relevant: the base four tokens are a stable
        # grep surface for tests and CI.
        if self.reclaimed_leases:
            line += f" reclaimed={self.reclaimed_leases}"
        if self.interrupted:
            line += " interrupted"
        return line


def _package_version() -> str:
    from .. import __version__

    return __version__


def _settle(
    compiled: CompiledScenario,
    cell: ScenarioCell,
    runs: Sequence[Any],
    provenance: Tuple[Optional[str], str],
) -> CellRecord:
    summary = summarize_cell(cell, runs)
    sha, version = provenance
    return CellRecord(
        scenario=compiled.scenario.name,
        scenario_hash=compiled.scenario.content_hash(),
        cell_key=cell.key,
        component=cell.component,
        tokens=tuple(cell.tokens()),
        status=summary["status"],
        metrics=summary["metrics"],
        failures=tuple(summary["failures"]),
        git_sha=sha,
        version=version,
        fidelity=cell.specs[0].fidelity if cell.specs else "packet",
    )


def _notify(scenario_name: str, cell_key: str, status: str) -> None:
    telemetry = get_active()
    if telemetry is not None:
        telemetry.on_campaign_cell(scenario_name, cell_key, status)


def _cell_resources(
    record: CellRecord, attribution: Sequence[Any], sha: Optional[str]
) -> Dict[str, Any]:
    """Aggregate one cell's per-spec attribution into a sidecar row."""
    attrs = [a for a in attribution if a is not None]
    wall = sum(a.wall_seconds for a in attrs if a.wall_seconds is not None)
    events = sum(a.events for a in attrs if a.events is not None)
    rss_values = [a.max_rss_kb for a in attrs if a.max_rss_kb is not None]
    return {
        "scenario": record.scenario,
        "cell_key": record.cell_key,
        "status": record.status,
        "wall_seconds": round(wall, 6),
        "events": events,
        "events_per_sec": round(events / wall, 1) if wall > 0 else None,
        "max_rss_kb": max(rss_values) if rss_values else None,
        "cache_hits": sum(1 for a in attrs if a.source == "cache"),
        "executed_specs": sum(1 for a in attrs if a.source == "run"),
        "failed_specs": sum(1 for a in attrs if a.source == "failed"),
        "git_sha": sha,
    }


def _iter_cells(
    compiled: Sequence[CompiledScenario],
) -> Iterator[Tuple[CompiledScenario, ScenarioCell, str]]:
    """Cells in deterministic scenario-order x cell-order with each
    scenario's content hash computed once."""
    for comp in compiled:
        scenario_hash = comp.scenario.content_hash()
        for cell in comp.cells:
            yield comp, cell, scenario_hash


def _execute_shard(
    executor: Executor,
    shard: Sequence[Tuple[CompiledScenario, ScenarioCell]],
    provenance: Tuple[Optional[str], str],
    result: CampaignResult,
    progress: Optional[Any],
) -> Tuple[List[CellRecord], List[Dict[str, Any]]]:
    """Execute one shard through the executor and settle its records
    (store appends are the caller's job -- shared mode does them under
    the store lock)."""
    flat = [spec for _, cell in shard for spec in cell.specs]
    retried_before = executor.stats.retried
    outcomes = executor.run(flat)
    if progress is not None:
        for _ in range(executor.stats.retried - retried_before):
            progress.retry()
    attribution = executor.last_run_attribution
    shard_records: List[CellRecord] = []
    shard_resources: List[Dict[str, Any]] = []
    cursor = 0
    for comp, cell in shard:
        runs = outcomes[cursor:cursor + len(cell.specs)]
        cell_attrs = attribution[cursor:cursor + len(cell.specs)]
        cursor += len(cell.specs)
        record = _settle(comp, cell, runs, provenance)
        shard_records.append(record)
        result.records.append(record)
        result.executed_cells += 1
        if record.status == "failed":
            result.failed_cells += 1
        resources = _cell_resources(record, cell_attrs, provenance[0])
        shard_resources.append(resources)
        if progress is not None:
            progress.cell_done(
                "ok" if record.status == "ok" else "failed",
                wall_seconds=resources["wall_seconds"] or None,
                events=resources["events"] or None,
            )
        _notify(comp.scenario.name, cell.key, record.status)
    return shard_records, shard_resources


def _interrupt_requested(
    shutdown: Optional[Any], result: CampaignResult
) -> bool:
    """Poll the graceful-shutdown latch between shards; records the
    interruption on the result so the CLI can exit ``128 + signum``."""
    if shutdown is not None and getattr(shutdown, "requested", False):
        result.interrupted = True
        result.interrupt_signum = getattr(shutdown, "signum", None)
        return True
    return False


def _run_single(
    compiled: Sequence[CompiledScenario],
    store: CampaignStore,
    executor: Executor,
    result: CampaignResult,
    provenance: Tuple[Optional[str], str],
    max_cells: Optional[int],
    progress: Optional[Any],
    shutdown: Optional[Any],
) -> None:
    """The single-writer path: no locks, no leases, store byte-identical
    to the pre-coordination format."""
    index = store.load()
    pending: List[Tuple[CompiledScenario, ScenarioCell]] = []
    skipped: List[Tuple[str, str]] = []
    for comp, cell, scenario_hash in _iter_cells(compiled):
        record = index.get((scenario_hash, tuple(cell.tokens())))
        if record is not None and record.status == "ok":
            result.records.append(record)
            result.skipped_cells += 1
            skipped.append((comp.scenario.name, cell.key))
            _notify(comp.scenario.name, cell.key, "skipped")
        else:
            pending.append((comp, cell))
    if max_cells is not None:
        pending = pending[:max_cells]
    if progress is not None:
        progress.add_total(len(skipped) + len(pending))
        for _ in skipped:
            progress.cell_done("skipped")

    # One executor pass per shard: big enough to keep the pool
    # saturated, small enough that a kill between shards forfeits
    # little work.
    shard_size = max(1, executor.jobs) * 4
    for start in range(0, len(pending), shard_size):
        if _interrupt_requested(shutdown, result):
            break
        shard = pending[start:start + shard_size]
        shard_records, shard_resources = _execute_shard(
            executor, shard, provenance, result, progress
        )
        store.append(shard_records)
        store.append_resources(shard_resources)


def _run_shared(
    compiled: Sequence[CompiledScenario],
    store: CampaignStore,
    executor: Executor,
    result: CampaignResult,
    provenance: Tuple[Optional[str], str],
    max_cells: Optional[int],
    progress: Optional[Any],
    worker_id: Optional[str],
    lease_ttl: Optional[float],
    lock_timeout: Optional[float],
    shutdown: Optional[Any],
) -> None:
    """The multi-writer path: claim pending cells through the lease board
    under the store lock, execute outside it, append + release under it.

    Each iteration re-loads the store (other workers append concurrently),
    accounts newly-ok cells as skipped, claims up to one shard of free or
    stale-leased cells, and stops when nothing is claimable -- either the
    campaign is done or every remaining cell is leased to a live worker
    (rerun later to pick up whatever they drop).
    """
    from .coordination import (
        DEFAULT_LOCK_TIMEOUT,
        LeaseBoard,
        StoreLock,
        default_worker_id,
        lease_ttl_from_env,
    )

    worker = worker_id or default_worker_id()
    ttl = lease_ttl if lease_ttl is not None else lease_ttl_from_env()
    timeout = (
        lock_timeout if lock_timeout is not None else DEFAULT_LOCK_TIMEOUT
    )
    lock = StoreLock(store.lock_path, timeout=timeout)
    board = LeaseBoard(store.leases_path, ttl=ttl)
    shard_size = max(1, executor.jobs) * 4
    accounted: Set[RecordKey] = set()
    budget = max_cells

    while True:
        if _interrupt_requested(shutdown, result):
            break
        if budget is not None and budget <= 0:
            break
        with lock:
            index = store.load()
            newly_skipped: List[Tuple[str, str]] = []
            pending_keys: List[RecordKey] = []
            by_key: Dict[RecordKey, Tuple[CompiledScenario, ScenarioCell]] = {}
            for comp, cell, scenario_hash in _iter_cells(compiled):
                key: RecordKey = (scenario_hash, tuple(cell.tokens()))
                if key in accounted:
                    continue
                record = index.get(key)
                if record is not None and record.status == "ok":
                    accounted.add(key)
                    result.records.append(record)
                    result.skipped_cells += 1
                    newly_skipped.append((comp.scenario.name, cell.key))
                else:
                    pending_keys.append(key)
                    by_key[key] = (comp, cell)
            limit = (
                shard_size if budget is None else min(shard_size, budget)
            )
            claimable, reclaimed = board.partition(
                pending_keys, worker, limit=limit
            )
            if claimable:
                board.claim(claimable, worker)
        if progress is not None:
            progress.add_total(len(newly_skipped) + len(claimable))
            for _ in newly_skipped:
                progress.cell_done("skipped")
        for name, cell_key in newly_skipped:
            _notify(name, cell_key, "skipped")
        if not claimable:
            # Done, or every remaining cell is leased to a live worker.
            break
        telemetry = get_active()
        for _, prev_worker in reclaimed:
            result.reclaimed_leases += 1
            if telemetry is not None:
                telemetry.on_lease_reclaim(prev_worker)

        shard = [by_key[key] for key in claimable]
        shard_records, shard_resources = _execute_shard(
            executor, shard, provenance, result, progress
        )
        with lock:
            store.append(shard_records)
            store.append_resources(shard_resources)
            board.release(claimable, worker)
        accounted.update(claimable)
        if budget is not None:
            budget -= len(claimable)


def run_campaign(
    scenarios: Sequence[Scenario],
    store: "CampaignStore | Path | str" = DEFAULT_STORE,
    executor: Optional[Executor] = None,
    max_cells: Optional[int] = None,
    progress: Optional[Any] = None,
    shared: bool = False,
    worker_id: Optional[str] = None,
    lease_ttl: Optional[float] = None,
    lock_timeout: Optional[float] = None,
    shutdown: Optional[Any] = None,
    fidelity: Optional[str] = None,
) -> CampaignResult:
    """Run (or resume) a campaign over ``scenarios``.

    ``fidelity`` overrides every scenario's engine fidelity at compile time
    (``"packet"``/``"fluid"``; see :func:`~.compile.compile_scenario` for
    the resolution order).  Because fidelity is part of each spec's token,
    packet and fluid passes of the same scenario settle *distinct* store
    cells -- a hybrid campaign can hold both side by side.

    Cells already settled ``"ok"`` in the store are skipped; gaps and failed
    cells execute, sharded across the executor's pool, and each finished
    shard is appended to the store before the next begins -- killing the
    process between shards loses nothing.  ``max_cells`` bounds how many
    pending cells this pass executes (the deterministic "kill after N
    cells" used by the resume tests); the next run picks up the rest.

    ``shared=True`` switches to the multi-writer protocol
    (:mod:`repro.scenarios.coordination`): appends happen under the store's
    advisory lock and pending cells are partitioned across workers through
    lease records, with stale leases (a killed worker's) reclaimed after
    ``lease_ttl`` seconds.  ``worker_id`` defaults to ``host:pid``.  Any
    number of ``shared`` processes may target the same store concurrently;
    the settled result converges to exactly a single-writer run's records.

    ``shutdown`` is an optional latch with ``requested``/``signum``
    attributes (see :class:`~repro.scenarios.coordination.GracefulShutdown`)
    polled between shards: on SIGINT/SIGTERM the in-flight shard is
    finished and appended, leases released, and ``result.interrupted`` set
    so the CLI can exit ``128 + signum`` with the store fully resumable.

    ``progress`` is an optional
    :class:`~repro.telemetry.progress.ProgressReporter` fed one unit per
    *cell* (skipped / ok / failed, with each executed cell's wall time and
    event count); the caller owns ``close()``.  When span tracing is
    active the whole pass records a ``campaign`` span with per-scenario
    compile spans and the executor's grid/cell spans nested inside.
    Executed cells' resource attribution (wall seconds, events, peak RSS,
    cache hits) is appended to the store's resources sidecar per shard.
    """
    if not isinstance(store, CampaignStore):
        store = CampaignStore(store)
    executor = executor or get_default_executor()
    with maybe_span("campaign", kind="campaign", scenarios=len(scenarios)):
        compiled = []
        for scenario in scenarios:
            with maybe_span("compile", kind="scenario",
                            scenario=scenario.name):
                compiled.append(compile_scenario(scenario, fidelity=fidelity))
        provenance = (git_sha(), _package_version())
        result = CampaignResult(compiled=compiled)
        if shared:
            _run_shared(
                compiled, store, executor, result, provenance, max_cells,
                progress, worker_id, lease_ttl, lock_timeout, shutdown,
            )
        else:
            _run_single(
                compiled, store, executor, result, provenance, max_cells,
                progress, shutdown,
            )
    return result


# ---------------------------------------------------------------- reporting


def render_store_report(
    store: "CampaignStore | Path | str",
    scenarios: Optional[Sequence[Scenario]] = None,
) -> str:
    """Render per-scenario cell tables straight from the store -- no
    simulation, no cache.  With ``scenarios`` given, only their current
    content-hashes are reported (stale records from edited scenario files
    are ignored); otherwise everything in the store is shown.
    """
    if not isinstance(store, CampaignStore):
        store = CampaignStore(store)
    index = store.load()
    if scenarios is not None:
        wanted = {s.content_hash() for s in scenarios}
        records = [r for r in index.values() if r.scenario_hash in wanted]
    else:
        records = list(index.values())
    if not records:
        return f"# no campaign records in {store.path}"

    from ..experiments.report import format_table

    by_scenario: Dict[str, List[CellRecord]] = {}
    for record in records:
        by_scenario.setdefault(record.scenario, []).append(record)

    # Aggregate counters in the telemetry registry's naming: cell outcomes
    # and terminal run-failure kinds across every reported record.
    status_counts: Dict[str, int] = {}
    failure_kinds: Dict[str, int] = {}
    for record in records:
        status_counts[record.status] = status_counts.get(record.status, 0) + 1
        for failure in record.failures:
            kind = failure.get("kind", "unknown")
            failure_kinds[kind] = failure_kinds.get(kind, 0) + 1
    counter_lines = [
        f'campaign_cells_total{{status="{status}"}} {count}'
        for status, count in sorted(status_counts.items())
    ] + [
        f'run_failures_total{{kind="{kind}"}} {count}'
        for kind, count in sorted(failure_kinds.items())
    ]
    if store.load_stats.torn_lines:
        counter_lines.append(
            f"campaign_store_torn_lines_total {store.load_stats.torn_lines}"
        )

    sections = ["# counters\n" + "\n".join(counter_lines)]
    for name in sorted(by_scenario):
        group = sorted(by_scenario[name], key=lambda r: r.cell_key)
        metric_names = sorted({m for r in group for m in r.metrics})
        rows = []
        for record in group:
            rows.append(
                [record.cell_key, record.status]
                + [
                    f"{record.metrics[m]:.6g}" if m in record.metrics else "-"
                    for m in metric_names
                ]
            )
        sections.append(
            format_table(
                ["cell", "status"] + metric_names,
                rows,
                title=f"scenario {name} ({len(group)} cells)",
            )
        )
    return "\n\n".join(sections)
