"""Scenario compilation: scenario description -> deterministic RunSpec grid.

:func:`compile_scenario` is a pure function from a validated
:class:`~repro.scenarios.schema.Scenario` to an ordered list of
:class:`ScenarioCell` -- each carrying a stable cell key and the seed-expanded
:class:`~repro.experiments.specs.RunSpec` list the existing
:class:`~repro.experiments.executor.Executor` knows how to run.  Compilation
touches no executor/cache/fault code: compiled scenarios flow through those
layers exactly as the figure modules' grids do.

Faithfulness rule: a spec field is set only when the figure modules would
set it.  ``run_star_fct`` defaults ``rtt_shape="testbed"`` and
``run_leafspine_fct`` defaults ``"fabric"``, so the compiler elides the
shape when it matches the rig default; the incast rig's ``rtt_min``/
``variation`` defaults (80 us, 3x) are likewise elided, and a non-blocking
(1.0) oversubscription adds no extra.  Because a spec's hash *is* the cache
key and the store identity, this elision makes a scenario that re-expresses
fig6/fig10/fig11 compile to byte-identical specs -- same cache entries,
bit-identical summaries (asserted cell-for-cell in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..experiments.executor import seed_specs
from ..experiments.faults import is_failure
from ..experiments.specs import AqmSpec, RunSpec, resolve_fidelity
from ..sim.units import us
from .schema import Scenario, ScenarioError, WorkloadSpec

__all__ = ["ScenarioCell", "CompiledScenario", "compile_scenario",
           "summarize_cell", "check_scenario"]

# The rig defaults the compiler elides against (run_star_fct /
# run_leafspine_fct / run_microscopic keyword defaults).
_RIG_SHAPE = {"star": "testbed", "leafspine": "fabric"}
_MICRO_RTT_MIN_US = 80.0
_MICRO_VARIATION = 3.0
_MICRO_SHAPE = "fabric"
_DEFAULT_N_SENDERS = 7


@dataclass(frozen=True)
class ScenarioCell:
    """One compiled cell: a workload component point, its seed specs."""

    component: str
    key: str
    specs: Tuple[RunSpec, ...]
    metric_source: str  # "fct" (ExperimentResult) or "micro" (MicroscopicRun)

    def tokens(self) -> List[str]:
        return [spec.token() for spec in self.specs]


@dataclass(frozen=True)
class CompiledScenario:
    """A scenario's full deterministic grid, in presentation order."""

    scenario: Scenario
    cells: Tuple[ScenarioCell, ...]

    def specs(self) -> List[RunSpec]:
        return [spec for cell in self.cells for spec in cell.specs]

    @property
    def n_specs(self) -> int:
        return sum(len(cell.specs) for cell in self.cells)


def compile_scenario(
    scenario: Scenario, fidelity: Optional[str] = None
) -> CompiledScenario:
    """Compile every workload component into its cell list.

    ``fidelity`` (the CLI's ``--fidelity``) beats the scenario's
    ``[run] fidelity``, which beats ``REPRO_FIDELITY``, which defaults to
    packet.  Resolution happens here -- at spec-build time -- so the
    fidelity is baked into each spec's token/cache key and the executor
    never consults the environment.  Packet-fidelity specs are
    byte-identical to pre-fidelity compilations (the extras key is elided).

    Raises :class:`ScenarioError` (with the offending component's path) for
    combinations the rigs cannot express -- incast on a leaf-spine topology,
    an incast RTT shape other than the rig's fixed "fabric" mixture, or
    transport overrides alongside an incast component (the incast rig pins
    its own transport).
    """
    resolved = resolve_fidelity(fidelity or scenario.fidelity)
    cells: List[ScenarioCell] = []
    for index, component in enumerate(scenario.workloads):
        path = f"{scenario.name}.workloads[{index}]"
        if component.kind == "fct":
            component_cells = _fct_cells(scenario, component)
        else:
            _check_incast(scenario, component, path)
            component_cells = _incast_cells(scenario, component)
        if resolved != "packet":
            component_cells = [
                ScenarioCell(
                    component=cell.component,
                    key=cell.key,
                    specs=tuple(
                        spec.with_fidelity(resolved) for spec in cell.specs
                    ),
                    metric_source=cell.metric_source,
                )
                for cell in component_cells
            ]
        cells.extend(component_cells)
    return CompiledScenario(scenario=scenario, cells=tuple(cells))


# ------------------------------------------------------------ fct components


def _fct_cells(scenario: Scenario, component: WorkloadSpec) -> List[ScenarioCell]:
    topology = scenario.topology
    rtt = scenario.rtt_for(component)
    n_seeds = scenario.seeds_for(component)
    transport = scenario.transport.overrides()
    builder = RunSpec.star if topology.kind == "star" else RunSpec.leafspine

    extras: Dict[str, Any] = {}
    if topology.kind == "star":
        if topology.n_senders != _DEFAULT_N_SENDERS:
            extras["n_senders"] = topology.n_senders
    else:
        # run_leafspine_fct always receives explicit dims (matching fig9's
        # grids, which pin the scale's dims on every spec).
        extras["dims"] = topology.dims
        if topology.oversubscription != 1.0:
            extras["oversubscription"] = topology.oversubscription
    if rtt.shape != _RIG_SHAPE[topology.kind]:
        extras["rtt_shape"] = rtt.shape

    cells = []
    for load in component.loads:
        for name, aqm in scenario.schemes.resolve().items():
            spec = builder(
                aqm,
                workload=component.workload,
                load=load,
                n_flows=component.n_flows,
                seed=scenario.seed,
                label=name,
                variation=rtt.variation,
                rtt_min=rtt.rtt_min_seconds,
                transport=transport or None,
                **extras,
            )
            cells.append(
                ScenarioCell(
                    component=component.name,
                    key=f"{component.name}|load={load:g}|scheme={name}",
                    specs=tuple(seed_specs(spec, n_seeds)),
                    metric_source="fct",
                )
            )
    return cells


# --------------------------------------------------------- incast components


def _check_incast(
    scenario: Scenario, component: WorkloadSpec, path: str
) -> None:
    if scenario.topology.kind != "star":
        raise ScenarioError(
            path,
            "incast components require the star topology (the query-burst "
            "rig builds its own 16-to-1 incast star); got "
            f"{scenario.topology.kind!r}",
        )
    rtt = scenario.rtt_for(component)
    if rtt.shape != _MICRO_SHAPE:
        raise ScenarioError(
            f"{path}.rtt.shape",
            f"the incast rig's RTT mixture is fixed to {_MICRO_SHAPE!r}; "
            f"got {rtt.shape!r} (give this component its own [rtt] table)",
        )
    if scenario.transport.to_dict():
        raise ScenarioError(
            f"{path}",
            "[transport] overrides do not reach incast components (the "
            "incast rig pins its own transport); remove the [transport] "
            "table or the incast component",
        )


def _incast_cells(
    scenario: Scenario, component: WorkloadSpec
) -> List[ScenarioCell]:
    rtt = scenario.rtt_for(component)
    cells = []
    for fanout in component.fanouts:
        for name, aqm in scenario.schemes.resolve().items():
            extras: Dict[str, Any] = {"fanout": fanout}
            if rtt.min_us != _MICRO_RTT_MIN_US:
                extras["rtt_min"] = rtt.rtt_min_seconds
            if rtt.variation != _MICRO_VARIATION:
                extras["variation"] = rtt.variation
            spec = RunSpec.microscopic(
                aqm, seed=scenario.seed, label=name, **extras
            )
            cells.append(
                ScenarioCell(
                    component=component.name,
                    key=f"{component.name}|fanout={fanout}|scheme={name}",
                    specs=(spec,),
                    metric_source="micro",
                )
            )
    return cells


# ------------------------------------------------------------- summarising


def summarize_cell(cell: ScenarioCell, runs: Sequence[Any]) -> Dict[str, Any]:
    """One cell's deterministic summary from its raw executor results.

    ``{"status": "ok"|"failed", "metrics": {...}, "failures": [...]}`` --
    no timestamps or wall-clock fields, so identical specs produce
    byte-identical summaries (the campaign store's resume guarantee).  A
    cell with *any* failed seed run reports ``"failed"`` so a campaign
    rerun re-executes it.
    """
    failures = [
        {"spec": run.spec_key, "kind": run.kind, "exc": run.exc_type}
        for run in runs
        if is_failure(run)
    ]
    if failures:
        return {"status": "failed", "metrics": {}, "failures": failures}
    if cell.metric_source == "fct":
        from ..experiments.runner import pool_results

        pooled = pool_results(list(runs))
        return {"status": "ok", "metrics": pooled.summary.metrics(),
                "failures": []}
    return {"status": "ok", "metrics": runs[0].metrics(), "failures": []}


# ---------------------------------------------------------------- checking


def check_scenario(scenario: Scenario) -> CompiledScenario:
    """Deep-check one scenario: compile it and construct every distinct AQM
    once, so parameter-level mistakes (wrong keyword for the AQM kind)
    surface here with the scheme's name -- not mid-campaign in a worker."""
    compiled = compile_scenario(scenario)
    seen: set = set()
    for name, aqm in scenario.schemes.resolve().items():
        if aqm in seen:
            continue
        seen.add(aqm)
        try:
            aqm.build()
        except TypeError as exc:
            raise ScenarioError(
                f"{scenario.name}.schemes[{name}]",
                f"AQM kind {aqm.kind!r} rejected params "
                f"{dict(aqm.params)}: {exc}",
            ) from None
    return compiled
