"""Experiment harness: FCT metrics, runners, and per-figure entry points."""

from .executor import (
    Executor,
    ResultCache,
    get_default_executor,
    run_grid,
    seed_specs,
    set_default_executor,
)
from .faults import (
    FailedCell,
    InjectedFault,
    RunFailure,
    gather_failures,
    is_failure,
)
from .fct import (
    LARGE_FLOW_MIN,
    SHORT_FLOW_MAX,
    FctCollector,
    FctSummary,
    FlowRecord,
    NormalizedFct,
)
from .report import format_failure_table, format_table
from .runner import (
    ExperimentResult,
    Scale,
    estimate_star_network_rtt,
    pool_results,
    run_leafspine_fct,
    run_star_fct,
)
from .schemes import (
    SCHEME_ORDER,
    bytes_to_sojourn,
    simulation_scheme_specs,
    simulation_schemes,
    testbed_scheme_specs,
    testbed_schemes,
)
from .specs import AqmSpec, RunSpec

__all__ = [
    "LARGE_FLOW_MIN",
    "SHORT_FLOW_MAX",
    "FctCollector",
    "FctSummary",
    "FlowRecord",
    "NormalizedFct",
    "format_failure_table",
    "format_table",
    "ExperimentResult",
    "FailedCell",
    "InjectedFault",
    "RunFailure",
    "Scale",
    "estimate_star_network_rtt",
    "gather_failures",
    "is_failure",
    "pool_results",
    "run_leafspine_fct",
    "run_star_fct",
    "SCHEME_ORDER",
    "bytes_to_sojourn",
    "simulation_schemes",
    "simulation_scheme_specs",
    "testbed_schemes",
    "testbed_scheme_specs",
    "AqmSpec",
    "RunSpec",
    "Executor",
    "ResultCache",
    "get_default_executor",
    "set_default_executor",
    "run_grid",
    "seed_specs",
]
