"""The comparison schemes of Section 5, with the paper's parameter choices.

Testbed configuration (Section 5.2, 3x RTT variation 70-210 us, 10 Gbps):

* DCTCP-RED-Tail: threshold 250 KB (90th-percentile RTT) -> 204.8 us sojourn
* DCTCP-RED-AVG: threshold 80 KB (average RTT) -> 65.5 us sojourn
* CoDel: interval 200 us, target 85 us
* ECN#: ins_target 200 us, pst_interval 200 us, pst_target 85 us

Microscopic / large-scale simulation configuration (Sections 5.3-5.4, 3x
variation 80-240 us): CoDel interval 240 us / target 10 us; ECN# ins_target
~220 us (the 90th-percentile RTT), pst_interval 240 us, pst_target 10 us;
TCN 150 us (Figure 13).

All schemes are expressed on the sojourn-time signal (the paper's
implementation choice); byte thresholds convert through Equation 2 at the
10 Gbps link rate.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core import Codel, EcnSharp, EcnSharpConfig, SojournRed, Tcn
from ..core.base import Aqm
from ..sim.units import gbps, kb, us

__all__ = [
    "AqmFactory",
    "bytes_to_sojourn",
    "testbed_schemes",
    "simulation_schemes",
    "SCHEME_ORDER",
]

AqmFactory = Callable[[], Aqm]

SCHEME_ORDER: List[str] = ["DCTCP-RED-Tail", "DCTCP-RED-AVG", "CoDel", "ECN#"]
"""Presentation order used by the figures."""


def bytes_to_sojourn(threshold_bytes: int, rate_bps: float = gbps(10)) -> float:
    """Equation 2: convert a queue-length threshold to sojourn time."""
    if threshold_bytes <= 0 or rate_bps <= 0:
        raise ValueError("threshold and rate must be positive")
    return threshold_bytes * 8.0 / rate_bps


def testbed_schemes(rate_bps: float = gbps(10)) -> Dict[str, AqmFactory]:
    """The four Section 5.2 schemes with the paper's testbed parameters."""
    tail_sojourn = bytes_to_sojourn(kb(250), rate_bps)  # ~204.8 us at 10G
    avg_sojourn = bytes_to_sojourn(kb(80), rate_bps)  # ~65.5 us at 10G
    return {
        "DCTCP-RED-Tail": lambda: SojournRed(tail_sojourn),
        "DCTCP-RED-AVG": lambda: SojournRed(avg_sojourn),
        "CoDel": lambda: Codel(target_seconds=us(85), interval_seconds=us(200)),
        "ECN#": lambda: EcnSharp(
            EcnSharpConfig(
                ins_target=us(200), pst_target=us(85), pst_interval=us(200)
            )
        ),
    }


def simulation_schemes() -> Dict[str, AqmFactory]:
    """The Section 5.3/5.4 schemes (80-240 us RTT band, 10 Gbps)."""
    return {
        "DCTCP-RED-Tail": lambda: SojournRed(us(220)),  # 90th-percentile RTT
        "DCTCP-RED-AVG": lambda: SojournRed(us(137)),  # average RTT
        "CoDel": lambda: Codel(target_seconds=us(10), interval_seconds=us(240)),
        "ECN#": lambda: EcnSharp(
            EcnSharpConfig(ins_target=us(220), pst_target=us(10), pst_interval=us(240))
        ),
        "TCN": lambda: Tcn(us(150)),  # Figure 13's threshold
    }
