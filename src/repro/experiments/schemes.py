"""The comparison schemes of Section 5, with the paper's parameter choices.

Testbed configuration (Section 5.2, 3x RTT variation 70-210 us, 10 Gbps):

* DCTCP-RED-Tail: threshold 250 KB (90th-percentile RTT) -> 204.8 us sojourn
* DCTCP-RED-AVG: threshold 80 KB (average RTT) -> 65.5 us sojourn
* CoDel: interval 200 us, target 85 us
* ECN#: ins_target 200 us, pst_interval 200 us, pst_target 85 us

Microscopic / large-scale simulation configuration (Sections 5.3-5.4, 3x
variation 80-240 us): CoDel interval 240 us / target 10 us; ECN# ins_target
~220 us (the 90th-percentile RTT), pst_interval 240 us, pst_target 10 us;
TCN 150 us (Figure 13).

All schemes are expressed on the sojourn-time signal (the paper's
implementation choice); byte thresholds convert through Equation 2 at the
10 Gbps link rate.
"""

from __future__ import annotations

import os
import sys
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core import Codel, EcnSharp, EcnSharpConfig, SojournRed, Tcn
from ..core.base import Aqm
from ..sim.units import gbps, kb, us
from .specs import AqmSpec

__all__ = [
    "AqmFactory",
    "AQM_BUILDERS",
    "PERTURB_ENV",
    "build_aqm",
    "perturbed_params",
    "bytes_to_sojourn",
    "testbed_schemes",
    "testbed_scheme_specs",
    "simulation_schemes",
    "simulation_scheme_specs",
    "SCHEME_ORDER",
]

AqmFactory = Callable[[], Aqm]

SCHEME_ORDER: List[str] = ["DCTCP-RED-Tail", "DCTCP-RED-AVG", "CoDel", "ECN#"]
"""Presentation order used by the figures."""

AQM_BUILDERS: Dict[str, Callable[..., Aqm]] = {
    "sojourn-red": lambda sojourn: SojournRed(sojourn),
    "codel": lambda target, interval: Codel(
        target_seconds=target, interval_seconds=interval
    ),
    "ecn-sharp": lambda ins_target, pst_target, pst_interval: EcnSharp(
        EcnSharpConfig(
            ins_target=ins_target,
            pst_target=pst_target,
            pst_interval=pst_interval,
        )
    ),
    "tcn": lambda threshold: Tcn(threshold),
}
"""AQM registry: name -> keyword constructor.

This is what lets a :class:`~repro.experiments.specs.AqmSpec` cross a
process boundary -- the worker rebuilds the AQM from (name, params) instead
of unpicklable closure factories.
"""


PERTURB_ENV = "REPRO_AQM_PERTURB"
"""Deliberate-regression canary: ``kind:param:factor`` multiplies one AQM
parameter at construction time.  Spawn workers inherit the environment, so
the perturbation reaches every cell; the spec hash (and thus the result
cache key) is *unchanged*, which is exactly the point -- the validation
gate, not the cache, must catch the behavioral shift.  Run with
``--no-cache`` so perturbed results are actually simulated."""

_perturb_warned = False


def _parse_perturbation() -> Optional[Tuple[str, str, float]]:
    raw = os.environ.get(PERTURB_ENV, "").strip()
    if not raw:
        return None
    parts = raw.split(":")
    if len(parts) != 3:
        raise ValueError(
            f"{PERTURB_ENV} must be 'kind:param:factor', got {raw!r}"
        )
    kind, param, factor_text = parts
    try:
        factor = float(factor_text)
    except ValueError:
        raise ValueError(
            f"{PERTURB_ENV} factor must be a float, got {factor_text!r}"
        ) from None
    return kind, param, factor


def perturbed_params(kind: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """``params`` with any matching :data:`PERTURB_ENV` canary applied.

    Shared by the packet AQM constructors and the fluid marker banks so a
    perturbation canary shifts behaviour identically at both fidelities.
    """
    perturbation = _parse_perturbation()
    if perturbation is not None and perturbation[0] == kind:
        _, param, factor = perturbation
        if param in params:
            params = dict(params)
            params[param] = params[param] * factor
            global _perturb_warned
            if not _perturb_warned:
                _perturb_warned = True
                print(
                    f"# WARNING: {PERTURB_ENV} active: "
                    f"{kind}.{param} x{factor:g} (canary perturbation)",
                    file=sys.stderr,
                )
    return params


def build_aqm(kind: str, params: Dict[str, Any]) -> Aqm:
    """Construct a registered AQM from its registry name and parameters."""
    try:
        builder = AQM_BUILDERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown AQM kind {kind!r} (available: {sorted(AQM_BUILDERS)})"
        ) from None
    return builder(**perturbed_params(kind, params))


def bytes_to_sojourn(threshold_bytes: int, rate_bps: float = gbps(10)) -> float:
    """Equation 2: convert a queue-length threshold to sojourn time."""
    if threshold_bytes <= 0 or rate_bps <= 0:
        raise ValueError("threshold and rate must be positive")
    return threshold_bytes * 8.0 / rate_bps


def testbed_scheme_specs(rate_bps: float = gbps(10)) -> Dict[str, AqmSpec]:
    """The four Section 5.2 schemes as registry specs (testbed parameters)."""
    tail_sojourn = bytes_to_sojourn(kb(250), rate_bps)  # ~204.8 us at 10G
    avg_sojourn = bytes_to_sojourn(kb(80), rate_bps)  # ~65.5 us at 10G
    return {
        "DCTCP-RED-Tail": AqmSpec.make("sojourn-red", sojourn=tail_sojourn),
        "DCTCP-RED-AVG": AqmSpec.make("sojourn-red", sojourn=avg_sojourn),
        "CoDel": AqmSpec.make("codel", target=us(85), interval=us(200)),
        "ECN#": AqmSpec.make(
            "ecn-sharp", ins_target=us(200), pst_target=us(85), pst_interval=us(200)
        ),
    }


def simulation_scheme_specs() -> Dict[str, AqmSpec]:
    """The Section 5.3/5.4 schemes as registry specs (80-240 us band)."""
    return {
        "DCTCP-RED-Tail": AqmSpec.make("sojourn-red", sojourn=us(220)),  # p90 RTT
        "DCTCP-RED-AVG": AqmSpec.make("sojourn-red", sojourn=us(137)),  # avg RTT
        "CoDel": AqmSpec.make("codel", target=us(10), interval=us(240)),
        "ECN#": AqmSpec.make(
            "ecn-sharp", ins_target=us(220), pst_target=us(10), pst_interval=us(240)
        ),
        "TCN": AqmSpec.make("tcn", threshold=us(150)),  # Figure 13's threshold
    }


def testbed_schemes(rate_bps: float = gbps(10)) -> Dict[str, AqmFactory]:
    """The four Section 5.2 schemes with the paper's testbed parameters."""
    return {
        name: spec.build for name, spec in testbed_scheme_specs(rate_bps).items()
    }


def simulation_schemes() -> Dict[str, AqmFactory]:
    """The Section 5.3/5.4 schemes (80-240 us RTT band, 10 Gbps)."""
    return {
        name: spec.build for name, spec in simulation_scheme_specs().items()
    }
