"""Parallel experiment executor with an on-disk result cache.

The paper's figures are grids of independent, seed-deterministic DES runs
(scheme x load/threshold/fanout x seed).  This module fans a list of
:class:`~repro.experiments.specs.RunSpec` cells across worker processes and
memoizes each cell's result on disk, so that

* a sweep saturates the machine instead of one core (``--jobs N`` /
  ``REPRO_JOBS=N``), and
* re-rendering a figure replays completed cells from the cache instead of
  re-simulating them (``REPRO_CACHE_DIR``, default ``~/.cache/repro``).

Determinism guarantee: every run owns its own
:class:`~repro.sim.engine.Simulator` and ``numpy.random.default_rng(seed)``,
so the same spec produces bit-identical results with ``jobs=1``, ``jobs=N``
or from a warm cache.  Workers are started with the *spawn* method and the
worker entry point is a module-level function, so no closure, simulator or
telemetry state leaks across the process boundary.

``jobs=1`` (the default) executes in-process -- tests and library callers
stay single-process unless parallelism is requested explicitly.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import tempfile
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from .specs import RunSpec, resolve_workload, stable_hash

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ExecutorStats",
    "Executor",
    "ResultCache",
    "default_cache_dir",
    "execute_spec",
    "get_default_executor",
    "set_default_executor",
    "seed_specs",
    "run_grid",
]

CACHE_SCHEMA_VERSION = 1
"""Bump when simulation semantics change in a way that invalidates cached
results without changing the spec encoding (part of every cache key)."""


def _code_tag() -> str:
    """Code-relevant version tag mixed into every cache key."""
    from .. import __version__

    return f"{__version__}/schema{CACHE_SCHEMA_VERSION}"


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


# --------------------------------------------------------------- execution


def execute_spec(spec: RunSpec) -> Any:
    """Run one spec to completion and return its result.

    Module-level (spawn-safe) dispatch over the spec's topology kind.  The
    rig modules are imported lazily: this module is imported by every figure
    module, and the microscopic/scheduler rigs live in figure modules.
    """
    aqm_factory = spec.aqm.build
    kwargs: Dict[str, Any] = dict(spec.extras)
    if spec.kind in ("star", "leafspine"):
        from .runner import run_leafspine_fct, run_star_fct
        from ..workloads.arrivals import TransportConfig

        for name, value in (
            ("variation", spec.variation),
            ("rtt_min", spec.rtt_min),
            ("rtt_shape", spec.rtt_shape),
        ):
            if value is not None:
                kwargs[name] = value
        if spec.transport:
            kwargs["transport"] = TransportConfig(**dict(spec.transport))
        run = run_star_fct if spec.kind == "star" else run_leafspine_fct
        return run(
            aqm_factory,
            workload=resolve_workload(spec.workload),
            load=spec.load,
            n_flows=spec.n_flows,
            seed=spec.seed,
            **kwargs,
        )
    if spec.kind == "microscopic":
        from .figures.fig10 import run_microscopic

        return run_microscopic(
            aqm_factory,
            scheme_name=spec.label or spec.aqm.kind,
            seed=spec.seed,
            **kwargs,
        )
    if spec.kind == "scheduler":
        from .figures.fig13 import run_scheduler_experiment

        return run_scheduler_experiment(
            aqm_factory,
            scheme_name=spec.label or spec.aqm.kind,
            seed=spec.seed,
            **kwargs,
        )
    raise ValueError(f"unknown RunSpec kind {spec.kind!r}")


# ------------------------------------------------------------------ cache


class ResultCache:
    """Pickle-per-cell result store keyed by spec hash + code version tag.

    Layout: ``<dir>/<key>.pkl`` where ``key`` hashes the spec's canonical
    JSON together with the package version and cache schema version, so a
    release or an explicit :data:`CACHE_SCHEMA_VERSION` bump invalidates
    every stale entry at once.  Writes are atomic (temp file + rename);
    unreadable entries degrade to cache misses.
    """

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()

    def key(self, spec: RunSpec) -> str:
        return stable_hash({"spec": spec.to_dict(), "code": _code_tag()})

    def path(self, spec: RunSpec) -> Path:
        return self.directory / f"{self.key(spec)}.pkl"

    def load(self, spec: RunSpec) -> Optional[Any]:
        path = self.path(spec)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        if entry.get("spec") != spec.to_dict():
            return None  # hash collision or corrupted entry
        return entry.get("result")

    def store(self, spec: RunSpec, result: Any) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        entry = {"spec": spec.to_dict(), "code": _code_tag(), "result": result}
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self.path(spec))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass


# --------------------------------------------------------------- executor


@dataclass
class ExecutorStats:
    """Work accounting for one :class:`Executor` (cumulative)."""

    submitted: int = 0
    executed: int = 0
    cache_hits: int = 0

    def merge_line(self) -> str:
        return (
            f"specs={self.submitted} executed={self.executed} "
            f"cache_hits={self.cache_hits}"
        )


class Executor:
    """Fans run specs across processes, memoizing results on disk.

    ``jobs=1`` executes in-process (no pool, no pickling); ``jobs>1`` uses a
    spawn-context :class:`ProcessPoolExecutor`.  Results always come back in
    submission order.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: bool = False,
        cache_dir: Optional[Path] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_dir) if cache else None
        )
        self.stats = ExecutorStats()

    @classmethod
    def from_env(cls) -> "Executor":
        """``REPRO_JOBS`` sets the worker count (default 1, in-process);
        the cache activates only when ``REPRO_CACHE_DIR`` names a directory,
        so plain test runs never touch ``~/.cache``."""
        raw = os.environ.get("REPRO_JOBS", "").strip()
        try:
            jobs = max(1, int(raw)) if raw else 1
        except ValueError:
            jobs = 1
        cache_dir = os.environ.get("REPRO_CACHE_DIR", "").strip()
        return cls(jobs=jobs, cache=bool(cache_dir),
                   cache_dir=Path(cache_dir) if cache_dir else None)

    def run(self, specs: Sequence[RunSpec]) -> List[Any]:
        """Execute every spec (cache, then workers) in submission order."""
        specs = list(specs)
        self.stats.submitted += len(specs)
        results: List[Any] = [None] * len(specs)
        pending: List[int] = []
        for index, spec in enumerate(specs):
            cached = self.cache.load(spec) if self.cache else None
            if cached is not None:
                results[index] = cached
                self.stats.cache_hits += 1
                self._register_manifest(cached)
            else:
                pending.append(index)

        if not pending:
            return results
        self.stats.executed += len(pending)
        if self.jobs == 1 or len(pending) == 1:
            for index in pending:
                result = execute_spec(specs[index])
                results[index] = result
                if self.cache:
                    self.cache.store(specs[index], result)
        else:
            self._run_pool(specs, pending, results)
        return results

    def _run_pool(
        self, specs: Sequence[RunSpec], pending: List[int], results: List[Any]
    ) -> None:
        context = multiprocessing.get_context("spawn")
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            futures = {
                pool.submit(execute_spec, specs[index]): index for index in pending
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures[future]
                    result = future.result()
                    results[index] = result
                    if self.cache:
                        self.cache.store(specs[index], result)
                    self._register_manifest(result)

    @staticmethod
    def _register_manifest(result: Any) -> None:
        """Re-attach a worker/cache result's manifest to the parent's
        telemetry, matching what an in-process run would have recorded."""
        from ..telemetry.runtime import get_active

        manifest = getattr(result, "manifest", None)
        if manifest is None:
            return
        telemetry = get_active()
        if telemetry is not None:
            telemetry.add_manifest(manifest)


# ------------------------------------------------------- process default

_default_executor: Optional[Executor] = None


def get_default_executor() -> Executor:
    """The executor used when a figure/runner is not handed one explicitly.

    Lazily built from the environment (``REPRO_JOBS``/``REPRO_CACHE_DIR``)
    on first use; the CLI and the benchmark harness install their own via
    :func:`set_default_executor`.
    """
    global _default_executor
    if _default_executor is None:
        _default_executor = Executor.from_env()
    return _default_executor


def set_default_executor(executor: Optional[Executor]) -> Optional[Executor]:
    """Install ``executor`` as the process default; returns the previous
    one (pass it back to restore)."""
    global _default_executor
    previous = _default_executor
    _default_executor = executor
    return previous


# ------------------------------------------------------------ grid helpers


def seed_specs(spec: RunSpec, n_seeds: int) -> List[RunSpec]:
    """The pooled-seed expansion of one cell: seed, seed+1, ..."""
    if n_seeds <= 0:
        raise ValueError("n_seeds must be positive")
    return [spec.with_seed(spec.seed + offset) for offset in range(n_seeds)]


def run_grid(
    cells: Sequence[Sequence[RunSpec]],
    executor: Optional[Executor] = None,
    pool: Optional[Callable[[Sequence[Any]], Any]] = None,
) -> List[Any]:
    """Flatten a grid of per-cell spec lists, execute everything through
    one executor pass (maximal parallelism), and pool each cell's results.

    ``pool`` defaults to :func:`repro.experiments.runner.pool_results`, the
    paper's average-of-N-seeds methodology.
    """
    executor = executor or get_default_executor()
    if pool is None:
        from .runner import pool_results

        pool = pool_results
    flat: List[RunSpec] = [spec for cell in cells for spec in cell]
    results = executor.run(flat)
    pooled: List[Any] = []
    cursor = 0
    for cell in cells:
        pooled.append(pool(results[cursor:cursor + len(cell)]))
        cursor += len(cell)
    return pooled
