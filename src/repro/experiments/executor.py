"""Parallel experiment executor with an on-disk result cache and a
fault-tolerance layer.

The paper's figures are grids of independent, seed-deterministic DES runs
(scheme x load/threshold/fanout x seed).  This module fans a list of
:class:`~repro.experiments.specs.RunSpec` cells across worker processes and
memoizes each cell's result on disk, so that

* a sweep saturates the machine instead of one core (``--jobs N`` /
  ``REPRO_JOBS=N``),
* re-rendering a figure replays completed cells from the cache instead of
  re-simulating them (``REPRO_CACHE_DIR``, default ``~/.cache/repro``), and
* one crashed, hung or OOM-killed cell degrades to a recorded
  :class:`~repro.experiments.faults.RunFailure` instead of aborting the
  grid: worker exceptions are caught *inside* the worker, failed specs are
  retried (``--retries``/``REPRO_RETRIES``), a per-spec wall-clock budget
  (``--spec-timeout``/``REPRO_SPEC_TIMEOUT``) abandons hung workers, and a
  ``BrokenProcessPool`` is recovered by rebuilding the pool and requeueing
  only the unfinished specs.

Determinism guarantee: every run owns its own
:class:`~repro.sim.engine.Simulator` and ``numpy.random.default_rng(seed)``,
so the same spec produces bit-identical results with ``jobs=1``, ``jobs=N``
or from a warm cache -- and surviving cells of a partially-failed grid are
bit-identical to a clean run.  Workers are started with the *spawn* method
and the worker entry point is a module-level function, so no closure,
simulator or telemetry state leaks across the process boundary.

``jobs=1`` (the default) executes in-process -- tests and library callers
stay single-process unless parallelism is requested explicitly.  Setting a
``spec_timeout`` forces pool execution even at ``jobs=1``: a wall-clock
budget is only enforceable across a process boundary.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import random
import tempfile
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..telemetry.spans import maybe_span
from .faults import RunFailure, maybe_inject_fault
from .specs import RunSpec, resolve_workload, stable_hash

try:  # per-process peak RSS; stdlib on Unix, absent on Windows
    import resource as _resource
except ImportError:  # pragma: no cover - non-Unix fallback
    _resource = None

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheGcStats",
    "DryRunComplete",
    "DryRunExecutor",
    "ExecutorStats",
    "Executor",
    "ResultCache",
    "SpecAttribution",
    "default_cache_dir",
    "execute_spec",
    "get_default_executor",
    "set_default_executor",
    "seed_specs",
    "run_grid",
]

CACHE_SCHEMA_VERSION = 2
"""Bump when simulation semantics change in a way that invalidates cached
results without changing the spec encoding (part of every cache key).
v2: entries carry a sha256 checksum footer (corruption detection)."""


def _code_tag() -> str:
    """Code-relevant version tag mixed into every cache key."""
    from .. import __version__

    return f"{__version__}/schema{CACHE_SCHEMA_VERSION}"


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


# --------------------------------------------------------------- execution


def execute_spec(spec: RunSpec, attempt: int = 0) -> Any:
    """Run one spec to completion and return its result.

    Module-level (spawn-safe) dispatch over the spec's topology kind.  The
    rig modules are imported lazily: this module is imported by every figure
    module, and the microscopic/scheduler rigs live in figure modules.

    ``attempt`` is the zero-based retry index; it exists so deterministic
    fault injection (``REPRO_FAULT_INJECT``, checked here before the rig
    runs) can fail the first N attempts and let a retry succeed.
    """
    maybe_inject_fault(spec, attempt)
    aqm_factory = spec.aqm.build
    kwargs: Dict[str, Any] = dict(spec.extras)
    # The fidelity is part of the spec (and therefore of the cache key);
    # REPRO_FIDELITY is deliberately *not* consulted here -- env-dependent
    # results under an env-independent key would poison the cache.  The
    # CLI and the scenario compiler resolve the env var at spec-build time.
    fidelity = kwargs.pop("fidelity", "packet")
    if spec.kind in ("star", "leafspine"):
        from .runner import run_leafspine_fct, run_star_fct
        from ..workloads.arrivals import TransportConfig

        for name, value in (
            ("variation", spec.variation),
            ("rtt_min", spec.rtt_min),
            ("rtt_shape", spec.rtt_shape),
        ):
            if value is not None:
                kwargs[name] = value
        if spec.transport:
            kwargs["transport"] = TransportConfig(**dict(spec.transport))
        if fidelity == "fluid":
            from ..fluid.runner import run_fluid_leafspine_fct, run_fluid_star_fct

            run = (
                run_fluid_star_fct if spec.kind == "star"
                else run_fluid_leafspine_fct
            )
            first_arg = spec.aqm  # the fluid model needs kind+params
        else:
            run = run_star_fct if spec.kind == "star" else run_leafspine_fct
            first_arg = aqm_factory
        return run(
            first_arg,
            workload=resolve_workload(spec.workload),
            load=spec.load,
            n_flows=spec.n_flows,
            seed=spec.seed,
            **kwargs,
        )
    if spec.kind == "microscopic":
        if fidelity == "fluid":
            from ..fluid.runner import run_fluid_microscopic

            return run_fluid_microscopic(
                spec.aqm,
                scheme_name=spec.label or spec.aqm.kind,
                seed=spec.seed,
                **kwargs,
            )
        from .figures.fig10 import run_microscopic

        return run_microscopic(
            aqm_factory,
            scheme_name=spec.label or spec.aqm.kind,
            seed=spec.seed,
            **kwargs,
        )
    if spec.kind == "scheduler":
        from .figures.fig13 import run_scheduler_experiment

        return run_scheduler_experiment(
            aqm_factory,
            scheme_name=spec.label or spec.aqm.kind,
            seed=spec.seed,
            **kwargs,
        )
    raise ValueError(f"unknown RunSpec kind {spec.kind!r}")


def _max_rss_kb() -> Optional[int]:
    """Peak RSS of this process in KiB (Linux units), or None off-Unix."""
    if _resource is None:
        return None
    return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)


def _guarded_execute(
    spec: RunSpec,
    attempt: int = 0,
    observe_spans: bool = False,
    backoff_delay: float = 0.0,
) -> Any:
    """Worker entry point: run a spec, converting any exception into a
    picklable :class:`RunFailure` so nothing propagates (or fails to
    pickle) across the process boundary.

    ``backoff_delay`` (seconds) is slept *here*, in the worker, before the
    attempt runs: retry backoff must never block the parent's submission
    loop, which keeps feeding other specs to the rest of the pool while a
    retried one waits out its delay.

    Observability: the run is wrapped in a ``cell`` span and every outcome
    that can carry attributes gets an ``_obs`` payload (wall seconds, peak
    RSS, event count) which the parent pops at settle time -- so resource
    attribution works identically in-process and across the spawn
    boundary.  ``observe_spans`` activates a spans-only telemetry in a
    worker process (which inherits none) so its span subtree can be
    serialized into the payload and stitched into the parent's tree.
    """
    from ..telemetry.runtime import get_active, set_active

    if backoff_delay > 0:
        time.sleep(backoff_delay)
    local_telemetry = None
    if observe_spans and get_active() is None:
        from ..telemetry.hub import Telemetry

        local_telemetry = Telemetry(metrics=False, profile=False, spans=True)
        set_active(local_telemetry)
    wall_start = perf_counter()
    try:
        with maybe_span("cell", kind="cell", token=spec.token(),
                        attempt=attempt):
            outcome = execute_spec(spec, attempt=attempt)
    except Exception as exc:
        outcome = RunFailure.from_exception(spec, exc, attempts=attempt + 1)
    finally:
        if local_telemetry is not None:
            set_active(None)
    obs: Dict[str, Any] = {
        "wall_seconds": perf_counter() - wall_start,
        "max_rss_kb": _max_rss_kb(),
        "events": getattr(outcome, "events", None),
    }
    if local_telemetry is not None and local_telemetry.spans.roots:
        obs["spans"] = local_telemetry.spans.to_list()
    try:
        outcome._obs = obs
    except (AttributeError, TypeError):
        pass  # frozen outcome (RunFailure): attribution degrades gracefully
    return outcome


# ------------------------------------------------------------------ cache

_CHECKSUM_MAGIC = b"RPROSUM1"
"""Footer marker preceding the sha256 digest at the end of every cache
entry.  Eight bytes so the footer is ``magic + 32-byte digest``."""

_FOOTER_LEN = len(_CHECKSUM_MAGIC) + hashlib.sha256().digest_size

CORRUPT_SUFFIX = ".corrupt"


@dataclass
class CacheGcStats:
    """What one :meth:`ResultCache.gc` pass did."""

    scanned: int = 0
    removed: int = 0
    removed_bytes: int = 0
    kept: int = 0
    kept_bytes: int = 0
    corrupt_removed: int = 0
    corrupt_kept: int = 0

    def summary_line(self) -> str:
        return (
            f"scanned={self.scanned} removed={self.removed} "
            f"removed_bytes={self.removed_bytes} kept={self.kept} "
            f"kept_bytes={self.kept_bytes} "
            f"corrupt_removed={self.corrupt_removed} "
            f"corrupt_kept={self.corrupt_kept}"
        )


class ResultCache:
    """Pickle-per-cell result store keyed by spec hash + code version tag.

    Layout: ``<dir>/<key>.pkl`` where ``key`` hashes the spec's canonical
    JSON together with the package version and cache schema version, so a
    release or an explicit :data:`CACHE_SCHEMA_VERSION` bump invalidates
    every stale entry at once.  Writes are atomic (temp file + rename).

    Integrity: every entry is ``pickle || magic || sha256(pickle)``.  An
    entry whose footer is missing or whose digest mismatches was corrupted
    on disk (truncation, bit rot, a torn non-atomic copy); it is
    *quarantined* -- renamed to ``<key>.pkl.corrupt``, counted on
    :attr:`corrupt_quarantined` and the ``cache_corrupt_total`` telemetry
    counter -- so corruption is observable and the poisoned bytes can
    never be re-read as a result.  A checksum-valid entry that still fails
    to unpickle (e.g. an ImportError for a class this environment lacks)
    is an environment mismatch, not corruption: it degrades to a plain
    miss and the entry stays for environments that can read it.
    """

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self.corrupt_quarantined = 0

    def key(self, spec: RunSpec) -> str:
        return stable_hash({"spec": spec.to_dict(), "code": _code_tag()})

    def path(self, spec: RunSpec) -> Path:
        return self.directory / f"{self.key(spec)}.pkl"

    def load(self, spec: RunSpec) -> Tuple[bool, Optional[Any]]:
        """``(hit, result)`` -- presence-tagged so a legitimately-``None``
        cached result replays instead of registering as a miss."""
        path = self.path(spec)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            return False, None
        payload = self._verified_payload(path, blob)
        if payload is None:
            return False, None
        try:
            entry = pickle.loads(payload)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, TypeError):
            return False, None  # checksum ok: environment mismatch, not rot
        if not isinstance(entry, dict) or entry.get("spec") != spec.to_dict():
            return False, None  # hash collision
        return True, entry.get("result")

    def _verified_payload(self, path: Path, blob: bytes) -> Optional[bytes]:
        """The pickle payload if the checksum footer verifies, else None
        after quarantining the corrupt entry."""
        if len(blob) > _FOOTER_LEN:
            magic_start = len(blob) - _FOOTER_LEN
            digest_start = len(blob) - hashlib.sha256().digest_size
            if blob[magic_start:digest_start] == _CHECKSUM_MAGIC:
                payload = blob[:magic_start]
                if hashlib.sha256(payload).digest() == blob[digest_start:]:
                    return payload
        self._quarantine(path)
        return None

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (never silently re-readable) and
        count it."""
        self.corrupt_quarantined += 1
        try:
            os.replace(path, path.with_name(path.name + CORRUPT_SUFFIX))
        except OSError:
            pass  # a racing quarantine/gc won; the count still stands
        warnings.warn(
            f"cache entry {path.name} failed its checksum and was "
            f"quarantined to {path.name}{CORRUPT_SUFFIX}",
            stacklevel=3,
        )
        from ..telemetry.runtime import get_active

        telemetry = get_active()
        if telemetry is not None:
            telemetry.on_cache_corrupt(path.name)

    def store(self, spec: RunSpec, result: Any) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        entry = {"spec": spec.to_dict(), "code": _code_tag(), "result": result}
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            payload = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
                handle.write(_CHECKSUM_MAGIC)
                handle.write(hashlib.sha256(payload).digest())
            os.replace(tmp, self.path(spec))
        except OSError:
            self._unlink_tmp(tmp)
            return
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            # An unpicklable result must not poison the sweep (or leak the
            # temp file): skip the store, keep the in-memory result.
            self._unlink_tmp(tmp)
            warnings.warn(
                f"result for {spec.token()} is not picklable and was not "
                f"cached: {type(exc).__name__}: {exc}",
                stacklevel=2,
            )
            return
        if os.environ.get("REPRO_CHAOS"):
            from ..testing.chaos import chaos_cache_store

            chaos_cache_store(self.path(spec))

    @staticmethod
    def _unlink_tmp(tmp: str) -> None:
        try:
            os.unlink(tmp)
        except OSError:
            pass

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        remove_corrupt: bool = True,
        now: Optional[float] = None,
    ) -> CacheGcStats:
        """Evict cache entries: quarantined ``*.corrupt`` files and stray
        write temps always go (unless ``remove_corrupt=False`` keeps the
        quarantine for inspection), entries older than ``max_age_seconds``
        go, then newest-first retention keeps the cache under
        ``max_bytes``.  Everything is best-effort against concurrent
        writers -- a vanished file is simply skipped.
        """
        stats = CacheGcStats()
        if not self.directory.exists():
            return stats
        if now is None:
            now = time.time()
        live: List[Tuple[Path, float, int]] = []
        for path in sorted(self.directory.iterdir()):
            name = path.name
            is_corrupt = name.endswith(CORRUPT_SUFFIX)
            is_tmp = name.endswith(".tmp")
            if not (is_corrupt or is_tmp or name.endswith(".pkl")):
                continue  # not ours
            try:
                stat = path.stat()
            except OSError:
                continue
            stats.scanned += 1
            if is_corrupt or is_tmp:
                if is_corrupt and not remove_corrupt:
                    stats.kept += 1
                    stats.kept_bytes += stat.st_size
                    stats.corrupt_kept += 1
                    continue
                if self._gc_remove(path, stat.st_size, stats):
                    if is_corrupt:
                        stats.corrupt_removed += 1
                continue
            if (
                max_age_seconds is not None
                and now - stat.st_mtime > max_age_seconds
            ):
                self._gc_remove(path, stat.st_size, stats)
                continue
            live.append((path, stat.st_mtime, stat.st_size))
        if max_bytes is not None:
            live.sort(key=lambda item: item[1], reverse=True)  # newest first
            kept_bytes = 0
            for path, _mtime, size in live:
                if kept_bytes + size > max_bytes:
                    self._gc_remove(path, size, stats)
                else:
                    kept_bytes += size
                    stats.kept += 1
                    stats.kept_bytes += size
        else:
            for _path, _mtime, size in live:
                stats.kept += 1
                stats.kept_bytes += size
        return stats

    @staticmethod
    def _gc_remove(path: Path, size: int, stats: CacheGcStats) -> bool:
        try:
            os.unlink(path)
        except OSError:
            return False
        stats.removed += 1
        stats.removed_bytes += size
        return True


# --------------------------------------------------------------- executor


@dataclass
class SpecAttribution:
    """Where one spec's resources went: the per-cell attribution record.

    ``source`` is ``"run"`` (simulated this pass), ``"cache"`` (replayed
    from the on-disk result cache) or ``"failed"`` (terminal failure).
    ``wall_seconds``/``max_rss_kb`` come from the process that executed
    the spec (worker or parent); ``events`` is the simulated event count.
    """

    token: str
    source: str  # "run" | "cache" | "failed"
    wall_seconds: Optional[float] = None
    events: Optional[int] = None
    max_rss_kb: Optional[int] = None
    attempts: int = 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "token": self.token,
            "source": self.source,
            "wall_seconds": self.wall_seconds,
            "events": self.events,
            "max_rss_kb": self.max_rss_kb,
            "attempts": self.attempts,
        }


def _take_obs(outcome: Any) -> Optional[Dict[str, Any]]:
    """Pop a worker/inline ``_obs`` payload off an outcome (so it never
    leaks into the result cache or figure code)."""
    obs = getattr(outcome, "_obs", None)
    if obs is not None:
        try:
            del outcome._obs
        except (AttributeError, TypeError):
            pass
    return obs


@dataclass
class ExecutorStats:
    """Work accounting for one :class:`Executor` (cumulative)."""

    submitted: int = 0
    executed: int = 0
    cache_hits: int = 0
    failed: int = 0
    retried: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    inline_fallbacks: int = 0

    def merge_line(self) -> str:
        line = (
            f"specs={self.submitted} executed={self.executed} "
            f"cache_hits={self.cache_hits}"
        )
        if self.failed or self.retried or self.pool_rebuilds:
            line += (
                f" failed={self.failed} retried={self.retried} "
                f"pool_rebuilds={self.pool_rebuilds}"
            )
        return line


class Executor:
    """Fans run specs across processes, memoizing results on disk.

    ``jobs=1`` executes in-process (no pool, no pickling); ``jobs>1`` uses a
    spawn-context :class:`ProcessPoolExecutor`.  Results always come back in
    submission order; a spec that fails terminally comes back as a
    :class:`RunFailure` in its slot rather than raising.

    Args:
        retries: extra attempts per failing spec (default 1, so each spec
            runs at most twice before its failure is recorded).
        retry_backoff: base delay in seconds for retry backoff (``None``/0
            disables it, the historical behaviour of immediate
            re-submission).  Attempt ``k`` (1-based retry index) waits
            ``base * 2**(k-1) * jitter`` with jitter uniform in
            ``[0.5, 1.5)``, capped at 30 s -- and *deterministically
            seeded* from ``(spec token, attempt)``, so a rerun of the same
            grid backs off identically (manifest provenance records the
            base).  The wait happens inside the worker attempt, never in
            the parent's submission loop; note it therefore counts against
            ``spec_timeout``.
        spec_timeout: per-spec wall-clock budget in seconds; a spec still
            running past it is abandoned (its worker killed, the pool
            rebuilt) and recorded as a ``RunFailure(kind="timeout")``.
            Requires process isolation, so setting it forces pool
            execution even at ``jobs=1``.  ``None`` (default) disables it.
    """

    BACKOFF_CAP_SECONDS = 30.0

    def __init__(
        self,
        jobs: int = 1,
        cache: bool = False,
        cache_dir: Optional[Path] = None,
        retries: int = 1,
        retry_backoff: Optional[float] = None,
        spec_timeout: Optional[float] = None,
        progress: Optional[Any] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if retry_backoff is not None and retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0 (or None)")
        if spec_timeout is not None and spec_timeout <= 0:
            raise ValueError("spec_timeout must be positive (or None)")
        self.jobs = jobs
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_dir) if cache else None
        )
        self.retries = retries
        self.retry_backoff = retry_backoff or None
        self.spec_timeout = spec_timeout
        self.stats = ExecutorStats()
        self.failures: List[RunFailure] = []
        self.progress: Optional[Any] = progress
        """A :class:`~repro.telemetry.progress.ProgressReporter` (or any
        object with ``add_total``/``cell_done``/``retry``), or None."""
        self.last_run_attribution: List[Optional[SpecAttribution]] = []
        """Per-spec :class:`SpecAttribution` of the most recent
        :meth:`run` call, in submission order (None for a slot the run
        never settled, which cannot happen on a normal return)."""
        self._spans_requested = False
        self._attribution: List[Optional[SpecAttribution]] = []

    @classmethod
    def from_env(cls) -> "Executor":
        """``REPRO_JOBS`` sets the worker count (default 1, in-process);
        the cache activates only when ``REPRO_CACHE_DIR`` names a directory,
        so plain test runs never touch ``~/.cache``.  ``REPRO_RETRIES``,
        ``REPRO_RETRY_BACKOFF`` and ``REPRO_SPEC_TIMEOUT`` configure the
        fault-tolerance knobs."""
        jobs = _env_int("REPRO_JOBS", 1, minimum=1)
        retries = _env_int("REPRO_RETRIES", 1, minimum=0)
        backoff = _env_float("REPRO_RETRY_BACKOFF", None)
        if backoff is not None and backoff <= 0:
            backoff = None  # 0 / negative = explicitly off
        timeout = _env_float("REPRO_SPEC_TIMEOUT", None)
        if timeout is not None and timeout <= 0:
            timeout = None  # 0 / negative = explicitly off
        cache_dir = os.environ.get("REPRO_CACHE_DIR", "").strip()
        return cls(
            jobs=jobs,
            cache=bool(cache_dir),
            cache_dir=Path(cache_dir) if cache_dir else None,
            retries=retries,
            retry_backoff=backoff,
            spec_timeout=timeout,
        )

    def _backoff_delay(self, spec: RunSpec, attempt: int) -> float:
        """Seconds to wait before ``attempt`` (0 = first try, never
        delayed).  Exponential in the retry index with jitter drawn from a
        PRNG seeded by ``(spec token, attempt)``: deterministic across
        reruns and processes, decorrelated across specs so a burst of
        failures does not retry in lockstep."""
        if not self.retry_backoff or attempt <= 0:
            return 0.0
        rng = random.Random(f"{spec.token()}|{attempt}")
        delay = (
            self.retry_backoff * (2 ** (attempt - 1)) * (0.5 + rng.random())
        )
        return min(delay, self.BACKOFF_CAP_SECONDS)

    def run(self, specs: Sequence[RunSpec]) -> List[Any]:
        """Execute every spec (cache, then workers) in submission order.

        Each slot of the returned list holds the spec's result, or a
        :class:`RunFailure` if the spec failed terminally (after retries
        and, for pool-structural failures, one in-process fallback).
        """
        specs = list(specs)
        self.stats.submitted += len(specs)
        from ..telemetry.runtime import get_active

        telemetry = get_active()
        self._spans_requested = (
            telemetry is not None and getattr(telemetry, "spans", None) is not None
        )
        self._attribution = [None] * len(specs)
        self.last_run_attribution = self._attribution
        if self.progress is not None:
            self.progress.add_total(len(specs))
        with maybe_span("grid", kind="grid", specs=len(specs), jobs=self.jobs):
            results: List[Any] = [None] * len(specs)
            pending: List[int] = []
            for index, spec in enumerate(specs):
                if self.cache is not None:
                    hit, cached = self.cache.load(spec)
                    if hit:
                        results[index] = cached
                        self.stats.cache_hits += 1
                        self._register_manifest(cached)
                        events = getattr(cached, "events", None)
                        self._attribution[index] = SpecAttribution(
                            token=spec.token(), source="cache",
                            wall_seconds=0.0, events=events,
                        )
                        if self.progress is not None:
                            self.progress.cell_done("cache", events=None)
                        continue
                pending.append(index)

            if not pending:
                return results
            self.stats.executed += len(pending)
            # A wall-clock budget needs a process boundary to enforce, so a
            # spec_timeout routes even jobs=1 through the pool.
            use_pool = self.spec_timeout is not None or (
                self.jobs > 1 and len(pending) > 1
            )
            if use_pool:
                self._run_pool(specs, pending, results)
            else:
                for index in pending:
                    self._settle(
                        specs, index, self._run_inline(specs[index]), results
                    )
        return results

    # ------------------------------------------------------------ in-process

    def _run_inline(self, spec: RunSpec, first_attempt: int = 0) -> Any:
        """Run one spec in-process with retries; returns the result or the
        final :class:`RunFailure`."""
        outcome: Any = None
        attempt = first_attempt
        while True:
            outcome = _guarded_execute(
                spec, attempt, self._spans_requested,
                self._backoff_delay(spec, attempt),
            )
            if not isinstance(outcome, RunFailure):
                return outcome
            if attempt - first_attempt >= self.retries:
                return outcome
            self.stats.retried += 1
            if self.progress is not None:
                self.progress.retry()
            attempt += 1

    # ----------------------------------------------------------------- pool

    def _run_pool(
        self, specs: Sequence[RunSpec], pending: List[int], results: List[Any]
    ) -> None:
        """Pool execution with failure isolation.

        At most ``workers`` futures are in flight at once so that a
        submitted future is (almost immediately) a *running* future --
        that's what makes the per-spec wall-clock deadline meaningful.
        Worker exceptions come back as :class:`RunFailure` values (never
        raised); ``BrokenProcessPool`` and expired deadlines kill and
        rebuild the pool, requeueing the innocent in-flight specs.
        """
        context = multiprocessing.get_context("spawn")
        workers = min(self.jobs, len(pending))
        queue: deque = deque(pending)
        attempts: Dict[int, int] = {index: 0 for index in pending}
        futures: Dict[Any, Tuple[int, float]] = {}  # future -> (index, started)
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        try:
            while queue or futures:
                pool = self._fill(pool, context, workers, queue, attempts,
                                  futures, specs, results)
                if not futures:
                    continue
                wait_timeout = None
                if self.spec_timeout is not None:
                    now = time.monotonic()
                    next_deadline = min(
                        started + self.spec_timeout
                        for _, started in futures.values()
                    )
                    wait_timeout = max(0.0, next_deadline - now) + 0.05
                done, _ = wait(
                    set(futures), timeout=wait_timeout,
                    return_when=FIRST_COMPLETED,
                )
                if done:
                    pool = self._collect(pool, context, workers, done, queue,
                                         attempts, futures, specs, results)
                else:
                    pool = self._expire(pool, context, workers, queue,
                                        attempts, futures, specs, results)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _fill(self, pool, context, workers, queue, attempts, futures,
              specs, results):
        """Top the pool up to one in-flight future per worker."""
        while queue and len(futures) < workers:
            index = queue.popleft()
            try:
                future = pool.submit(
                    _guarded_execute, specs[index], attempts[index],
                    self._spans_requested,
                    self._backoff_delay(specs[index], attempts[index]),
                )
            except (BrokenProcessPool, RuntimeError):
                # The pool broke before we noticed (a worker died between
                # batches).  This submission never ran: requeue it at the
                # front without charging an attempt, fail over the
                # in-flight futures, and rebuild.
                queue.appendleft(index)
                for doomed_index, _ in futures.values():
                    self._worker_death(specs, doomed_index, attempts, queue,
                                       results)
                futures.clear()
                return self._rebuild(pool, context, workers)
            futures[future] = (index, time.monotonic())
        return pool

    def _collect(self, pool, context, workers, done, queue, attempts,
                 futures, specs, results):
        """Settle completed futures; recover if the pool broke."""
        broken = False
        for future in done:
            index, _started = futures.pop(future)
            try:
                outcome = future.result()
            except BrokenProcessPool as exc:
                broken = True
                self._worker_death(specs, index, attempts, queue, results,
                                   detail=str(exc))
                continue
            except Exception as exc:
                # Pool-structural failure that is not a broken pool, e.g.
                # the result failed to unpickle in this process.
                outcome = RunFailure.from_exception(
                    specs[index], exc, attempts=attempts[index] + 1
                )
            self._settle_pool(specs, index, attempts, queue, outcome, results)
        if broken:
            # Every other in-flight future on the broken pool is doomed;
            # fail them over now and requeue the survivors' specs.
            for future, (index, _started) in list(futures.items()):
                self._worker_death(specs, index, attempts, queue, results)
            futures.clear()
            pool = self._rebuild(pool, context, workers)
        return pool

    def _expire(self, pool, context, workers, queue, attempts, futures,
                specs, results):
        """Handle a wait() timeout: abandon overdue futures.

        A hung worker cannot be cancelled, so the pool's processes are
        killed and the pool rebuilt; in-flight specs that were *not*
        overdue are requeued without being charged an attempt.
        """
        now = time.monotonic()
        overdue = [
            (future, index, started)
            for future, (index, started) in futures.items()
            if now - started >= self.spec_timeout
        ]
        if not overdue:
            return pool  # spurious wakeup; the next wait() re-arms
        for future, index, _started in overdue:
            futures.pop(future)
            if future.done():  # finished between wait() and the check
                try:
                    outcome = future.result()
                except Exception as exc:
                    outcome = RunFailure.from_exception(
                        specs[index], exc, attempts=attempts[index] + 1
                    )
                self._settle_pool(specs, index, attempts, queue, outcome,
                                  results)
                continue
            self.stats.timeouts += 1
            self._record_failure(
                RunFailure.timeout(
                    specs[index], self.spec_timeout, attempts[index] + 1
                ),
                index,
                results,
            )
        for future, (index, _started) in list(futures.items()):
            queue.appendleft(index)  # innocent bystanders: no attempt charged
        futures.clear()
        return self._rebuild(pool, context, workers, kill=True)

    # ------------------------------------------------------------- plumbing

    def _settle_pool(self, specs, index, attempts, queue, outcome, results):
        """Record one pool outcome: success, retry, or terminal failure."""
        if not isinstance(outcome, RunFailure):
            self._settle(specs, index, outcome, results)
            return
        attempts[index] += 1
        if attempts[index] <= self.retries:
            self.stats.retried += 1
            if self.progress is not None:
                self.progress.retry()
            queue.append(index)
            return
        self._record_failure(outcome, index, results)

    def _worker_death(self, specs, index, attempts, queue, results,
                      detail: str = "worker process died unexpectedly"):
        """One future lost to a dead worker: retry, then fall back to one
        in-process attempt (the failure is pool-structural, not the
        spec's own exception, so the parent process gets the last word)."""
        attempts[index] += 1
        if attempts[index] <= self.retries:
            self.stats.retried += 1
            if self.progress is not None:
                self.progress.retry()
            queue.append(index)
            return
        self.stats.inline_fallbacks += 1
        outcome = self._run_inline(specs[index], first_attempt=attempts[index])
        if isinstance(outcome, RunFailure):
            self._record_failure(outcome, index, results)
        else:
            self._settle(specs, index, outcome, results)

    def _settle(self, specs, index, outcome, results):
        """Record a final outcome (success or failure) for one spec.

        The observability payload is popped off the outcome *before* it is
        cached or handed to figure code; worker span subtrees are stitched
        into the parent tracer here."""
        if isinstance(outcome, RunFailure):
            self._record_failure(outcome, index, results)
            return
        obs = _take_obs(outcome)
        results[index] = outcome
        if self.cache is not None:
            self.cache.store(specs[index], outcome)
        self._register_manifest(outcome)
        wall = obs.get("wall_seconds") if obs else None
        events = (obs.get("events") if obs else None) or getattr(
            outcome, "events", None
        )
        if 0 <= index < len(self._attribution):
            self._attribution[index] = SpecAttribution(
                token=specs[index].token(), source="run",
                wall_seconds=wall, events=events,
                max_rss_kb=obs.get("max_rss_kb") if obs else None,
            )
        if obs and obs.get("spans"):
            from ..telemetry.runtime import get_active

            telemetry = get_active()
            tracer = getattr(telemetry, "spans", None) if telemetry else None
            if tracer is not None:
                tracer.adopt(obs["spans"])
        if self.progress is not None:
            self.progress.cell_done("ok", wall_seconds=wall, events=events)

    def _record_failure(self, failure: RunFailure, index, results) -> None:
        results[index] = failure
        self.failures.append(failure)
        self.stats.failed += 1
        if 0 <= index < len(self._attribution):
            self._attribution[index] = SpecAttribution(
                token=failure.spec_key, source="failed",
                attempts=failure.attempts,
            )
        if self.progress is not None:
            self.progress.cell_done("failed")
        from ..telemetry.runtime import get_active

        telemetry = get_active()
        if telemetry is not None:
            telemetry.on_run_failure(failure)

    def _rebuild(self, pool, context, workers, kill: bool = False):
        """Replace a broken/poisoned pool; ``kill`` terminates workers that
        will never exit on their own (hung ones)."""
        self.stats.pool_rebuilds += 1
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        if kill:
            for process in processes:
                try:
                    if process.is_alive():
                        process.terminate()
                except (OSError, ValueError):
                    pass
        return ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        )

    @staticmethod
    def _register_manifest(result: Any) -> None:
        """Re-attach a worker/cache result's manifest to the parent's
        telemetry, matching what an in-process run would have recorded."""
        from ..telemetry.runtime import get_active

        manifest = getattr(result, "manifest", None)
        if manifest is None:
            return
        telemetry = get_active()
        if telemetry is not None:
            telemetry.add_manifest(manifest)


def _env_int(name: str, default: int, minimum: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return max(minimum, int(raw))
    except ValueError:
        warnings.warn(
            f"{name}={raw!r} is not an integer; using {default}",
            stacklevel=3,
        )
        return default


def _env_float(name: str, default: Optional[float]) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        warnings.warn(
            f"{name}={raw!r} is not a number; using {default}",
            stacklevel=3,
        )
        return default


# ---------------------------------------------------------------- dry run


class DryRunComplete(RuntimeError):
    """Raised by :class:`DryRunExecutor` the moment a grid is submitted --
    the experiment's spec construction has finished, nothing simulates."""


class DryRunExecutor(Executor):
    """An executor that captures the submitted spec grid instead of
    running it.

    Install it as the default executor (or pass it explicitly), call the
    experiment's run function, and catch :class:`DryRunComplete`: the full
    resolved grid is then on ``captured``, in submission order.  This backs
    the CLI's ``--dry-run`` and lets tests assert cell-for-cell grid
    equivalence (e.g. scenario files vs figure modules) without simulating.
    """

    def __init__(
        self, cache: bool = False, cache_dir: Optional[Path] = None
    ) -> None:
        super().__init__(jobs=1, cache=cache, cache_dir=cache_dir)
        self.captured: List[RunSpec] = []

    def run(self, specs: Sequence[RunSpec]) -> List[Any]:
        self.captured.extend(specs)
        raise DryRunComplete(
            f"dry run: captured {len(self.captured)} spec(s), nothing executed"
        )

    def is_cached(self, spec: RunSpec) -> bool:
        """Cheap cache-presence probe (existence, not a full unpickle)."""
        return self.cache is not None and self.cache.path(spec).exists()


# ------------------------------------------------------- process default

_default_executor: Optional[Executor] = None


def get_default_executor() -> Executor:
    """The executor used when a figure/runner is not handed one explicitly.

    Lazily built from the environment (``REPRO_JOBS``/``REPRO_CACHE_DIR``/
    ``REPRO_RETRIES``/``REPRO_SPEC_TIMEOUT``) on first use; the CLI and the
    benchmark harness install their own via :func:`set_default_executor`.
    """
    global _default_executor
    if _default_executor is None:
        _default_executor = Executor.from_env()
    return _default_executor


def set_default_executor(executor: Optional[Executor]) -> Optional[Executor]:
    """Install ``executor`` as the process default; returns the previous
    one (pass it back to restore)."""
    global _default_executor
    previous = _default_executor
    _default_executor = executor
    return previous


# ------------------------------------------------------------ grid helpers


def seed_specs(spec: RunSpec, n_seeds: int) -> List[RunSpec]:
    """The pooled-seed expansion of one cell: seed, seed+1, ..."""
    if n_seeds <= 0:
        raise ValueError("n_seeds must be positive")
    return [spec.with_seed(spec.seed + offset) for offset in range(n_seeds)]


def run_grid(
    cells: Sequence[Sequence[RunSpec]],
    executor: Optional[Executor] = None,
    pool: Optional[Callable[[Sequence[Any]], Any]] = None,
) -> List[Any]:
    """Flatten a grid of per-cell spec lists, execute everything through
    one executor pass (maximal parallelism), and pool each cell's results.

    ``pool`` defaults to :func:`repro.experiments.runner.pool_results`, the
    paper's average-of-N-seeds methodology.  The default pool carries any
    :class:`RunFailure` entries on the pooled result's ``failures`` list
    and degrades a fully-failed cell to a
    :class:`~repro.experiments.faults.FailedCell` (renders as gaps);
    custom ``pool`` callables receive the raw result/failure mix.
    """
    executor = executor or get_default_executor()
    if pool is None:
        from .runner import pool_results

        pool = pool_results
    flat: List[RunSpec] = [spec for cell in cells for spec in cell]
    results = executor.run(flat)
    pooled: List[Any] = []
    cursor = 0
    for cell in cells:
        pooled.append(pool(results[cursor:cursor + len(cell)]))
        cursor += len(cell)
    return pooled
