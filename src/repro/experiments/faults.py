"""Fault-tolerance primitives for the experiment pipeline.

The paper's figures are grids of hundreds of independent DES cells; at that
scale one crashed, hung or OOM-killed worker must degrade to a *recorded*
failure, not abort the sweep.  This module provides the pieces the executor
and the downstream pooling/figure/CLI layers share:

* :class:`RunFailure` -- a typed, picklable record of one cell's death
  (spec identity, exception type/message, traceback text, attempt count),
  safe to ship across the spawn process boundary and into telemetry
  snapshots;
* :class:`FailedCell` -- the stand-in for a pooled cell whose every seed
  failed; it duck-types the parts of ``ExperimentResult`` the figure
  modules consume (empty summary/collector, zeroed counters) so tables
  render with gaps instead of crashing;
* deterministic fault injection -- ``REPRO_FAULT_INJECT`` directives
  consumed by :func:`maybe_inject_fault` at the top of
  :func:`repro.experiments.executor.execute_spec`, so every recovery path
  (exception, hang+timeout, worker exit, retry-then-succeed) is testable
  without flaky timing.

Injection grammar (``;``-separated directives)::

    REPRO_FAULT_INJECT="raise:<substr>[:<max_attempt>];hang:<substr>;exit:<substr>"

``<substr>`` is substring-matched against :meth:`RunSpec.token`
(``kind|label|seed=N|hash16``); an empty substring matches every spec.
``raise`` throws :class:`InjectedFault`; ``hang`` sleeps forever (pair it
with the executor's ``spec_timeout``); ``exit`` kills the worker process
with ``os._exit`` (in the main process it raises instead -- a hard exit
there would defeat the harness the hook exists to test).  The optional
``<max_attempt>`` fires the fault only while ``attempt < max_attempt``,
which is how retry-then-succeed is exercised deterministically.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback as traceback_module
import warnings
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from ..sim.engine import SimulationStalled
from .fct import FctCollector, FctSummary
from .specs import RunSpec

__all__ = [
    "FAULT_INJECT_ENV",
    "InjectedFault",
    "RunFailure",
    "FailedCell",
    "is_failure",
    "gather_failures",
    "maybe_inject_fault",
    "parse_fault_directives",
]

FAULT_INJECT_ENV = "REPRO_FAULT_INJECT"

_FAULT_ACTIONS = ("raise", "hang", "exit")


class InjectedFault(RuntimeError):
    """The exception thrown by ``raise`` fault-injection directives (and
    by ``exit`` directives executing in the main process)."""


# ----------------------------------------------------------------- records


@dataclass(frozen=True)
class RunFailure:
    """One cell's terminal failure, in picklable plain-data form.

    ``kind`` is the recovery path that produced it:

    * ``"exception"`` -- the run raised; ``exc_type``/``message``/
      ``traceback`` carry the worker-side details as text.
    * ``"stall"`` -- the engine raised :class:`SimulationStalled`.
    * ``"timeout"`` -- the spec exceeded the executor's per-spec
      wall-clock budget and its worker was abandoned.
    * ``"worker-exit"`` -- the worker process died (OOM kill,
      ``os._exit``) and the in-process fallback was not attempted or
      could not identify a survivor.
    """

    spec_key: str  # RunSpec.token(): kind|label|seed=N|hash16
    kind: str
    label: str = ""
    seed: Optional[int] = None
    exc_type: str = ""
    message: str = ""
    traceback: str = ""
    attempts: int = 1

    @classmethod
    def from_exception(
        cls, spec: RunSpec, exc: BaseException, attempts: int
    ) -> "RunFailure":
        kind = "stall" if isinstance(exc, SimulationStalled) else "exception"
        return cls(
            spec_key=spec.token(),
            kind=kind,
            label=spec.label or spec.aqm.kind,
            seed=spec.seed,
            exc_type=type(exc).__name__,
            message=str(exc),
            traceback="".join(
                traceback_module.format_exception(type(exc), exc, exc.__traceback__)
            ),
            attempts=attempts,
        )

    @classmethod
    def timeout(cls, spec: RunSpec, timeout_seconds: float, attempts: int) -> "RunFailure":
        return cls(
            spec_key=spec.token(),
            kind="timeout",
            label=spec.label or spec.aqm.kind,
            seed=spec.seed,
            exc_type="TimeoutError",
            message=(
                f"spec exceeded the {timeout_seconds:g}s wall-clock budget; "
                "worker abandoned"
            ),
            attempts=attempts,
        )

    @classmethod
    def worker_exit(cls, spec: RunSpec, detail: str, attempts: int) -> "RunFailure":
        return cls(
            spec_key=spec.token(),
            kind="worker-exit",
            label=spec.label or spec.aqm.kind,
            seed=spec.seed,
            exc_type="BrokenProcessPool",
            message=detail,
            attempts=attempts,
        )

    def to_dict(self) -> dict:
        return {
            "spec_key": self.spec_key,
            "kind": self.kind,
            "label": self.label,
            "seed": self.seed,
            "exc_type": self.exc_type,
            "message": self.message,
            "attempts": self.attempts,
        }

    def summary_line(self) -> str:
        detail = f"{self.exc_type}: {self.message}" if self.exc_type else self.message
        return f"{self.spec_key} [{self.kind} after {self.attempts} attempt(s)] {detail}"


class FailedCell:
    """Pooled stand-in for a cell whose every seed run failed.

    Duck-types the slice of ``ExperimentResult`` the figure modules read
    (``summary``/``collector`` empty, counters zero, no manifest), so a
    grid with dead cells still renders -- with "-" gaps where the paper's
    numbers would be -- instead of crashing the whole figure.
    """

    def __init__(self, failures: Sequence[RunFailure]) -> None:
        self.failures: List[RunFailure] = list(failures)
        self.collector = FctCollector()
        self.manifest = None
        self.marks = 0
        self.instant_marks = 0
        self.persistent_marks = 0
        self.drops = 0
        self.timeouts = 0
        self.sim_duration = 0.0
        self.events = 0

    @property
    def summary(self) -> FctSummary:
        return FctSummary.from_records([])

    @property
    def n_flows(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FailedCell {len(self.failures)} failure(s)>"


def is_failure(obj: Any) -> bool:
    """Whether ``obj`` is a failure marker rather than a usable result."""
    return isinstance(obj, (RunFailure, FailedCell))


def gather_failures(results: Sequence[Any]) -> List[RunFailure]:
    """Flatten the failure records out of a mixed result/failure sequence
    (``FailedCell`` entries contribute their member failures)."""
    failures: List[RunFailure] = []
    for result in results:
        if isinstance(result, RunFailure):
            failures.append(result)
        elif isinstance(result, FailedCell):
            failures.extend(result.failures)
        else:
            failures.extend(getattr(result, "failures", ()))
    return failures


# --------------------------------------------------------- fault injection


def parse_fault_directives(
    raw: Optional[str] = None,
) -> Tuple[Tuple[str, str, Optional[int]], ...]:
    """Parse ``REPRO_FAULT_INJECT`` into ``(action, substr, max_attempt)``
    triples; unknown actions or malformed attempt counts warn and are
    skipped (an injection typo must not take down a real sweep)."""
    if raw is None:
        raw = os.environ.get(FAULT_INJECT_ENV, "")
    directives: List[Tuple[str, str, Optional[int]]] = []
    for part in raw.split(";"):
        part = part.strip()
        if not part:
            continue
        pieces = part.split(":")
        action = pieces[0].strip().lower()
        if action not in _FAULT_ACTIONS:
            warnings.warn(
                f"{FAULT_INJECT_ENV}: unknown action {action!r} in {part!r} "
                f"(expected one of {_FAULT_ACTIONS}); directive skipped",
                stacklevel=2,
            )
            continue
        substr = pieces[1] if len(pieces) > 1 else ""
        max_attempt: Optional[int] = None
        if len(pieces) > 2 and pieces[2].strip():
            try:
                max_attempt = int(pieces[2])
            except ValueError:
                warnings.warn(
                    f"{FAULT_INJECT_ENV}: max-attempt {pieces[2]!r} in {part!r} "
                    "is not an integer; directive skipped",
                    stacklevel=2,
                )
                continue
        directives.append((action, substr, max_attempt))
    return tuple(directives)


def _in_worker_process() -> bool:
    return multiprocessing.current_process().name != "MainProcess"


def maybe_inject_fault(spec: RunSpec, attempt: int) -> None:
    """Fire any ``REPRO_FAULT_INJECT`` directive matching ``spec``.

    Called at the top of ``execute_spec`` in whichever process runs the
    spec (workers inherit the environment at spawn).  ``attempt`` is the
    zero-based retry index; a directive with ``max_attempt`` only fires
    while ``attempt < max_attempt``.
    """
    directives = parse_fault_directives()
    if not directives:
        return
    token = spec.token()
    for action, substr, max_attempt in directives:
        if substr and substr not in token:
            continue
        if max_attempt is not None and attempt >= max_attempt:
            continue
        if action == "raise":
            raise InjectedFault(
                f"injected fault for {token} (attempt {attempt})"
            )
        if action == "hang":
            while True:  # parent-side spec_timeout is the only way out
                time.sleep(3600.0)
        if action == "exit":
            if _in_worker_process():
                os._exit(17)
            raise InjectedFault(
                f"injected worker-exit for {token} (attempt {attempt}; "
                "raised instead of exiting: not in a worker process)"
            )
