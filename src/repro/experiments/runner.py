"""Experiment runners: single FCT runs over the paper's topologies.

Scale handling: the paper's experiments run seconds of 10 Gbps traffic; a
pure-Python DES cannot.  :class:`Scale` centralises the reduction -- flow
counts and load grids shrink by default, and ``REPRO_FULL=1`` in the
environment switches to larger runs.  Normalized FCT comparisons (all the
paper's figures) are preserved under this reduction because every scheme
sees the identical arrival process (same seed -> same flow sizes, arrival
times, endpoints and base RTTs).
"""

from __future__ import annotations

import os
import warnings
from dataclasses import asdict, dataclass, field, replace
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.base import Aqm
from ..netem.profiles import RttProfile
from ..telemetry.provenance import RunManifest
from ..telemetry.runtime import get_active
from ..telemetry.spans import maybe_span
from ..sim.packet import PacketFactory
from ..sim.units import HEADER_SIZE, MTU, gbps, mb, us
from ..topology.leafspine import build_leafspine
from ..topology.star import build_star
from ..workloads.arrivals import (
    PoissonTrafficGenerator,
    TransportConfig,
    any_to_any_pair_picker,
    star_pair_picker,
)
from ..workloads.distributions import EmpiricalCdf
from .faults import FailedCell, RunFailure
from .fct import FctCollector, FctSummary
from .specs import AqmSpec, RunSpec

__all__ = [
    "Scale",
    "ExperimentResult",
    "estimate_star_network_rtt",
    "run_star_fct",
    "run_star_fct_pooled",
    "run_leafspine_fct",
    "run_leafspine_fct_pooled",
    "pool_results",
    "pooled_fct_specs",
]

AqmFactory = Callable[[], Aqm]

MAX_EVENTS_PER_RUN = 200_000_000
"""Hard stop against runaway runs; far above any configured experiment."""


@dataclass(frozen=True)
class Scale:
    """Run-size knobs shared by the benchmark harness.

    ``reduced()`` (the default) targets minutes of wall clock for the whole
    bench suite; ``full()`` approaches the paper's flow counts and load
    grids (hours of wall clock in pure Python).
    """

    n_flows_web_search: int
    n_flows_data_mining: int
    n_flows_leafspine: int
    n_seeds: int
    loads: Tuple[float, ...]
    leafspine_loads: Tuple[float, ...]
    fanouts: Tuple[int, ...]
    leafspine_dims: Tuple[int, int, int]  # spines, leaves, hosts/leaf
    full: bool

    @classmethod
    def reduced(cls) -> "Scale":
        return cls(
            n_flows_web_search=150,
            n_flows_data_mining=60,
            n_flows_leafspine=150,
            n_seeds=2,
            loads=(0.3, 0.5, 0.8),
            leafspine_loads=(0.3, 0.5),
            fanouts=(25, 50, 100, 150, 175, 200),
            leafspine_dims=(4, 4, 4),
            full=False,
        )

    @classmethod
    def paper(cls) -> "Scale":
        return cls(
            n_flows_web_search=2000,
            n_flows_data_mining=500,
            n_flows_leafspine=2000,
            n_seeds=3,
            loads=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
            leafspine_loads=(0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
            fanouts=(25, 50, 75, 100, 125, 150, 175, 200),
            leafspine_dims=(8, 8, 16),
            full=True,
        )

    @classmethod
    def from_env(cls) -> "Scale":
        """``REPRO_FULL=1`` (case-insensitive: ``true``/``yes``/``on`` too)
        selects paper-scale runs; unrecognized values warn and fall back to
        the reduced scale."""
        raw = os.environ.get("REPRO_FULL", "").strip().lower()
        if raw in ("1", "true", "yes", "on"):
            return cls.paper()
        if raw not in ("", "0", "false", "no", "off"):
            warnings.warn(
                f"REPRO_FULL={raw!r} is not a recognized truth value "
                "(use 1/true/yes/on or 0/false/no/off); using reduced scale",
                stacklevel=2,
            )
        return cls.reduced()


@dataclass
class ExperimentResult:
    """Everything one FCT run produces."""

    summary: FctSummary
    collector: FctCollector
    marks: int
    instant_marks: int
    persistent_marks: int
    drops: int
    timeouts: int
    sim_duration: float
    events: int
    manifest: Optional[RunManifest] = None
    failures: List[RunFailure] = field(default_factory=list)
    """Failure records carried by a pooled result whose cell lost some (but
    not all) of its seed runs; empty for a clean single run."""

    @property
    def n_flows(self) -> int:
        return self.summary.n_flows


def estimate_star_network_rtt(
    link_rate_bps: float = gbps(10), link_delay: float = us(2)
) -> float:
    """Uncongested physical RTT of the star: four propagation hops plus
    data and ACK serialization on both links."""
    data_tx = MTU * 8.0 / link_rate_bps
    ack_tx = HEADER_SIZE * 8.0 / link_rate_bps
    return 4.0 * link_delay + 2.0 * data_tx + 2.0 * ack_tx


def _stall_budget() -> int:
    """Dispatch budget for one run's drain; ``REPRO_STALL_EVENTS`` lowers
    it (e.g. to force a quick :class:`SimulationStalled` in tests)."""
    raw = os.environ.get("REPRO_STALL_EVENTS", "").strip()
    if not raw:
        return MAX_EVENTS_PER_RUN
    try:
        return max(1, int(raw))
    except ValueError:
        warnings.warn(
            f"REPRO_STALL_EVENTS={raw!r} is not an integer; "
            f"using {MAX_EVENTS_PER_RUN}",
            stacklevel=2,
        )
        return MAX_EVENTS_PER_RUN


def _drain(network, collector: FctCollector, expected: int) -> None:
    """Run the event loop to completion and verify every flow finished.

    ``run_until_idle`` raises :class:`~repro.sim.SimulationStalled` if the
    dispatch budget runs out with events still pending, so a wedged run
    surfaces as a typed failure record instead of a silently truncated
    result.  A drained loop with incomplete flows (events exhausted
    *cleanly* -- e.g. every remaining flow lost its retransmission timer)
    is still an error."""
    network.sim.run_until_idle(max_events=_stall_budget())
    if len(collector) < expected:
        raise RuntimeError(
            f"only {len(collector)}/{expected} flows completed; "
            "simulation stalled (check buffer/timeout settings)"
        )


def _result(
    topology_ports,
    network,
    collector: FctCollector,
    manifest: Optional[RunManifest] = None,
) -> ExperimentResult:
    marks = instant = persistent = drops = 0
    for port in topology_ports:
        stats = port.aqm.stats
        marks += stats.marks
        instant += stats.instant_marks
        persistent += stats.persistent_marks
        drops += port.stats.dropped_total
    if manifest is not None:
        manifest.events = network.sim.events_processed
        manifest.scheduler = network.sim.scheduler
        telemetry = get_active()
        if telemetry is not None:
            telemetry.add_manifest(manifest)
    return ExperimentResult(
        summary=collector.summary(),
        collector=collector,
        marks=marks,
        instant_marks=instant,
        persistent_marks=persistent,
        drops=drops,
        timeouts=collector.total_timeouts(),
        sim_duration=network.sim.now,
        events=network.sim.events_processed,
        manifest=manifest,
    )


def run_star_fct(
    aqm_factory: AqmFactory,
    workload: EmpiricalCdf,
    load: float,
    n_flows: int,
    seed: int,
    n_senders: int = 7,
    variation: float = 3.0,
    rtt_min: float = us(70),
    link_rate_bps: float = gbps(10),
    link_delay: float = us(2),
    buffer_bytes: int = mb(2),
    transport: TransportConfig = TransportConfig(),
    rtt_shape: str = "testbed",
) -> ExperimentResult:
    """One testbed-style run: Poisson flows from N senders to one receiver
    through a single switch running the AQM under test.

    The identical ``seed`` produces the identical arrival process across
    schemes, so normalized FCT comparisons are paired (lower variance than
    independent sampling -- the paper averages three runs instead).
    """
    wall_start = perf_counter()
    with maybe_span("setup", kind="engine"):
        topo = build_star(
            n_senders=n_senders,
            link_rate_bps=link_rate_bps,
            link_delay=link_delay,
            buffer_bytes=buffer_bytes,
            aqm_factory=aqm_factory,
        )
        manifest = RunManifest.collect(
            "run_star_fct",
            seed=seed,
            scheme=type(topo.switch.ports[0].aqm).__name__,
            load=load,
            n_flows=n_flows,
            n_senders=n_senders,
            variation=variation,
            rtt_min=rtt_min,
            link_rate_bps=link_rate_bps,
            buffer_bytes=buffer_bytes,
            rtt_shape=rtt_shape,
        )
        rng = np.random.default_rng(seed)
        factory = PacketFactory()
        collector = FctCollector()
        profile = RttProfile.from_variation(rtt_min, variation, shape=rtt_shape)
        generator = PoissonTrafficGenerator(
            network=topo.network,
            factory=factory,
            pair_picker=star_pair_picker(topo.senders, topo.receiver),
            workload=workload,
            load=load,
            capacity_bps=link_rate_bps,
            n_flows=n_flows,
            rng=rng,
            rtt_profile=profile,
            network_rtt=estimate_star_network_rtt(link_rate_bps, link_delay),
            delay_stage_of=topo.stage_for,
            transport=transport,
            on_flow_complete=collector.record,
        )
        generator.start()
    with maybe_span("drain", kind="engine", clock=topo.network.sim):
        _drain(topo.network, collector, n_flows)
    manifest.wall_seconds = perf_counter() - wall_start
    switch_ports = list(topo.switch.ports)
    return _result(switch_ports, topo.network, collector, manifest=manifest)


def pool_results(
    results: Sequence[Union[ExperimentResult, RunFailure]],
) -> Union[ExperimentResult, FailedCell]:
    """Merge independent runs of the same configuration (different seeds)
    into one result, pooling flow records -- the reproduction's equivalent
    of the paper's average-of-three-runs methodology.

    Failure isolation: :class:`RunFailure` entries (from the executor's
    fault-tolerance layer) are pooled *around*.  The surviving seeds merge
    exactly as if the dead ones had never been requested, and the failure
    records ride along on the pooled result's ``failures`` list.  A cell
    with no survivors degrades to a :class:`FailedCell`, which renders as
    gaps downstream instead of crashing the figure."""
    if not results:
        raise ValueError("need at least one result to pool")
    failures = [r for r in results if isinstance(r, RunFailure)]
    usable = [r for r in results if not isinstance(r, RunFailure)]
    if not usable:
        return FailedCell(failures)
    merged = FctCollector()
    for result in usable:
        merged.records.extend(result.collector.records)
    return ExperimentResult(
        summary=merged.summary(),
        collector=merged,
        marks=sum(r.marks for r in usable),
        instant_marks=sum(r.instant_marks for r in usable),
        persistent_marks=sum(r.persistent_marks for r in usable),
        drops=sum(r.drops for r in usable),
        timeouts=sum(r.timeouts for r in usable),
        sim_duration=max(r.sim_duration for r in usable),
        events=sum(r.events for r in usable),
        manifest=_pooled_manifest(usable),
        failures=failures,
    )


def _pooled_manifest(results: Sequence[ExperimentResult]) -> Optional[RunManifest]:
    """A manifest for the pool: the first run's configuration, with the
    seed list and the *summed* wall time and event count of all members."""
    first = results[0].manifest
    if first is None:
        return None
    walls = [
        r.manifest.wall_seconds
        for r in results
        if r.manifest is not None and r.manifest.wall_seconds is not None
    ]
    seeds = [r.manifest.seed for r in results if r.manifest is not None]
    return replace(
        first,
        params={**first.params, "n_seeds": len(results), "seeds": seeds},
        wall_seconds=sum(walls) if walls else None,
        events=sum(r.events for r in results),
    )


def pooled_fct_specs(
    kind: str,
    aqm: AqmSpec,
    workload: EmpiricalCdf,
    load: float,
    n_flows: int,
    seed: int,
    n_seeds: int,
    label: str = "",
    **kwargs,
) -> List[RunSpec]:
    """The seed-expanded spec list for one pooled star/leaf-spine cell."""
    from .executor import seed_specs

    transport = kwargs.pop("transport", None)
    builder = RunSpec.star if kind == "star" else RunSpec.leafspine
    spec = builder(
        aqm,
        workload=workload.name,
        load=load,
        n_flows=n_flows,
        seed=seed,
        label=label,
        transport=asdict(transport) if transport is not None else None,
        **kwargs,
    )
    return seed_specs(spec, n_seeds)


def _run_fct_pooled(
    kind: str,
    aqm_factory: Union[AqmFactory, AqmSpec],
    workload: EmpiricalCdf,
    load: float,
    n_flows: int,
    seed: int,
    n_seeds: int,
    executor=None,
    **kwargs,
) -> ExperimentResult:
    if n_seeds <= 0:
        raise ValueError("n_seeds must be positive")
    if isinstance(aqm_factory, AqmSpec):
        from .executor import get_default_executor

        specs = pooled_fct_specs(
            kind, aqm_factory, workload, load, n_flows, seed, n_seeds, **kwargs
        )
        executor = executor or get_default_executor()
        return pool_results(executor.run(specs))
    # Legacy path: closure factories cannot cross a process boundary (or
    # key the cache), so they always run sequentially in-process.
    run = run_star_fct if kind == "star" else run_leafspine_fct
    results = [
        run(aqm_factory, workload, load, n_flows, seed + offset, **kwargs)
        for offset in range(n_seeds)
    ]
    return pool_results(results)


def run_star_fct_pooled(
    aqm_factory: Union[AqmFactory, AqmSpec],
    workload: EmpiricalCdf,
    load: float,
    n_flows: int,
    seed: int,
    n_seeds: int = 2,
    executor=None,
    **kwargs,
) -> ExperimentResult:
    """``run_star_fct`` pooled over ``n_seeds`` independent seeds.

    Pass an :class:`AqmSpec` (rather than a bare callable) to execute the
    seeds through the experiment executor -- in parallel when its ``jobs``
    is above one, and replayed from the result cache when warm.
    """
    return _run_fct_pooled(
        "star", aqm_factory, workload, load, n_flows, seed, n_seeds,
        executor=executor, **kwargs,
    )


def run_leafspine_fct_pooled(
    aqm_factory: Union[AqmFactory, AqmSpec],
    workload: EmpiricalCdf,
    load: float,
    n_flows: int,
    seed: int,
    n_seeds: int = 2,
    executor=None,
    **kwargs,
) -> ExperimentResult:
    """``run_leafspine_fct`` pooled over ``n_seeds`` independent seeds.

    Accepts an :class:`AqmSpec` for parallel/cached execution, like
    :func:`run_star_fct_pooled`.
    """
    return _run_fct_pooled(
        "leafspine", aqm_factory, workload, load, n_flows, seed, n_seeds,
        executor=executor, **kwargs,
    )


def run_leafspine_fct(
    aqm_factory: AqmFactory,
    workload: EmpiricalCdf,
    load: float,
    n_flows: int,
    seed: int,
    dims: Tuple[int, int, int] = (4, 4, 4),
    variation: float = 3.0,
    rtt_min: float = us(80),
    link_rate_bps: float = gbps(10),
    buffer_bytes: int = mb(1),
    transport: TransportConfig = TransportConfig(),
    rtt_shape: str = "fabric",
    oversubscription: float = 1.0,
) -> ExperimentResult:
    """One large-scale run: any-to-any Poisson traffic over a leaf-spine
    fabric with ECMP (Section 5.3's setup, possibly reduced dims).

    ``oversubscription`` derates the leaf-spine uplinks (see
    :func:`~repro.topology.leafspine.build_leafspine`); 1.0 is the paper's
    non-blocking fabric.
    """
    spines, leaves, hosts_per_leaf = dims
    wall_start = perf_counter()
    with maybe_span("setup", kind="engine"):
        topo = build_leafspine(
            n_spines=spines,
            n_leaves=leaves,
            hosts_per_leaf=hosts_per_leaf,
            link_rate_bps=link_rate_bps,
            buffer_bytes=buffer_bytes,
            aqm_factory=aqm_factory,
            oversubscription=oversubscription,
        )
        manifest = RunManifest.collect(
            "run_leafspine_fct",
            seed=seed,
            scheme=type(topo.spines[0].ports[0].aqm).__name__,
            load=load,
            n_flows=n_flows,
            dims=dims,
            variation=variation,
            rtt_min=rtt_min,
            link_rate_bps=link_rate_bps,
            buffer_bytes=buffer_bytes,
            rtt_shape=rtt_shape,
            oversubscription=oversubscription,
        )
        rng = np.random.default_rng(seed)
        factory = PacketFactory()
        collector = FctCollector()
        profile = RttProfile.from_variation(rtt_min, variation, shape=rtt_shape)
        generator = PoissonTrafficGenerator(
            network=topo.network,
            factory=factory,
            pair_picker=any_to_any_pair_picker(topo.hosts),
            workload=workload,
            load=load,
            capacity_bps=link_rate_bps * len(topo.hosts),
            n_flows=n_flows,
            rng=rng,
            rtt_profile=profile,
            network_rtt=estimate_star_network_rtt(link_rate_bps, us(2)) * 2.0,
            delay_stage_of=topo.stage_for,
            transport=transport,
            on_flow_complete=collector.record,
        )
        generator.start()
    with maybe_span("drain", kind="engine", clock=topo.network.sim):
        _drain(topo.network, collector, n_flows)
    manifest.wall_seconds = perf_counter() - wall_start
    fabric_ports = [
        port for switch in (topo.spines + topo.leaves) for port in switch.ports
    ]
    return _result(fabric_ports, topo.network, collector, manifest=manifest)
