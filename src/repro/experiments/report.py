"""Plain-text tables and series, in the shape the paper reports them.

The benchmark harness prints one table per paper table/figure; these helpers
keep the formatting consistent (fixed-width columns, microsecond units,
normalized ratios with the baseline pinned at 1.00).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, List, Optional, Sequence

__all__ = [
    "format_table",
    "fmt_us",
    "fmt_ratio",
    "fmt_opt",
    "format_manifest",
    "format_failure_table",
    "format_trace_summary",
    "to_json",
    "to_csv",
]


def fmt_us(seconds: Optional[float]) -> str:
    """Seconds -> microseconds string (the paper's FCT unit)."""
    if seconds is None:
        return "-"
    return f"{seconds * 1e6:,.0f}"


def fmt_ratio(value: Optional[float]) -> str:
    """Normalized-FCT ratio (1.00 = baseline)."""
    if value is None:
        return "-"
    return f"{value:.2f}"


def fmt_opt(value: Optional[float], spec: str = ".2f") -> str:
    """Generic optional-float formatting."""
    if value is None:
        return "-"
    return format(value, spec)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width text table."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in materialized)
    return "\n".join(lines)


def to_json(payload: object, path: Optional[str] = None) -> str:
    """Serialize ``payload`` as stable, human-diffable JSON (sorted keys,
    2-space indent, trailing newline).  Writes to ``path`` when given;
    always returns the serialized text."""
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text


def to_csv(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    path: Optional[str] = None,
) -> str:
    """Serialize a header + rows table as CSV.  Writes to ``path`` when
    given; always returns the serialized text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(headers))
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        writer.writerow(list(row))
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w", encoding="utf-8", newline="") as handle:
            handle.write(text)
    return text


def format_manifest(manifest) -> str:
    """One-line provenance stamp for a :class:`~repro.telemetry.RunManifest`.

    Example::

        run_star_fct seed=21 scheme=EcnSharp sha=f0b27c3 events=1,204,551 wall=2.1s
    """
    parts = [manifest.experiment]
    if manifest.seed is not None:
        parts.append(f"seed={manifest.seed}")
    scheme = manifest.params.get("scheme")
    if scheme:
        parts.append(f"scheme={scheme}")
    if manifest.git_sha:
        parts.append(f"sha={manifest.git_sha[:7]}")
    if manifest.events is not None:
        parts.append(f"events={manifest.events:,}")
    if manifest.wall_seconds is not None:
        parts.append(f"wall={manifest.wall_seconds:.1f}s")
    return " ".join(parts)


def format_failure_table(failures: Sequence[object]) -> str:
    """Render the executor's :class:`RunFailure` records as a table.

    One row per failed cell: the spec token, the failure kind (exception /
    stall / timeout / worker-exit), the attempt count, and the exception
    headline.  Tracebacks stay out of the table; they live on the records
    (and in the telemetry snapshot) for forensics."""
    rows: List[List[str]] = []
    for failure in failures:
        detail = failure.message
        if failure.exc_type:
            detail = f"{failure.exc_type}: {failure.message}"
        if len(detail) > 72:
            detail = detail[:69] + "..."
        rows.append(
            [failure.spec_key, failure.kind, str(failure.attempts), detail]
        )
    return format_table(
        ["spec", "kind", "attempts", "error"],
        rows,
        title=f"{len(rows)} run(s) failed (surviving cells rendered with gaps):",
    )


def format_trace_summary(recorder) -> str:
    """One-line flight-recorder summary (ring occupancy + category mix)."""
    by_category = recorder.counts_by_category()
    mix = " ".join(f"{k}={v}" for k, v in sorted(by_category.items()))
    line = (
        f"trace: {recorder.emitted:,} events emitted, "
        f"{len(recorder):,} buffered"
    )
    if recorder.evicted:
        line += f" ({recorder.evicted:,} evicted by ring wraparound)"
    if mix:
        line += f" [{mix}]"
    return line
