"""Plain-text tables and series, in the shape the paper reports them.

The benchmark harness prints one table per paper table/figure; these helpers
keep the formatting consistent (fixed-width columns, microsecond units,
normalized ratios with the baseline pinned at 1.00).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "fmt_us", "fmt_ratio", "fmt_opt"]


def fmt_us(seconds: Optional[float]) -> str:
    """Seconds -> microseconds string (the paper's FCT unit)."""
    if seconds is None:
        return "-"
    return f"{seconds * 1e6:,.0f}"


def fmt_ratio(value: Optional[float]) -> str:
    """Normalized-FCT ratio (1.00 = baseline)."""
    if value is None:
        return "-"
    return f"{value:.2f}"


def fmt_opt(value: Optional[float], spec: str = ".2f") -> str:
    """Generic optional-float formatting."""
    if value is None:
        return "-"
    return format(value, spec)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width text table."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in materialized)
    return "\n".join(lines)
