"""Figures 6-7: testbed FCT vs load under both production workloads.

For each load point, runs the four Section 5.2 schemes (DCTCP-RED-Tail,
DCTCP-RED-AVG, CoDel, ECN#) over the 7-to-1 testbed star with 3x RTT
variation, and normalizes every FCT statistic to DCTCP-RED-Tail -- exactly
how the paper plots panels (a)-(d).

Shape targets: ECN# beats RED-Tail on short-flow avg/99p (up to ~23%/37%),
matches it on large-flow avg; RED-AVG wins short flows but loses large
flows; CoDel loses badly on short flows (timeouts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...sim.units import us
from ...workloads.datamining import DATA_MINING
from ...workloads.distributions import EmpiricalCdf
from ...workloads.websearch import WEB_SEARCH
from ..executor import Executor, run_grid, seed_specs
from ..fct import FctSummary, NormalizedFct
from ..report import fmt_ratio, format_table
from ..schemes import SCHEME_ORDER, testbed_scheme_specs
from ..specs import AqmSpec, RunSpec

__all__ = [
    "FctVsLoadResult",
    "run_fct_vs_load",
    "run_fig6",
    "run_fig7",
    "render",
    "summarize_for_validation",
]

BASELINE = "DCTCP-RED-Tail"


@dataclass
class FctVsLoadResult:
    """summaries[load][scheme] plus the workload identity."""

    workload_name: str
    loads: Tuple[float, ...]
    schemes: Tuple[str, ...]
    summaries: Dict[float, Dict[str, FctSummary]]

    def normalized(self, load: float, scheme: str) -> NormalizedFct:
        return self.summaries[load][scheme].normalized_to(
            self.summaries[load][BASELINE]
        )

    def best_short_avg_gain(self, scheme: str = "ECN#") -> Optional[float]:
        """Largest relative short-flow average FCT reduction vs baseline
        across loads (paper: up to 23.4% web search / 31.2% data mining)."""
        gains = []
        for load in self.loads:
            ratio = self.normalized(load, scheme).short_avg
            if ratio is not None:
                gains.append(1.0 - ratio)
        return max(gains) if gains else None


def run_fct_vs_load(
    workload: EmpiricalCdf,
    loads: Tuple[float, ...],
    n_flows: int,
    seed: int,
    schemes: Optional[Dict[str, AqmSpec]] = None,
    variation: float = 3.0,
    rtt_min: float = us(70),
    n_seeds: int = 2,
    executor: Optional[Executor] = None,
) -> FctVsLoadResult:
    """Run every scheme at every load over the testbed star (pooled seeds).

    The full (load x scheme x seed) grid is submitted through the executor
    in one pass, so it parallelizes and caches per cell.
    """
    scheme_specs = schemes if schemes is not None else testbed_scheme_specs()
    keys = [(load, name) for load in loads for name in scheme_specs]
    cells = [
        seed_specs(
            RunSpec.star(
                scheme_specs[name],
                workload=workload.name,
                load=load,
                n_flows=n_flows,
                seed=seed,
                label=name,
                variation=variation,
                rtt_min=rtt_min,
            ),
            n_seeds,
        )
        for load, name in keys
    ]
    summaries: Dict[float, Dict[str, FctSummary]] = {load: {} for load in loads}
    for (load, name), result in zip(keys, run_grid(cells, executor)):
        summaries[load][name] = result.summary
    return FctVsLoadResult(
        workload_name=workload.name,
        loads=loads,
        schemes=tuple(scheme_specs.keys()),
        summaries=summaries,
    )


def run_fig6(
    loads: Tuple[float, ...] = (0.3, 0.5, 0.8),
    n_flows: int = 150,
    seed: int = 21,
    n_seeds: int = 2,
    executor: Optional[Executor] = None,
) -> FctVsLoadResult:
    """Figure 6: web search workload."""
    return run_fct_vs_load(
        WEB_SEARCH, loads, n_flows, seed, n_seeds=n_seeds, executor=executor
    )


def run_fig7(
    loads: Tuple[float, ...] = (0.3, 0.5, 0.8),
    n_flows: int = 60,
    seed: int = 22,
    n_seeds: int = 2,
    executor: Optional[Executor] = None,
) -> FctVsLoadResult:
    """Figure 7: data mining workload."""
    return run_fct_vs_load(
        DATA_MINING, loads, n_flows, seed, n_seeds=n_seeds, executor=executor
    )


def summarize_for_validation(result: FctVsLoadResult) -> dict:
    """Machine-readable grid summary (validation + ``--results-out``)."""
    cells = {
        f"load={load:g}|scheme={scheme}": result.summaries[load][scheme].metrics()
        for load in result.loads
        for scheme in result.schemes
    }
    derived = {}
    gain = result.best_short_avg_gain()
    if gain is not None:
        derived["best_short_avg_gain"] = gain
    return {
        "figure": "fig6" if result.workload_name == "web-search" else "fig7",
        "params": {"workload": result.workload_name},
        "cells": cells,
        "derived": derived,
    }


def render(result: FctVsLoadResult, figure_name: str = "Figure 6/7") -> str:
    """Render the normalized FCT-vs-load table plus the headline gain."""
    rows: List[List[str]] = []
    for load in result.loads:
        for scheme in result.schemes:
            norm = result.normalized(load, scheme)
            rows.append(
                [
                    f"{load:.0%}",
                    scheme,
                    fmt_ratio(norm.overall_avg),
                    fmt_ratio(norm.short_avg),
                    fmt_ratio(norm.short_p99),
                    fmt_ratio(norm.large_avg),
                ]
            )
    table = format_table(
        ["load", "scheme", "overall avg", "short avg", "short p99", "large avg"],
        rows,
        title=(
            f"{figure_name}: normalized FCT vs load "
            f"({result.workload_name}; 1.00 = DCTCP-RED-Tail)"
        ),
    )
    gain = result.best_short_avg_gain()
    suffix = (
        f"\nECN# best short-flow avg gain vs RED-Tail: {gain:.1%}"
        if gain is not None
        else ""
    )
    return table + suffix
