"""Figure 11: query FCT vs incast fanout (25-200 concurrent senders).

Reuses the Figure 10 rig across a fanout sweep and reports average / 99th
percentile query completion time per scheme.  The paper's shape: CoDel
degrades sharply once ~100 concurrent senders overflow the buffer (packet
loss -> min-RTO timeouts), while ECN# tracks DCTCP-RED-Tail and only starts
suffering at ~175 senders -- a 1.75x burst-tolerance advantage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..executor import Executor, get_default_executor
from ..faults import is_failure
from ..report import fmt_opt, format_table
from ..schemes import simulation_scheme_specs
from ..specs import RunSpec
from .fig10 import MicroscopicRun

__all__ = [
    "Fig11Result",
    "run_fig11",
    "render",
    "summarize_for_validation",
    "DEFAULT_FANOUTS",
]

DEFAULT_FANOUTS: Tuple[int, ...] = (25, 50, 100, 150, 175, 200)
DEFAULT_SCHEMES: Tuple[str, ...] = ("DCTCP-RED-Tail", "CoDel", "ECN#")


@dataclass
class Fig11Result:
    fanouts: Tuple[int, ...]
    schemes: Tuple[str, ...]
    runs: Dict[int, Dict[str, MicroscopicRun]]

    def avg_query_fct(self, fanout: int, scheme: str) -> Optional[float]:
        run = self.runs[fanout][scheme]
        if is_failure(run):
            return None
        fcts = run.query_fcts
        return float(np.mean(fcts)) if fcts else None

    def p99_query_fct(self, fanout: int, scheme: str) -> Optional[float]:
        run = self.runs[fanout][scheme]
        if is_failure(run):
            return None
        fcts = run.query_fcts
        return float(np.percentile(fcts, 99)) if fcts else None

    def first_loss_fanout(self, scheme: str) -> Optional[int]:
        """Smallest fanout at which the scheme drops packets (failed cells
        cannot attest either way, so they are skipped)."""
        for fanout in self.fanouts:
            run = self.runs[fanout][scheme]
            if not is_failure(run) and run.drops > 0:
                return fanout
        return None


def run_fig11(
    fanouts: Tuple[int, ...] = DEFAULT_FANOUTS,
    schemes: Tuple[str, ...] = DEFAULT_SCHEMES,
    seed: int = 61,
    executor: Optional[Executor] = None,
) -> Fig11Result:
    """Run the fanout sweep for every scheme (one executor pass)."""
    scheme_specs = simulation_scheme_specs()
    keys = [(fanout, name) for fanout in fanouts for name in schemes]
    specs = [
        RunSpec.microscopic(
            scheme_specs[name], seed=seed, label=name, fanout=fanout
        )
        for fanout, name in keys
    ]
    executor = executor or get_default_executor()
    runs: Dict[int, Dict[str, MicroscopicRun]] = {fanout: {} for fanout in fanouts}
    for (fanout, name), run in zip(keys, executor.run(specs)):
        runs[fanout][name] = run
    return Fig11Result(fanouts=fanouts, schemes=schemes, runs=runs)


def summarize_for_validation(result: Fig11Result) -> dict:
    """Machine-readable grid summary (validation + ``--results-out``)."""
    cells = {}
    for fanout in result.fanouts:
        for scheme in result.schemes:
            run = result.runs[fanout][scheme]
            if is_failure(run):
                continue
            cells[f"fanout={fanout}|scheme={scheme}"] = run.metrics()
    derived = {}
    for scheme in result.schemes:
        onset = result.first_loss_fanout(scheme)
        if onset is not None:
            derived[f"first_loss_fanout|scheme={scheme}"] = float(onset)
    return {
        "figure": "fig11",
        "params": {"fanouts": list(result.fanouts)},
        "cells": cells,
        "derived": derived,
    }


def render(result: Fig11Result) -> str:
    """Render the query-FCT-vs-fanout table plus loss onsets."""
    rows: List[List[str]] = []
    for fanout in result.fanouts:
        for scheme in result.schemes:
            run = result.runs[fanout][scheme]
            if is_failure(run):
                kind = getattr(run, "kind", "failed")
                rows.append([str(fanout), scheme, "-", "-", "-", f"({kind})"])
                continue
            avg = result.avg_query_fct(fanout, scheme)
            p99 = result.p99_query_fct(fanout, scheme)
            rows.append(
                [
                    str(fanout),
                    scheme,
                    fmt_opt(avg * 1e3 if avg is not None else None, ".2f"),
                    fmt_opt(p99 * 1e3 if p99 is not None else None, ".2f"),
                    str(run.query_timeouts),
                    str(run.drops),
                ]
            )
    table = format_table(
        ["fanout", "scheme", "avg FCT (ms)", "p99 FCT (ms)", "timeouts", "drops"],
        rows,
        title="Figure 11: query completion time vs fanout",
    )
    onset = {
        scheme: result.first_loss_fanout(scheme) for scheme in result.schemes
    }
    onset_line = ", ".join(
        f"{scheme}: first loss at fanout {fanout if fanout is not None else '>max'}"
        for scheme, fanout in onset.items()
    )
    return f"{table}\n{onset_line}"
