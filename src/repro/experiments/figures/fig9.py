"""Figure 9: large-scale leaf-spine simulations (web search workload).

Any-to-any Poisson traffic over an ECMP leaf-spine fabric with 3x RTT
variation (80-240 us); ECN# vs DCTCP-RED-Tail (plus optional extra schemes)
normalized to RED-Tail.  Paper shape: ECN# cuts short-flow average FCT by
18.5-36.9% and overall average by 26-37% across loads.

The paper's fabric is 8 spines x 8 leaves x 16 hosts; the default here is a
reduced 4x4x4 fabric (documented substitution -- pure-Python DES), same
oversubscription ratio of 1:1 at the leaf.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...sim.units import us
from ...workloads.websearch import WEB_SEARCH
from ..executor import Executor, run_grid, seed_specs
from ..fct import FctSummary
from ..report import fmt_ratio, format_table
from ..schemes import simulation_scheme_specs
from ..specs import RunSpec

__all__ = ["Fig9Result", "run_fig9", "render", "summarize_for_validation"]

BASELINE = "DCTCP-RED-Tail"


@dataclass
class Fig9Result:
    """summaries[load][scheme] over the leaf-spine fabric."""

    loads: Tuple[float, ...]
    schemes: Tuple[str, ...]
    dims: Tuple[int, int, int]
    summaries: Dict[float, Dict[str, FctSummary]]

    def nfct(self, load: float, scheme: str, field: str) -> Optional[float]:
        mine = getattr(self.summaries[load][scheme], field)
        base = getattr(self.summaries[load][BASELINE], field)
        if mine is None or base is None or base == 0:
            return None
        return mine / base


def run_fig9(
    loads: Tuple[float, ...] = (0.3, 0.5),
    n_flows: int = 150,
    seed: int = 41,
    dims: Tuple[int, int, int] = (4, 4, 4),
    scheme_names: Tuple[str, ...] = ("DCTCP-RED-Tail", "ECN#"),
    n_seeds: int = 2,
    executor: Optional[Executor] = None,
) -> Fig9Result:
    """Run the leaf-spine comparison at each load (pooled seeds)."""
    scheme_specs = simulation_scheme_specs()
    keys = [(load, name) for load in loads for name in scheme_names]
    cells = [
        seed_specs(
            RunSpec.leafspine(
                scheme_specs[name],
                workload=WEB_SEARCH.name,
                load=load,
                n_flows=n_flows,
                seed=seed,
                label=name,
                variation=3.0,
                rtt_min=us(80),
                dims=dims,
            ),
            n_seeds,
        )
        for load, name in keys
    ]
    summaries: Dict[float, Dict[str, FctSummary]] = {load: {} for load in loads}
    for (load, name), result in zip(keys, run_grid(cells, executor)):
        summaries[load][name] = result.summary
    return Fig9Result(
        loads=loads, schemes=scheme_names, dims=dims, summaries=summaries
    )


def summarize_for_validation(result: Fig9Result) -> dict:
    """Machine-readable grid summary (validation + ``--results-out``)."""
    cells = {
        f"load={load:g}|scheme={scheme}": result.summaries[load][scheme].metrics()
        for load in result.loads
        for scheme in result.schemes
    }
    derived = {}
    for load in result.loads:
        for scheme in result.schemes:
            if scheme == BASELINE:
                continue
            nfct = result.nfct(load, scheme, "overall_avg")
            if nfct is not None:
                derived[f"nfct_overall|load={load:g}|scheme={scheme}"] = nfct
    return {
        "figure": "fig9",
        "params": {"dims": list(result.dims)},
        "cells": cells,
        "derived": derived,
    }


def render(result: Fig9Result) -> str:
    """Render the leaf-spine normalized-FCT table."""
    rows: List[List[str]] = []
    for load in result.loads:
        for scheme in result.schemes:
            rows.append(
                [
                    f"{load:.0%}",
                    scheme,
                    fmt_ratio(result.nfct(load, scheme, "overall_avg")),
                    fmt_ratio(result.nfct(load, scheme, "short_avg")),
                ]
            )
    spines, leaves, hosts = result.dims
    return format_table(
        ["load", "scheme", "overall avg", "short avg"],
        rows,
        title=(
            f"Figure 9: leaf-spine ({spines}x{leaves}x{hosts} hosts/leaf) "
            "normalized FCT, web search (1.00 = DCTCP-RED-Tail)"
        ),
    )
