"""One module per paper table/figure; each exposes ``run_*`` and ``render``.

Index (see DESIGN.md section 3 for the full mapping):

* :mod:`table1`  -- Table 1 / Figure 1: RTT variation from processing components
* :mod:`fig2`    -- Figure 2: instantaneous-threshold sweep dilemma
* :mod:`fig3`    -- Figure 3: performance loss vs RTT-variation magnitude
* :mod:`fig5`    -- Figure 5: workload flow-size CDFs
* :mod:`fig6_fig7` -- Figures 6-7: testbed FCT vs load, both workloads
* :mod:`fig8`    -- Figure 8: testbed FCT under 3x-5x variations
* :mod:`fig9`    -- Figure 9: leaf-spine large-scale FCT vs load
* :mod:`fig10`   -- Figure 10: microscopic queue occupancy
* :mod:`fig11`   -- Figure 11: query FCT vs incast fanout
* :mod:`fig12`   -- Figure 12: ECN# parameter sensitivity
* :mod:`fig13`   -- Figure 13: ECN# under DWRR packet scheduling vs TCN
"""

from . import (
    fig2,
    fig3,
    fig5,
    fig6_fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    table1,
)

__all__ = [
    "table1",
    "fig2",
    "fig3",
    "fig5",
    "fig6_fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
]
