"""Figure 3: larger RTT variations cause more performance degradation.

For each variation in 2x..5x, derives the two "current practice" thresholds
from the emulated RTT distribution itself (average RTT and 90th-percentile
RTT, Equation 1 with lambda = 1 as operators configure it) and runs
DCTCP-RED with both.  The paper's observation: the average-RTT threshold's
throughput loss *and* the tail-RTT threshold's short-flow 99p penalty both
grow with the variation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...netem.profiles import RttProfile
from ...sim.units import us
from ...workloads.websearch import WEB_SEARCH
from ..executor import Executor, run_grid, seed_specs
from ..fct import FctSummary
from ..report import fmt_ratio, format_table
from ..specs import AqmSpec, RunSpec

__all__ = [
    "Fig3Result",
    "run_fig3",
    "render",
    "summarize_for_validation",
    "DEFAULT_VARIATIONS",
]

DEFAULT_VARIATIONS: Tuple[float, ...] = (2.0, 3.0, 4.0, 5.0)


@dataclass
class Fig3Result:
    """Per-variation summaries for the avg-RTT and tail-RTT thresholds."""

    variations: Tuple[float, ...]
    avg_threshold: Dict[float, FctSummary]
    tail_threshold: Dict[float, FctSummary]
    thresholds_us: Dict[float, Tuple[float, float]]  # (avg, p90) sojourn us
    load: float

    def large_flow_gap(self, variation: float) -> Optional[float]:
        """Avg-threshold large-flow FCT over tail-threshold's (throughput
        loss of the low threshold; grows with variation)."""
        mine = self.avg_threshold[variation].large_avg
        theirs = self.tail_threshold[variation].large_avg
        if mine is None or theirs is None or theirs == 0:
            return None
        return mine / theirs

    def short_tail_gap(self, variation: float) -> Optional[float]:
        """Tail-threshold short-flow 99p over avg-threshold's (queueing
        penalty of the high threshold; grows with variation)."""
        mine = self.tail_threshold[variation].short_p99
        theirs = self.avg_threshold[variation].short_p99
        if mine is None or theirs is None or theirs == 0:
            return None
        return mine / theirs


def run_fig3(
    seed: int = 11,
    n_flows: int = 150,
    load: float = 0.5,
    variations: Tuple[float, ...] = DEFAULT_VARIATIONS,
    rtt_min: float = us(70),
    large_min: int = 2_000_000,
    n_seeds: int = 2,
    executor: Optional[Executor] = None,
) -> Fig3Result:
    """Run the variation sweep.

    ``large_min`` re-cuts the paper's >=10MB "large flow" bucket at 2MB so
    the throughput-sensitive statistic is populated at reduced flow counts
    (the ordering claims are insensitive to the cut point).
    """
    thresholds: Dict[float, Tuple[float, float]] = {}
    stats_rng = np.random.default_rng(seed + 1000)
    cells = []
    keys: List[Tuple[float, str]] = []
    for variation in variations:
        profile = RttProfile.from_variation(rtt_min, variation, shape="testbed")
        stats = profile.statistics(stats_rng, n=100_000)
        thresholds[variation] = (stats.mean * 1e6, stats.p90 * 1e6)
        for label, sojourn in (("avg", stats.mean), ("tail", stats.p90)):
            keys.append((variation, label))
            cells.append(
                seed_specs(
                    RunSpec.star(
                        AqmSpec.make("sojourn-red", sojourn=sojourn),
                        workload=WEB_SEARCH.name,
                        load=load,
                        n_flows=n_flows,
                        seed=seed,
                        label=f"{label}@{variation:g}x",
                        variation=variation,
                        rtt_min=rtt_min,
                    ),
                    n_seeds,
                )
            )
    avg_results: Dict[float, FctSummary] = {}
    tail_results: Dict[float, FctSummary] = {}
    for (variation, label), result in zip(keys, run_grid(cells, executor)):
        summary = result.collector.summary(large_min=large_min)
        if label == "avg":
            avg_results[variation] = summary
        else:
            tail_results[variation] = summary
    return Fig3Result(
        variations=variations,
        avg_threshold=avg_results,
        tail_threshold=tail_results,
        thresholds_us=thresholds,
        load=load,
    )


def summarize_for_validation(result: Fig3Result) -> dict:
    """Machine-readable grid summary (validation + ``--results-out``)."""
    cells = {}
    derived = {}
    for variation in result.variations:
        cells[f"variation={variation:g}|threshold=avg"] = result.avg_threshold[
            variation
        ].metrics()
        cells[f"variation={variation:g}|threshold=tail"] = result.tail_threshold[
            variation
        ].metrics()
        large_gap = result.large_flow_gap(variation)
        if large_gap is not None:
            derived[f"large_flow_gap|variation={variation:g}"] = large_gap
        short_gap = result.short_tail_gap(variation)
        if short_gap is not None:
            derived[f"short_tail_gap|variation={variation:g}"] = short_gap
    return {
        "figure": "fig3",
        "params": {"load": result.load},
        "cells": cells,
        "derived": derived,
    }


def render(result: Fig3Result) -> str:
    """Render the per-variation gap table (thresholds and both gaps)."""
    rows: List[List[str]] = []
    for variation in result.variations:
        avg_us, p90_us = result.thresholds_us[variation]
        rows.append(
            [
                f"{variation:.0f}x",
                f"{avg_us:.0f}us",
                f"{p90_us:.0f}us",
                fmt_ratio(result.large_flow_gap(variation)),
                fmt_ratio(result.short_tail_gap(variation)),
            ]
        )
    return format_table(
        [
            "variation",
            "avg-RTT T",
            "p90-RTT T",
            "large FCT avg/tail",
            "short p99 tail/avg",
        ],
        rows,
        title=(
            "Figure 3: degradation vs RTT variation (web search, "
            f"load={result.load:.0%}; both gaps should grow with variation)"
        ),
    )
