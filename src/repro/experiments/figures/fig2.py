"""Figure 2: no single instantaneous threshold wins on both axes.

Sweeps the DCTCP-RED cut-off threshold from 50 KB to 250 KB under the web
search workload at 50% load with 3x RTT variation (70-210 us).  The paper's
observation: low thresholds (average-RTT territory) hurt large-flow FCT
(throughput), high thresholds (90th-percentile territory) hurt short-flow
tail FCT (queueing delay); nothing in between achieves both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...sim.units import gbps, kb, us
from ...workloads.websearch import WEB_SEARCH
from ..executor import Executor, run_grid, seed_specs
from ..fct import FctSummary
from ..report import fmt_ratio, fmt_us, format_table
from ..schemes import bytes_to_sojourn
from ..specs import AqmSpec, RunSpec

__all__ = [
    "Fig2Result",
    "run_fig2",
    "render",
    "summarize_for_validation",
    "DEFAULT_THRESHOLDS_KB",
]

DEFAULT_THRESHOLDS_KB: Tuple[int, ...] = (50, 100, 150, 200, 250)


@dataclass
class Fig2Result:
    """FCT summaries per threshold, plus normalization to the first one."""

    thresholds_kb: Tuple[int, ...]
    summaries: Dict[int, FctSummary]
    load: float
    variation: float

    def normalized(self, field: str) -> Dict[int, Optional[float]]:
        """Per-threshold ratio of ``field`` to the smallest threshold's."""
        base = getattr(self.summaries[self.thresholds_kb[0]], field)
        out: Dict[int, Optional[float]] = {}
        for threshold in self.thresholds_kb:
            value = getattr(self.summaries[threshold], field)
            # A legitimate 0.0 value must normalize to 0.0 -- only a
            # missing/zero *base* makes the ratio undefined.
            out[threshold] = (value / base) if (value is not None and base) else None
        return out


def run_fig2(
    seed: int = 7,
    n_flows: int = 150,
    load: float = 0.5,
    thresholds_kb: Tuple[int, ...] = DEFAULT_THRESHOLDS_KB,
    variation: float = 3.0,
    rtt_min: float = us(70),
    n_seeds: int = 2,
    executor: Optional[Executor] = None,
) -> Fig2Result:
    """Run the threshold sweep (identical arrivals across thresholds,
    pooled over ``n_seeds`` seeds as the paper averages runs).

    The whole grid (threshold x seed) goes through the executor in one
    pass, so ``--jobs N`` parallelizes across thresholds and seeds alike.
    """
    cells = [
        seed_specs(
            RunSpec.star(
                AqmSpec.make(
                    "sojourn-red", sojourn=bytes_to_sojourn(kb(threshold), gbps(10))
                ),
                workload=WEB_SEARCH.name,
                load=load,
                n_flows=n_flows,
                seed=seed,
                label=f"{threshold}KB",
                variation=variation,
                rtt_min=rtt_min,
            ),
            n_seeds,
        )
        for threshold in thresholds_kb
    ]
    pooled = run_grid(cells, executor)
    summaries: Dict[int, FctSummary] = {
        threshold: result.summary
        for threshold, result in zip(thresholds_kb, pooled)
    }
    return Fig2Result(
        thresholds_kb=thresholds_kb,
        summaries=summaries,
        load=load,
        variation=variation,
    )


def summarize_for_validation(result: Fig2Result) -> dict:
    """Machine-readable grid summary (validation + ``--results-out``)."""
    cells = {
        f"threshold={threshold}KB": summary.metrics()
        for threshold, summary in result.summaries.items()
    }
    return {
        "figure": "fig2",
        "params": {"load": result.load, "variation": result.variation},
        "cells": cells,
        "derived": {},
    }


def render(result: Fig2Result) -> str:
    """Render the threshold-sweep table (normalized to the 50 KB point)."""
    norm_large = result.normalized("large_avg")
    norm_short99 = result.normalized("short_p99")
    norm_overall = result.normalized("overall_avg")
    rows: List[List[str]] = []
    for threshold in result.thresholds_kb:
        summary = result.summaries[threshold]
        rows.append(
            [
                f"{threshold}KB",
                fmt_us(summary.overall_avg),
                fmt_us(summary.short_p99),
                fmt_us(summary.large_avg),
                fmt_ratio(norm_overall[threshold]),
                fmt_ratio(norm_short99[threshold]),
                fmt_ratio(norm_large[threshold]),
            ]
        )
    return format_table(
        [
            "threshold",
            "overall avg",
            "short p99",
            "large avg",
            "n.overall",
            "n.short99",
            "n.large",
        ],
        rows,
        title=(
            f"Figure 2: threshold sweep (web search, load={result.load:.0%}, "
            f"{result.variation:.0f}x RTT variation; normalized to 50KB)"
        ),
    )
