"""Figure 12: ECN# parameter sensitivity.

Panel (a): pst_interval swept 100-250 us (rule of thumb: ~the tail RTT).
Panel (b): pst_target swept 6-18 us (rule of thumb: >= lambda x average RTT,
conservatively small).  The paper's claim: overall average FCT moves by
< ~1% across the whole grid, i.e. ECN# does not need careful tuning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...sim.units import us
from ...workloads.datamining import DATA_MINING
from ...workloads.distributions import EmpiricalCdf
from ...workloads.websearch import WEB_SEARCH
from ..executor import Executor, run_grid, seed_specs
from ..report import fmt_ratio, format_table
from ..specs import AqmSpec, RunSpec

__all__ = ["Fig12Result", "run_fig12", "render", "summarize_for_validation"]

DEFAULT_INTERVALS_US: Tuple[float, ...] = (100.0, 150.0, 200.0, 250.0)
DEFAULT_TARGETS_US: Tuple[float, ...] = (6.0, 10.0, 14.0, 18.0)


@dataclass
class Fig12Result:
    """Overall-average FCT per parameter setting, per workload panel."""

    intervals_us: Tuple[float, ...]
    targets_us: Tuple[float, ...]
    interval_fct: Dict[str, Dict[float, Optional[float]]]
    target_fct: Dict[str, Dict[float, Optional[float]]]

    def interval_spread(self, workload: str) -> Optional[float]:
        """(max - min) / min of overall FCT across the interval sweep."""
        return _spread(self.interval_fct[workload].values())

    def target_spread(self, workload: str) -> Optional[float]:
        return _spread(self.target_fct[workload].values())


def _spread(values) -> Optional[float]:
    """(max - min) / min over the non-missing values (0.0 is legitimate)."""
    present = [v for v in values if v is not None]
    if not present or min(present) == 0:
        return None
    return (max(present) - min(present)) / min(present)


def _sweep_specs(
    workload: EmpiricalCdf,
    configs: List[Tuple[float, AqmSpec]],
    load: float,
    n_flows: int,
    seed: int,
    rtt_min: float,
    n_seeds: int,
    panel: str,
) -> List[List[RunSpec]]:
    return [
        seed_specs(
            RunSpec.star(
                aqm,
                workload=workload.name,
                load=load,
                n_flows=n_flows,
                seed=seed,
                label=f"ECN# {panel}={key:g}us",
                variation=3.0,
                rtt_min=rtt_min,
            ),
            n_seeds,
        )
        for key, aqm in configs
    ]


def run_fig12(
    load: float = 0.5,
    n_flows_web: int = 120,
    n_flows_mining: int = 50,
    seed: int = 71,
    intervals_us: Tuple[float, ...] = DEFAULT_INTERVALS_US,
    targets_us: Tuple[float, ...] = DEFAULT_TARGETS_US,
    n_seeds: int = 2,
    executor: Optional[Executor] = None,
) -> Fig12Result:
    """Sweep pst_interval and pst_target on both workloads (one grid)."""
    workloads = {"web-search": (WEB_SEARCH, n_flows_web), "data-mining": (DATA_MINING, n_flows_mining)}

    keys: List[Tuple[str, str, float]] = []
    cells: List[List[RunSpec]] = []
    for name, (workload, n_flows) in workloads.items():
        # Panel (a): testbed-style parameters (70-210 us band), interval sweep.
        interval_configs = [
            (
                value,
                AqmSpec.make(
                    "ecn-sharp",
                    ins_target=us(200),
                    pst_target=us(85),
                    pst_interval=us(value),
                ),
            )
            for value in intervals_us
        ]
        keys.extend((name, "interval", value) for value in intervals_us)
        cells.extend(
            _sweep_specs(workload, interval_configs, load, n_flows, seed,
                         us(70), n_seeds, "pst_interval")
        )
        # Panel (b): simulation-style parameters (80-240 us band), target sweep.
        target_configs = [
            (
                value,
                AqmSpec.make(
                    "ecn-sharp",
                    ins_target=us(220),
                    pst_target=us(value),
                    pst_interval=us(240),
                ),
            )
            for value in targets_us
        ]
        keys.extend((name, "target", value) for value in targets_us)
        cells.extend(
            _sweep_specs(workload, target_configs, load, n_flows, seed,
                         us(80), n_seeds, "pst_target")
        )

    interval_fct: Dict[str, Dict[float, Optional[float]]] = {
        name: {} for name in workloads
    }
    target_fct: Dict[str, Dict[float, Optional[float]]] = {
        name: {} for name in workloads
    }
    for (name, panel, value), result in zip(keys, run_grid(cells, executor)):
        out = interval_fct if panel == "interval" else target_fct
        out[name][value] = result.summary.overall_avg
    return Fig12Result(
        intervals_us=intervals_us,
        targets_us=targets_us,
        interval_fct=interval_fct,
        target_fct=target_fct,
    )


def summarize_for_validation(result: Fig12Result) -> dict:
    """Machine-readable grid summary (validation + ``--results-out``)."""
    cells = {}
    for workload, by_value in result.interval_fct.items():
        for value, fct in by_value.items():
            if fct is not None:
                cells[f"{workload}|pst_interval={value:g}us"] = {
                    "overall_avg": float(fct)
                }
    for workload, by_value in result.target_fct.items():
        for value, fct in by_value.items():
            if fct is not None:
                cells[f"{workload}|pst_target={value:g}us"] = {
                    "overall_avg": float(fct)
                }
    derived = {}
    for workload in result.interval_fct:
        interval_spread = result.interval_spread(workload)
        if interval_spread is not None:
            derived[f"interval_spread|{workload}"] = interval_spread
        target_spread = result.target_spread(workload)
        if target_spread is not None:
            derived[f"target_spread|{workload}"] = target_spread
    return {
        "figure": "fig12",
        "params": {},
        "cells": cells,
        "derived": derived,
    }


def render(result: Fig12Result) -> str:
    """Render both sensitivity panels plus the spread summary."""
    rows: List[List[str]] = []
    for workload in result.interval_fct:
        base = result.interval_fct[workload][result.intervals_us[-1]]
        for value in result.intervals_us:
            fct = result.interval_fct[workload][value]
            ratio = (fct / base) if (fct is not None and base) else None
            rows.append([workload, f"pst_interval={value:.0f}us", fmt_ratio(ratio)])
    for workload in result.target_fct:
        base = result.target_fct[workload][result.targets_us[1]]
        for value in result.targets_us:
            fct = result.target_fct[workload][value]
            ratio = (fct / base) if (fct is not None and base) else None
            rows.append([workload, f"pst_target={value:.0f}us", fmt_ratio(ratio)])
    table = format_table(
        ["workload", "setting", "overall FCT (normalized)"],
        rows,
        title="Figure 12: parameter sensitivity (all ratios should stay ~1.00)",
    )
    spreads = ", ".join(
        f"{workload} interval spread={result.interval_spread(workload):.1%} "
        f"target spread={result.target_spread(workload):.1%}"
        for workload in result.interval_fct
    )
    return f"{table}\n{spreads}"
