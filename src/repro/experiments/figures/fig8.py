"""Figure 8: ECN# vs DCTCP-RED-Tail as RTT variation grows (3x/4x/5x).

Plots NFCT = FCT(ECN#)/FCT(RED-Tail) for each variation: overall average
stays near 1.0 (within ~8%) while short-flow 99p drops further as variation
grows (paper: -37% at 3x, -71% at 4x, -73% at 5x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...sim.units import us
from ...workloads.websearch import WEB_SEARCH
from ..executor import Executor, run_grid, seed_specs
from ..fct import FctSummary
from ..report import fmt_ratio, format_table
from ..schemes import testbed_scheme_specs
from ..specs import RunSpec

__all__ = [
    "Fig8Result",
    "run_fig8",
    "render",
    "summarize_for_validation",
    "DEFAULT_VARIATIONS",
]

DEFAULT_VARIATIONS: Tuple[float, ...] = (3.0, 4.0, 5.0)


@dataclass
class Fig8Result:
    """summaries[variation][load][scheme] for ECN# and RED-Tail."""

    variations: Tuple[float, ...]
    loads: Tuple[float, ...]
    summaries: Dict[float, Dict[float, Dict[str, FctSummary]]]

    def nfct(
        self, variation: float, load: float, field: str
    ) -> Optional[float]:
        mine = getattr(self.summaries[variation][load]["ECN#"], field)
        base = getattr(self.summaries[variation][load]["DCTCP-RED-Tail"], field)
        if mine is None or base is None or base == 0:
            return None
        return mine / base


def run_fig8(
    variations: Tuple[float, ...] = DEFAULT_VARIATIONS,
    loads: Tuple[float, ...] = (0.5, 0.8),
    n_flows: int = 150,
    seed: int = 31,
    rtt_min: float = us(70),
    n_seeds: int = 2,
    executor: Optional[Executor] = None,
) -> Fig8Result:
    """Run ECN# vs DCTCP-RED-Tail across RTT variations and loads."""
    schemes = {
        name: spec
        for name, spec in testbed_scheme_specs().items()
        if name in ("DCTCP-RED-Tail", "ECN#")
    }
    keys = [
        (variation, load, name)
        for variation in variations
        for load in loads
        for name in schemes
    ]
    cells = [
        seed_specs(
            RunSpec.star(
                schemes[name],
                workload=WEB_SEARCH.name,
                load=load,
                n_flows=n_flows,
                seed=seed,
                label=name,
                variation=variation,
                rtt_min=rtt_min,
            ),
            n_seeds,
        )
        for variation, load, name in keys
    ]
    summaries: Dict[float, Dict[float, Dict[str, FctSummary]]] = {
        variation: {load: {} for load in loads} for variation in variations
    }
    for (variation, load, name), result in zip(keys, run_grid(cells, executor)):
        summaries[variation][load][name] = result.summary
    return Fig8Result(variations=variations, loads=loads, summaries=summaries)


def summarize_for_validation(result: Fig8Result) -> dict:
    """Machine-readable grid summary (validation + ``--results-out``)."""
    cells = {}
    derived = {}
    for variation in result.variations:
        for load in result.loads:
            for scheme, summary in result.summaries[variation][load].items():
                key = f"variation={variation:g}|load={load:g}|scheme={scheme}"
                cells[key] = summary.metrics()
            nfct = result.nfct(variation, load, "short_p99")
            if nfct is not None:
                derived[
                    f"short_p99_gain|variation={variation:g}|load={load:g}"
                ] = 1.0 - nfct
    return {
        "figure": "fig8",
        "params": {},
        "cells": cells,
        "derived": derived,
    }


def render(result: Fig8Result) -> str:
    """Render the NFCT-vs-variation table."""
    rows: List[List[str]] = []
    for variation in result.variations:
        for load in result.loads:
            rows.append(
                [
                    f"{variation:.0f}x",
                    f"{load:.0%}",
                    fmt_ratio(result.nfct(variation, load, "overall_avg")),
                    fmt_ratio(result.nfct(variation, load, "short_p99")),
                ]
            )
    return format_table(
        ["variation", "load", "NFCT overall avg", "NFCT short p99"],
        rows,
        title=(
            "Figure 8: ECN# normalized to DCTCP-RED-Tail under larger RTT "
            "variations (web search; short p99 should fall as variation grows)"
        ),
    )
