"""Figure 5: flow-size distributions of the two production workloads."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ...workloads.datamining import DATA_MINING
from ...workloads.distributions import EmpiricalCdf
from ...workloads.websearch import WEB_SEARCH
from ..report import format_table

__all__ = ["Fig5Result", "run_fig5", "render", "summarize_for_validation"]

PROBE_SIZES: Tuple[int, ...] = (1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000)


@dataclass
class Fig5Result:
    """CDF curves and summary stats per workload."""

    curves: Dict[str, Tuple[List[float], List[float]]]
    means: Dict[str, float]
    cdf_at_probe: Dict[str, Dict[int, float]]


def run_fig5() -> Fig5Result:
    """Evaluate both workload CDFs (curves, means, probe points)."""
    workloads: Dict[str, EmpiricalCdf] = {
        "web-search": WEB_SEARCH,
        "data-mining": DATA_MINING,
    }
    curves = {name: wl.curve() for name, wl in workloads.items()}
    means = {name: wl.mean() for name, wl in workloads.items()}
    probes = {
        name: {size: wl.cdf_at(size) for size in PROBE_SIZES}
        for name, wl in workloads.items()
    }
    return Fig5Result(curves=curves, means=means, cdf_at_probe=probes)


def summarize_for_validation(result: Fig5Result) -> dict:
    """Machine-readable grid summary (validation + ``--results-out``)."""
    cells = {}
    for name in result.means:
        metrics = {"mean_bytes": float(result.means[name])}
        for size, probability in result.cdf_at_probe[name].items():
            metrics[f"cdf_at_{size}"] = float(probability)
        cells[f"workload={name}"] = metrics
    return {"figure": "fig5", "params": {}, "cells": cells, "derived": {}}


def render(result: Fig5Result) -> str:
    """Render the CDF probe table plus per-workload means."""
    rows: List[List[str]] = []
    for size in PROBE_SIZES:
        rows.append(
            [
                f"{size:,}B",
                f"{result.cdf_at_probe['web-search'][size]:.2f}",
                f"{result.cdf_at_probe['data-mining'][size]:.2f}",
            ]
        )
    table = format_table(
        ["flow size", "web-search CDF", "data-mining CDF"],
        rows,
        title="Figure 5: flow-size CDFs (both heavy-tailed)",
    )
    means = ", ".join(
        f"{name} mean={value / 1e6:.2f}MB" for name, value in result.means.items()
    )
    return f"{table}\n{means}"
