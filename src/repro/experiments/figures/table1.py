"""Table 1 / Figure 1: RTT variations from processing components.

Regenerates the five-row RTT statistics table by sampling the calibrated
processing-delay components (~3000 samples per case, as in the paper's
ApacheBench methodology) and summarising mean / std / 90th / 99th
percentiles.  The headline claim to reproduce: the mean RTT of the loaded
SLB+hypervisor case is ~2.7x the bare-stack case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ...measurement.stats import RttSummary, summarize_rtts
from ...netem.components import TABLE1_CASES, sample_case_rtts
from ..report import format_table

__all__ = ["Table1Result", "run_table1", "render", "summarize_for_validation"]

PAPER_ROWS: Dict[str, Dict[str, float]] = {
    "Networking Stack": {"mean": 39.3, "std": 12.2, "p90": 59.0, "p99": 79.0},
    "Networking Stack + SLB": {"mean": 63.9, "std": 18.3, "p90": 87.0, "p99": 121.0},
    "Networking Stack + Hypervisor": {
        "mean": 69.3,
        "std": 18.8,
        "p90": 91.0,
        "p99": 130.0,
    },
    "Networking Stack + SLB + Hypervisor": {
        "mean": 99.2,
        "std": 23.0,
        "p90": 129.0,
        "p99": 161.0,
    },
    "Networking Stack(high load) + SLB + Hypervisor": {
        "mean": 105.5,
        "std": 23.6,
        "p90": 138.0,
        "p99": 178.0,
    },
}
"""The published Table 1 numbers (microseconds), for side-by-side reporting."""


@dataclass
class Table1Result:
    """Per-case RTT summaries (seconds) in paper row order."""

    cases: Dict[str, RttSummary]

    @property
    def variation_ratio(self) -> float:
        """Mean RTT of the last case over the first (paper: ~2.68x)."""
        names = list(self.cases)
        return self.cases[names[-1]].mean / self.cases[names[0]].mean


def run_table1(seed: int = 1, n_samples: int = 3000) -> Table1Result:
    """Sample every Table 1 case and summarise."""
    rng = np.random.default_rng(seed)
    cases: Dict[str, RttSummary] = {}
    for name, components in TABLE1_CASES.items():
        samples = sample_case_rtts(components, rng, n_samples=n_samples)
        cases[name] = summarize_rtts(samples)
    return Table1Result(cases=cases)


def summarize_for_validation(result: Table1Result) -> dict:
    """Machine-readable grid summary (validation + ``--results-out``)."""
    cells = {}
    for name, summary in result.cases.items():
        micro = summary.as_microseconds()
        cells[f"case={name}"] = {
            "mean_us": micro.mean,
            "std_us": micro.std,
            "p90_us": micro.p90,
            "p99_us": micro.p99,
        }
    return {
        "figure": "table1",
        "params": {},
        "cells": cells,
        "derived": {"variation_ratio": result.variation_ratio},
    }


def render(result: Table1Result) -> str:
    """Measured-vs-paper table in Table 1's format (microseconds)."""
    rows: List[List[str]] = []
    for name, summary in result.cases.items():
        micro = summary.as_microseconds()
        paper = PAPER_ROWS.get(name, {})
        rows.append(
            [
                name,
                f"{micro.mean:.1f}",
                f"{micro.std:.1f}",
                f"{micro.p90:.1f}",
                f"{micro.p99:.1f}",
                f"{paper.get('mean', float('nan')):.1f}",
                f"{paper.get('p90', float('nan')):.1f}",
            ]
        )
    table = format_table(
        ["combination", "mean(us)", "std(us)", "p90(us)", "p99(us)", "paper mean", "paper p90"],
        rows,
        title="Table 1: RTT statistics by processing components",
    )
    return f"{table}\nmax/min mean ratio: {result.variation_ratio:.2f}x (paper: 2.68x)"
