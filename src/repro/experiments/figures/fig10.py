"""Figure 10: microscopic queue occupancy (16-to-1, query burst).

Long-lived background flows (data-mining-sized, small-ish base RTTs) build
whatever standing queue the AQM tolerates; at the burst time 100 query flows
arrive at once.  The paper's observations, which this module measures:

* DCTCP-RED-Tail keeps a persistent queue near its threshold (~182 pkt at a
  220 us threshold on 10 Gbps) and absorbs the burst without drops;
* ECN# collapses the standing queue to ~pst_target (~8 pkt) and still
  absorbs the burst;
* CoDel has a small standing queue but overflows on the burst (drops).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...netem.profiles import RttProfile
from ...sim.monitor import QueueMonitor
from ...sim.packet import PacketFactory
from ...sim.units import gbps, mb, ms, us
from ...topology.star import build_incast
from ...workloads.arrivals import TransportConfig
from ...workloads.incast import launch_query
from ..faults import is_failure
from ..fct import FctCollector
from ..report import format_table
from ..runner import estimate_star_network_rtt

__all__ = [
    "Fig10Result",
    "MicroscopicRun",
    "run_microscopic",
    "run_fig10",
    "render",
    "summarize_for_validation",
]

DEFAULT_SCHEMES: Tuple[str, ...] = ("DCTCP-RED-Tail", "CoDel", "ECN#")


@dataclass
class MicroscopicRun:
    """One scheme's microscopic trace.

    ``standing_queue_pkts`` is the pre-burst long-window average;
    ``floor_queue_pkts`` is the best (lowest-average) 5 ms window before the
    burst -- the converged state the paper's single 5 ms snapshot captures.
    ECN#'s persistent control converges along a sawtooth (Algorithm 1 resets
    its escalation count whenever one packet dips below pst_target), so the
    long-window average sits above the converged floor.
    """

    scheme: str
    samples: Tuple[List[float], List[int]]  # (times, queue packets)
    standing_queue_pkts: float  # average before the burst
    floor_queue_pkts: float  # best 5ms-window average before the burst
    peak_queue_pkts: int
    drops: int
    marks: int
    query_fcts: List[float] = field(default_factory=list)
    query_timeouts: int = 0
    queries_completed: int = 0
    events: int = 0
    """Simulator events dispatched by this run (resource attribution)."""

    def metrics(self) -> Dict[str, float]:
        """The validation-gated microscopic statistics as a flat
        name -> value map (query-FCT entries omitted when no query
        completed)."""
        values: Dict[str, float] = {
            "standing_queue_pkts": float(self.standing_queue_pkts),
            "floor_queue_pkts": float(self.floor_queue_pkts),
            "peak_queue_pkts": float(self.peak_queue_pkts),
            "drops": float(self.drops),
            "query_timeouts": float(self.query_timeouts),
        }
        if self.query_fcts:
            values["avg_query_fct"] = float(np.mean(self.query_fcts))
            values["p99_query_fct"] = float(np.percentile(self.query_fcts, 99))
        return values


@dataclass
class Fig10Result:
    runs: Dict[str, MicroscopicRun]
    fanout: int
    burst_time: float


def run_microscopic(
    aqm_factory,
    scheme_name: str,
    fanout: int = 100,
    seed: int = 51,
    n_background: int = 4,
    background_bytes: int = 80_000_000,
    warmup: float = ms(5),
    burst_time: float = ms(20),
    end_time: float = ms(45),
    sample_interval: float = us(5),
    rtt_min: float = us(80),
    variation: float = 3.0,
    init_cwnd: float = 2.0,
    jitter: float = us(300),
) -> MicroscopicRun:
    """One scheme's run: background long flows + one query burst."""
    from ...telemetry.spans import maybe_span

    with maybe_span("setup", kind="engine"):
        topo = build_incast(aqm_factory=aqm_factory, buffer_bytes=mb(1))
        rng = np.random.default_rng(seed)
        factory = PacketFactory()
        profile = RttProfile.from_variation(rtt_min, variation)
        network_rtt = estimate_star_network_rtt()
        transport = TransportConfig(init_cwnd=init_cwnd)

        # Long-lived background flows from the first senders, base RTTs
        # drawn from the variation profile (the small-RTT ones create the
        # standing queue under a tail-RTT threshold).
        from ...tcp.factory import open_flow

        for index in range(n_background):
            sender = topo.senders[index]
            handle = open_flow(
                topo.network,
                factory,
                sender,
                topo.receiver,
                background_bytes,
                cc=transport.cc,
                init_cwnd=transport.init_cwnd,
                min_rto=transport.min_rto,
            )
            base_rtt = profile.sample_one(rng)
            topo.stage_for(sender).set_flow_delay(
                handle.flow_id, max(0.0, base_rtt - network_rtt)
            )

        monitor = QueueMonitor(
            topo.sim, topo.bottleneck, interval=sample_interval, start=warmup,
            stop=end_time,
        )

        collector = FctCollector()
        launch_query(
            topo.network,
            factory,
            topo.senders,
            topo.receiver,
            fanout=fanout,
            start_time=burst_time,
            rng=rng,
            transport=transport,
            on_flow_complete=collector.record,
            jitter=jitter,
        )

    with maybe_span("drain", kind="engine", clock=topo.sim):
        topo.network.run(until=end_time)

    pre_burst = [
        (s.time, s.packets) for s in monitor.samples if s.time < burst_time
    ]
    standing = float(np.mean([p for _, p in pre_burst])) if pre_burst else 0.0
    floor = _best_window_average(pre_burst, window=ms(5))
    return MicroscopicRun(
        scheme=scheme_name,
        samples=monitor.series(),
        standing_queue_pkts=standing,
        floor_queue_pkts=floor,
        peak_queue_pkts=monitor.max_packets(),
        drops=topo.bottleneck.stats.dropped_total,
        marks=topo.bottleneck.aqm.stats.marks,
        query_fcts=[r.fct for r in collector.records],
        query_timeouts=collector.total_timeouts(),
        queries_completed=len(collector.records),
        events=topo.sim.events_processed,
    )


def _best_window_average(
    samples: List[Tuple[float, int]], window: float
) -> float:
    """Lowest mean queue over any ``window``-long span of the samples."""
    if not samples:
        return 0.0
    best = float("inf")
    start_index = 0
    total = 0.0
    count = 0
    for index, (time, packets) in enumerate(samples):
        total += packets
        count += 1
        while samples[start_index][0] < time - window:
            total -= samples[start_index][1]
            count -= 1
            start_index += 1
        if count > 0 and time - samples[start_index][0] >= window * 0.9:
            best = min(best, total / count)
    return best if best != float("inf") else float(np.mean([p for _, p in samples]))


def run_fig10(
    fanout: int = 100,
    seed: int = 51,
    schemes: Tuple[str, ...] = DEFAULT_SCHEMES,
    executor=None,
) -> Fig10Result:
    """Run the microscopic trace for each scheme at one fanout."""
    from ..executor import get_default_executor
    from ..schemes import simulation_scheme_specs
    from ..specs import RunSpec

    scheme_specs = simulation_scheme_specs()
    specs = [
        RunSpec.microscopic(
            scheme_specs[name], seed=seed, label=name, fanout=fanout
        )
        for name in schemes
    ]
    executor = executor or get_default_executor()
    runs: Dict[str, MicroscopicRun] = dict(zip(schemes, executor.run(specs)))
    return Fig10Result(runs=runs, fanout=fanout, burst_time=ms(20))


def summarize_for_validation(result: Fig10Result) -> dict:
    """Machine-readable grid summary (validation + ``--results-out``)."""
    cells = {
        f"scheme={name}": run.metrics()
        for name, run in result.runs.items()
        if run is not None and not is_failure(run)
    }
    derived: Dict[str, float] = {}
    red = result.runs.get("DCTCP-RED-Tail")
    sharp = result.runs.get("ECN#")
    if (
        red is not None and not is_failure(red)
        and sharp is not None and not is_failure(sharp)
        and red.standing_queue_pkts > 0
    ):
        derived["ecn_sharp_standing_ratio"] = (
            sharp.standing_queue_pkts / red.standing_queue_pkts
        )
    return {
        "figure": "fig10",
        "params": {"fanout": result.fanout},
        "cells": cells,
        "derived": derived,
    }


def render(result: Fig10Result) -> str:
    """Render the standing-queue / burst table."""
    rows: List[List[str]] = []
    for name, run in result.runs.items():
        if run is None or is_failure(run):
            kind = getattr(run, "kind", "failed")
            rows.append([name, "-", "-", "-", "-", "-", f"({kind})"])
            continue
        rows.append(
            [
                name,
                f"{run.standing_queue_pkts:.1f}",
                f"{run.floor_queue_pkts:.1f}",
                str(run.peak_queue_pkts),
                str(run.drops),
                str(run.query_timeouts),
                f"{run.queries_completed}/{result.fanout}",
            ]
        )
    return format_table(
        ["scheme", "standing q (pkt)", "floor q (5ms)", "peak q", "drops", "query timeouts", "queries done"],
        rows,
        title=(
            "Figure 10: queue occupancy with a "
            f"{result.fanout}-flow query burst (paper: RED-Tail ~182 pkt "
            "standing, ECN# ~8 pkt, CoDel drops)"
        ),
    )
