"""Figure 13: ECN# under a DWRR packet scheduler, versus TCN.

Three long-lived flows are classified into three DWRR services with weights
2:1:1 and started in sequence; short probe flows sample queueing delay
across all services.  Two properties are measured per scheme:

* scheduling preservation -- phase-by-phase goodputs should follow the
  staircase 9.6 -> (6.4, 3.2) -> (4.8, 2.4, 2.4) Gbps;
* short-flow FCT -- ECN# should beat TCN (paper: ~19.6% lower average)
  because it removes the per-queue standing queues TCN's static
  instantaneous threshold leaves behind.

Sojourn-time marking is what makes both schemes scheduler-compatible at
all; queue-length DCTCP-RED has no meaningful threshold per DWRR queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ...sim.packet import PacketFactory
from ...sim.scheduler import DwrrScheduler
from ...sim.units import gbps, ms, us
from ...tcp.factory import FlowHandle, open_flow
from ...topology.star import build_star
from ...workloads.arrivals import TransportConfig
from ..faults import is_failure
from ..fct import FctCollector
from ..report import fmt_opt, format_table

__all__ = [
    "SchedulerRun",
    "Fig13Result",
    "run_scheduler_experiment",
    "run_fig13",
    "render",
    "summarize_for_validation",
]

WEIGHTS: Tuple[float, ...] = (2.0, 1.0, 1.0)


@dataclass
class SchedulerRun:
    """One scheme's DWRR run."""

    scheme: str
    # goodputs[phase][flow_index] in bits/s; phases are 0 (flow 1 alone),
    # 1 (flows 1-2), 2 (flows 1-3).
    goodputs: List[List[float]]
    probe_fcts: List[float] = field(default_factory=list)

    def avg_probe_fct(self) -> Optional[float]:
        return float(np.mean(self.probe_fcts)) if self.probe_fcts else None

    def phase3_share_ratios(self) -> Optional[Tuple[float, float]]:
        """(flow1/flow2, flow1/flow3) goodput ratios in the last phase;
        both should approach weight ratio 2.0."""
        phase = self.goodputs[2]
        if len(phase) < 3 or phase[1] <= 0 or phase[2] <= 0:
            return None
        return phase[0] / phase[1], phase[0] / phase[2]


@dataclass
class Fig13Result:
    runs: Dict[str, SchedulerRun]

    def probe_fct_ratio(self) -> Optional[float]:
        """ECN# average probe FCT over TCN's (paper: ~0.80); ``None`` when
        either side's run failed."""
        ecn_sharp = self.runs.get("ECN#")
        tcn = self.runs.get("TCN")
        if ecn_sharp is None or tcn is None:
            return None
        if is_failure(ecn_sharp) or is_failure(tcn):
            return None
        mine = ecn_sharp.avg_probe_fct()
        theirs = tcn.avg_probe_fct()
        if mine is None or theirs is None or theirs == 0:
            return None
        return mine / theirs


class _GoodputMeter:
    """Samples a sink's cumulative in-order segments at window edges."""

    def __init__(self, sim, handle: FlowHandle) -> None:
        self._sim = sim
        self._handle = handle
        self._marks: Dict[str, int] = {}

    def mark(self, label: str) -> None:
        self._marks[label] = self._handle.sink.expected

    def goodput(self, start_label: str, end_label: str, window: float) -> float:
        delta = self._marks[end_label] - self._marks[start_label]
        return delta * self._handle.sender.mss * 8.0 / window


def run_scheduler_experiment(
    aqm_factory: Callable,
    scheme_name: str,
    phase: float = ms(60),
    link_rate_bps: float = gbps(10),
    seed: int = 81,
    probe_load: float = 0.10,
    long_flow_bytes: int = 400_000_000,
) -> SchedulerRun:
    """Run the 3-service DWRR experiment for one scheme."""
    topo = build_star(
        n_senders=16,
        link_rate_bps=link_rate_bps,
        aqm_factory=aqm_factory,
        bottleneck_scheduler_factory=lambda: DwrrScheduler(WEIGHTS),
    )
    sim = topo.sim
    rng = np.random.default_rng(seed)
    factory = PacketFactory()
    transport = TransportConfig()

    # Three long-lived flows, one per service, staggered one phase apart.
    meters: List[_GoodputMeter] = []
    for index in range(3):
        handle = open_flow(
            topo.network,
            factory,
            topo.senders[index],
            topo.receiver,
            long_flow_bytes,
            cc=transport.cc,
            start_time=index * phase,
            service=index,
        )
        meters.append(_GoodputMeter(sim, handle))

    # Measurement windows: the second half of each phase (lets DWRR shares
    # converge after each new flow joins).
    windows: List[Tuple[str, float, str, float]] = []
    for phase_index in range(3):
        start = phase_index * phase + phase / 2.0
        end = (phase_index + 1) * phase
        start_label, end_label = f"s{phase_index}", f"e{phase_index}"
        windows.append((start_label, start, end_label, end))
        for meter in meters:
            sim.schedule_at(start, meter.mark, start_label)
            sim.schedule_at(end, meter.mark, end_label)

    # Probe short flows across all services from the remaining senders.
    collector = FctCollector()
    probe_rate = probe_load * link_rate_bps / (8.0 * 31_500)  # mean 3-60KB

    def launch_probe() -> None:
        if sim.now >= 3 * phase:
            return
        sender = topo.senders[3 + int(rng.integers(13))]
        size = int(rng.integers(3_000, 60_001))
        open_flow(
            topo.network,
            factory,
            sender,
            topo.receiver,
            size,
            cc=transport.cc,
            service=int(rng.integers(3)),
            min_rto=transport.min_rto,
            on_complete=collector.record,
        )
        sim.schedule(float(rng.exponential(1.0 / probe_rate)), launch_probe)

    sim.schedule(float(rng.exponential(1.0 / probe_rate)), launch_probe)

    topo.network.run(until=3 * phase)

    goodputs: List[List[float]] = []
    for phase_index, (start_label, start, end_label, end) in enumerate(windows):
        window = end - start
        goodputs.append(
            [m.goodput(start_label, end_label, window) for m in meters]
        )
    return SchedulerRun(
        scheme=scheme_name,
        goodputs=goodputs,
        probe_fcts=[r.fct for r in collector.records],
    )


def run_fig13(seed: int = 81, phase: float = ms(60), executor=None) -> Fig13Result:
    """Run the DWRR experiment for ECN# and TCN (both through the executor)."""
    from ..executor import get_default_executor
    from ..schemes import simulation_scheme_specs
    from ..specs import RunSpec

    scheme_specs = simulation_scheme_specs()
    names = ("ECN#", "TCN")
    specs = [
        RunSpec.scheduler(scheme_specs[name], seed=seed, label=name, phase=phase)
        for name in names
    ]
    executor = executor or get_default_executor()
    runs: Dict[str, SchedulerRun] = dict(zip(names, executor.run(specs)))
    return Fig13Result(runs=runs)


def summarize_for_validation(result: Fig13Result) -> dict:
    """Machine-readable grid summary (validation + ``--results-out``)."""
    cells = {}
    for name, run in result.runs.items():
        if is_failure(run):
            continue
        metrics = {}
        avg_probe = run.avg_probe_fct()
        if avg_probe is not None:
            metrics["avg_probe_fct"] = avg_probe
        shares = run.phase3_share_ratios()
        if shares is not None:
            metrics["phase3_share_f1_f2"] = shares[0]
            metrics["phase3_share_f1_f3"] = shares[1]
        cells[f"scheme={name}"] = metrics
    derived = {}
    ratio = result.probe_fct_ratio()
    if ratio is not None:
        derived["probe_fct_ratio"] = ratio
    return {"figure": "fig13", "params": {}, "cells": cells, "derived": derived}


def render(result: Fig13Result) -> str:
    """Render the goodput staircase plus the probe-FCT comparison."""
    rows: List[List[str]] = []
    for name, run in result.runs.items():
        if is_failure(run):
            kind = getattr(run, "kind", "failed")
            rows.append([name, f"({kind})", "-", "-", "-"])
            continue
        for phase_index, phase_goodputs in enumerate(run.goodputs):
            rows.append(
                [
                    name,
                    f"phase {phase_index + 1}",
                    *(f"{g / 1e9:.2f}" for g in phase_goodputs),
                ]
            )
    table = format_table(
        ["scheme", "phase", "flow1 Gbps", "flow2 Gbps", "flow3 Gbps"],
        rows,
        title=(
            "Figure 13a: DWRR goodput staircase "
            "(expect ~9.6 -> 6.4/3.2 -> 4.8/2.4/2.4)"
        ),
    )
    fct_lines = [
        f"{name}: avg probe FCT = "
        + fmt_opt(
            None
            if is_failure(run) or not run.avg_probe_fct()
            else run.avg_probe_fct() * 1e6,
            ".0f",
        )
        + "us"
        for name, run in result.runs.items()
    ]
    ratio = result.probe_fct_ratio()
    ratio_line = (
        f"ECN#/TCN probe FCT ratio: {ratio:.2f} (paper: ~0.80)"
        if ratio is not None
        else "ECN#/TCN probe FCT ratio: -"
    )
    return "\n".join([table, *fct_lines, ratio_line])
