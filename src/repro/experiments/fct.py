"""Flow completion time collection and breakdown (Section 5.1 metrics).

The paper reports, per scheme and load: overall average FCT, average and
99th-percentile FCT of short flows (< 100 KB), and average FCT of large
flows (> 10 MB).  :class:`FctCollector` accumulates completed flows and
:class:`FctSummary` computes exactly that breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.stats_util import mean_or_none, percentile_or_none
from ..tcp.factory import FlowHandle

__all__ = ["FlowRecord", "FctCollector", "FctSummary", "SHORT_FLOW_MAX", "LARGE_FLOW_MIN"]

SHORT_FLOW_MAX = 100 * 1024
"""Short flows: size in (0, 100 KB] (paper's breakdown)."""

LARGE_FLOW_MIN = 10 * 1024 * 1024
"""Large flows: size in [10 MB, inf) (paper's breakdown)."""


@dataclass(frozen=True)
class FlowRecord:
    """One completed flow."""

    flow_id: int
    size_bytes: int
    fct: float
    start_time: float
    timeouts: int
    retransmissions: int


class FctCollector:
    """Accumulates completed flows; pass :meth:`record` as the completion
    callback of a traffic generator."""

    def __init__(self) -> None:
        self.records: List[FlowRecord] = []

    def record(self, handle: FlowHandle) -> None:
        self.records.append(
            FlowRecord(
                flow_id=handle.flow_id,
                size_bytes=handle.size_bytes,
                fct=handle.fct,
                start_time=handle.start_time,
                timeouts=handle.sender.stats.timeouts,
                retransmissions=handle.sender.stats.retransmissions,
            )
        )

    def __len__(self) -> int:
        return len(self.records)

    def summary(
        self,
        short_max: int = SHORT_FLOW_MAX,
        large_min: int = LARGE_FLOW_MIN,
    ) -> "FctSummary":
        return FctSummary.from_records(self.records, short_max, large_min)

    def total_timeouts(self) -> int:
        return sum(r.timeouts for r in self.records)


def _avg(values: Sequence[float]) -> Optional[float]:
    return mean_or_none(values)


def _p99(values: Sequence[float]) -> Optional[float]:
    return percentile_or_none(values, 99)


@dataclass(frozen=True)
class FctSummary:
    """The paper's FCT breakdown.  Fields are None when no flow qualifies
    (small reduced-scale runs may have no > 10 MB flow)."""

    n_flows: int
    overall_avg: Optional[float]
    overall_p99: Optional[float]
    short_avg: Optional[float]
    short_p99: Optional[float]
    large_avg: Optional[float]
    n_short: int
    n_large: int

    @classmethod
    def from_records(
        cls,
        records: Sequence[FlowRecord],
        short_max: int = SHORT_FLOW_MAX,
        large_min: int = LARGE_FLOW_MIN,
    ) -> "FctSummary":
        all_fct = [r.fct for r in records]
        short_fct = [r.fct for r in records if r.size_bytes <= short_max]
        large_fct = [r.fct for r in records if r.size_bytes >= large_min]
        return cls(
            n_flows=len(records),
            overall_avg=_avg(all_fct),
            overall_p99=_p99(all_fct),
            short_avg=_avg(short_fct),
            short_p99=_p99(short_fct),
            large_avg=_avg(large_fct),
            n_short=len(short_fct),
            n_large=len(large_fct),
        )

    def metrics(self) -> Dict[str, float]:
        """The validation-gated FCT statistics as a flat name -> value map
        (fields with no qualifying flows are omitted, not ``None``)."""
        candidates = {
            "overall_avg": self.overall_avg,
            "short_avg": self.short_avg,
            "short_p99": self.short_p99,
            "large_avg": self.large_avg,
        }
        return {k: float(v) for k, v in candidates.items() if v is not None}

    def normalized_to(self, baseline: "FctSummary") -> "NormalizedFct":
        """Ratios against a baseline scheme (how the paper's figures plot)."""

        def ratio(mine: Optional[float], theirs: Optional[float]) -> Optional[float]:
            if mine is None or theirs is None or theirs == 0:
                return None
            return mine / theirs

        return NormalizedFct(
            overall_avg=ratio(self.overall_avg, baseline.overall_avg),
            short_avg=ratio(self.short_avg, baseline.short_avg),
            short_p99=ratio(self.short_p99, baseline.short_p99),
            large_avg=ratio(self.large_avg, baseline.large_avg),
        )


@dataclass(frozen=True)
class NormalizedFct:
    """FCT ratios versus a baseline (1.0 = identical, < 1.0 = better)."""

    overall_avg: Optional[float]
    short_avg: Optional[float]
    short_p99: Optional[float]
    large_avg: Optional[float]
