"""Deterministic run specifications for the experiment executor.

Every paper figure is a grid of fully independent DES runs -- one cell per
(scheme, sweep point, seed).  A :class:`RunSpec` captures *everything* that
determines one run's output: the topology kind, the AQM (by registry name
plus parameters, see :mod:`repro.experiments.schemes`), the workload, the
load point, the flow count, the seed, the transport configuration and the
RTT profile.  Specs are frozen, hashable and JSON-serializable, which makes
them safe to ship across process boundaries (``ProcessPoolExecutor`` with
the spawn start method) and to use as on-disk cache keys.

Because each run constructs its own :class:`~repro.sim.engine.Simulator`
and ``numpy.random.default_rng(seed)``, a spec's result is bit-identical
whether it executes in-process, in a worker process, or is replayed from
the result cache.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "AqmSpec",
    "RunSpec",
    "resolve_workload",
    "stable_hash",
    "FIDELITIES",
    "FIDELITY_ENV",
    "resolve_fidelity",
]

Params = Tuple[Tuple[str, Any], ...]

FIDELITIES: Tuple[str, ...] = ("packet", "fluid")
"""Simulation fidelities: per-packet DES or the flow-level fluid model."""

FIDELITY_ENV = "REPRO_FIDELITY"
"""Environment default for the fidelity (overridden by explicit flags).

Resolution happens where specs are *built* (CLI, scenario compiler), never
inside the executor: a spec's result must be a pure function of the spec so
cache entries stay valid across environments.
"""


def resolve_fidelity(explicit: Optional[str] = None) -> str:
    """Effective fidelity: ``explicit`` > ``$REPRO_FIDELITY`` > ``packet``."""
    value = explicit if explicit is not None else os.environ.get(FIDELITY_ENV)
    if value is None or value == "":
        return "packet"
    if value not in FIDELITIES:
        raise ValueError(
            f"unknown fidelity {value!r} (choose from {', '.join(FIDELITIES)})"
        )
    return value


# Rig-specific knobs each RunSpec kind accepts in ``extras``.  Anything
# else raises at construction time: a typo'd key (``fidelity=fliud``,
# ``fanuot=100``) must fail loudly instead of silently running with the
# rig defaults at packet level.
_KNOWN_EXTRAS: Dict[str, frozenset] = {
    "star": frozenset(
        {"n_senders", "link_rate_bps", "link_delay", "buffer_bytes", "fidelity"}
    ),
    "leafspine": frozenset(
        {"dims", "link_rate_bps", "buffer_bytes", "oversubscription", "fidelity"}
    ),
    "microscopic": frozenset(
        {
            "fanout",
            "n_background",
            "background_bytes",
            "warmup",
            "burst_time",
            "end_time",
            "sample_interval",
            "rtt_min",
            "variation",
            "init_cwnd",
            "jitter",
            "fidelity",
        }
    ),
    # Figure 13's DWRR study has no fluid analogue (it measures scheduler
    # interaction, not congestion dynamics), so no ``fidelity`` knob.
    "scheduler": frozenset(
        {"phase", "link_rate_bps", "probe_load", "long_flow_bytes"}
    ),
}


def _freeze_value(value: Any) -> Any:
    """Canonical hashable form of a parameter value (lists become tuples)."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(v) for v in value)
    return value


def _freeze_params(params: Dict[str, Any]) -> Params:
    """Sorted key/value tuple form of a parameter dict (hashable, stable)."""
    return tuple(sorted((k, _freeze_value(v)) for k, v in params.items()))


def stable_hash(payload: Any) -> str:
    """SHA-256 over a canonical JSON encoding of ``payload``."""
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class AqmSpec:
    """An AQM identified by registry name plus constructor parameters.

    Unlike the closure factories in :mod:`repro.experiments.schemes`, an
    ``AqmSpec`` is picklable and hashable, so it can cross process
    boundaries and key the result cache.  ``build()`` is itself a zero-arg
    factory usable anywhere an ``aqm_factory`` callable is expected.
    """

    kind: str
    params: Params = ()

    @classmethod
    def make(cls, kind: str, **params: float) -> "AqmSpec":
        return cls(kind=kind, params=_freeze_params(params))

    def build(self):
        from .schemes import build_aqm  # deferred: schemes imports this module

        return build_aqm(self.kind, dict(self.params))

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict) -> "AqmSpec":
        return cls.make(data["kind"], **data["params"])


def resolve_workload(name: str):
    """Look up a flow-size distribution by its report name."""
    from ..workloads.datamining import DATA_MINING
    from ..workloads.websearch import WEB_SEARCH

    workloads = {WEB_SEARCH.name: WEB_SEARCH, DATA_MINING.name: DATA_MINING}
    try:
        return workloads[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r} (available: {sorted(workloads)})"
        ) from None


@dataclass(frozen=True)
class RunSpec:
    """One run's full parameter set.

    ``kind`` selects the rig ("star", "leafspine", "microscopic" or
    "scheduler"); fields left at ``None`` fall through to the rig's own
    defaults, so a spec only pins what the experiment varies.  ``extras``
    carries rig-specific knobs (leaf-spine ``dims``, incast ``fanout``,
    scheduler ``phase``, ...) as a sorted key/value tuple.  ``label`` is the
    scheme's display name; it travels with the result (and therefore with
    the cache entry), so it participates in the spec identity.
    """

    kind: str
    aqm: AqmSpec
    seed: int
    label: str = ""
    workload: Optional[str] = None
    load: Optional[float] = None
    n_flows: Optional[int] = None
    variation: Optional[float] = None
    rtt_min: Optional[float] = None
    rtt_shape: Optional[str] = None
    transport: Params = ()
    extras: Params = field(default=())

    def __post_init__(self) -> None:
        known = _KNOWN_EXTRAS.get(self.kind)
        if known is not None:
            unknown = {k for k, _ in self.extras} - known
            if unknown:
                raise ValueError(
                    f"unknown extras for kind {self.kind!r}: {sorted(unknown)} "
                    f"(accepted: {sorted(known)})"
                )
        fidelity = dict(self.extras).get("fidelity")
        if fidelity is not None and fidelity not in FIDELITIES:
            raise ValueError(
                f"unknown fidelity {fidelity!r} "
                f"(choose from {', '.join(FIDELITIES)})"
            )

    # ------------------------------------------------------------ builders

    @classmethod
    def star(
        cls,
        aqm: AqmSpec,
        workload: str,
        load: float,
        n_flows: int,
        seed: int,
        label: str = "",
        transport: Optional[Dict[str, Any]] = None,
        **kwargs: Any,
    ) -> "RunSpec":
        """A testbed-style star FCT run (``run_star_fct``)."""
        return cls._fct("star", aqm, workload, load, n_flows, seed, label,
                        transport, kwargs)

    @classmethod
    def leafspine(
        cls,
        aqm: AqmSpec,
        workload: str,
        load: float,
        n_flows: int,
        seed: int,
        label: str = "",
        transport: Optional[Dict[str, Any]] = None,
        **kwargs: Any,
    ) -> "RunSpec":
        """A large-scale leaf-spine FCT run (``run_leafspine_fct``)."""
        return cls._fct("leafspine", aqm, workload, load, n_flows, seed,
                        label, transport, kwargs)

    @classmethod
    def microscopic(
        cls, aqm: AqmSpec, seed: int, label: str = "", **kwargs: Any
    ) -> "RunSpec":
        """A Figure 10/11 incast-burst run (``run_microscopic``)."""
        return cls(kind="microscopic", aqm=aqm, seed=seed, label=label,
                   extras=_freeze_params(kwargs))

    @classmethod
    def scheduler(
        cls, aqm: AqmSpec, seed: int, label: str = "", **kwargs: Any
    ) -> "RunSpec":
        """A Figure 13 DWRR scheduling run (``run_scheduler_experiment``)."""
        return cls(kind="scheduler", aqm=aqm, seed=seed, label=label,
                   extras=_freeze_params(kwargs))

    @classmethod
    def _fct(cls, kind, aqm, workload, load, n_flows, seed, label,
             transport, kwargs) -> "RunSpec":
        variation = kwargs.pop("variation", None)
        rtt_min = kwargs.pop("rtt_min", None)
        rtt_shape = kwargs.pop("rtt_shape", None)
        return cls(
            kind=kind,
            aqm=aqm,
            seed=seed,
            label=label,
            workload=workload,
            load=load,
            n_flows=n_flows,
            variation=variation,
            rtt_min=rtt_min,
            rtt_shape=rtt_shape,
            transport=_freeze_params(transport or {}),
            extras=_freeze_params(kwargs),
        )

    # ---------------------------------------------------------- identity

    def with_seed(self, seed: int) -> "RunSpec":
        return replace(self, seed=seed)

    @property
    def fidelity(self) -> str:
        """The spec's simulation fidelity (``packet`` unless overridden)."""
        return dict(self.extras).get("fidelity", "packet")

    def with_fidelity(self, fidelity: str) -> "RunSpec":
        """The same run at another fidelity.

        ``packet`` is the implicit default and is *elided* from ``extras``,
        so round-tripping a pre-fluid spec through ``with_fidelity("packet")``
        leaves its hash (and therefore its cache key) byte-identical.
        """
        if fidelity not in FIDELITIES:
            raise ValueError(
                f"unknown fidelity {fidelity!r} "
                f"(choose from {', '.join(FIDELITIES)})"
            )
        extras = dict(self.extras)
        extras.pop("fidelity", None)
        if fidelity != "packet":
            extras["fidelity"] = fidelity
        return replace(self, extras=_freeze_params(extras))

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "aqm": self.aqm.to_dict(),
            "seed": self.seed,
            "label": self.label,
            "workload": self.workload,
            "load": self.load,
            "n_flows": self.n_flows,
            "variation": self.variation,
            "rtt_min": self.rtt_min,
            "rtt_shape": self.rtt_shape,
            "transport": dict(self.transport),
            "extras": dict(self.extras),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown RunSpec fields: {sorted(unknown)}")
        return cls(
            kind=data["kind"],
            aqm=AqmSpec.from_dict(data["aqm"]),
            seed=data["seed"],
            label=data.get("label", ""),
            workload=data.get("workload"),
            load=data.get("load"),
            n_flows=data.get("n_flows"),
            variation=data.get("variation"),
            rtt_min=data.get("rtt_min"),
            rtt_shape=data.get("rtt_shape"),
            transport=_freeze_params(data.get("transport") or {}),
            extras=_freeze_params(data.get("extras") or {}),
        )

    def spec_hash(self) -> str:
        """Stable content hash of the spec (the cache key's spec half)."""
        return stable_hash(self.to_dict())

    def token(self) -> str:
        """Human-matchable identity string, ``kind|label|seed=N|hash16``.

        This is what ``REPRO_FAULT_INJECT`` directives substring-match and
        what failure records/summary tables display, so one format serves
        both injection targeting ("seed=4|", "ECN#") and forensics.
        """
        return (
            f"{self.kind}|{self.label or self.aqm.kind}|"
            f"seed={self.seed}|{self.spec_hash()[:16]}"
        )
