"""Flow-level fluid fast model (the ``fidelity=fluid`` engine).

A discrete-time, vectorized approximation of DCTCP over the paper's AQMs:
per-RTT congestion-window updates, fluid queue occupancy per port, and
analytic marking fractions for RED/CoDel/ECN#/TCN.  Consumes the same
:class:`~repro.experiments.specs.RunSpec` grids and emits the same
result shapes as the packet engine, at a small, scale-independent cost
per time step -- the path to 1000+ host fabrics.

Select it per spec (``extras['fidelity'] = 'fluid'``), per invocation
(``--fidelity fluid``) or per environment (``REPRO_FIDELITY=fluid``);
``repro validate crossfid`` certifies fluid/packet agreement.
"""

from .engine import FluidEngine, FluidFabric, FluidRunResult, choose_dt
from .marking import MarkerBank, StepMarks, build_marker_bank
from .population import FlowPopulation, leafspine_population, star_population
from .runner import (
    run_fluid_leafspine_fct,
    run_fluid_microscopic,
    run_fluid_star_fct,
)

__all__ = [
    "FluidEngine",
    "FluidFabric",
    "FluidRunResult",
    "choose_dt",
    "MarkerBank",
    "StepMarks",
    "build_marker_bank",
    "FlowPopulation",
    "star_population",
    "leafspine_population",
    "run_fluid_star_fct",
    "run_fluid_leafspine_fct",
    "run_fluid_microscopic",
]
