"""Flow populations for the fluid engine, RNG-compatible with the DES.

The fluid model needs the complete flow list -- start time, size, endpoints
and base RTT -- up front, whereas the packet engine draws these lazily as
the Poisson process unfolds.  To keep the two fidelities comparable cell by
cell, this module replays the *exact* random-draw sequence of
:class:`~repro.workloads.arrivals.PoissonTrafficGenerator` (and, for the
microscopic scenario, of ``fig10``'s setup): same seed in, same flows out.

Draw order per generated flow (matching ``PoissonTrafficGenerator``):

1. one exponential inter-arrival gap *before* the first flow (``start()``),
2. endpoint pick (one ``integers`` draw for the star's sender, two for the
   any-to-any leaf-spine pair),
3. flow size via ``workload.sample_one``,
4. base RTT via ``profile.sample_one`` (skipped internally when the
   profile's span is zero),
5. the next exponential gap -- except after the last flow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..netem.profiles import RttProfile
from ..workloads.distributions import EmpiricalCdf

__all__ = ["FlowPopulation", "star_population", "leafspine_population"]


@dataclass
class FlowPopulation:
    """Parallel arrays describing every flow of a fluid run."""

    start: np.ndarray      # arrival time (s)
    size: np.ndarray       # flow size (bytes)
    base_rtt: np.ndarray   # propagation/base RTT excluding queueing (s)
    src: np.ndarray        # source host index
    dst: np.ndarray        # destination host index

    def __len__(self) -> int:
        return len(self.start)


def _poisson_population(
    workload: EmpiricalCdf,
    load: float,
    capacity_bps: float,
    n_flows: int,
    rng: np.random.Generator,
    pick_pair,
    profile: RttProfile,
    network_rtt: float,
) -> FlowPopulation:
    mean_interarrival = 8.0 * workload.mean() / (load * capacity_bps)
    start = np.empty(n_flows)
    size = np.empty(n_flows)
    base_rtt = np.empty(n_flows)
    src = np.empty(n_flows, dtype=np.int64)
    dst = np.empty(n_flows, dtype=np.int64)
    now = float(rng.exponential(mean_interarrival))
    for i in range(n_flows):
        start[i] = now
        src[i], dst[i] = pick_pair(rng)
        size[i] = workload.sample_one(rng)
        # The packet engine installs max(0, sample - network_rtt) of netem
        # delay on top of the physical path, so the effective base RTT a
        # flow experiences is max(sample, network_rtt).
        base_rtt[i] = max(profile.sample_one(rng), network_rtt)
        if i + 1 < n_flows:
            now += float(rng.exponential(mean_interarrival))
    return FlowPopulation(start=start, size=size, base_rtt=base_rtt, src=src, dst=dst)


def star_population(
    workload: EmpiricalCdf,
    load: float,
    capacity_bps: float,
    n_flows: int,
    rng: np.random.Generator,
    n_senders: int,
    profile: RttProfile,
    network_rtt: float,
) -> FlowPopulation:
    """Star/incast population: random sender, fixed receiver ``n_senders``."""

    def pick(gen: np.random.Generator):
        return int(gen.integers(n_senders)), n_senders

    return _poisson_population(
        workload, load, capacity_bps, n_flows, rng, pick, profile, network_rtt
    )


def leafspine_population(
    workload: EmpiricalCdf,
    load: float,
    capacity_bps: float,
    n_flows: int,
    rng: np.random.Generator,
    n_hosts: int,
    profile: RttProfile,
    network_rtt: float,
) -> FlowPopulation:
    """Leaf-spine population: uniform random distinct (src, dst) pairs."""

    def pick(gen: np.random.Generator):
        src_index = int(gen.integers(n_hosts))
        dst_index = int(gen.integers(n_hosts - 1))
        if dst_index >= src_index:
            dst_index += 1
        return src_index, dst_index

    return _poisson_population(
        workload, load, capacity_bps, n_flows, rng, pick, profile, network_rtt
    )
