"""Fluid-fidelity runners mirroring the packet runners' contracts.

Each ``run_fluid_*`` function accepts the same experiment parameters as its
packet twin in :mod:`repro.experiments.runner` / ``figures.fig10`` (taking
an :class:`~repro.experiments.specs.AqmSpec` instead of a built AQM -- the
fluid model needs the scheme's *parameters*, not a packet-marking object)
and returns the same result shape (:class:`ExperimentResult` with a
populated :class:`FctCollector`, or :class:`MicroscopicRun`), so figures,
validation grids, campaign stores and the cache treat both fidelities
identically.

Fidelity caveats (see DESIGN.md section 11 for the certified domain):

* no retransmission timers -- ``timeouts`` is always 0; losses feed back as
  full marking on the overflowing port's traffic instead;
* marks/drops are packet-equivalent *rates* integrated over time, rounded
  to integers at the end;
* sub-RTT burst dynamics are smoothed over the fluid step, so incast onset
  at packet granularity (fig11) is outside the certified domain.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional, Tuple

import numpy as np

from ..experiments.fct import FctCollector, FlowRecord
from ..experiments.runner import estimate_star_network_rtt, ExperimentResult
from ..experiments.specs import AqmSpec
from ..netem.profiles import RttProfile
from ..sim.units import gbps, mb, ms, us
from ..telemetry.provenance import RunManifest
from ..telemetry.runtime import get_active
from ..telemetry.spans import maybe_span
from ..topology.star import HOST_QDISC_BYTES
from ..workloads.arrivals import TransportConfig
from ..workloads.distributions import EmpiricalCdf
from ..workloads.incast import QUERY_MAX_BYTES, QUERY_MIN_BYTES
from .engine import FluidEngine, FluidFabric, FluidRunResult, choose_dt
from .marking import build_marker_bank
from .population import FlowPopulation, leafspine_population, star_population

__all__ = [
    "run_fluid_star_fct",
    "run_fluid_leafspine_fct",
    "run_fluid_microscopic",
]


def _require_dctcp(transport: TransportConfig) -> None:
    if transport.cc != "dctcp":
        raise ValueError(
            f"fluid fidelity models DCTCP only (transport.cc={transport.cc!r}); "
            "run this spec at packet fidelity"
        )


def _notify(kind: str, result: FluidRunResult, flows: int, wall: float) -> None:
    telemetry = get_active()
    if telemetry is not None:
        telemetry.on_fluid_run(
            kind=kind,
            steps=result.steps,
            flows=flows,
            sim_duration=result.duration,
            wall_seconds=wall,
        )


def _collector_from(
    population: FlowPopulation, result: FluidRunResult
) -> FctCollector:
    collector = FctCollector()
    for index in np.flatnonzero(result.completed):
        collector.records.append(
            FlowRecord(
                flow_id=int(index),
                size_bytes=int(population.size[index]),
                fct=float(result.fct[index]),
                start_time=float(population.start[index]),
                timeouts=0,
                retransmissions=0,
            )
        )
    return collector


def _experiment_result(
    population: FlowPopulation,
    result: FluidRunResult,
    manifest: RunManifest,
) -> ExperimentResult:
    collector = _collector_from(population, result)
    if len(collector) < len(population):
        raise RuntimeError(
            f"only {len(collector)}/{len(population)} flows completed; "
            "fluid run truncated (check step budget / buffer settings)"
        )
    manifest.events = result.steps
    telemetry = get_active()
    if telemetry is not None:
        telemetry.add_manifest(manifest)
    return ExperimentResult(
        summary=collector.summary(),
        collector=collector,
        marks=int(round(result.marks)),
        instant_marks=int(round(result.instant_marks)),
        persistent_marks=int(round(result.persistent_marks)),
        drops=int(round(result.drops)),
        timeouts=0,
        sim_duration=result.duration,
        events=result.steps,
        manifest=manifest,
    )


def run_fluid_star_fct(
    aqm: AqmSpec,
    workload: EmpiricalCdf,
    load: float,
    n_flows: int,
    seed: int,
    n_senders: int = 7,
    variation: float = 3.0,
    rtt_min: float = us(70),
    link_rate_bps: float = gbps(10),
    link_delay: float = us(2),
    buffer_bytes: int = mb(2),
    transport: TransportConfig = TransportConfig(),
    rtt_shape: str = "testbed",
) -> ExperimentResult:
    """Fluid twin of :func:`~repro.experiments.runner.run_star_fct`.

    Same seed => the identical flow population (arrival times, sizes,
    senders, base RTTs) the packet run would generate.
    """
    _require_dctcp(transport)
    wall_start = perf_counter()
    with maybe_span("setup", kind="engine"):
        rng = np.random.default_rng(seed)
        profile = RttProfile.from_variation(rtt_min, variation, shape=rtt_shape)
        network_rtt = estimate_star_network_rtt(link_rate_bps, link_delay)
        population = star_population(
            workload, load, link_rate_bps, n_flows, rng,
            n_senders, profile, network_rtt,
        )
        manifest = RunManifest.collect(
            "run_fluid_star_fct",
            seed=seed,
            scheme=aqm.kind,
            load=load,
            n_flows=n_flows,
            n_senders=n_senders,
            variation=variation,
            rtt_min=rtt_min,
            link_rate_bps=link_rate_bps,
            buffer_bytes=buffer_bytes,
            rtt_shape=rtt_shape,
            fidelity="fluid",
        )
        # Ports 0..n_senders-1: sender NICs (deep qdisc, unmarked);
        # port n_senders: the switch-to-receiver bottleneck with the AQM.
        bottleneck = n_senders
        capacity = np.full(n_senders + 1, float(link_rate_bps))
        buffers = np.full(n_senders + 1, float(HOST_QDISC_BYTES))
        buffers[bottleneck] = float(buffer_bytes)
        fabric = FluidFabric(
            capacity_bps=capacity,
            buffer_bytes=buffers,
            marked_ports=np.array([bottleneck]),
            marker=build_marker_bank(aqm.kind, dict(aqm.params), 1),
            paths=np.column_stack(
                [population.src, np.full(n_flows, bottleneck, dtype=np.int64)]
            ),
        )
        engine = FluidEngine(
            population, fabric,
            init_cwnd=transport.init_cwnd, dt=choose_dt(rtt_min),
        )
    with maybe_span("fluid", kind="engine"):
        result = engine.run()
    wall = perf_counter() - wall_start
    manifest.wall_seconds = wall
    _notify("star", result, n_flows, wall)
    return _experiment_result(population, result, manifest)


def run_fluid_leafspine_fct(
    aqm: AqmSpec,
    workload: EmpiricalCdf,
    load: float,
    n_flows: int,
    seed: int,
    dims: Tuple[int, int, int] = (4, 4, 4),
    variation: float = 3.0,
    rtt_min: float = us(80),
    link_rate_bps: float = gbps(10),
    buffer_bytes: int = mb(1),
    transport: TransportConfig = TransportConfig(),
    rtt_shape: str = "fabric",
    oversubscription: float = 1.0,
) -> ExperimentResult:
    """Fluid twin of :func:`~repro.experiments.runner.run_leafspine_fct`.

    The fabric's equal-cost spine paths are aggregated into one uplink and
    one downlink *trunk* per leaf (capacity ``n_spines`` ports' worth),
    which is exactly the mean-field limit of per-flow ECMP.
    """
    _require_dctcp(transport)
    spines, leaves, hosts_per_leaf = dims
    n_hosts = leaves * hosts_per_leaf
    wall_start = perf_counter()
    with maybe_span("setup", kind="engine"):
        rng = np.random.default_rng(seed)
        profile = RttProfile.from_variation(rtt_min, variation, shape=rtt_shape)
        network_rtt = estimate_star_network_rtt(link_rate_bps, us(2)) * 2.0
        population = leafspine_population(
            workload, load, link_rate_bps * n_hosts, n_flows, rng,
            n_hosts, profile, network_rtt,
        )
        manifest = RunManifest.collect(
            "run_fluid_leafspine_fct",
            seed=seed,
            scheme=aqm.kind,
            load=load,
            n_flows=n_flows,
            dims=dims,
            variation=variation,
            rtt_min=rtt_min,
            link_rate_bps=link_rate_bps,
            buffer_bytes=buffer_bytes,
            rtt_shape=rtt_shape,
            oversubscription=oversubscription,
            fidelity="fluid",
        )
        # Port layout: [0, H) host NICs; [H, 2H) leaf->host downlinks;
        # [2H, 2H+L) leaf->spine uplink trunks; [2H+L, 2H+2L) spine->leaf
        # downlink trunks.  AQM on every switch egress, as in the fabric.
        trunk_rate = spines * link_rate_bps / oversubscription
        trunk_buffer = spines * float(buffer_bytes)
        capacity = np.concatenate([
            np.full(n_hosts, float(link_rate_bps)),        # NICs
            np.full(n_hosts, float(link_rate_bps)),        # downlinks
            np.full(2 * leaves, trunk_rate),               # trunks
        ])
        buffers = np.concatenate([
            np.full(n_hosts, float(HOST_QDISC_BYTES)),
            np.full(n_hosts, float(buffer_bytes)),
            np.full(2 * leaves, trunk_buffer),
        ])
        marked = np.arange(n_hosts, 2 * n_hosts + 2 * leaves)
        src_leaf = population.src // hosts_per_leaf
        dst_leaf = population.dst // hosts_per_leaf
        inter = src_leaf != dst_leaf
        up_trunk = np.where(inter, 2 * n_hosts + src_leaf, -1)
        down_trunk = np.where(inter, 2 * n_hosts + leaves + dst_leaf, -1)
        paths = np.column_stack([
            population.src,                 # access NIC
            up_trunk,
            down_trunk,
            n_hosts + population.dst,       # last-hop downlink
        ])
        fabric = FluidFabric(
            capacity_bps=capacity,
            buffer_bytes=buffers,
            marked_ports=marked,
            marker=build_marker_bank(aqm.kind, dict(aqm.params), len(marked)),
            paths=paths,
        )
        engine = FluidEngine(
            population, fabric,
            init_cwnd=transport.init_cwnd, dt=choose_dt(rtt_min),
        )
    with maybe_span("fluid", kind="engine"):
        result = engine.run()
    wall = perf_counter() - wall_start
    manifest.wall_seconds = wall
    _notify("leafspine", result, n_flows, wall)
    return _experiment_result(population, result, manifest)


def run_fluid_microscopic(
    aqm: AqmSpec,
    scheme_name: str,
    fanout: int = 100,
    seed: int = 51,
    n_background: int = 4,
    background_bytes: int = 80_000_000,
    warmup: float = ms(5),
    burst_time: float = ms(20),
    end_time: float = ms(45),
    sample_interval: float = us(5),
    rtt_min: float = us(80),
    variation: float = 3.0,
    init_cwnd: float = 2.0,
    jitter: float = us(300),
):
    """Fluid twin of ``figures.fig10.run_microscopic``: long background
    flows building the standing queue, then a query burst at
    ``burst_time``.  ``query_timeouts`` is always 0 (no RTOs in the fluid
    model); burst overload shows up in ``drops`` instead.
    """
    from ..experiments.figures.fig10 import MicroscopicRun, _best_window_average

    n_senders = 16  # build_incast's rig
    link_rate_bps = gbps(10)
    wall_start = perf_counter()
    with maybe_span("setup", kind="engine"):
        rng = np.random.default_rng(seed)
        profile = RttProfile.from_variation(rtt_min, variation)
        network_rtt = estimate_star_network_rtt()
        # Replays fig10's exact draw order: one base RTT per background
        # flow, then (size, jitter offset) per query worker.
        n = n_background + fanout
        start = np.zeros(n)
        size = np.empty(n)
        base_rtt = np.empty(n)
        src = np.empty(n, dtype=np.int64)
        for index in range(n_background):
            size[index] = background_bytes
            src[index] = index
            base_rtt[index] = max(profile.sample_one(rng), network_rtt)
        for worker in range(fanout):
            index = n_background + worker
            src[index] = worker % n_senders
            size[index] = int(rng.integers(QUERY_MIN_BYTES, QUERY_MAX_BYTES + 1))
            offset = float(rng.uniform(0.0, jitter)) if jitter > 0 else 0.0
            start[index] = burst_time + offset
            base_rtt[index] = network_rtt
        bottleneck = n_senders
        population = FlowPopulation(
            start=start,
            size=size,
            base_rtt=base_rtt,
            src=src,
            dst=np.full(n, bottleneck, dtype=np.int64),
        )
        capacity = np.full(n_senders + 1, float(link_rate_bps))
        buffers = np.full(n_senders + 1, float(HOST_QDISC_BYTES))
        buffers[bottleneck] = float(mb(1))
        fabric = FluidFabric(
            capacity_bps=capacity,
            buffer_bytes=buffers,
            marked_ports=np.array([bottleneck]),
            marker=build_marker_bank(aqm.kind, dict(aqm.params), 1),
            paths=np.column_stack(
                [src, np.full(n, bottleneck, dtype=np.int64)]
            ),
        )
        # dt follows the configured rtt_min (the paper's RTT-group floor),
        # not the queries' bare network RTT: during the burst, query RTTs
        # are sojourn-dominated, so the coarser step still resolves them.
        engine = FluidEngine(population, fabric, init_cwnd=init_cwnd, dt=choose_dt(rtt_min))
    with maybe_span("fluid", kind="engine"):
        result = engine.run(
            end_time=end_time,
            sample_port=bottleneck,
            sample_interval=sample_interval,
            sample_start=warmup,
            sample_end=end_time,
        )
    wall = perf_counter() - wall_start
    _notify("microscopic", result, n, wall)

    pre_burst = [(t, p) for t, p in result.queue_samples if t < burst_time]
    standing = float(np.mean([p for _, p in pre_burst])) if pre_burst else 0.0
    floor = _best_window_average(pre_burst, window=ms(5))
    peak = max((p for _, p in result.queue_samples), default=0.0)
    query_slice = slice(n_background, n)
    query_done = result.completed[query_slice]
    query_fcts = [
        float(f) for f in result.fct[query_slice][query_done]
    ]
    times = [t for t, _ in result.queue_samples]
    packets = [int(round(p)) for _, p in result.queue_samples]
    return MicroscopicRun(
        scheme=scheme_name,
        samples=(times, packets),
        standing_queue_pkts=standing,
        floor_queue_pkts=floor,
        peak_queue_pkts=int(round(peak)),
        drops=int(round(result.drops)),
        marks=int(round(result.marks)),
        query_fcts=query_fcts,
        query_timeouts=0,
        queries_completed=int(query_done.sum()),
        events=result.steps,
    )
