"""Analytic (fluid) marking models of the packet-level AQMs.

The packet engine marks individual packets at dequeue time; the fluid
engine instead needs, per port and per time step, the *fraction* of the
traffic that each AQM would have CE-marked.  This module provides
vectorized "marker banks" -- one state machine per port, stepped for all
ports of a fabric at once -- that mirror the decision logic of the
packet-level classes in :mod:`repro.core`:

* ``sojourn-red`` / ``tcn``: step marking -- fraction 1 while the
  instantaneous sojourn time exceeds the threshold, else 0.
* ``codel``: the CoDel control law in continuous time -- after the sojourn
  stays above ``target`` for one ``interval``, marks arrive at the
  escalating rate ``sqrt(count) / interval`` (the fluid limit of
  ``next_mark += interval / sqrt(count)``).
* ``ecn-sharp``: the instantaneous cut-off of
  :class:`~repro.core.ecn_sharp.EcnSharp` (fraction 1 above
  ``ins_target``) plus the fluid limit of Algorithm 1's persistent
  marking on ``pst_target`` / ``pst_interval``, including the reset
  whenever the sojourn dips below ``pst_target``.

Marks are *fractional* in the fluid model (one mark per shrinking
interval becomes a marking intensity); the engine converts fractions back
into packet-equivalent counts for the run's summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

import numpy as np

__all__ = ["StepMarks", "MarkerBank", "build_marker_bank"]

_EPS = 1e-12


@dataclass
class StepMarks:
    """Per-port marking outcome of one fluid step (fractions in [0, 1])."""

    fraction: np.ndarray
    instant: np.ndarray
    persistent: np.ndarray


class MarkerBank:
    """Base class: one AQM marking state machine per port, vectorized."""

    def __init__(self, n_ports: int) -> None:
        if n_ports <= 0:
            raise ValueError("need at least one port")
        self.n_ports = n_ports

    def step(
        self, sojourn: np.ndarray, now: float, dt: float, pkts: np.ndarray
    ) -> StepMarks:
        """Marking fractions for the interval ``[now, now + dt)``.

        ``sojourn`` is each port's current queueing delay (seconds) and
        ``pkts`` the packet-equivalents that traverse each port during the
        step (used to turn discrete mark events into fractions).
        """
        raise NotImplementedError


class StepMarkerBank(MarkerBank):
    """Threshold step marking (``sojourn-red`` and ``tcn``): every packet
    whose sojourn exceeds the threshold is marked."""

    def __init__(self, threshold: float, n_ports: int) -> None:
        super().__init__(n_ports)
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold

    def step(self, sojourn, now, dt, pkts) -> StepMarks:
        fraction = np.where(sojourn > self.threshold, 1.0, 0.0)
        return StepMarks(
            fraction=fraction,
            instant=fraction,
            persistent=np.zeros_like(fraction),
        )


class _PersistentLaw:
    """Shared continuous-time form of the CoDel / ECN#-persistent control
    law: declare persistent buildup after ``interval`` above ``target``,
    then mark at intensity ``sqrt(count) / interval``; reset when the
    sojourn falls below ``target``."""

    def __init__(self, target: float, interval: float, n_ports: int) -> None:
        if target <= 0 or interval <= 0:
            raise ValueError("target and interval must be positive")
        self.target = target
        self.interval = interval
        self.first_above = np.full(n_ports, np.nan)
        self.marking = np.zeros(n_ports, dtype=bool)
        self.count = np.zeros(n_ports)

    def marks(self, sojourn: np.ndarray, now: float, dt: float) -> np.ndarray:
        """Fractional mark events per port in ``[now, now + dt)``."""
        below = sojourn < self.target
        self.first_above[below] = np.nan
        self.marking[below] = False
        self.count[below] = 0.0
        above = ~below
        fresh = above & np.isnan(self.first_above)
        self.first_above[fresh] = now
        entering = (
            above & ~self.marking
            & (now + dt - self.first_above >= self.interval)
        )
        self.marking[entering] = True
        self.count[entering] = 1.0
        marks = np.zeros_like(sojourn)
        # The first mark of an episode is discrete (Algorithm 1 marks the
        # packet that trips the detector); afterwards the shrinking
        # inter-mark gap interval/sqrt(count) becomes a rate.
        marks[entering] = 1.0
        steady = self.marking & above & ~entering
        marks[steady] = dt * np.sqrt(self.count[steady]) / self.interval
        self.count[steady] += marks[steady]
        return marks


class CodelMarkerBank(MarkerBank):
    """CoDel's control law in fluid time (all marks are persistent)."""

    def __init__(self, target: float, interval: float, n_ports: int) -> None:
        super().__init__(n_ports)
        self.law = _PersistentLaw(target, interval, n_ports)

    def step(self, sojourn, now, dt, pkts) -> StepMarks:
        marks = self.law.marks(sojourn, now, dt)
        fraction = np.clip(marks / np.maximum(pkts, _EPS), 0.0, 1.0)
        return StepMarks(
            fraction=fraction,
            instant=np.zeros_like(fraction),
            persistent=fraction,
        )


class EcnSharpMarkerBank(MarkerBank):
    """ECN#: instantaneous cut-off marking plus persistent marking."""

    def __init__(
        self,
        ins_target: float,
        pst_target: float,
        pst_interval: float,
        n_ports: int,
    ) -> None:
        super().__init__(n_ports)
        if ins_target <= 0:
            raise ValueError("ins_target must be positive")
        if pst_target > ins_target:
            raise ValueError("pst_target must not exceed ins_target")
        self.ins_target = ins_target
        self.law = _PersistentLaw(pst_target, pst_interval, n_ports)

    def step(self, sojourn, now, dt, pkts) -> StepMarks:
        instant = np.where(sojourn > self.ins_target, 1.0, 0.0)
        marks = self.law.marks(sojourn, now, dt)
        persistent = np.clip(marks / np.maximum(pkts, _EPS), 0.0, 1.0)
        # Instantaneous marking takes precedence packet-by-packet (the
        # persistent machine still observes, matching the packet AQM).
        persistent = np.where(instant >= 1.0, 0.0, persistent)
        fraction = instant + (1.0 - instant) * persistent
        return StepMarks(
            fraction=fraction, instant=instant, persistent=persistent
        )


def build_marker_bank(
    kind: str, params: Dict[str, Any], n_ports: int
) -> MarkerBank:
    """The fluid marking model for a registered AQM kind.

    ``REPRO_AQM_PERTURB`` applies here exactly as it does to the packet
    AQMs (via :func:`~repro.experiments.schemes.perturbed_params`), so the
    validation canary also catches regressions in fluid campaigns.
    """
    from ..experiments.schemes import perturbed_params

    params = dict(perturbed_params(kind, dict(params)))
    if kind == "sojourn-red":
        return StepMarkerBank(params["sojourn"], n_ports)
    if kind == "tcn":
        return StepMarkerBank(params["threshold"], n_ports)
    if kind == "codel":
        return CodelMarkerBank(params["target"], params["interval"], n_ports)
    if kind == "ecn-sharp":
        return EcnSharpMarkerBank(
            params["ins_target"],
            params["pst_target"],
            params["pst_interval"],
            n_ports,
        )
    raise ValueError(f"no fluid marking model for AQM kind {kind!r}")
