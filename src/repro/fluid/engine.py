"""Discrete-time flow-level (fluid) simulator of DCTCP over an AQM fabric.

Instead of dispatching per-packet events, the fluid engine advances a fixed
time step ``dt`` and updates *rates*: every flow injects at its
window-determined rate ``cwnd * MSS * 8 / RTT`` (capped by its access
link), port queues integrate the excess of aggregate arrival rate over
capacity, and the analytic marker banks of :mod:`repro.fluid.marking`
convert each port's sojourn time into a marking fraction.  Congestion
windows follow the DCTCP fluid equations on a per-RTT cadence:

* ``F`` = fraction of the last window's packets marked,
* ``alpha = (1 - g) * alpha + g * F`` with ``g = 1/16``,
* marked RTT: exit slow start and ``cwnd *= 1 - alpha / 2``,
* clean RTT: ``cwnd *= 2`` in slow start, else ``cwnd += 1``.

Self-clocking is implicit: the RTT used for a flow's rate includes the
current sojourn of every port on its path, so growing queues throttle
injection exactly as ACK clocking does in the packet engine.  One fluid
step costs a handful of vectorized numpy operations regardless of scale,
which is what buys the 100x-plus speedup over per-packet simulation at
1000+ hosts.

Determinism: the engine draws no randomness at all -- the flow population
carries every sampled quantity -- and the step count is a pure function of
the input, so identical specs produce bit-identical results across
processes and cache replays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..sim.units import MSS, MTU, us
from .marking import MarkerBank
from .population import FlowPopulation

__all__ = ["FluidFabric", "FluidRunResult", "FluidEngine", "choose_dt"]

DCTCP_G = 1.0 / 16.0
CWND_CAP_PKTS = 10_000.0
MAX_FLUID_STEPS = 5_000_000
_EPS = 1e-12


def choose_dt(rtt_min: float) -> float:
    """The fluid step size: an eighth of the smallest base RTT, clamped to
    [1 us, 20 us].  Deterministic in the spec, so cache replays agree."""
    return float(min(max(rtt_min / 8.0, us(1)), us(20)))


@dataclass
class FluidFabric:
    """The static port-level description of a fluid topology.

    ``paths`` maps each flow to the ordered port indices it traverses,
    padded with ``-1`` for flows with shorter paths.  The first entry of a
    path must be the flow's access (source uplink) port -- its capacity
    caps the flow's injection rate.
    """

    capacity_bps: np.ndarray      # (P,) port service rates
    buffer_bytes: np.ndarray      # (P,) port buffer limits
    marked_ports: np.ndarray      # indices of ports running the AQM
    marker: MarkerBank            # bank sized len(marked_ports)
    paths: np.ndarray             # (n_flows, K) int, -1 padded

    def __post_init__(self) -> None:
        self.capacity_bps = np.asarray(self.capacity_bps, dtype=float)
        self.buffer_bytes = np.asarray(self.buffer_bytes, dtype=float)
        self.marked_ports = np.asarray(self.marked_ports, dtype=np.int64)
        self.paths = np.asarray(self.paths, dtype=np.int64)
        if self.marker.n_ports != len(self.marked_ports):
            raise ValueError("marker bank size must match marked_ports")
        if self.paths.ndim != 2:
            raise ValueError("paths must be a 2-D array")
        if (self.paths[:, 0] < 0).any():
            raise ValueError("every flow needs an access port")


@dataclass
class FluidRunResult:
    """Everything the runners need to shape fluid output like packet output."""

    finish: np.ndarray            # completion time per flow (nan if unfinished)
    fct: np.ndarray               # flow completion time (nan if unfinished)
    completed: np.ndarray         # bool per flow
    marks: float                  # packet-equivalent CE marks (fractional)
    instant_marks: float
    persistent_marks: float
    drops: float                  # packet-equivalent buffer overflows
    steps: int
    duration: float               # simulated end time
    queue_samples: List[Tuple[float, float]] = field(default_factory=list)
    """(time, queue packets) samples of the designated port, if requested."""


class FluidEngine:
    """Steps a :class:`FlowPopulation` over a :class:`FluidFabric`."""

    def __init__(
        self,
        population: FlowPopulation,
        fabric: FluidFabric,
        init_cwnd: float = 10.0,
        dt: Optional[float] = None,
        max_steps: int = MAX_FLUID_STEPS,
    ) -> None:
        if len(population) != fabric.paths.shape[0]:
            raise ValueError("population and fabric paths disagree on flow count")
        self.population = population
        self.fabric = fabric
        self.dt = float(dt) if dt is not None else choose_dt(float(population.base_rtt.min()))
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        self.max_steps = max_steps

        n = len(population)
        p = len(fabric.capacity_bps)
        self._n_ports = p
        # Flattened static path indices for per-port rate aggregation.
        flat = fabric.paths.ravel()
        self._path_valid = flat >= 0
        self._flat_paths = flat[self._path_valid]
        self._path_width = fabric.paths.shape[1]
        self._access = fabric.capacity_bps[fabric.paths[:, 0]]

        # Per-flow transport state.
        self.cwnd = np.full(n, float(init_cwnd))
        self.alpha = np.ones(n)  # DCTCP's init_alpha=1: conservative first cut
        self.slow_start = np.ones(n, dtype=bool)
        self.remaining = population.size.astype(float).copy()
        self.next_update = population.start + population.base_rtt
        self._sent_window = np.zeros(n)     # packets injected this RTT epoch
        self._marked_window = np.zeros(n)   # marked packets this RTT epoch

        # Per-port state.
        self.queue = np.zeros(p)            # bytes

        # Outputs.
        self.finish = np.full(n, np.nan)
        self.fct = np.full(n, np.nan)
        self.marks = 0.0
        self.instant_marks = 0.0
        self.persistent_marks = 0.0
        self.drops = 0.0
        self.steps = 0

    # ------------------------------------------------------------------ run

    def run(
        self,
        end_time: Optional[float] = None,
        sample_port: Optional[int] = None,
        sample_interval: Optional[float] = None,
        sample_start: float = 0.0,
        sample_end: Optional[float] = None,
    ) -> FluidRunResult:
        """Advance until every flow completes (or until ``end_time``).

        When ``sample_port`` is set, the port's queue occupancy (packets)
        is recorded every ``sample_interval`` seconds inside
        ``[sample_start, sample_end]`` -- the fluid analogue of fig10's
        queue monitor.
        """
        if sample_port is not None and sample_interval is None:
            raise ValueError("sample_port requires sample_interval")
        pop = self.population
        fabric = self.fabric
        dt = self.dt
        mss_bits = MSS * 8.0
        capacity = fabric.capacity_bps
        buffers = fabric.buffer_bytes
        marked_ports = fabric.marked_ports
        paths = fabric.paths
        width = self._path_width
        queue_samples: List[Tuple[float, float]] = []

        t = 0.0
        next_sample = sample_start
        while True:
            incomplete = self.remaining > _EPS
            if end_time is not None and t >= end_time:
                break
            if not incomplete.any():
                break
            active = incomplete & (pop.start <= t)
            if not active.any() and float(self.queue.sum()) <= 1.0:
                # Idle gap: jump straight to the next arrival (no queue to
                # drain, nothing in flight, marker state resets below).
                t = float(pop.start[incomplete].min())
                if end_time is not None and t >= end_time:
                    break
                active = incomplete & (pop.start <= t)
            if self.steps >= self.max_steps:
                raise RuntimeError(
                    f"fluid step budget exceeded ({self.max_steps} steps at t={t:.6f}s)"
                )
            self.steps += 1

            # --- rates: window/RTT, capped by the access link -------------
            sojourn = self.queue * 8.0 / capacity
            soj_pad = np.append(sojourn, 0.0)
            rtt = pop.base_rtt + soj_pad[paths].sum(axis=1)
            rate = np.minimum(self.cwnd * mss_bits / rtt, self._access)
            rate = np.where(active, rate, 0.0)

            # --- queues: integrate excess arrival rate --------------------
            weights = np.repeat(rate, width)[self._path_valid]
            arrival = np.bincount(
                self._flat_paths, weights=weights, minlength=self._n_ports
            )
            serviced_bytes = np.minimum(arrival * dt, capacity * dt + self.queue * 8.0) / 8.0
            self.queue += (arrival - capacity) * dt / 8.0
            np.clip(self.queue, 0.0, None, out=self.queue)
            overflow = self.queue - buffers
            over = overflow > 0.0
            if over.any():
                self.drops += float(overflow[over].sum()) / MTU
                self.queue[over] = buffers[over]

            # --- marking --------------------------------------------------
            pkts = serviced_bytes / MSS
            step_marks = fabric.marker.step(
                sojourn[marked_ports], t, dt, pkts[marked_ports]
            )
            marked_pkts = pkts[marked_ports]
            self.marks += float((marked_pkts * step_marks.fraction).sum())
            self.instant_marks += float((marked_pkts * step_marks.instant).sum())
            self.persistent_marks += float((marked_pkts * step_marks.persistent).sum())
            frac = np.zeros(self._n_ports + 1)
            frac[marked_ports] = step_marks.fraction
            # A full buffer is loss feedback: treat the step's traffic
            # through an overflowing port as marked so senders back off.
            frac[: self._n_ports][over] = 1.0
            flow_marked = 1.0 - np.prod(1.0 - frac[paths], axis=1)

            # --- per-flow delivery and DCTCP window accounting ------------
            delivered = rate * dt / 8.0
            sent_pkts = delivered / MSS
            self._sent_window += sent_pkts
            self._marked_window += sent_pkts * flow_marked
            before = self.remaining.copy()
            self.remaining -= delivered
            finishing = active & (self.remaining <= _EPS) & (before > _EPS)
            if finishing.any():
                fraction_of_step = before[finishing] / np.maximum(delivered[finishing], _EPS)
                done_at = t + np.clip(fraction_of_step, 0.0, 1.0) * dt
                self.finish[finishing] = done_at
                # The fluid injection rate cwnd/RTT already spreads each
                # window over one RTT, but the *last* window's ACK wait is
                # real wall time the rate model doesn't cover: the final
                # ACK returns one RTT after the last byte is clocked out.
                self.fct[finishing] = (
                    done_at - pop.start[finishing] + rtt[finishing]
                )
                self.remaining[finishing] = 0.0

            due = active & ~finishing & (t >= self.next_update)
            if due.any():
                observed = np.where(
                    self._sent_window > _EPS,
                    self._marked_window / np.maximum(self._sent_window, _EPS),
                    0.0,
                )
                self.alpha[due] = (1.0 - DCTCP_G) * self.alpha[due] + DCTCP_G * observed[due]
                marked_rtt = due & (self._marked_window > 1e-9)
                clean_rtt = due & ~marked_rtt
                self.slow_start[marked_rtt] = False
                self.cwnd[marked_rtt] *= 1.0 - self.alpha[marked_rtt] / 2.0
                ss = clean_rtt & self.slow_start
                self.cwnd[ss] *= 2.0
                ca = clean_rtt & ~self.slow_start
                self.cwnd[ca] += 1.0
                np.clip(self.cwnd, 1.0, CWND_CAP_PKTS, out=self.cwnd)
                self.next_update[due] = t + rtt[due]
                self._sent_window[due] = 0.0
                self._marked_window[due] = 0.0

            # --- queue sampling -------------------------------------------
            if sample_port is not None:
                while next_sample <= t and (
                    sample_end is None or next_sample <= sample_end
                ):
                    queue_samples.append(
                        (next_sample, float(self.queue[sample_port]) / MTU)
                    )
                    next_sample += float(sample_interval)

            t += dt

        completed = self.remaining <= _EPS
        finished = self.finish[np.isfinite(self.finish)]
        duration = float(finished.max()) if finished.size else t
        if end_time is not None:
            duration = max(duration, min(t, end_time))
        return FluidRunResult(
            finish=self.finish,
            fct=self.fct,
            completed=completed,
            marks=self.marks,
            instant_marks=self.instant_marks,
            persistent_marks=self.persistent_marks,
            drops=self.drops,
            steps=self.steps,
            duration=duration,
            queue_samples=queue_samples,
        )
