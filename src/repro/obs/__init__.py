"""Offline observability: campaign dashboards from stores and trend files.

``repro obs report`` (and the library entry point
:func:`~repro.obs.report.build_report`) turns a campaign's JSONL store,
its resource sidecar, and the benchmark trend file into markdown/HTML
dashboards with **zero simulations** -- everything is derived from data
already on disk, so it is safe to run anywhere (CI artifact jobs, a
laptop inspecting a store copied off a build machine).
"""

from .report import ObsReport, build_report, summarize_metricz

__all__ = ["ObsReport", "build_report", "summarize_metricz"]
