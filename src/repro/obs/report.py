"""Build offline campaign dashboards (markdown and HTML).

Data sources -- all optional, all read-only, none trigger a simulation:

* a campaign store (``campaign.jsonl``): cell status, metrics, failures;
* its resource sidecar (``campaign.resources.jsonl``): per-cell wall
  time, simulated events, events/sec, peak RSS, cache hits (the latest
  row per ``(scenario, cell_key)`` wins -- the sidecar is append-only
  across campaign resumes);
* the benchmark trend file (``benchmarks/results/trend.jsonl``): one
  engine-throughput row per ``perf_engine.py`` run, keyed by commit.

The report renders the questions a campaign owner actually asks: where
did the wall time go (slowest cells, per-scheme breakdown), what failed
and why (status/kind tables), and is the engine getting faster or slower
over commits (events/sec trend with a sparkline).
"""

from __future__ import annotations

import html
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["ObsReport", "build_report", "summarize_metricz"]

SPARK_CHARS = "▁▂▃▄▅▆▇█"


def _load_jsonl(path: Path) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    if not path.exists():
        return rows
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn trailing line: same policy as the store
    return rows


def _scheme_of(cell_key: str, component: str = "") -> str:
    """The scheme label baked into a cell key (``...|scheme=ECN#|...``),
    falling back to the scenario component."""
    for part in cell_key.split("|"):
        if part.startswith("scheme="):
            return part[len("scheme="):]
    return component or "-"


def _fmt(value: Any, digits: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}g}" if abs(value) < 1000 else f"{value:,.0f}"
    if isinstance(value, int) and abs(value) >= 10_000:
        return f"{value:,}"
    return str(value)


def sparkline(values: Sequence[float]) -> str:
    """Unicode block sparkline (empty string for no data)."""
    values = [v for v in values if v is not None]
    if not values:
        return ""
    low, high = min(values), max(values)
    span = high - low
    if span <= 0:
        return SPARK_CHARS[3] * len(values)
    return "".join(
        SPARK_CHARS[min(len(SPARK_CHARS) - 1,
                        int((v - low) / span * (len(SPARK_CHARS) - 1)))]
        for v in values
    )


def _trend_svg(values: Sequence[float], width: int = 480,
               height: int = 80) -> str:
    """Inline SVG polyline of the trend (self-contained, no scripts)."""
    values = [v for v in values if v is not None]
    if len(values) < 2:
        return ""
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    step = width / (len(values) - 1)
    points = " ".join(
        f"{i * step:.1f},{height - 4 - (v - low) / span * (height - 8):.1f}"
        for i, v in enumerate(values)
    )
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">'
        f'<polyline fill="none" stroke="#2a6" stroke-width="2" '
        f'points="{points}"/></svg>'
    )


@dataclass
class ObsReport:
    """Computed dashboard data plus the markdown/HTML renderers."""

    store_path: Optional[str] = None
    torn_lines: int = 0
    status_counts: Dict[str, int] = field(default_factory=dict)
    failure_kinds: Dict[str, int] = field(default_factory=dict)
    failed_cells: List[Dict[str, Any]] = field(default_factory=list)
    resources: List[Dict[str, Any]] = field(default_factory=list)
    scheme_rows: List[Dict[str, Any]] = field(default_factory=list)
    trend: List[Dict[str, Any]] = field(default_factory=list)
    service: Dict[str, Any] = field(default_factory=dict)
    top: int = 10

    # ------------------------------------------------------------- derived

    @property
    def total_cells(self) -> int:
        return sum(self.status_counts.values())

    @property
    def total_wall_seconds(self) -> float:
        return sum(r.get("wall_seconds") or 0.0 for r in self.resources)

    @property
    def total_events(self) -> int:
        return sum(r.get("events") or 0 for r in self.resources)

    def slowest_cells(self) -> List[Dict[str, Any]]:
        ranked = sorted(
            self.resources,
            key=lambda r: r.get("wall_seconds") or 0.0,
            reverse=True,
        )
        return ranked[: self.top]

    # ------------------------------------------------------------ markdown

    def _md_table(self, headers: Sequence[str],
                  rows: Sequence[Sequence[Any]]) -> List[str]:
        def cell(value: Any) -> str:
            # Cell keys contain literal '|' separators; escape them so
            # they stay inside their markdown column.
            return _fmt(value).replace("|", "\\|")

        lines = ["| " + " | ".join(headers) + " |",
                 "|" + "|".join("---" for _ in headers) + "|"]
        for row in rows:
            lines.append("| " + " | ".join(cell(v) for v in row) + " |")
        return lines

    def to_markdown(self) -> str:
        lines: List[str] = ["# Campaign observability report", ""]
        if self.store_path:
            lines += [f"Store: `{self.store_path}`", ""]

        lines += ["## Summary", ""]
        summary_rows = [
            ["cells", self.total_cells],
            *[[f"cells {status}", count]
              for status, count in sorted(self.status_counts.items())],
        ]
        if self.torn_lines:
            # Store damage deserves a prominent row: >1 torn line means
            # more than a single interrupted trailing write.
            summary_rows.append(["store torn lines (skipped)",
                                 self.torn_lines])
        if self.resources:
            wall = self.total_wall_seconds
            events = self.total_events
            summary_rows += [
                ["wall seconds (attributed)", round(wall, 2)],
                ["simulated events", events],
                ["events/sec (aggregate)",
                 round(events / wall, 1) if wall > 0 else None],
                ["peak RSS (KiB, max cell)",
                 max((r.get("max_rss_kb") or 0 for r in self.resources),
                     default=None)],
                ["cache hits (specs)",
                 sum(r.get("cache_hits") or 0 for r in self.resources)],
            ]
        lines += self._md_table(["metric", "value"], summary_rows) + [""]

        if self.resources:
            lines += ["## Slowest cells", ""]
            lines += self._md_table(
                ["scenario", "cell", "status", "wall s", "events", "ev/s",
                 "peak RSS KiB"],
                [
                    [r.get("scenario"), r.get("cell_key"), r.get("status"),
                     r.get("wall_seconds"), r.get("events"),
                     r.get("events_per_sec"), r.get("max_rss_kb")]
                    for r in self.slowest_cells()
                ],
            ) + [""]

        if self.scheme_rows:
            lines += ["## Per-scheme time breakdown", ""]
            lines += self._md_table(
                ["scheme", "cells", "wall s", "share %", "events", "ev/s"],
                [
                    [row["scheme"], row["cells"], round(row["wall"], 3),
                     round(row["share"] * 100, 1), row["events"],
                     round(row["events"] / row["wall"], 1)
                     if row["wall"] > 0 else None]
                    for row in self.scheme_rows
                ],
            ) + [""]

        lines += ["## Failures", ""]
        if not self.failed_cells and not self.failure_kinds:
            lines += ["No failed cells recorded.", ""]
        else:
            if self.failure_kinds:
                lines += self._md_table(
                    ["failure kind", "count"],
                    sorted(self.failure_kinds.items()),
                ) + [""]
            if self.failed_cells:
                lines += self._md_table(
                    ["scenario", "cell", "kinds"],
                    [
                        [c["scenario"], c["cell_key"], c["kinds"]]
                        for c in self.failed_cells
                    ],
                ) + [""]

        if self.service:
            lines += ["## Results service", ""]
            cache = self.service.get("cache", {})
            hits = cache.get("hits", 0)
            misses = cache.get("misses", 0)
            lookups = hits + misses
            lines += self._md_table(
                ["metric", "value"],
                [
                    ["uptime seconds",
                     round(self.service.get("uptime_seconds") or 0.0, 1)],
                    ["store loads (disk)", self.service.get("store_loads")],
                    ["summary-cache entries", cache.get("entries")],
                    ["summary-cache bytes", cache.get("bytes")],
                    ["summary-cache hits", hits],
                    ["summary-cache misses", misses],
                    ["summary-cache evictions", cache.get("evictions")],
                    ["summary-cache hit rate %",
                     round(hits / lookups * 100, 1) if lookups else None],
                ],
            ) + [""]
            requests = self.service.get("requests", [])
            if requests:
                lines += self._md_table(
                    ["endpoint", "status", "requests"],
                    [[r["endpoint"], r["status"], r["count"]]
                     for r in requests],
                ) + [""]

        lines += ["## Engine throughput trend", ""]
        if not self.trend:
            lines += ["No trend data (run `benchmarks/perf_engine.py`).", ""]
        else:
            rates = [row.get("events_per_sec") for row in self.trend]
            spark = sparkline([r for r in rates if r is not None])
            if spark:
                lines += [f"`{spark}` (oldest → newest events/sec)", ""]
            lines += self._md_table(
                ["commit", "python", "cpus", "events/sec", "pkt events/sec",
                 "fluid flows/sec", "fluid speedup", "sweep speedup",
                 "svc warm q/s", "svc p99 ms"],
                [
                    [
                        (row.get("git_sha") or "-")[:12],
                        row.get("python"), row.get("cpu_count"),
                        row.get("events_per_sec"),
                        row.get("packet_events_per_sec"),
                        row.get("fluid_flows_per_sec"),
                        row.get("fluid_speedup_vs_packet"),
                        row.get("sweep_speedup"),
                        row.get("service_warm_qps"),
                        row.get("service_warm_p99_ms"),
                    ]
                    for row in self.trend
                ],
            ) + [""]
        return "\n".join(lines)

    # ---------------------------------------------------------------- html

    def to_html(self) -> str:
        """Standalone HTML page: the markdown content as real tables plus
        an inline-SVG trend chart.  No scripts, no external assets."""
        md = self.to_markdown()
        body: List[str] = []
        table: List[str] = []

        def flush_table() -> None:
            if not table:
                return
            body.append("<table>")
            for i, row_line in enumerate(table):
                cells = [
                    c.strip().replace("\\|", "|")
                    for c in re.split(r"(?<!\\)\|", row_line.strip("|"))
                ]
                tag = "th" if i == 0 else "td"
                body.append(
                    "<tr>" + "".join(
                        f"<{tag}>{html.escape(c)}</{tag}>" for c in cells
                    ) + "</tr>"
                )
            body.append("</table>")
            table.clear()

        for line in md.splitlines():
            if line.startswith("|"):
                if set(line.replace("|", "").replace("-", "").strip()) == set():
                    continue  # the |---|---| separator row
                table.append(line)
                continue
            flush_table()
            if line.startswith("## "):
                body.append(f"<h2>{html.escape(line[3:])}</h2>")
            elif line.startswith("# "):
                body.append(f"<h1>{html.escape(line[2:])}</h1>")
            elif line.strip():
                body.append(f"<p>{html.escape(line)}</p>")
        flush_table()

        rates = [row.get("events_per_sec") for row in self.trend]
        svg = _trend_svg([r for r in rates if r is not None])
        if svg:
            body.append("<h2>Trend chart</h2>")
            body.append(svg)

        style = (
            "body{font-family:system-ui,sans-serif;margin:2em;max-width:70em}"
            "table{border-collapse:collapse;margin:1em 0}"
            "th,td{border:1px solid #ccc;padding:0.3em 0.7em;"
            "text-align:left;font-variant-numeric:tabular-nums}"
            "th{background:#f4f4f4}"
        )
        return (
            "<!doctype html><html><head><meta charset='utf-8'>"
            "<title>Campaign observability report</title>"
            f"<style>{style}</style></head><body>"
            + "\n".join(body) + "</body></html>\n"
        )


def _parse_series_key(key: str) -> "tuple[str, Dict[str, str]]":
    """Split a registry series key (``name{k=v,k2=v2}``) into name + labels."""
    if "{" not in key:
        return key, {}
    name, rest = key.split("{", 1)
    labels: Dict[str, str] = {}
    for pair in rest.rstrip("}").split(","):
        if "=" in pair:
            label, value = pair.split("=", 1)
            labels[label] = value
    return name, labels


def summarize_metricz(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Distill a ``/metricz`` dump into the report's service section:
    cache stats verbatim plus per-endpoint request counts parsed out of
    the ``service_requests_total`` counter series."""
    counters = payload.get("metrics", {}).get("counters", {})
    requests: List[Dict[str, Any]] = []
    for key, count in sorted(counters.items()):
        name, labels = _parse_series_key(key)
        if name != "service_requests_total":
            continue
        requests.append({
            "endpoint": labels.get("endpoint", "-"),
            "status": labels.get("status", "-"),
            "count": count,
        })
    return {
        "cache": payload.get("cache", {}),
        "store_loads": payload.get("store_loads"),
        "uptime_seconds": payload.get("uptime_seconds"),
        "requests": requests,
    }


def build_report(
    store: "Path | str | None" = None,
    resources: "Path | str | None" = None,
    trend: "Path | str | None" = None,
    metricz: "Path | str | None" = None,
    top: int = 10,
) -> ObsReport:
    """Assemble an :class:`ObsReport` from whichever inputs exist.

    ``resources`` defaults to the store's sidecar path.  ``metricz`` is a
    JSON dump of the results daemon's ``/metricz`` endpoint.  Every input
    is optional; missing files yield empty report sections rather than
    errors, so one command works for a store-only or trend-only setup.
    """
    report = ObsReport(top=top)

    if metricz is not None:
        path = Path(metricz)
        if path.exists():
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except ValueError:
                payload = {}
            if isinstance(payload, dict) and payload:
                report.service = summarize_metricz(payload)

    records: List[Dict[str, Any]] = []
    if store is not None:
        from ..scenarios.campaign import CampaignStore

        campaign_store = CampaignStore(store)
        report.store_path = str(campaign_store.path)
        index = campaign_store.load()
        report.torn_lines = campaign_store.load_stats.torn_lines
        records = [record.to_dict() for record in index.values()]
        if resources is None:
            resources = campaign_store.resources_path

    for record in records:
        status = record["status"]
        report.status_counts[status] = (
            report.status_counts.get(status, 0) + 1
        )
        kinds = []
        for failure in record.get("failures", []):
            kind = failure.get("kind", "unknown")
            kinds.append(kind)
            report.failure_kinds[kind] = (
                report.failure_kinds.get(kind, 0) + 1
            )
        if status == "failed":
            report.failed_cells.append({
                "scenario": record["scenario"],
                "cell_key": record["cell_key"],
                "kinds": ",".join(sorted(set(kinds))) or "-",
            })

    if resources is not None:
        latest: Dict[tuple, Dict[str, Any]] = {}
        for row in _load_jsonl(Path(resources)):
            latest[(row.get("scenario"), row.get("cell_key"))] = row
        report.resources = list(latest.values())

    if report.resources:
        by_scheme: Dict[str, Dict[str, Any]] = {}
        for row in report.resources:
            scheme = _scheme_of(row.get("cell_key", ""),
                                row.get("component", ""))
            bucket = by_scheme.setdefault(
                scheme, {"scheme": scheme, "cells": 0, "wall": 0.0,
                         "events": 0}
            )
            bucket["cells"] += 1
            bucket["wall"] += row.get("wall_seconds") or 0.0
            bucket["events"] += row.get("events") or 0
        total_wall = sum(b["wall"] for b in by_scheme.values()) or 1.0
        for bucket in by_scheme.values():
            bucket["share"] = bucket["wall"] / total_wall
        report.scheme_rows = sorted(
            by_scheme.values(), key=lambda b: b["wall"], reverse=True
        )

    if trend is not None:
        rows = _load_jsonl(Path(trend))
        rows.sort(key=lambda r: r.get("unix_time") or 0.0)
        report.trend = rows

    return report
