"""Deterministic failure-injection utilities for resilience testing.

:mod:`repro.testing.chaos` is the campaign-level analogue of the
executor's ``REPRO_FAULT_INJECT`` hook (see
:mod:`repro.experiments.faults`): where fault injection kills individual
*cells*, chaos injection kills whole *processes* at precisely counted
store/cache interaction points, so the multi-writer coordination and
store-merge layers can be proven convergent under crashes, torn writes
and cache corruption without flaky timing.
"""

from .chaos import (
    CHAOS_ENV,
    ChaosReport,
    chaos_cache_store,
    chaos_enabled,
    chaos_store_append,
    parse_chaos_directives,
    reset_chaos_counts,
    run_chaos_campaign,
)

__all__ = [
    "CHAOS_ENV",
    "ChaosReport",
    "chaos_cache_store",
    "chaos_enabled",
    "chaos_store_append",
    "parse_chaos_directives",
    "reset_chaos_counts",
    "run_chaos_campaign",
]
