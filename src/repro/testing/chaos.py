"""Deterministic chaos injection for campaign resilience testing.

``REPRO_CHAOS`` holds ``;``-separated directives, each ``mode[:N]`` with
``N`` defaulting to 1.  Counters are per-process (workers spawned with the
variable inherit it at exec), so a directive fires at an exactly counted
interaction point rather than at a wall-clock instant -- the same
philosophy as ``REPRO_FAULT_INJECT`` one layer down:

* ``kill_after:N`` -- ``os._exit(137)`` immediately *after* the N-th
  campaign-store append has been written and fsynced.  The shard's records
  are durable but the resources sidecar and any lease releases are not:
  the SIGKILL analogue for "crashed between append and cleanup".
* ``kill_before:N`` -- ``os._exit(137)`` immediately *before* the N-th
  store append writes anything.  Claimed leases are left dangling, so this
  is the deterministic way to exercise stale-lease reclamation.
* ``torn_write:N`` -- the N-th store append writes only a prefix of its
  first record (no trailing newline), fsyncs the torn line, then exits
  137.  Exercises the torn-line probe and skip-on-load paths.
* ``corrupt_cache:N`` -- the N-th result-cache store is truncated after
  being written, so a later load sees a checksum mismatch and must
  quarantine the entry.  The process keeps running.

Injections that survive long enough to report (``corrupt_cache``, and the
pre-exit moment of the kill/tear modes) increment the
``chaos_injections_total{mode=...}`` counter and emit a ``resilience``
trace event on the active telemetry.

:func:`run_chaos_campaign` is the driving harness: it spawns
``repro scenario run --shared`` worker subprocesses in rounds -- chaos
directives applied to the first ``chaos_rounds`` rounds, clean reruns
after that -- until the campaign converges (a clean pass that executes
nothing, fails nothing, and skips every cell).  Tests then assert the
surviving store is equivalent to an uninterrupted single-writer run via
:func:`repro.scenarios.coordination.store_fingerprint`.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CHAOS_ENV",
    "ChaosReport",
    "chaos_cache_store",
    "chaos_enabled",
    "chaos_store_append",
    "parse_chaos_directives",
    "reset_chaos_counts",
    "run_chaos_campaign",
]

CHAOS_ENV = "REPRO_CHAOS"

CHAOS_EXIT_CODE = 137
"""Exit status used by the kill/tear modes (the SIGKILL convention)."""

_MODES = ("kill_after", "kill_before", "torn_write", "corrupt_cache")

# Per-process interaction counters, keyed by chaos point name.  Workers
# inherit REPRO_CHAOS through the environment but never these counts, so
# every process counts its own interactions from zero.
_COUNTS: Dict[str, int] = {}


def chaos_enabled() -> bool:
    """Cheap guard the instrumented hot points check first."""
    return bool(os.environ.get(CHAOS_ENV, "").strip())


def reset_chaos_counts() -> None:
    """Zero the per-process interaction counters (test isolation)."""
    _COUNTS.clear()


def parse_chaos_directives(
    raw: Optional[str] = None,
) -> Tuple[Tuple[str, int], ...]:
    """Parse ``REPRO_CHAOS`` into ``(mode, n)`` pairs.

    Unknown modes or malformed counts warn and are skipped -- a chaos typo
    must degrade to "no injection", never take down a real campaign.
    """
    if raw is None:
        raw = os.environ.get(CHAOS_ENV, "")
    directives: List[Tuple[str, int]] = []
    for part in raw.split(";"):
        part = part.strip()
        if not part:
            continue
        pieces = part.split(":")
        mode = pieces[0].strip().lower()
        if mode not in _MODES:
            warnings.warn(
                f"{CHAOS_ENV}: unknown mode {mode!r} in {part!r} "
                f"(expected one of {_MODES}); directive skipped",
                stacklevel=2,
            )
            continue
        n = 1
        if len(pieces) > 1 and pieces[1].strip():
            try:
                n = int(pieces[1])
            except ValueError:
                warnings.warn(
                    f"{CHAOS_ENV}: count {pieces[1]!r} in {part!r} is not an "
                    "integer; directive skipped",
                    stacklevel=2,
                )
                continue
            if n < 1:
                warnings.warn(
                    f"{CHAOS_ENV}: count in {part!r} must be >= 1; "
                    "directive skipped",
                    stacklevel=2,
                )
                continue
        directives.append((mode, n))
    return tuple(directives)


def _bump(point: str) -> int:
    _COUNTS[point] = _COUNTS.get(point, 0) + 1
    return _COUNTS[point]


def _record_injection(mode: str) -> None:
    """Count the injection on the active telemetry (best-effort: the
    process may be about to _exit, and chaos must never raise)."""
    try:
        from ..telemetry.runtime import get_active

        telemetry = get_active()
        if telemetry is not None:
            telemetry.on_chaos_injection(mode)
    except Exception:  # pragma: no cover - defensive: chaos must not raise
        pass


def _tear(payload: str) -> str:
    """Truncate a shard payload mid-first-record, no trailing newline --
    exactly what a crash mid-``write(2)`` leaves behind."""
    first_line = payload.split("\n", 1)[0]
    return first_line[: max(1, len(first_line) // 2)]


def chaos_store_append(payload: str) -> Tuple[str, bool]:
    """Chaos hook for :meth:`CampaignStore.append`.

    Called with the shard's full serialized payload before it is written.
    Returns ``(payload_to_write, die_after_write)``; ``kill_before``
    directives exit here without writing anything.
    """
    if not chaos_enabled():
        return payload, False
    count = _bump("store_append")
    for mode, n in parse_chaos_directives():
        if count != n:
            continue
        if mode == "kill_before":
            _record_injection(mode)
            os._exit(CHAOS_EXIT_CODE)
        if mode == "torn_write":
            _record_injection(mode)
            return _tear(payload), True
        if mode == "kill_after":
            _record_injection(mode)
            return payload, True
    return payload, False


def chaos_cache_store(path: "Path | str") -> None:
    """Chaos hook for :meth:`ResultCache.store`, called after the entry is
    atomically in place: ``corrupt_cache`` truncates it so the checksum
    footer no longer matches (simulated on-disk corruption)."""
    if not chaos_enabled():
        return
    count = _bump("cache_store")
    for mode, n in parse_chaos_directives():
        if mode != "corrupt_cache" or count != n:
            continue
        _record_injection(mode)
        try:
            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                handle.truncate(max(1, size // 2))
        except OSError:  # pragma: no cover - corruption is best-effort
            pass


# ----------------------------------------------------------------- harness


_SUMMARY_RE = re.compile(
    r"# campaign: cells=(\d+) executed=(\d+) skipped=(\d+) failed=(\d+)"
)


@dataclass
class ChaosRound:
    """One harness round: the exit code and parsed summary per writer."""

    chaos: str
    exit_codes: List[int] = field(default_factory=list)
    summaries: List[Optional[dict]] = field(default_factory=list)


@dataclass
class ChaosReport:
    """Outcome of one :func:`run_chaos_campaign` drive."""

    store: Path
    rounds: List[ChaosRound] = field(default_factory=list)
    converged: bool = False

    @property
    def total_rounds(self) -> int:
        return len(self.rounds)

    @property
    def kill_count(self) -> int:
        return sum(
            1
            for r in self.rounds
            for code in r.exit_codes
            if code == CHAOS_EXIT_CODE
        )


def _parse_summary(stdout: str) -> Optional[dict]:
    match = None
    for match in _SUMMARY_RE.finditer(stdout):
        pass  # keep the last summary line
    if match is None:
        return None
    cells, executed, skipped, failed = (int(g) for g in match.groups())
    return {
        "cells": cells,
        "executed": executed,
        "skipped": skipped,
        "failed": failed,
        "reclaimed": sum(
            int(m) for m in re.findall(r"reclaimed=(\d+)", stdout)
        ),
    }


def _wait_for_claim(
    proc: "subprocess.Popen",
    leases_path: Path,
    size_before: int,
    deadline: float = 10.0,
) -> None:
    """Block until a chaos-armed writer has claimed its first shard (the
    lease ledger grew) or exited.  Without this, a fast clean peer can
    finish the whole campaign before the armed writer reaches its
    injection point, making the round vacuously chaos-free."""
    until = time.monotonic() + deadline
    while time.monotonic() < until:
        if proc.poll() is not None:
            return
        try:
            if leases_path.stat().st_size > size_before:
                return
        except OSError:
            pass
        time.sleep(0.02)


def run_chaos_campaign(
    scenario_path: "Path | str",
    store: "Path | str",
    chaos: str = "kill_after:1",
    writers: int = 1,
    chaos_rounds: int = 1,
    max_rounds: int = 12,
    lease_ttl: float = 0.5,
    lock_timeout: float = 20.0,
    cache_dir: "Path | str | None" = None,
    extra_args: Sequence[str] = (),
    timeout: float = 180.0,
) -> ChaosReport:
    """Drive a shared campaign under chaos until it converges.

    Each round launches ``writers`` concurrent ``repro scenario run
    --shared`` subprocesses against the same ``store``; rounds numbered
    below ``chaos_rounds`` carry ``REPRO_CHAOS=chaos`` (per-writer: only
    the *first* writer of a round gets the chaos environment, so at least
    one writer per round can make untainted progress; peers are held back
    until the armed writer has claimed its first shard, so the injection
    point is guaranteed to be reached), later rounds run clean.  Convergence is a clean round in which some writer reports
    ``executed=0 failed=0`` with every cell skipped.  Returns a
    :class:`ChaosReport`; asserting store equivalence against a clean run
    is the caller's job (see ``store_fingerprint``).
    """
    store = Path(store)
    report = ChaosReport(store=store)
    base_env = dict(os.environ)
    base_env.pop(CHAOS_ENV, None)
    if cache_dir is not None:
        base_env["REPRO_CACHE_DIR"] = str(cache_dir)
    leases_path = store.with_name(store.stem + ".leases.jsonl")
    for round_index in range(max_rounds):
        inject = round_index < chaos_rounds
        round_report = ChaosRound(chaos=chaos if inject else "")
        try:
            leases_size = leases_path.stat().st_size
        except OSError:
            leases_size = 0
        procs = []
        for writer_index in range(writers):
            env = dict(base_env)
            if inject and writer_index == 0:
                env[CHAOS_ENV] = chaos
            cmd = [
                sys.executable,
                "-m",
                "repro",
                "scenario",
                "run",
                str(scenario_path),
                "--store",
                str(store),
                "--shared",
                "--worker-id",
                f"chaos-r{round_index}-w{writer_index}",
                "--lease-ttl",
                str(lease_ttl),
                "--lock-timeout",
                str(lock_timeout),
                *extra_args,
            ]
            procs.append(
                subprocess.Popen(
                    cmd,
                    env=env,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.STDOUT,
                    text=True,
                )
            )
            if inject and writer_index == 0 and writers > 1:
                _wait_for_claim(procs[0], leases_path, leases_size)
        outputs = []
        for proc in procs:
            try:
                out, _ = proc.communicate(timeout=timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover - hang guard
                proc.kill()
                out, _ = proc.communicate()
            outputs.append(out or "")
            round_report.exit_codes.append(proc.returncode)
        round_report.summaries = [_parse_summary(out) for out in outputs]
        report.rounds.append(round_report)
        if not inject:
            for summary in round_report.summaries:
                if (
                    summary is not None
                    and summary["executed"] == 0
                    and summary["failed"] == 0
                    and summary["skipped"] == summary["cells"]
                ):
                    report.converged = True
                    return report
        # Give dangling leases from a killed writer time to expire before
        # the next round tries to reclaim them.
        time.sleep(lease_ttl)
    return report
