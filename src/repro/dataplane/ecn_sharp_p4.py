"""ECN# compiled to the match-action pipeline model (Section 4).

The program mirrors the paper's resource budget -- seven match-action
tables, five 32-bit register arrays and two 64-bit register arrays over 128
ports -- and its two implementation techniques:

* the 32-bit microsecond clock emulation (Algorithm 2, tables 1-2), and
* one-register-one-table control flow (Figure 4c): conditions are computed
  into metadata first, then each register is touched by exactly one action
  of exactly one table.

The ``marking_next``/``marking_count`` pair lives in one *64-bit paired
register*: Tofino's stateful ALU can update two adjacent 32-bit words in a
single access, which is the only way Algorithm 1's "compare now against
marking_next, then increment the count and push marking_next forward" can
execute in one pass -- and is why the paper's implementation reports 64-bit
register arrays at all.  ``interval / sqrt(marking_count)`` is served from a
precomputed lookup table, the standard dataplane substitute for arithmetic
the ALU cannot do.

All times are integer ticks of 1.024 us (the emulated clock's unit).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from .pipeline import MatchActionTable, Metadata, Pipeline
from .registers import RegisterFile
from .timestamp import TimestampEmulator

__all__ = ["EcnSharpPipeline", "SQRT_TABLE_SIZE"]

SQRT_TABLE_SIZE = 1024
"""Entries in the interval/sqrt(count) lookup; counts beyond this clamp to
the last entry (marking is already near its maximum rate by then)."""


class EcnSharpPipeline:
    """ECN#'s egress-pipeline program.

    Args:
        ins_target_ticks: instantaneous marking threshold (ticks).
        pst_target_ticks: persistent queueing target (ticks).
        pst_interval_ticks: persistence observation interval (ticks).
        ports: switch port count (128 on the paper's Tofino).
    """

    def __init__(
        self,
        ins_target_ticks: int,
        pst_target_ticks: int,
        pst_interval_ticks: int,
        ports: int = 128,
    ) -> None:
        if min(ins_target_ticks, pst_target_ticks, pst_interval_ticks) <= 0:
            raise ValueError("all thresholds must be positive tick counts")
        self.ins_target = ins_target_ticks
        self.pst_target = pst_target_ticks
        self.pst_interval = pst_interval_ticks

        self.pipeline = Pipeline(RegisterFile())
        registers = self.pipeline.registers

        # 32-bit arrays: ts_low, ts_high (declared by the emulator),
        # first_above_time, marking_state, mark_counter -- five in total.
        self.clock = TimestampEmulator(registers, ports=ports)
        self.reg_first_above = registers.declare("first_above_time", ports, width=32)
        self.reg_marking_state = registers.declare("marking_state", ports, width=32)
        self.reg_mark_counter = registers.declare("mark_counter", ports, width=32)

        # 64-bit arrays: the paired (marking_next, marking_count) register
        # and a byte/mark statistics pair.
        self.reg_marking = registers.declare("marking_next_count", ports, width=64)
        self.reg_stats = registers.declare("stats_bytes_marks", ports, width=64)

        # interval / sqrt(count) lookup, in ticks (match-action table in P4).
        self._sqrt_delta: List[int] = [0] + [
            max(1, int(round(pst_interval_ticks / math.sqrt(count))))
            for count in range(1, SQRT_TABLE_SIZE + 1)
        ]

        self._build_tables()

    # ------------------------------------------------------------- helpers

    def _delta_for(self, count: int) -> int:
        index = min(count, SQRT_TABLE_SIZE)
        return self._sqrt_delta[index]

    @staticmethod
    def _pack(next_ticks: int, count: int) -> int:
        return ((next_ticks & 0xFFFFFFFF) << 32) | (count & 0xFFFFFFFF)

    @staticmethod
    def _unpack(value: int) -> tuple:
        return (value >> 32) & 0xFFFFFFFF, value & 0xFFFFFFFF

    # ------------------------------------------------------------- tables

    def _build_tables(self) -> None:
        add = self.pipeline.add_table

        # Tables 1-2: Algorithm 2's clock (one table per clock register).
        from .timestamp import EPOCH_TICKS

        def tbl_time_low(meta: Metadata) -> None:
            time_low, wrapped = self.clock.step_low(
                int(meta["egress_global_tstamp_ns"]), int(meta["port"])
            )
            meta["time_low"] = time_low
            meta["wrapped"] = wrapped

        def tbl_time_high(meta: Metadata) -> None:
            high = self.clock.step_high(int(meta["wrapped"]), int(meta["port"]))
            meta["now"] = (high * EPOCH_TICKS + int(meta["time_low"])) & 0xFFFFFFFF

        add(MatchActionTable("emulate_time_low", default_action=tbl_time_low))
        add(MatchActionTable("emulate_time_high", default_action=tbl_time_high))

        # Table 3: compute sojourn-derived condition bits into metadata.
        def tbl_conditions(meta: Metadata) -> None:
            sojourn = int(meta["sojourn_ticks"])
            meta["above_pst"] = sojourn >= self.pst_target
            meta["above_ins"] = sojourn > self.ins_target

        add(MatchActionTable("compute_conditions", default_action=tbl_conditions))

        # Table 4: first_above_time -- one register, two exclusive actions.
        def act_below_target(meta: Metadata) -> None:
            self.reg_first_above.write(int(meta["port"]), 0)
            meta["detected"] = False

        def act_above_target(meta: Metadata) -> None:
            now = int(meta["now"])
            interval = self.pst_interval
            out: Dict[str, bool] = {}

            def update(old: int) -> tuple:
                if old == 0:
                    out["detected"] = False
                    return now, 0
                out["detected"] = now > old + interval
                return old, 0

            self.reg_first_above.read_modify_write(int(meta["port"]), update)
            meta["detected"] = out["detected"]

        add(
            MatchActionTable(
                "first_above_time",
                match=lambda meta: bool(meta["above_pst"]),
                actions={False: act_below_target, True: act_above_target},
            )
        )

        # Table 5: marking_state register; new state = detected, output the
        # old state (one read-modify-write).
        def tbl_marking_state(meta: Metadata) -> None:
            detected = bool(meta["detected"])

            def update(old: int) -> tuple:
                return (1 if detected else 0), old

            old_state = self.reg_marking_state.read_modify_write(
                int(meta["port"]), update
            )
            meta["was_marking"] = bool(old_state)

        add(MatchActionTable("marking_state", default_action=tbl_marking_state))

        # Table 6: the paired (marking_next, marking_count) 64-bit register.
        def act_continue_marking(meta: Metadata) -> None:
            now = int(meta["now"])
            out: Dict[str, bool] = {}

            def update(packed: int) -> tuple:
                next_ticks, count = self._unpack(packed)
                if now > next_ticks:
                    count += 1
                    next_ticks = (next_ticks + self._delta_for(count)) & 0xFFFFFFFF
                    out["mark"] = True
                else:
                    out["mark"] = False
                return self._pack(next_ticks, count), 0

            self.reg_marking.read_modify_write(int(meta["port"]), update)
            meta["persistent_mark"] = out["mark"]

        def act_start_marking(meta: Metadata) -> None:
            now = int(meta["now"])

            def update(_packed: int) -> tuple:
                return self._pack((now + self.pst_interval) & 0xFFFFFFFF, 1), 0

            self.reg_marking.read_modify_write(int(meta["port"]), update)
            meta["persistent_mark"] = True

        def act_idle(meta: Metadata) -> None:
            meta["persistent_mark"] = False

        add(
            MatchActionTable(
                "marking_next_count",
                match=lambda meta: (bool(meta["was_marking"]), bool(meta["detected"])),
                actions={
                    (True, True): act_continue_marking,
                    (False, True): act_start_marking,
                },
                default_action=act_idle,
            )
        )

        # Table 7: final decision + statistics.
        def tbl_decide(meta: Metadata) -> None:
            instant = bool(meta["above_ins"])
            persistent = bool(meta["persistent_mark"])
            meta["mark"] = instant or persistent
            meta["mark_kind"] = (
                "instant" if instant else ("persistent" if persistent else None)
            )
            if meta["mark"]:
                self.reg_mark_counter.read_modify_write(
                    int(meta["port"]), lambda old: (old + 1, 0)
                )

        add(MatchActionTable("mark_decision", default_action=tbl_decide))

    # ----------------------------------------------------------------- API

    def process_packet(
        self,
        egress_global_tstamp_ns: int,
        sojourn_ticks: int,
        port: int = 0,
    ) -> Metadata:
        """Run one packet through the program; returns its final metadata
        (``mark`` is the ECN decision)."""
        metadata: Metadata = {
            "egress_global_tstamp_ns": egress_global_tstamp_ns,
            "sojourn_ticks": sojourn_ticks,
            "port": port,
        }
        return self.pipeline.process(metadata)

    # ------------------------------------------------------------ resources

    def resource_report(self) -> Dict[str, int]:
        """The Section 4 resource summary for this program."""
        registers = self.pipeline.registers.arrays
        return {
            "tables": self.pipeline.table_count(),
            "table_entries": self.pipeline.total_entries(),
            "register_arrays_32": sum(1 for a in registers.values() if a.width == 32),
            "register_arrays_64": sum(1 for a in registers.values() if a.width == 64),
            "register_bits": self.pipeline.register_bits(),
        }
