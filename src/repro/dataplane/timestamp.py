"""Algorithm 2: emulate a 32-bit microsecond-granularity system time.

Tofino's egress pipeline exposes a 64-bit nanosecond timestamp, but the
stateful ALUs compare 32-bit operands only.  Using the raw lower 32 bits
wraps every ~4.3 s (catastrophic for ``marking_next``); the upper 32 bits
are ~4 s granular; and ``shift_right`` only takes 32-bit inputs, so the
"shift by 10" trick cannot be applied to the full 64-bit value directly.

The paper's emulation (Algorithm 2):

1. take the lower 32 bits of the nanosecond timestamp,
2. right-shift by 10, producing a 22-bit ~microsecond counter
   (units of 1.024 us) that wraps every 2^32 ns,
3. keep a 10-bit epoch register that increments whenever the 22-bit counter
   wraps (detected by the counter moving backwards),
4. emulated time = ``epoch * 2^22 + counter``, a 32-bit value in 1.024-us
   units that wraps only every ~4295 s.

One reproduction note: the paper's pseudocode increments the epoch when
``time_low <= register_low``.  Taken literally, two packets inside the same
1.024-us tick (routine at 10 Gbps+) would trigger a *spurious* wrap and jump
the clock forward by ~4.3 s.  Hardware implementations use strict "moved
backwards" detection, so this model increments only when
``time_low < register_low``; a unit test documents why ``<=`` is wrong.
"""

from __future__ import annotations

from .registers import RegisterArray, RegisterFile

__all__ = ["TimestampEmulator", "TICK_SECONDS", "EPOCH_TICKS"]

TICK_SECONDS = 1024e-9
"""One emulated-clock tick: 2^10 ns = 1.024 us."""

EPOCH_TICKS = 1 << 22
"""Ticks per epoch (the 22-bit counter's period)."""

_LOW_MASK = (1 << 32) - 1


class TimestampEmulator:
    """The Algorithm 2 state machine over two 32-bit registers.

    Args:
        registers: register file to declare ``ts_low`` / ``ts_high`` in.
        ports: number of switch ports (register array size).
        verbatim_wraparound: use the paper's literal ``<=`` wrap test
            instead of the corrected ``<`` (for the unit test demonstrating
            the spurious-wrap hazard).
    """

    def __init__(
        self,
        registers: RegisterFile,
        ports: int = 128,
        verbatim_wraparound: bool = False,
    ) -> None:
        self.reg_low: RegisterArray = registers.declare("ts_low", ports, width=32)
        self.reg_high: RegisterArray = registers.declare("ts_high", ports, width=32)
        self.verbatim_wraparound = verbatim_wraparound

    def step_low(self, egress_global_tstamp_ns: int, port: int = 0) -> tuple:
        """First pipeline stage: one access to ``ts_low``.

        Returns ``(time_low, wrapped)``: the 22-bit tick counter and whether
        it moved backwards since the previous packet (an epoch wrap).
        """
        if egress_global_tstamp_ns < 0:
            raise ValueError("timestamp cannot be negative")
        tmp_tstamp = egress_global_tstamp_ns & _LOW_MASK  # lower_32bits
        time_low = tmp_tstamp >> 10  # shift_right by 10 -> 22 bits

        wrap_test = (
            (lambda old: time_low <= old)
            if self.verbatim_wraparound
            else (lambda old: time_low < old)
        )

        def update_low(old: int) -> tuple:
            # One access: compare-and-store; outputs whether we wrapped.
            return time_low, 1 if wrap_test(old) else 0

        wrapped = self.reg_low.read_modify_write(port, update_low)
        return time_low, wrapped

    def step_high(self, wrapped: int, port: int = 0) -> int:
        """Second pipeline stage: one access to ``ts_high`` (the epoch)."""

        def update_high(old: int) -> tuple:
            new = old + wrapped
            return new, new

        return self.reg_high.read_modify_write(port, update_high)

    def current_time(self, egress_global_tstamp_ns: int, port: int = 0) -> int:
        """Algorithm 2: derive the emulated 32-bit time for one packet.

        Composes :meth:`step_low` and :meth:`step_high` (in the pipeline
        model these run as two separate match-action tables, one per
        register -- the paper's one-register-one-table rule).

        Args:
            egress_global_tstamp_ns: the 64-bit nanosecond pipeline
                timestamp carried by the packet.
            port: switch port index (selects the register cells).

        Returns:
            Emulated time in 1.024-us ticks (fits in 32 bits).
        """
        time_low, wrapped = self.step_low(egress_global_tstamp_ns, port)
        register_high = self.step_high(wrapped, port)
        return (register_high * EPOCH_TICKS + time_low) & _LOW_MASK

    @staticmethod
    def ticks_to_seconds(ticks: int) -> float:
        """Convert emulated ticks to seconds."""
        return ticks * TICK_SECONDS

    @staticmethod
    def seconds_to_ticks(seconds: float) -> int:
        """Convert seconds to emulated ticks (rounded down)."""
        if seconds < 0:
            raise ValueError("time cannot be negative")
        return int(seconds / TICK_SECONDS)
