"""Match-action pipeline model (Section 4.2, Figure 4c).

The paper's key implementation technique: instead of expressing Algorithm 1
as nested control flow (which needs multiple accesses to the same register
and does not compile, Figure 4b), every register gets exactly one
match-action table whose *actions* are the mutually-exclusive control-flow
paths; conditions are evaluated beforehand and carried in packet metadata,
and each action touches its register at most once.

:class:`MatchActionTable` and :class:`Pipeline` model that structure:
metadata is a plain dict (the PHV), a table matches a metadata-derived key
to an action, and the register file enforces the single-access constraint
per packet pass.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional

from .registers import PacketPass, RegisterFile

__all__ = ["Metadata", "MatchActionTable", "Pipeline"]

Metadata = Dict[str, object]
Action = Callable[[Metadata], None]


class MatchActionTable:
    """One logical match-action table.

    Args:
        name: table name (for diagnostics and resource accounting).
        match: computes the match key from metadata (models the header /
            metadata fields listed in the table's match spec).
        actions: key -> action.  Actions are mutually exclusive by
            construction -- exactly one runs per packet -- which is what
            makes one-register-one-table legal on Tofino.
        default_action: runs when no key matches (most of the paper's seven
            tables are default-action-only).
    """

    def __init__(
        self,
        name: str,
        match: Optional[Callable[[Metadata], Hashable]] = None,
        actions: Optional[Dict[Hashable, Action]] = None,
        default_action: Optional[Action] = None,
    ) -> None:
        if actions and match is None:
            raise ValueError(f"table {name!r} has actions but no match function")
        self.name = name
        self.match = match
        self.actions = actions or {}
        self.default_action = default_action
        self.hit_count = 0

    @property
    def entry_count(self) -> int:
        """Explicit table entries (default actions need none, §4)."""
        return len(self.actions)

    def apply(self, metadata: Metadata) -> None:
        self.hit_count += 1
        if self.match is not None:
            key = self.match(metadata)
            action = self.actions.get(key, self.default_action)
        else:
            action = self.default_action
        if action is not None:
            action(metadata)


class Pipeline:
    """An ordered sequence of tables sharing a register file."""

    def __init__(self, registers: Optional[RegisterFile] = None) -> None:
        self.registers = registers if registers is not None else RegisterFile()
        self.tables: List[MatchActionTable] = []

    def add_table(self, table: MatchActionTable) -> MatchActionTable:
        self.tables.append(table)
        return table

    def process(self, metadata: Metadata) -> Metadata:
        """Run one packet through every table, as one register pass."""
        with PacketPass(self.registers):
            for table in self.tables:
                table.apply(metadata)
        return metadata

    # ---------------------------------------------------------- accounting

    def table_count(self) -> int:
        return len(self.tables)

    def total_entries(self) -> int:
        return sum(t.entry_count for t in self.tables)

    def register_bits(self) -> int:
        return self.registers.total_bits()
