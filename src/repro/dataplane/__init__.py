"""Tofino dataplane model: registers, clock emulation, match-action ECN#."""

from .ecn_sharp_p4 import SQRT_TABLE_SIZE, EcnSharpPipeline
from .pipeline import MatchActionTable, Metadata, Pipeline
from .registers import (
    PacketPass,
    RegisterAccessViolation,
    RegisterArray,
    RegisterFile,
)
from .timestamp import EPOCH_TICKS, TICK_SECONDS, TimestampEmulator

__all__ = [
    "SQRT_TABLE_SIZE",
    "EcnSharpPipeline",
    "MatchActionTable",
    "Metadata",
    "Pipeline",
    "PacketPass",
    "RegisterAccessViolation",
    "RegisterArray",
    "RegisterFile",
    "EPOCH_TICKS",
    "TICK_SECONDS",
    "TimestampEmulator",
]
