"""Register arrays with Tofino's single-access constraint.

Tofino allows a P4 program to access a given register at most once per
packet pass -- where one *access* may be a full read-modify-write executed by
the stateful ALU (Section 4.2: "reading a register, comparing the register
value with another value, and then updating the register correspondingly are
also treated as one access").

:class:`RegisterArray` enforces exactly that: every read/write/read-modify-
write counts as the array's single access for the current packet pass, and a
second access raises :class:`RegisterAccessViolation` -- the compile error
the paper's first control-flow implementation (Figure 4b) would hit.  The
:class:`PacketPass` context manager delimits passes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["RegisterAccessViolation", "RegisterArray", "RegisterFile", "PacketPass"]


class RegisterAccessViolation(RuntimeError):
    """A register array was accessed more than once in one packet pass."""


class RegisterArray:
    """A fixed-width register array (one cell per switch port).

    Values are masked to ``width`` bits on every write, reproducing hardware
    wraparound semantics (the 32-bit time emulation depends on this).
    """

    def __init__(self, name: str, size: int, width: int = 32) -> None:
        if size <= 0:
            raise ValueError("register array size must be positive")
        if width not in (8, 16, 32, 64):
            raise ValueError("register width must be 8/16/32/64 bits")
        self.name = name
        self.size = size
        self.width = width
        self._mask = (1 << width) - 1
        self._cells: List[int] = [0] * size
        self._accessed_in_pass = False
        self.access_count = 0

    # ----------------------------------------------------------- pass hooks

    def _begin_pass(self) -> None:
        self._accessed_in_pass = False

    def _note_access(self) -> None:
        if self._accessed_in_pass:
            raise RegisterAccessViolation(
                f"register {self.name!r} accessed twice in one packet pass; "
                "Tofino allows a single (possibly read-modify-write) access"
            )
        self._accessed_in_pass = True
        self.access_count += 1

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"register {self.name!r} index {index} out of range")

    # -------------------------------------------------------------- accesses

    def read(self, index: int) -> int:
        """Read a cell (consumes the pass's single access)."""
        self._check_index(index)
        self._note_access()
        return self._cells[index]

    def write(self, index: int, value: int) -> None:
        """Write a cell (consumes the pass's single access)."""
        self._check_index(index)
        self._note_access()
        self._cells[index] = value & self._mask

    def read_modify_write(
        self, index: int, update: Callable[[int], Tuple[int, int]]
    ) -> int:
        """One stateful-ALU access: ``update(old) -> (new, output)``.

        The ALU stores ``new`` and forwards ``output`` to the pipeline; this
        is the only way to both observe and change a register in one pass.
        """
        self._check_index(index)
        self._note_access()
        old = self._cells[index]
        new, output = update(old)
        self._cells[index] = new & self._mask
        return output

    # ------------------------------------------------------------ debugging

    def peek(self, index: int) -> int:
        """Test-only read that bypasses access accounting."""
        self._check_index(index)
        return self._cells[index]

    def poke(self, index: int, value: int) -> None:
        """Test-only write that bypasses access accounting."""
        self._check_index(index)
        self._cells[index] = value & self._mask


class RegisterFile:
    """All register arrays of one P4 program, with pass management."""

    def __init__(self) -> None:
        self._arrays: Dict[str, RegisterArray] = {}

    def declare(self, name: str, size: int, width: int = 32) -> RegisterArray:
        if name in self._arrays:
            raise ValueError(f"register {name!r} already declared")
        array = RegisterArray(name, size, width)
        self._arrays[name] = array
        return array

    def __getitem__(self, name: str) -> RegisterArray:
        return self._arrays[name]

    def begin_pass(self) -> None:
        for array in self._arrays.values():
            array._begin_pass()

    @property
    def arrays(self) -> Dict[str, RegisterArray]:
        return dict(self._arrays)

    def total_bits(self) -> int:
        """Register memory footprint in bits (resource accounting, §4)."""
        return sum(a.size * a.width for a in self._arrays.values())


class PacketPass:
    """Context manager marking one packet's traversal of the pipeline."""

    def __init__(self, registers: RegisterFile) -> None:
        self._registers = registers

    def __enter__(self) -> "PacketPass":
        self._registers.begin_pass()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None
