"""Campaign results service: a long-lived query daemon over JSONL stores.

PR 9 made campaign stores multi-writer-safe and mergeable; this package
adds the promised serving tier on top, so repeated queries hit memoized
summaries instead of re-parsing stores (or worse, re-running simulations).
Everything is stdlib-only -- ``http.server`` + ``urllib`` -- and strictly
read-only over the stores it serves:

* :class:`~repro.service.index.StoreIndex` -- discovers stores under a
  root directory, keys each by its canonical
  :func:`~repro.scenarios.coordination.store_fingerprint`, and revalidates
  with a cheap stat probe so appends by concurrent ``--shared`` writers
  become visible without a restart.
* :mod:`~repro.service.query` -- filter cells by scenario / scheme /
  metric / fidelity / spec-token, aggregate into mean/percentile
  summaries, render JSON or CSV deterministically.
* :class:`~repro.service.cache.SummaryCache` -- an LRU of rendered
  response bodies keyed by ``(store fingerprint, query hash, format)``
  with a byte-size cap and TTL, so warm queries never touch disk.
* :mod:`~repro.service.daemon` -- the ``ThreadingHTTPServer`` behind
  ``repro serve``: ``/query``, ``/stores``, ``/resources``, ``/goldens``,
  ``/healthz``, ``/metricz``; fingerprint-derived ``ETag`` with
  ``If-None-Match`` -> 304; graceful SIGTERM drain.
* :class:`~repro.service.client.ServiceClient` -- the stdlib HTTP client
  behind ``repro query``.
"""

from .cache import SummaryCache
from .client import QueryResponse, ServiceClient, ServiceUnavailable
from .daemon import ResultsService, Response, serve
from .index import StoreEntry, StoreIndex
from .query import Query, QueryError, render, run_query, scheme_of

__all__ = [
    "Query",
    "QueryError",
    "QueryResponse",
    "ResultsService",
    "Response",
    "ServiceClient",
    "ServiceUnavailable",
    "StoreEntry",
    "StoreIndex",
    "SummaryCache",
    "render",
    "run_query",
    "scheme_of",
    "serve",
]
