"""The results daemon: ``ThreadingHTTPServer`` behind ``repro serve``.

Routes (all GET, all read-only):

* ``/query``     -- filter + aggregate cells (:mod:`repro.service.query`);
  JSON or CSV via ``format=`` / ``Accept``; ``ETag`` derived from the
  store fingerprint so ``If-None-Match`` returns 304 exactly while the
  settled cells are unchanged.
* ``/stores``    -- discovered stores with cell counts and ETag seeds.
* ``/resources`` -- ``.resources.jsonl`` sidecar rows.
* ``/goldens``   -- golden baseline JSON files (``--golden-dir``).
* ``/healthz``   -- liveness + store count.
* ``/metricz``   -- telemetry registry snapshot + summary-cache stats.

:class:`ResultsService` holds the HTTP-agnostic logic (``dispatch`` maps a
path + params + headers to a :class:`Response`), so tests exercise every
route without sockets; the handler class is a thin adapter.  ``serve``
runs the real server and drains gracefully on SIGTERM/SIGINT via
:class:`~repro.scenarios.coordination.GracefulShutdown`: stop accepting,
finish in-flight requests, exit 0.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..scenarios.coordination import GracefulShutdown
from ..telemetry.hub import Telemetry
from .cache import DEFAULT_CACHE_BYTES, SummaryCache
from .index import StoreEntry, StoreIndex
from .query import FORMATS, Query, QueryError, render, run_query

__all__ = ["ResultsService", "Response", "serve"]

_JSON = "application/json"
_CSV = "text/csv"


@dataclass
class Response:
    """One dispatched response, transport-independent."""

    status: int
    body: bytes = b""
    content_type: str = _JSON
    etag: Optional[str] = None
    cache_state: str = "none"  # hit | miss | not_modified | none
    endpoint: str = ""
    headers: Dict[str, str] = field(default_factory=dict)


def _json_body(payload: object) -> bytes:
    return (json.dumps(payload, sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")


def _error(status: int, message: str, endpoint: str) -> Response:
    return Response(
        status=status,
        body=_json_body({"error": message}),
        endpoint=endpoint,
    )


def _pick_format(params: Dict[str, str], accept: str) -> str:
    fmt = params.get("format", "")
    if fmt:
        if fmt not in FORMATS:
            raise QueryError(f"format must be one of {FORMATS}, got {fmt!r}")
        return fmt
    if "text/csv" in accept:
        return "csv"
    return "json"


class ResultsService:
    """Store index + query engine + summary cache behind one dispatcher."""

    def __init__(
        self,
        store_dir,
        golden_dir=None,
        cache_max_bytes: int = DEFAULT_CACHE_BYTES,
        cache_ttl: Optional[float] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.telemetry = telemetry if telemetry is not None else Telemetry(
            metrics=True, profile=False
        )
        self.index = StoreIndex(store_dir, telemetry=self.telemetry)
        self.cache = SummaryCache(
            max_bytes=cache_max_bytes, ttl=cache_ttl,
            telemetry=self.telemetry,
        )
        self.golden_dir = Path(golden_dir) if golden_dir is not None else None
        self.started = time.time()

    # ------------------------------------------------------------- dispatch

    def dispatch(self, path: str, params: Dict[str, str],
                 headers: Dict[str, str]) -> Response:
        routes = {
            "/query": self._route_query,
            "/stores": self._route_stores,
            "/resources": self._route_resources,
            "/goldens": self._route_goldens,
            "/healthz": self._route_healthz,
            "/metricz": self._route_metricz,
        }
        handler = routes.get(path.rstrip("/") or path)
        if handler is None:
            return _error(404, f"no such route: {path}", "unknown")
        try:
            return handler(params, headers)
        except QueryError as exc:
            return _error(400, str(exc), path.strip("/"))

    # --------------------------------------------------------------- routes

    def _resolve(self, store: str) -> Tuple[List[StoreEntry], str]:
        """Entries + combined ETag seed for ``store`` ("" = every store).
        Raises :class:`QueryError` flavored as a 404 for unknown names."""
        if store:
            entry = self.index.get(store)
            if entry is None:
                raise _NotFound(f"no such store: {store}")
            return [entry], entry.etag_seed
        entries = self.index.entries()
        seed = hashlib.sha256(
            "\n".join(f"{e.name}:{e.etag_seed}" for e in entries)
            .encode("utf-8")
        ).hexdigest()
        return entries, seed

    def _route_query(self, params: Dict[str, str],
                     headers: Dict[str, str]) -> Response:
        query = Query.from_params(params)
        fmt = _pick_format(params, headers.get("Accept", ""))
        try:
            entries, seed = self._resolve(query.store)
        except _NotFound as exc:
            return _error(404, str(exc), "query")
        etag = _make_etag(seed, query.query_hash(), fmt)
        if _etag_matches(headers.get("If-None-Match", ""), etag):
            return Response(status=304, etag=etag,
                            cache_state="not_modified", endpoint="query")
        key = (seed, query.query_hash(), fmt)
        body = self.cache.get(key)
        cache_state = "hit"
        if body is None:
            cache_state = "miss"
            merged: Dict[str, object] = {"query": query.canonical(),
                                         "mode": query.mode}
            rows: List[Dict[str, object]] = []
            for entry in entries:
                result = run_query(entry.records, query, store=entry.name)
                rows.extend(result.get("cells", []))
            if query.mode == "cells":
                merged["cells"] = rows
                merged["count"] = len(rows)
                body = render(merged, fmt)
            else:
                # Re-aggregate across stores so a multi-store summary is a
                # single grouping pass, not a summary of summaries.
                all_records = [r for e in entries for r in e.records]
                body = render(
                    run_query(all_records, query, store=query.store), fmt
                )
            self.cache.put(key, body)
        return Response(
            status=200, body=body,
            content_type=_CSV if fmt == "csv" else _JSON,
            etag=etag, cache_state=cache_state, endpoint="query",
        )

    def _route_stores(self, params: Dict[str, str],
                      headers: Dict[str, str]) -> Response:
        listing = [
            {
                "name": entry.name,
                "cells": len(entry.records),
                "etag_seed": entry.etag_seed,
                "torn_lines": entry.torn_lines,
                "resources": len(entry.resources),
            }
            for entry in self.index.entries()
        ]
        return _hashed_json({"stores": listing}, headers, "stores")

    def _route_resources(self, params: Dict[str, str],
                         headers: Dict[str, str]) -> Response:
        store = params.get("store", "")
        try:
            entries, _ = self._resolve(store)
        except _NotFound as exc:
            return _error(404, str(exc), "resources")
        payload = {
            "resources": {e.name: e.resources for e in entries}
        }
        return _hashed_json(payload, headers, "resources")

    def _route_goldens(self, params: Dict[str, str],
                       headers: Dict[str, str]) -> Response:
        if self.golden_dir is None or not self.golden_dir.is_dir():
            return _error(404, "no golden directory configured", "goldens")
        name = params.get("name", "")
        if not name:
            listing = sorted(
                p.stem for p in self.golden_dir.glob("*.json")
            )
            return _hashed_json({"goldens": listing}, headers, "goldens")
        if "/" in name or "\\" in name or name.startswith("."):
            return _error(400, f"invalid golden name: {name}", "goldens")
        path = self.golden_dir / (name + ".json")
        if not path.is_file():
            return _error(404, f"no such golden: {name}", "goldens")
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except ValueError:
            return _error(500, f"unreadable golden: {name}", "goldens")
        return _hashed_json(payload, headers, "goldens")

    def _route_healthz(self, params: Dict[str, str],
                       headers: Dict[str, str]) -> Response:
        payload = {
            "status": "ok",
            "stores": len(self.index.discover()),
            "uptime_seconds": max(0.0, time.time() - self.started),
        }
        return Response(status=200, body=_json_body(payload),
                        endpoint="healthz")

    def _route_metricz(self, params: Dict[str, str],
                       headers: Dict[str, str]) -> Response:
        payload = {
            "metrics": self.telemetry.registry.snapshot(),
            "cache": self.cache.stats(),
            "store_loads": self.index.store_loads,
            "uptime_seconds": max(0.0, time.time() - self.started),
        }
        return Response(status=200, body=_json_body(payload),
                        endpoint="metricz")


class _NotFound(Exception):
    pass


def _make_etag(seed: str, query_hash: str, fmt: str) -> str:
    digest = hashlib.sha256(
        f"{seed}/{query_hash}/{fmt}".encode("utf-8")
    ).hexdigest()[:32]
    return f'"{digest}"'


def _etag_matches(header: str, etag: str) -> bool:
    if not header:
        return False
    if header.strip() == "*":
        return True
    candidates = [c.strip() for c in header.split(",")]
    return etag in candidates or etag.strip('"') in candidates


def _hashed_json(payload: object, headers: Dict[str, str],
                 endpoint: str) -> Response:
    """A JSON response whose ETag is the body hash (for routes with no
    natural fingerprint, e.g. ``/stores``)."""
    body = _json_body(payload)
    etag = f'"{hashlib.sha256(body).hexdigest()[:32]}"'
    if _etag_matches(headers.get("If-None-Match", ""), etag):
        return Response(status=304, etag=etag, cache_state="not_modified",
                        endpoint=endpoint)
    return Response(status=200, body=body, etag=etag, endpoint=endpoint)


# -------------------------------------------------------------------- HTTP

class _Handler(BaseHTTPRequestHandler):
    """Thin socket adapter over :meth:`ResultsService.dispatch`."""

    service: ResultsService  # injected by _make_server
    server_version = "repro-results/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging goes through telemetry, not stderr

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        started = time.perf_counter()
        parsed = urlsplit(self.path)
        params = {
            key: values[-1]
            for key, values in parse_qs(parsed.query).items()
        }
        headers = {
            "Accept": self.headers.get("Accept", ""),
            "If-None-Match": self.headers.get("If-None-Match", ""),
        }
        try:
            response = self.service.dispatch(parsed.path, params, headers)
        except Exception as exc:  # pragma: no cover - defensive
            response = _error(500, f"internal error: {exc}", "error")
        # Count before writing: a client that pipelines a /metricz right
        # after this response must already see this request counted.
        self.service.telemetry.on_service_request(
            response.endpoint, response.status, response.cache_state,
            time.perf_counter() - started,
        )
        self.send_response(response.status)
        if response.etag is not None:
            self.send_header("ETag", response.etag)
        self.send_header("Cache-Control", "no-cache")
        if response.status != 304:
            self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        if response.status != 304 and response.body:
            self.wfile.write(response.body)


def _make_server(service: ResultsService, host: str,
                 port: int) -> ThreadingHTTPServer:
    handler = type("BoundHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    # Drain semantics: stop accepting on shutdown(), then server_close()
    # joins the in-flight handler threads instead of abandoning them.
    server.daemon_threads = False
    server.block_on_close = True
    return server


def serve(
    store_dir,
    host: str = "127.0.0.1",
    port: int = 8077,
    golden_dir=None,
    cache_max_bytes: int = DEFAULT_CACHE_BYTES,
    cache_ttl: Optional[float] = None,
    telemetry: Optional[Telemetry] = None,
    stream=None,
) -> int:
    """Run the daemon until SIGTERM/SIGINT, then drain and return 0.

    Prints one ``# repro serve: listening ...`` line once the socket is
    bound (CI greps it) and a drain line on clean exit."""
    import sys

    out = stream if stream is not None else sys.stdout
    service = ResultsService(
        store_dir,
        golden_dir=golden_dir,
        cache_max_bytes=cache_max_bytes,
        cache_ttl=cache_ttl,
        telemetry=telemetry,
    )
    server = _make_server(service, host, port)
    bound_host, bound_port = server.server_address[:2]
    stores = len(service.index.discover())
    print(
        f"# repro serve: listening on http://{bound_host}:{bound_port} "
        f"store-dir={service.index.root} stores={stores}",
        file=out, flush=True,
    )
    with GracefulShutdown() as shutdown:
        def _watch() -> None:
            while not shutdown.requested:
                time.sleep(0.1)
            server.shutdown()

        watcher = threading.Thread(target=_watch, daemon=True)
        watcher.start()
        try:
            server.serve_forever(poll_interval=0.2)
        finally:
            server.server_close()
    print(
        f"# repro serve: drained cleanly "
        f"(signal={shutdown.signum or 0}, "
        f"requests="
        f"{_requests_total(service)})",
        file=out, flush=True,
    )
    return 0


def _requests_total(service: ResultsService) -> int:
    counters = service.telemetry.registry.snapshot().get("counters", {})
    return int(sum(
        value for name, value in counters.items()
        if name.startswith("service_requests_total")
    ))
