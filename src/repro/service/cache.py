"""The summary-tier LRU: rendered response bodies keyed by content hash.

This cache sits *above* the per-cell pickle cache (`ResultCache`): where
that tier memoizes simulation results, this one memoizes whole serialized
query responses, keyed by ``(store fingerprint seed, query hash, format)``.
Because the fingerprint seed is part of the key, a store append simply
orphans the old entries -- no invalidation protocol, stale entries age out
via LRU / TTL eviction.

Bounded two ways: a byte-size cap over stored bodies (LRU eviction) and an
optional TTL (entries older than ``ttl`` seconds count as misses and are
dropped on access).  Hit / miss / eviction totals feed the
``service_cache_{hits,misses,evictions}_total`` telemetry counters, which
is how tests assert a warm query was served entirely from memory.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Dict, Optional, Tuple

__all__ = ["DEFAULT_CACHE_BYTES", "SummaryCache"]

DEFAULT_CACHE_BYTES = 32 * 1024 * 1024

CacheKey = Tuple[str, str, str]  # (etag_seed, query_hash, format)


class SummaryCache:
    """Thread-safe LRU of rendered response bodies.

    Args:
        max_bytes: cap on the summed size of stored bodies; least-recently
            used entries are evicted to fit.  A single body larger than the
            cap is simply not retained.
        ttl: seconds an entry stays servable, or ``None`` for no TTL.
        telemetry: optional :class:`~repro.telemetry.hub.Telemetry` whose
            registry receives the ``service_cache_*_total`` counters.
        clock: injectable monotonic clock (tests).
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_CACHE_BYTES,
        ttl: Optional[float] = None,
        telemetry=None,
        clock=time.monotonic,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError("cache max_bytes must be positive")
        self.max_bytes = max_bytes
        self.ttl = ttl
        self.telemetry = telemetry
        self._clock = clock
        self._entries: "OrderedDict[CacheKey, Tuple[bytes, float]]" = (
            OrderedDict()
        )
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _count(self, outcome: str) -> None:
        if self.telemetry is not None:
            self.telemetry.registry.counter(
                f"service_cache_{outcome}_total"
            ).inc()

    def _evict(self, key: CacheKey) -> None:
        body, _ = self._entries.pop(key)
        self._bytes -= len(body)
        self.evictions += 1
        self._count("evictions")

    def get(self, key: CacheKey) -> Optional[bytes]:
        """The cached body for ``key``, or ``None`` (miss / expired)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                body, stored_at = entry
                if self.ttl is not None and (
                    self._clock() - stored_at > self.ttl
                ):
                    self._evict(key)
                else:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    self._count("hits")
                    return body
            self.misses += 1
            self._count("misses")
            return None

    def put(self, key: CacheKey, body: bytes) -> None:
        with self._lock:
            if key in self._entries:
                self._bytes -= len(self._entries.pop(key)[0])
            self._entries[key] = (body, self._clock())
            self._bytes += len(body)
            while self._bytes > self.max_bytes and self._entries:
                self._evict(next(iter(self._entries)))

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "ttl": self.ttl,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
