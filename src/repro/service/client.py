"""Stdlib HTTP client for the results daemon (backs ``repro query``).

``urllib.request`` only -- no new dependencies.  A connection failure
raises :class:`ServiceUnavailable`, which the CLI catches to fall back to
an in-process read of the store directory; HTTP-level errors (400/404)
surface as normal responses so callers see the daemon's error payload.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional
from urllib.error import HTTPError, URLError
from urllib.parse import urlencode
from urllib.request import Request, urlopen

__all__ = ["QueryResponse", "ServiceClient", "ServiceUnavailable"]


class ServiceUnavailable(RuntimeError):
    """The daemon could not be reached at all (connection refused, DNS,
    timeout) -- distinct from an HTTP error response."""


@dataclass
class QueryResponse:
    """One HTTP exchange with the daemon."""

    status: int
    body: bytes = b""
    etag: str = ""
    content_type: str = ""
    headers: Dict[str, str] = field(default_factory=dict)

    def json(self) -> object:
        return json.loads(self.body.decode("utf-8"))


class ServiceClient:
    """Minimal GET client bound to one daemon base URL."""

    def __init__(self, base_url: str, timeout: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def get(
        self,
        path: str,
        params: Optional[Dict[str, str]] = None,
        accept: str = "application/json",
        etag: str = "",
    ) -> QueryResponse:
        """GET ``path`` (optionally with ``If-None-Match: etag``); returns
        the response whether 2xx, 304 or an HTTP error."""
        url = self.base_url + path
        query = {k: v for k, v in (params or {}).items() if v}
        if query:
            url += "?" + urlencode(query)
        headers = {"Accept": accept}
        if etag:
            headers["If-None-Match"] = etag
        request = Request(url, headers=headers, method="GET")
        try:
            with urlopen(request, timeout=self.timeout) as raw:
                return self._wrap(raw.status, dict(raw.headers), raw.read())
        except HTTPError as err:
            # 304 and 4xx/5xx both land here with urllib; surface them.
            body = err.read() if err.fp is not None else b""
            return self._wrap(err.code, dict(err.headers or {}), body)
        except (URLError, OSError, TimeoutError) as err:
            raise ServiceUnavailable(
                f"cannot reach results service at {self.base_url}: {err}"
            ) from err

    @staticmethod
    def _wrap(status: int, headers: Dict[str, str],
              body: bytes) -> QueryResponse:
        return QueryResponse(
            status=status,
            body=body,
            etag=headers.get("ETag", ""),
            content_type=headers.get("Content-Type", ""),
            headers=headers,
        )

    # -------------------------------------------------------- typed helpers

    def healthz(self) -> dict:
        return self.get("/healthz").json()

    def metricz(self) -> dict:
        return self.get("/metricz").json()

    def stores(self) -> dict:
        return self.get("/stores").json()

    def query(
        self,
        params: Optional[Dict[str, str]] = None,
        accept: str = "application/json",
        etag: str = "",
    ) -> QueryResponse:
        return self.get("/query", params=params, accept=accept, etag=etag)
