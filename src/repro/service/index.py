"""Store discovery and stat-probe revalidation for the results service.

The index is the daemon's only path to disk.  A store is loaded (parsed,
fingerprinted, its sidecar read) at most once per *content change*: every
request re-stats the store and its ``.resources.jsonl`` sidecar -- two
``stat(2)`` calls, no reads -- and reuses the cached entry whenever
``(mtime_ns, size)`` of both files are unchanged.  Appends by concurrent
``--shared`` writers bump the probe, so fresh cells become visible on the
next request without restarting the daemon.

The ``service_store_loads_total`` counter increments only on an actual
parse, which is how tests assert that warm queries do zero store reads.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..scenarios.campaign import CampaignStore, CellRecord
from ..scenarios.coordination import fingerprint_records

__all__ = ["StoreEntry", "StoreIndex"]

_SIDECAR_SUFFIXES = (".resources.jsonl", ".leases.jsonl")

Probe = Tuple[int, int, int, int]


def _probe_one(path: Path) -> Tuple[int, int]:
    try:
        stat = path.stat()
    except OSError:
        return (0, 0)
    return (stat.st_mtime_ns, stat.st_size)


@dataclass
class StoreEntry:
    """One discovered store, parsed and fingerprinted.

    ``etag_seed`` is the hex SHA-256 of the canonical fingerprint bytes --
    the content-hash seed every response ``ETag`` for this store derives
    from, so the ETag flips exactly when the settled cells change.
    """

    name: str
    path: Path
    records: List[CellRecord]
    resources: List[dict]
    fingerprint: bytes
    etag_seed: str
    torn_lines: int
    probe: Probe


class StoreIndex:
    """Discover, cache and revalidate campaign stores under ``root``.

    Store names are sidecar-free ``*.jsonl`` paths relative to ``root``
    without the suffix (``sweeps/fig10`` for ``root/sweeps/fig10.jsonl``).
    Thread-safe: the daemon's handler threads share one index.
    """

    def __init__(self, root, telemetry=None) -> None:
        self.root = Path(root)
        self.telemetry = telemetry
        self.store_loads = 0
        self._entries: Dict[str, StoreEntry] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------ discovery

    def discover(self) -> List[str]:
        """Names of every store currently under ``root`` (sorted).  Scans
        the directory tree each call, so stores created after startup
        appear without a restart."""
        names: List[str] = []
        if not self.root.is_dir():
            return names
        for path in sorted(self.root.rglob("*.jsonl")):
            if any(path.name.endswith(s) for s in _SIDECAR_SUFFIXES):
                continue
            names.append(
                path.relative_to(self.root).as_posix()[: -len(".jsonl")]
            )
        return names

    # ----------------------------------------------------------- validation

    def _path_of(self, name: str) -> Optional[Path]:
        if not name or name.startswith(("/", "\\")) or ".." in name.split("/"):
            return None
        return self.root / (name + ".jsonl")

    def get(self, name: str) -> Optional[StoreEntry]:
        """Current entry for ``name``, reloading only when the stat probe
        says the store (or its sidecar) changed; ``None`` for unknown or
        path-escaping names."""
        path = self._path_of(name)
        if path is None or not path.is_file():
            return None
        store = CampaignStore(path)
        probe: Probe = _probe_one(path) + _probe_one(store.resources_path)
        with self._lock:
            entry = self._entries.get(name)
            if entry is not None and entry.probe == probe:
                return entry
            # A writer appending between the probe and the load only makes
            # the cached entry *fresher* than its probe claims; the next
            # request's probe mismatch reloads -- never stale forever.
            index = store.load()
            records = sorted(
                index.values(),
                key=lambda r: (r.scenario, r.scenario_hash, r.cell_key,
                               r.tokens),
            )
            fingerprint = fingerprint_records(records)
            entry = StoreEntry(
                name=name,
                path=path,
                records=records,
                resources=store.load_resources(),
                fingerprint=fingerprint,
                etag_seed=hashlib.sha256(fingerprint).hexdigest(),
                torn_lines=store.load_stats.torn_lines,
                probe=probe,
            )
            self._entries[name] = entry
            self.store_loads += 1
            if self.telemetry is not None:
                self.telemetry.registry.counter(
                    "service_store_loads_total"
                ).inc()
            return entry

    def entries(self) -> List[StoreEntry]:
        """Current entries for every discovered store."""
        found = []
        for name in self.discover():
            entry = self.get(name)
            if entry is not None:
                found.append(entry)
        return found
