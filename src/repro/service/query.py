"""The results-service query engine: filter, aggregate, render.

A query selects settled campaign cells by scenario / scheme / metric /
fidelity / spec-token / status, then either returns the matching
``(cell, metric, value)`` rows verbatim (``mode=cells``) or groups them by
``(scenario, scheme, metric)`` and aggregates with the repo's one true
percentile definition from :mod:`repro.core.stats_util`
(``mode=summary``, the default).

Everything here is deterministic: the canonical form of a query hashes
stably (the summary-cache key), and both renderers emit byte-identical
output for identical inputs (the byte-correctness the concurrent-serving
tests assert).
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from ..core.stats_util import mean_or_none, percentile_or_none
from ..scenarios.campaign import CellRecord

__all__ = [
    "FORMATS",
    "Query",
    "QueryError",
    "render",
    "run_query",
    "scheme_of",
]

FORMATS = ("json", "csv")

_STATUSES = ("ok", "failed", "any")
_MODES = ("summary", "cells")
_FIELDS = ("store", "scenario", "scheme", "metric", "fidelity", "token",
           "status", "mode")

_CELL_COLUMNS = ("store", "scenario", "cell_key", "component", "scheme",
                 "fidelity", "status", "metric", "value")
_SUMMARY_COLUMNS = ("scenario", "scheme", "metric", "count", "mean", "p50",
                    "p95", "p99", "min", "max")


class QueryError(ValueError):
    """A malformed query (unknown parameter or value) -- HTTP 400."""


def scheme_of(cell_key: str) -> str:
    """The ``scheme=`` segment of a campaign cell key, or ``""``.

    Cell keys are ``component|load=0.6|scheme=DCTCP-RED`` style strings
    (see :mod:`repro.scenarios.compile`)."""
    for segment in cell_key.split("|"):
        if segment.startswith("scheme="):
            return segment[len("scheme="):]
    return ""


@dataclass(frozen=True)
class Query:
    """One normalized query.  Empty string means "don't filter" (except
    ``status``, whose default is ``ok`` -- failed cells carry no metrics,
    so serving them by default would only pollute aggregates)."""

    store: str = ""
    scenario: str = ""
    scheme: str = ""
    metric: str = ""
    fidelity: str = ""
    token: str = ""
    status: str = "ok"
    mode: str = "summary"

    @classmethod
    def from_params(cls, params: Dict[str, str]) -> "Query":
        unknown = sorted(set(params) - set(_FIELDS) - {"format"})
        if unknown:
            raise QueryError(f"unknown query parameters: {unknown}")
        values = {name: params.get(name, "") for name in _FIELDS}
        values["status"] = values["status"] or "ok"
        values["mode"] = values["mode"] or "summary"
        if values["status"] not in _STATUSES:
            raise QueryError(
                f"status must be one of {_STATUSES}, got {values['status']!r}"
            )
        if values["mode"] not in _MODES:
            raise QueryError(
                f"mode must be one of {_MODES}, got {values['mode']!r}"
            )
        return cls(**values)

    def canonical(self) -> Dict[str, str]:
        """Every field, defaults included -- the hashed form."""
        return {name: getattr(self, name) for name in _FIELDS}

    def query_hash(self) -> str:
        """Stable 16-hex-digit digest of the canonical form: half of the
        summary-cache key (the other half is the store fingerprint)."""
        payload = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    # ------------------------------------------------------------- matching

    def matches(self, record: CellRecord) -> bool:
        if self.scenario and record.scenario != self.scenario:
            return False
        if self.scheme and scheme_of(record.cell_key) != self.scheme:
            return False
        if self.fidelity and record.fidelity != self.fidelity:
            return False
        if self.status != "any" and record.status != self.status:
            return False
        if self.token and not any(self.token in t for t in record.tokens):
            return False
        return True


def _cell_rows(
    records: Iterable[CellRecord], query: Query, store: str = ""
) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for record in records:
        if not query.matches(record):
            continue
        for metric_name in sorted(record.metrics):
            if query.metric and metric_name != query.metric:
                continue
            rows.append({
                "store": store,
                "scenario": record.scenario,
                "cell_key": record.cell_key,
                "component": record.component,
                "scheme": scheme_of(record.cell_key),
                "fidelity": record.fidelity,
                "status": record.status,
                "metric": metric_name,
                "value": record.metrics[metric_name],
            })
    return rows


def _summarize(rows: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    groups: Dict[tuple, List[float]] = {}
    for row in rows:
        key = (row["scenario"], row["scheme"], row["metric"])
        groups.setdefault(key, []).append(float(row["value"]))
    summaries = []
    for scenario, scheme, metric in sorted(groups):
        values = groups[(scenario, scheme, metric)]
        summaries.append({
            "scenario": scenario,
            "scheme": scheme,
            "metric": metric,
            "count": len(values),
            "mean": mean_or_none(values),
            "p50": percentile_or_none(values, 50.0),
            "p95": percentile_or_none(values, 95.0),
            "p99": percentile_or_none(values, 99.0),
            "min": min(values),
            "max": max(values),
        })
    return summaries


def run_query(
    records: Iterable[CellRecord],
    query: Query,
    store: str = "",
) -> Dict[str, object]:
    """Execute ``query`` over already-loaded ``records``.

    Returns a JSON-serializable result: the canonical query echoed back,
    plus ``cells`` rows or ``summaries`` groups depending on the mode."""
    rows = _cell_rows(records, query, store=store)
    result: Dict[str, object] = {
        "query": query.canonical(),
        "mode": query.mode,
    }
    if query.mode == "cells":
        result["cells"] = rows
        result["count"] = len(rows)
    else:
        summaries = _summarize(rows)
        result["summaries"] = summaries
        result["count"] = len(summaries)
        result["cells_matched"] = len(rows)
    return result


# ------------------------------------------------------------------ render

def render(result: Dict[str, object], fmt: str) -> bytes:
    """Serialize a :func:`run_query` result deterministically.

    ``json`` is compact sorted-key JSON + trailing newline; ``csv`` is the
    row table (cells or summaries) with a fixed header."""
    if fmt == "json":
        text = json.dumps(result, sort_keys=True, separators=(",", ":"))
        return (text + "\n").encode("utf-8")
    if fmt == "csv":
        if result["mode"] == "cells":
            columns, rows = _CELL_COLUMNS, result["cells"]
        else:
            columns, rows = _SUMMARY_COLUMNS, result["summaries"]
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(columns)
        for row in rows:
            writer.writerow(["" if row[c] is None else row[c]
                             for c in columns])
        return buffer.getvalue().encode("utf-8")
    raise QueryError(f"format must be one of {FORMATS}, got {fmt!r}")
