"""Fidelity gates: baseline capture and the pass/warn/fail verdict run.

``capture_baselines`` executes the validation grid and snapshots its
per-seed metric samples into a checked-in JSON baseline.  ``run_gate``
re-executes the *same* grid (pure cache hits when nothing changed),
compares cell-by-cell against the baseline with the statistical machinery
in :mod:`.stats`, evaluates the paper-trend invariants in
:mod:`.invariants`, and optionally applies an engine-throughput perf gate
against a benchmark payload embedded at capture time.

Every verdict is mirrored into telemetry
(``validation_verdicts_total{kind,status}`` plus ``validation`` trace
events) when a telemetry hub is active.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..experiments.executor import Executor, get_default_executor
from ..experiments.faults import RunFailure
from ..experiments.report import format_failure_table, format_table, to_json
from ..telemetry.runtime import get_active
from .baselines import (
    Baseline,
    BaselineManifest,
    ensure_clean_tree,
)
from .grids import GridOutcome, ValidationScale, resolve_scale, run_validation_grid
from .invariants import InvariantVerdict, evaluate_figure
from .stats import (
    COUNT_BAND,
    DEFAULT_BAND,
    FAIL,
    PASS,
    QUEUE_BAND,
    SKIP,
    WARN,
    CellComparison,
    ToleranceBand,
    compare_samples,
)

__all__ = [
    "band_for",
    "PerfVerdict",
    "evaluate_perf",
    "ValidationReport",
    "capture_baselines",
    "run_gate",
    "default_baseline_path",
]

COUNT_METRICS = ("drops", "query_timeouts")
QUEUE_METRIC_SUFFIX = "_pkts"


def band_for(metric: str) -> ToleranceBand:
    """Tolerance band by metric family: event counts are noisy and small,
    queue depths moderately so, FCT statistics tightest."""
    if metric in COUNT_METRICS:
        return COUNT_BAND
    if metric.endswith(QUEUE_METRIC_SUFFIX):
        return QUEUE_BAND
    return DEFAULT_BAND


def default_baseline_path(baseline_dir: Union[str, Path], scale_name: str) -> Path:
    return Path(baseline_dir) / f"{scale_name}.json"


# ------------------------------------------------------------- perf gate

PERF_WARN_RATIO = 0.8
PERF_FAIL_RATIO = 0.5


@dataclass(frozen=True)
class PerfVerdict:
    """Engine-throughput comparison against the baseline bench payload."""

    status: str
    ratio: Optional[float]
    current_eps: Optional[float]
    baseline_eps: Optional[float]
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "ratio": self.ratio,
            "current_events_per_sec": self.current_eps,
            "baseline_events_per_sec": self.baseline_eps,
            "detail": self.detail,
        }


def _bench_eps(payload: Optional[dict]) -> Optional[float]:
    if not payload:
        return None
    engine = payload.get("engine") or {}
    eps = engine.get("events_per_sec")
    return float(eps) if eps else None


def evaluate_perf(
    current: Optional[dict], baseline: Optional[dict]
) -> PerfVerdict:
    """Compare ``events_per_sec`` of two ``BENCH_engine.json`` payloads.

    Missing either side skips the gate.  A host mismatch (different CPU
    count or Python version) caps the verdict at WARN -- absolute
    throughput is not comparable across machines.
    """
    current_eps = _bench_eps(current)
    baseline_eps = _bench_eps(baseline)
    if current_eps is None or baseline_eps is None:
        return PerfVerdict(
            status=SKIP,
            ratio=None,
            current_eps=current_eps,
            baseline_eps=baseline_eps,
            detail="bench payload missing on one side; perf gate skipped",
        )
    ratio = current_eps / baseline_eps
    host_mismatch = []
    for key, current_value in (
        ("cpu_count", (current or {}).get("cpu_count")),
        ("python", (current or {}).get("python")),
    ):
        baseline_value = (baseline or {}).get(key)
        if (
            current_value is not None
            and baseline_value is not None
            and current_value != baseline_value
        ):
            host_mismatch.append(key)
    if ratio >= PERF_WARN_RATIO:
        status = PASS
        detail = f"throughput ratio {ratio:.2f} >= {PERF_WARN_RATIO}"
    elif ratio >= PERF_FAIL_RATIO:
        status = WARN
        detail = f"throughput ratio {ratio:.2f} in [{PERF_FAIL_RATIO}, {PERF_WARN_RATIO})"
    else:
        status = FAIL
        detail = f"throughput ratio {ratio:.2f} < {PERF_FAIL_RATIO}"
    if host_mismatch and status == FAIL:
        status = WARN
        detail += f"; capped at warn (host mismatch: {', '.join(host_mismatch)})"
    return PerfVerdict(
        status=status,
        ratio=ratio,
        current_eps=current_eps,
        baseline_eps=baseline_eps,
        detail=detail,
    )


# -------------------------------------------------------------- reporting


@dataclass
class ValidationReport:
    """Everything one gate run decided, renderable as JSON or text."""

    scale: str
    comparisons: List[CellComparison] = field(default_factory=list)
    invariants: List[InvariantVerdict] = field(default_factory=list)
    perf: Optional[PerfVerdict] = None
    failures: List[RunFailure] = field(default_factory=list)
    executor_line: str = ""
    baseline_manifest: Optional[BaselineManifest] = None

    @property
    def status(self) -> str:
        statuses = [c.status for c in self.comparisons]
        statuses += [v.status for v in self.invariants]
        if self.perf is not None:
            statuses.append(self.perf.status)
        if self.failures:
            return FAIL  # cells that did not run cannot confirm fidelity
        if FAIL in statuses:
            return FAIL
        if WARN in statuses:
            return WARN
        return PASS

    def counts(self) -> Dict[str, int]:
        counts = {PASS: 0, WARN: 0, FAIL: 0, SKIP: 0}
        for item in [*self.comparisons, *self.invariants]:
            counts[item.status] = counts.get(item.status, 0) + 1
        return counts

    def failed_names(self) -> List[str]:
        names = [
            f"{c.figure}:{c.cell}:{c.metric}"
            for c in self.comparisons
            if c.status == FAIL
        ]
        names += [v.name for v in self.invariants if v.status == FAIL]
        if self.perf is not None and self.perf.status == FAIL:
            names.append("perf.engine_events_per_sec")
        return names

    def to_dict(self) -> dict:
        return {
            "scale": self.scale,
            "status": self.status,
            "counts": self.counts(),
            "failed": self.failed_names(),
            "comparisons": [c.to_dict() for c in self.comparisons],
            "invariants": [v.to_dict() for v in self.invariants],
            "perf": None if self.perf is None else self.perf.to_dict(),
            "run_failures": len(self.failures),
            "executor": self.executor_line,
            "baseline_manifest": (
                None
                if self.baseline_manifest is None
                else self.baseline_manifest.to_dict()
            ),
        }

    def to_json(self, path: Optional[str] = None) -> str:
        return to_json(self.to_dict(), path)

    def render_text(self) -> str:
        sections: List[str] = []
        interesting = [c for c in self.comparisons if c.status != PASS]
        rows = [
            [
                c.figure,
                c.cell,
                c.metric,
                c.status.upper(),
                f"{c.current_mean:.6g}" if c.current_mean is not None else "-",
                f"{c.baseline_mean:.6g}" if c.baseline_mean is not None else "-",
                f"{c.rel_err:.1%}" if c.rel_err is not None else "-",
            ]
            for c in interesting
        ]
        if rows:
            sections.append(
                format_table(
                    ["figure", "cell", "metric", "status", "current",
                     "baseline", "rel err"],
                    rows,
                    title="Baseline comparisons (non-pass cells)",
                )
            )
        else:
            sections.append(
                f"Baseline comparisons: all {len(self.comparisons)} "
                "cell-metrics pass"
            )
        inv_rows = [
            [
                v.figure,
                v.name,
                v.status.upper(),
                f"{v.value:.4g}" if v.value is not None else "-",
                f"{v.threshold:.4g}",
                v.detail,
            ]
            for v in self.invariants
        ]
        if inv_rows:
            sections.append(
                format_table(
                    ["figure", "invariant", "status", "value", "threshold",
                     "detail"],
                    inv_rows,
                    title="Paper-trend invariants",
                )
            )
        if self.perf is not None:
            sections.append(
                f"Perf gate: {self.perf.status.upper()} ({self.perf.detail})"
            )
        if self.failures:
            sections.append(format_failure_table(self.failures))
        counts = self.counts()
        sections.append(
            f"Validation [{self.scale}]: {self.status.upper()} "
            f"(pass={counts[PASS]} warn={counts[WARN]} fail={counts[FAIL]} "
            f"skip={counts[SKIP]}; run_failures={len(self.failures)}; "
            f"{self.executor_line})"
        )
        return "\n\n".join(sections)


def _emit_verdicts(report: ValidationReport) -> None:
    telemetry = get_active()
    if telemetry is None:
        return
    for c in report.comparisons:
        telemetry.on_validation_verdict(
            "baseline",
            f"{c.figure}:{c.cell}:{c.metric}",
            c.status,
            figure=c.figure,
            detail=c.detail,
        )
    for v in report.invariants:
        telemetry.on_validation_verdict(
            "invariant",
            v.name,
            v.status,
            figure=v.figure,
            detail=v.detail,
        )
    if report.perf is not None:
        telemetry.on_validation_verdict(
            "perf",
            "engine_events_per_sec",
            report.perf.status,
            detail=report.perf.detail,
        )


# --------------------------------------------------------------- capture


def _figure_params(scale: ValidationScale, figure: str) -> dict:
    params: Dict[str, object] = {"n_seeds": scale.n_seeds}
    if figure in ("fig6", "fig7"):
        prefix = figure
        params.update(
            loads=list(getattr(scale, f"{prefix}_loads")),
            n_flows=getattr(scale, f"{prefix}_flows"),
            seed=getattr(scale, f"{prefix}_seed"),
            schemes=list(scale.fig6_schemes),
        )
    elif figure == "fig8":
        params.update(
            variations=list(scale.fig8_variations),
            loads=list(scale.fig8_loads),
            n_flows=scale.fig8_flows,
            seed=scale.fig8_seed,
        )
    elif figure == "fig10":
        params.update(
            fanout=scale.fig10_fanout,
            seed=scale.fig10_seed,
            schemes=list(scale.fig10_schemes),
        )
    elif figure == "fig11":
        params.update(
            fanouts=list(scale.fig11_fanouts),
            seed=scale.fig11_seed,
            schemes=list(scale.fig11_schemes),
        )
    elif figure == "fig12":
        params.update(
            load=scale.fig12_load,
            intervals_us=list(scale.fig12_intervals_us),
            targets_us=list(scale.fig12_targets_us),
            n_flows_web=scale.fig12_flows_web,
            n_flows_mining=scale.fig12_flows_mining,
            seed=scale.fig12_seed,
        )
    return params


def _load_bench(bench_path: Optional[Union[str, Path]]) -> Optional[dict]:
    if bench_path is None:
        return None
    with open(bench_path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def capture_baselines(
    scale: Union[str, ValidationScale],
    executor: Optional[Executor] = None,
    baseline_dir: Union[str, Path] = "baselines",
    force: bool = False,
    bench_path: Optional[Union[str, Path]] = None,
) -> Tuple[Baseline, Path, GridOutcome]:
    """Run the validation grid and write ``baselines/<scale>.json``.

    Refuses to capture from a dirty working tree (unless ``force``) and
    from a grid with failed cells -- a golden baseline must be complete
    and reproducible.
    """
    scale = resolve_scale(scale)
    dirty = ensure_clean_tree(force=force)
    executor = executor or get_default_executor()
    outcome = run_validation_grid(scale, executor)
    if outcome.failures:
        tokens = ", ".join(f.spec_key for f in outcome.failures[:5])
        raise RuntimeError(
            f"refusing to capture a baseline from a grid with "
            f"{len(outcome.failures)} failed run(s): {tokens}"
        )
    figures: Dict[str, dict] = {}
    for figure in scale.figures:
        cells = {
            key: {
                "metrics": outcome.samples[figure][key],
                "tokens": outcome.tokens[figure][key],
            }
            for key in outcome.samples.get(figure, {})
        }
        figures[figure] = {
            "params": _figure_params(scale, figure),
            "cells": cells,
        }
    baseline = Baseline(
        manifest=BaselineManifest.collect(scale.name, dirty=dirty),
        figures=figures,
        bench=_load_bench(bench_path),
    )
    path = default_baseline_path(baseline_dir, scale.name)
    baseline.save(path)
    return baseline, path, outcome


# ------------------------------------------------------------------ gate


def run_gate(
    scale: Union[str, ValidationScale],
    executor: Optional[Executor] = None,
    baseline_path: Optional[Union[str, Path]] = None,
    baseline_dir: Union[str, Path] = "baselines",
    bench_path: Optional[Union[str, Path]] = None,
    seed: int = 0,
) -> ValidationReport:
    """Execute the grid and evaluate every gate against the baseline.

    Raises :class:`FileNotFoundError` when the baseline file is missing and
    :class:`~.baselines.StaleBaselineError` when it no longer matches the
    current code or grid definition.
    """
    scale = resolve_scale(scale)
    path = (
        Path(baseline_path)
        if baseline_path is not None
        else default_baseline_path(baseline_dir, scale.name)
    )
    if not path.exists():
        raise FileNotFoundError(
            f"baseline {path} not found; run 'repro validate capture "
            f"--scale {scale.name}' first"
        )
    baseline = Baseline.load(path)
    baseline.check_compatible()

    executor = executor or get_default_executor()
    outcome = run_validation_grid(scale, executor)

    comparisons: List[CellComparison] = []
    for figure in scale.figures:
        for cell_key, metrics in outcome.samples.get(figure, {}).items():
            baseline.check_tokens(
                figure, cell_key, outcome.tokens[figure][cell_key]
            )
            for metric, current in sorted(metrics.items()):
                reference = baseline.cell_samples(figure, cell_key, metric)
                comparisons.append(
                    compare_samples(
                        figure,
                        cell_key,
                        metric,
                        current,
                        reference or [],
                        band=band_for(metric),
                        seed=seed,
                    )
                )

    invariants: List[InvariantVerdict] = []
    for figure in scale.figures:
        invariants.extend(
            evaluate_figure(figure, outcome.figure_results.get(figure))
        )

    perf = evaluate_perf(_load_bench(bench_path), baseline.bench)

    report = ValidationReport(
        scale=scale.name,
        comparisons=comparisons,
        invariants=invariants,
        perf=perf,
        failures=outcome.failures,
        executor_line=executor.stats.merge_line(),
        baseline_manifest=baseline.manifest,
    )
    _emit_verdicts(report)
    return report
