"""Seed-pooled statistical comparison machinery for the validation gates.

A validation run compares the current per-seed metric samples of every grid
cell against its golden baseline samples.  Exact-float equality would make
the gate useless across legitimate code evolution (event-ordering tweaks,
numeric refactors), so each cell gets a principled pass/warn/fail verdict
from three ingredients:

* **relative-tolerance bands** -- the primary check.  Small drifts pass, a
  moderate band warns, and only a shift past the fail band can fail;
* **two-sample tests** -- Welch's t (unequal variances) and Mann-Whitney U
  (rank-based, no normality assumption) temper large-looking shifts: a
  shift past the fail band with overlapping, statistically-indistinct
  samples degrades to a warning instead of failing the gate;
* **bootstrap confidence intervals** -- reported per cell for context, and
  reused by the workload-fidelity tests.

Everything here is numpy + stdlib only (no scipy in the image): the
Student-t CDF comes from the regularized incomplete beta function via a
Lentz continued fraction, and Mann-Whitney uses the tie-corrected normal
approximation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..core.stats_util import mean_or_none

__all__ = [
    "PASS",
    "WARN",
    "FAIL",
    "SKIP",
    "BootstrapCi",
    "bootstrap_ci",
    "student_t_two_sided_p",
    "TestResult",
    "welch_t_test",
    "mann_whitney_u",
    "ToleranceBand",
    "DEFAULT_BAND",
    "COUNT_BAND",
    "QUEUE_BAND",
    "CellComparison",
    "compare_samples",
]

PASS = "pass"
WARN = "warn"
FAIL = "fail"
SKIP = "skip"

_EPS = 1e-12


# ------------------------------------------------------------- bootstrap


@dataclass(frozen=True)
class BootstrapCi:
    """A percentile-bootstrap confidence interval for one statistic."""

    low: float
    high: float
    confidence: float
    n_resamples: int

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_ci(
    samples: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
    statistic: Optional[Callable[[np.ndarray], float]] = None,
) -> BootstrapCi:
    """Percentile bootstrap CI of ``statistic`` (default: the mean).

    Deterministic for a given ``seed``.  A single-element sample yields the
    degenerate interval ``[v, v]`` (zero resamples) rather than an error,
    so n=1 cells can still be compared.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("bootstrap of an empty sample is undefined")
    stat = statistic if statistic is not None else (lambda a: float(np.mean(a)))
    if data.size == 1:
        value = float(stat(data))
        return BootstrapCi(value, value, confidence, 0)
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, data.size, size=(n_resamples, data.size))
    estimates = np.fromiter(
        (stat(data[row]) for row in indices), dtype=float, count=n_resamples
    )
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(estimates, [alpha, 1.0 - alpha])
    return BootstrapCi(float(low), float(high), confidence, n_resamples)


# ------------------------------------------------- Student-t without scipy


def _betacf(a: float, b: float, x: float) -> float:
    """Lentz continued fraction for the incomplete beta function."""
    max_iterations = 300
    eps = 3e-12
    fpmin = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < fpmin:
        d = fpmin
    d = 1.0 / d
    h = d
    for m in range(1, max_iterations + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < fpmin:
            d = fpmin
        c = 1.0 + aa / c
        if abs(c) < fpmin:
            c = fpmin
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < fpmin:
            d = fpmin
        c = 1.0 + aa / c
        if abs(c) < fpmin:
            c = fpmin
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < eps:
            break
    return h


def _betai(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_bt = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log(1.0 - x)
    )
    bt = math.exp(ln_bt)
    if x < (a + 1.0) / (a + b + 2.0):
        return bt * _betacf(a, b, x) / a
    return 1.0 - bt * _betacf(b, a, 1.0 - x) / b


def student_t_two_sided_p(t: float, df: float) -> float:
    """Two-sided p-value of a Student-t statistic with ``df`` degrees of
    freedom: ``I_{df/(df+t^2)}(df/2, 1/2)``."""
    if df <= 0 or not math.isfinite(t):
        return 0.0 if math.isinf(t) else 1.0
    return min(1.0, max(0.0, _betai(df / 2.0, 0.5, df / (df + t * t))))


# ---------------------------------------------------------- two-sample tests


@dataclass(frozen=True)
class TestResult:
    """One two-sample test outcome."""

    statistic: float
    p_value: float
    method: str


def welch_t_test(a: Sequence[float], b: Sequence[float]) -> Optional[TestResult]:
    """Welch's unequal-variance t-test (two-sided).

    Returns ``None`` when either sample has fewer than two elements (the
    variance is undefined); deterministic identical samples give p = 1.
    """
    xs = np.asarray(list(a), dtype=float)
    ys = np.asarray(list(b), dtype=float)
    if xs.size < 2 or ys.size < 2:
        return None
    var_x = float(xs.var(ddof=1))
    var_y = float(ys.var(ddof=1))
    se2 = var_x / xs.size + var_y / ys.size
    diff = float(xs.mean() - ys.mean())
    if se2 <= 0.0:
        # Both samples are constants: equal means are a perfect match,
        # unequal constant means are an unambiguous difference.
        if abs(diff) <= _EPS:
            return TestResult(0.0, 1.0, "welch-t")
        return TestResult(math.inf if diff > 0 else -math.inf, 0.0, "welch-t")
    t = diff / math.sqrt(se2)
    df = se2 * se2 / (
        var_x * var_x / (xs.size * xs.size * (xs.size - 1))
        + var_y * var_y / (ys.size * ys.size * (ys.size - 1))
    )
    return TestResult(t, student_t_two_sided_p(t, df), "welch-t")


def _average_ranks(values: np.ndarray) -> np.ndarray:
    """Midranks (ties get the average of the ranks they span), 1-based."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.size, dtype=float)
    sorted_values = values[order]
    index = 0
    while index < values.size:
        end = index
        while end + 1 < values.size and sorted_values[end + 1] == sorted_values[index]:
            end += 1
        ranks[order[index : end + 1]] = (index + end) / 2.0 + 1.0
        index = end + 1
    return ranks


def mann_whitney_u(a: Sequence[float], b: Sequence[float]) -> Optional[TestResult]:
    """Mann-Whitney U (two-sided, tie-corrected normal approximation with
    continuity correction).  ``None`` when either sample is empty."""
    xs = np.asarray(list(a), dtype=float)
    ys = np.asarray(list(b), dtype=float)
    n1, n2 = xs.size, ys.size
    if n1 == 0 or n2 == 0:
        return None
    combined = np.concatenate([xs, ys])
    ranks = _average_ranks(combined)
    u1 = float(ranks[:n1].sum()) - n1 * (n1 + 1) / 2.0
    n = n1 + n2
    mu = n1 * n2 / 2.0
    _, counts = np.unique(combined, return_counts=True)
    tie_term = float(((counts**3) - counts).sum())
    if n < 2:
        return TestResult(u1, 1.0, "mann-whitney-u")
    sigma2 = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if sigma2 <= 0.0:
        return TestResult(u1, 1.0, "mann-whitney-u")  # all values tied
    shift = u1 - mu
    correction = 0.5 if shift > 0 else (-0.5 if shift < 0 else 0.0)
    z = (shift - correction) / math.sqrt(sigma2)
    p = math.erfc(abs(z) / math.sqrt(2.0))
    return TestResult(u1, min(1.0, p), "mann-whitney-u")


# -------------------------------------------------------- verdict machinery


@dataclass(frozen=True)
class ToleranceBand:
    """Pass/warn/fail thresholds for one metric comparison.

    ``abs_warn`` is an absolute-difference floor below which the comparison
    always passes -- essential for count-like metrics (drops, timeouts)
    whose baselines are legitimately zero.
    """

    rel_warn: float = 0.05
    rel_fail: float = 0.15
    abs_warn: float = 0.0
    alpha: float = 0.05


DEFAULT_BAND = ToleranceBand()
"""FCT-style continuous metrics: 5% free drift, 15% before a potential fail."""

COUNT_BAND = ToleranceBand(rel_warn=0.25, rel_fail=0.75, abs_warn=2.0)
"""Small-integer event counts (drops, timeouts): +-2 events always pass."""

QUEUE_BAND = ToleranceBand(rel_warn=0.10, rel_fail=0.30, abs_warn=3.0)
"""Queue-occupancy averages (packets): sawtooth phase makes them noisier
than FCT means, and a 3-packet absolute drift on a ~10 pkt floor is noise."""


@dataclass(frozen=True)
class CellComparison:
    """One (cell, metric) baseline-vs-current verdict with its evidence."""

    figure: str
    cell: str
    metric: str
    status: str
    current_mean: Optional[float]
    baseline_mean: Optional[float]
    rel_err: Optional[float]
    n_current: int
    n_baseline: int
    p_welch: Optional[float]
    p_mwu: Optional[float]
    ci_low: Optional[float]
    ci_high: Optional[float]
    detail: str

    def to_dict(self) -> dict:
        return {
            "figure": self.figure,
            "cell": self.cell,
            "metric": self.metric,
            "status": self.status,
            "current_mean": self.current_mean,
            "baseline_mean": self.baseline_mean,
            "rel_err": self.rel_err,
            "n_current": self.n_current,
            "n_baseline": self.n_baseline,
            "p_welch": self.p_welch,
            "p_mwu": self.p_mwu,
            "baseline_ci": [self.ci_low, self.ci_high],
            "detail": self.detail,
        }


def compare_samples(
    figure: str,
    cell: str,
    metric: str,
    current: Sequence[Optional[float]],
    baseline: Sequence[Optional[float]],
    band: ToleranceBand = DEFAULT_BAND,
    seed: int = 0,
) -> CellComparison:
    """Compare one cell metric's current seed samples to its baseline.

    Verdict ladder: inside ``rel_warn`` (or within ``abs_warn``
    absolutely) -> pass; inside ``rel_fail`` -> warn; beyond ``rel_fail``
    -> fail, *unless* both sides have >= 2 samples that overlap in range
    and neither Welch nor Mann-Whitney rejects at ``alpha`` (then the
    shift is plausibly seed noise and the verdict degrades to warn).
    """
    cur: List[float] = [float(v) for v in current if v is not None]
    base: List[float] = [float(v) for v in baseline if v is not None]
    if not cur or not base:
        side = "current" if not cur else "baseline"
        return CellComparison(
            figure, cell, metric, SKIP, mean_or_none(cur), mean_or_none(base),
            None, len(cur), len(base), None, None, None, None,
            f"no {side} samples",
        )
    mean_cur = float(mean_or_none(cur))
    mean_base = float(mean_or_none(base))
    abs_err = abs(mean_cur - mean_base)
    if mean_base == 0.0:
        rel_err = 0.0 if abs_err <= _EPS else math.inf
    else:
        rel_err = abs_err / abs(mean_base)
    ci = bootstrap_ci(base, seed=seed)
    welch = welch_t_test(cur, base)
    mwu = mann_whitney_u(cur, base)
    p_welch = welch.p_value if welch is not None else None
    p_mwu = mwu.p_value if mwu is not None else None

    if abs_err <= band.abs_warn or rel_err <= band.rel_warn:
        status = PASS
        detail = f"rel_err={_fmt_rel(rel_err)} within {band.rel_warn:.0%}"
    elif rel_err <= band.rel_fail:
        status = WARN
        detail = (
            f"rel_err={_fmt_rel(rel_err)} in warn band "
            f"({band.rel_warn:.0%}..{band.rel_fail:.0%})"
        )
    else:
        separated = min(cur) > max(base) or max(cur) < min(base)
        significant = (p_welch is not None and p_welch <= band.alpha) or (
            p_mwu is not None and p_mwu <= band.alpha
        )
        if len(cur) >= 2 and len(base) >= 2 and not separated and not significant:
            status = WARN
            detail = (
                f"rel_err={_fmt_rel(rel_err)} > {band.rel_fail:.0%} but samples "
                f"overlap and tests do not reject (p_welch={_fmt_p(p_welch)}, "
                f"p_mwu={_fmt_p(p_mwu)})"
            )
        else:
            status = FAIL
            evidence = "sample ranges are disjoint" if separated else (
                f"p_welch={_fmt_p(p_welch)}, p_mwu={_fmt_p(p_mwu)}"
            )
            detail = (
                f"rel_err={_fmt_rel(rel_err)} > {band.rel_fail:.0%}; {evidence}"
            )
    return CellComparison(
        figure, cell, metric, status, mean_cur, mean_base, rel_err,
        len(cur), len(base), p_welch, p_mwu, ci.low, ci.high, detail,
    )


def _fmt_rel(rel_err: float) -> str:
    return "inf" if math.isinf(rel_err) else f"{rel_err:.1%}"


def _fmt_p(p: Optional[float]) -> str:
    return "-" if p is None else f"{p:.3f}"
