"""Cross-fidelity gate: does the fluid fast model agree with the packet engine?

``repro validate crossfid`` runs a sampled subset of the validation grid at
*both* fidelities -- the discrete-event packet engine and the flow-level
fluid model of :mod:`repro.fluid` -- in one executor pass, then compares
them cell-by-cell with the same statistical machinery the baseline gate
uses (:func:`~repro.validation.stats.compare_samples`), under bands wide
enough for a model-class change but tight enough to catch a mis-calibrated
fluid equation.

The comparison is scoped to the fluid model's validity domain:

* **fig6** (star FCT-vs-load): FCT summary statistics plus the aggregate
  marking *fraction* (raw mark counts are scheme-shaped and incomparable
  across fidelities; the fraction of traffic marked is the quantity both
  models must agree on).
* **fig10** (microscopic queue): only the standing-queue and converged
  floor averages.  Sub-RTT transients -- burst peak height and incast
  drop counts -- are below the fluid step size by construction and are
  deliberately *not* gated (see DESIGN.md's validity-domain notes).

On top of the per-metric agreement, the fluid results are assembled into
the ordinary figure objects and re-checked against the paper-trend
invariants (:mod:`.invariants`): the fast model must reproduce the paper's
*qualitative* claims, not merely track the packet numbers.

The gate's contract mirrors ``repro validate run``: PASS/WARN exit 0 (warn
is expected -- the fluid model is an approximation), FAIL exits 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple, Union

from ..experiments.executor import Executor, get_default_executor
from ..experiments.faults import RunFailure, is_failure
from ..experiments.report import format_failure_table, format_table, to_json
from ..sim.units import MSS
from ..telemetry.runtime import get_active
from .grids import (
    GridCell,
    ValidationScale,
    _assemble_figure,
    build_cells,
    resolve_scale,
)
from .invariants import InvariantVerdict, evaluate_figure
from .stats import (
    FAIL,
    PASS,
    SKIP,
    WARN,
    CellComparison,
    ToleranceBand,
    compare_samples,
)

__all__ = [
    "CROSSFID_FIGURES",
    "CROSSFID_FCT_BAND",
    "CROSSFID_MARK_BAND",
    "CROSSFID_QUEUE_BAND",
    "crossfid_band_for",
    "CrossfidReport",
    "run_crossfid",
]

CROSSFID_FIGURES: Tuple[str, ...] = ("fig6", "fig10")
"""Figures certified for cross-fidelity comparison.  fig11's collapse onset
and fig12's percent-level sensitivity spread both live below the fluid
model's resolution, so they are packet-only territory."""

MICRO_METRICS: Tuple[str, ...] = ("standing_queue_pkts", "floor_queue_pkts")
"""The only microscopic metrics inside the fluid validity domain."""

CROSSFID_FCT_BAND = ToleranceBand(rel_warn=0.25, rel_fail=0.75)
"""FCT statistics: the fluid model runs ~10-25% above packet (it cannot
recover the sub-RTT pipelining that lets short packet flows finish early),
so a quarter is free drift and only a 75%+ divergence fails."""

CROSSFID_MARK_BAND = ToleranceBand(rel_warn=0.5, rel_fail=1.5, abs_warn=0.05)
"""Marking fraction: analytic marking differs in *kind* from per-packet
marking; a 5-percentage-point absolute drift always passes so near-zero
fractions on lightly-marked schemes cannot explode the relative error."""

CROSSFID_QUEUE_BAND = ToleranceBand(rel_warn=0.35, rel_fail=1.5, abs_warn=30.0)
"""Queue averages: the fluid queue has no sawtooth, which systematically
shifts window averages; 30 packets absolute covers small-floor schemes."""


def crossfid_band_for(metric: str) -> ToleranceBand:
    if metric == "mark_fraction":
        return CROSSFID_MARK_BAND
    if metric.endswith("_pkts"):
        return CROSSFID_QUEUE_BAND
    return CROSSFID_FCT_BAND


def _crossfid_scale(scale: ValidationScale) -> ValidationScale:
    figures = tuple(f for f in scale.figures if f in CROSSFID_FIGURES)
    if not figures:
        raise ValueError(
            f"scale {scale.name!r} has no cross-fidelity figure "
            f"(need one of {CROSSFID_FIGURES})"
        )
    return replace(scale, figures=figures)


# ------------------------------------------------------ metric extraction


def _fct_metrics(run: Any) -> Optional[Dict[str, float]]:
    if run is None or is_failure(run):
        return None
    metrics = {
        name: value
        for name, value in run.summary.metrics().items()
        if value is not None
    }
    total_pkts = sum(
        math.ceil(record.size_bytes / MSS)
        for record in run.collector.records
    )
    metrics["mark_fraction"] = (
        run.marks / total_pkts if total_pkts > 0 else 0.0
    )
    return metrics


def _micro_metrics(run: Any) -> Optional[Dict[str, float]]:
    if run is None or is_failure(run):
        return None
    return {
        name: value
        for name, value in run.metrics().items()
        if name in MICRO_METRICS and value is not None
    }


def _extract(cell: GridCell, run: Any) -> Optional[Dict[str, float]]:
    if cell.metric_source == "fct":
        return _fct_metrics(run)
    return _micro_metrics(run)


def _wall_seconds(run: Any) -> Optional[float]:
    if run is None or is_failure(run):
        return None
    manifest = getattr(run, "manifest", None)
    if manifest is None:
        return None
    wall = getattr(manifest, "wall_seconds", None)
    return float(wall) if wall is not None else None


# --------------------------------------------------------------- report


@dataclass(frozen=True)
class FigureAgreement:
    """Per-figure rollup of the cross-fidelity cell verdicts."""

    figure: str
    n_pass: int
    n_warn: int
    n_fail: int
    n_skip: int

    @property
    def status(self) -> str:
        if self.n_fail:
            return FAIL
        if self.n_warn:
            return WARN
        return PASS

    def to_dict(self) -> dict:
        return {
            "figure": self.figure,
            "status": self.status,
            "pass": self.n_pass,
            "warn": self.n_warn,
            "fail": self.n_fail,
            "skip": self.n_skip,
        }


@dataclass
class CrossfidReport:
    """Everything one cross-fidelity gate run decided."""

    scale: str
    figures: Tuple[str, ...]
    comparisons: List[CellComparison] = field(default_factory=list)
    invariants: List[InvariantVerdict] = field(default_factory=list)
    failures: List[RunFailure] = field(default_factory=list)
    packet_wall_seconds: Optional[float] = None
    fluid_wall_seconds: Optional[float] = None
    executor_line: str = ""

    @property
    def speedup(self) -> Optional[float]:
        """Aggregate packet/fluid wall-clock ratio over the sampled cells
        (from the run manifests; cache replays carry the original times)."""
        if not self.packet_wall_seconds or not self.fluid_wall_seconds:
            return None
        return self.packet_wall_seconds / self.fluid_wall_seconds

    @property
    def status(self) -> str:
        if self.failures:
            return FAIL
        statuses = [c.status for c in self.comparisons]
        statuses += [v.status for v in self.invariants]
        if FAIL in statuses:
            return FAIL
        if WARN in statuses:
            return WARN
        return PASS

    def counts(self) -> Dict[str, int]:
        counts = {PASS: 0, WARN: 0, FAIL: 0, SKIP: 0}
        for item in [*self.comparisons, *self.invariants]:
            counts[item.status] = counts.get(item.status, 0) + 1
        return counts

    def agreement(self) -> List[FigureAgreement]:
        per: Dict[str, Dict[str, int]] = {
            figure: {PASS: 0, WARN: 0, FAIL: 0, SKIP: 0}
            for figure in self.figures
        }
        for c in self.comparisons:
            per.setdefault(
                c.figure, {PASS: 0, WARN: 0, FAIL: 0, SKIP: 0}
            )[c.status] += 1
        return [
            FigureAgreement(
                figure=figure,
                n_pass=counts[PASS],
                n_warn=counts[WARN],
                n_fail=counts[FAIL],
                n_skip=counts[SKIP],
            )
            for figure, counts in per.items()
        ]

    def failed_names(self) -> List[str]:
        names = [
            f"{c.figure}:{c.cell}:{c.metric}"
            for c in self.comparisons
            if c.status == FAIL
        ]
        names += [v.name for v in self.invariants if v.status == FAIL]
        return names

    def to_dict(self) -> dict:
        return {
            "scale": self.scale,
            "figures": list(self.figures),
            "status": self.status,
            "counts": self.counts(),
            "failed": self.failed_names(),
            "agreement": [a.to_dict() for a in self.agreement()],
            "comparisons": [c.to_dict() for c in self.comparisons],
            "fluid_invariants": [v.to_dict() for v in self.invariants],
            "run_failures": len(self.failures),
            "packet_wall_seconds": self.packet_wall_seconds,
            "fluid_wall_seconds": self.fluid_wall_seconds,
            "speedup": self.speedup,
            "executor": self.executor_line,
        }

    def to_json(self, path: Optional[str] = None) -> str:
        return to_json(self.to_dict(), path)

    def render_text(self) -> str:
        sections: List[str] = []
        interesting = [c for c in self.comparisons if c.status != PASS]
        rows = [
            [
                c.figure,
                c.cell,
                c.metric,
                c.status.upper(),
                f"{c.current_mean:.6g}" if c.current_mean is not None else "-",
                f"{c.baseline_mean:.6g}" if c.baseline_mean is not None else "-",
                f"{c.rel_err:.1%}" if c.rel_err is not None else "-",
            ]
            for c in interesting
        ]
        if rows:
            sections.append(
                format_table(
                    ["figure", "cell", "metric", "status", "fluid",
                     "packet", "rel err"],
                    rows,
                    title="Cross-fidelity comparisons (non-pass cells)",
                )
            )
        else:
            sections.append(
                f"Cross-fidelity comparisons: all {len(self.comparisons)} "
                "cell-metrics pass"
            )
        agreement_rows = [
            [
                a.figure,
                a.status.upper(),
                str(a.n_pass),
                str(a.n_warn),
                str(a.n_fail),
                str(a.n_skip),
            ]
            for a in self.agreement()
        ]
        sections.append(
            format_table(
                ["figure", "status", "pass", "warn", "fail", "skip"],
                agreement_rows,
                title="Per-figure agreement",
            )
        )
        inv_rows = [
            [
                v.figure,
                v.name,
                v.status.upper(),
                f"{v.value:.4g}" if v.value is not None else "-",
                f"{v.threshold:.4g}",
                v.detail,
            ]
            for v in self.invariants
        ]
        if inv_rows:
            sections.append(
                format_table(
                    ["figure", "invariant", "status", "value", "threshold",
                     "detail"],
                    inv_rows,
                    title="Paper-trend invariants on fluid results",
                )
            )
        if self.failures:
            sections.append(format_failure_table(self.failures))
        if self.speedup is not None:
            sections.append(
                f"Wall clock: packet {self.packet_wall_seconds:.2f}s vs "
                f"fluid {self.fluid_wall_seconds:.2f}s "
                f"({self.speedup:.0f}x speedup on the sampled cells)"
            )
        counts = self.counts()
        sections.append(
            f"Crossfid [{self.scale}]: {self.status.upper()} "
            f"(pass={counts[PASS]} warn={counts[WARN]} fail={counts[FAIL]} "
            f"skip={counts[SKIP]}; run_failures={len(self.failures)}; "
            f"{self.executor_line})"
        )
        return "\n\n".join(sections)


def _emit_verdicts(report: CrossfidReport) -> None:
    telemetry = get_active()
    if telemetry is None:
        return
    for c in report.comparisons:
        telemetry.on_validation_verdict(
            "crossfid",
            f"{c.figure}:{c.cell}:{c.metric}",
            c.status,
            figure=c.figure,
            detail=c.detail,
        )
    for v in report.invariants:
        telemetry.on_validation_verdict(
            "crossfid_invariant",
            v.name,
            v.status,
            figure=v.figure,
            detail=v.detail,
        )


# ------------------------------------------------------------------ gate


def run_crossfid(
    scale: Union[str, ValidationScale],
    executor: Optional[Executor] = None,
    seed: int = 0,
) -> CrossfidReport:
    """Run the cross-fidelity gate at ``scale``.

    Builds the scale's fig6/fig10 cells once, duplicates every spec at
    fluid fidelity via :meth:`RunSpec.with_fidelity`, executes packet and
    fluid specs in a *single* executor pass (shared cache, shared workers),
    and compares per-cell metric samples fluid-vs-packet.
    """
    scale = _crossfid_scale(resolve_scale(scale))
    executor = executor or get_default_executor()

    cells = build_cells(scale)
    packet_flat = [spec for cell in cells for spec in cell.specs]
    fluid_flat = [spec.with_fidelity("fluid") for spec in packet_flat]
    results = executor.run(packet_flat + fluid_flat)
    packet_results = results[: len(packet_flat)]
    fluid_results = results[len(packet_flat):]

    def split(flat_results: List[Any]) -> List[List[Any]]:
        per_cell: List[List[Any]] = []
        cursor = 0
        for cell in cells:
            per_cell.append(flat_results[cursor:cursor + len(cell.specs)])
            cursor += len(cell.specs)
        return per_cell

    packet_per_cell = split(packet_results)
    fluid_per_cell = split(fluid_results)

    comparisons: List[CellComparison] = []
    failures: List[RunFailure] = []
    packet_wall = 0.0
    fluid_wall = 0.0
    for cell, packet_runs, fluid_runs in zip(
        cells, packet_per_cell, fluid_per_cell
    ):
        packet_samples: Dict[str, List[float]] = {}
        fluid_samples: Dict[str, List[float]] = {}
        for runs, samples in (
            (packet_runs, packet_samples),
            (fluid_runs, fluid_samples),
        ):
            for run in runs:
                if isinstance(run, RunFailure):
                    failures.append(run)
                metrics = _extract(cell, run)
                if metrics is None:
                    continue
                for name, value in metrics.items():
                    samples.setdefault(name, []).append(value)
        for run in packet_runs:
            packet_wall += _wall_seconds(run) or 0.0
        for run in fluid_runs:
            fluid_wall += _wall_seconds(run) or 0.0
        for metric in sorted(set(packet_samples) & set(fluid_samples)):
            comparisons.append(
                compare_samples(
                    cell.figure,
                    cell.key,
                    metric,
                    fluid_samples[metric],   # "current" = fluid
                    packet_samples[metric],  # "baseline" = packet truth
                    band=crossfid_band_for(metric),
                    seed=seed,
                )
            )

    invariants: List[InvariantVerdict] = []
    for figure in scale.figures:
        fluid_figure = _assemble_figure(scale, figure, cells, fluid_per_cell)
        invariants.extend(evaluate_figure(figure, fluid_figure))

    report = CrossfidReport(
        scale=scale.name,
        figures=scale.figures,
        comparisons=comparisons,
        invariants=invariants,
        failures=failures,
        packet_wall_seconds=packet_wall or None,
        fluid_wall_seconds=fluid_wall or None,
        executor_line=executor.stats.merge_line(),
    )
    _emit_verdicts(report)
    return report
