"""Golden-result baselines: capture, serialization, and staleness checks.

A baseline is a checked-in JSON snapshot of the validation grid's per-seed
metric samples (one list per (figure, cell, metric)), plus a manifest that
pins everything needed to detect staleness later:

* ``baseline_schema`` -- the format of this file;
* ``spec_schema`` -- the executor's :data:`CACHE_SCHEMA_VERSION`, bumped
  whenever simulation semantics change;
* the package version, git SHA and dirty flag at capture time;
* per-cell :meth:`RunSpec.token` lists, so a change to the validation
  grid's spec construction (different parameters hashing differently) is
  caught as staleness instead of producing nonsense comparisons.

Capturing from a dirty working tree is refused by default (``--force``
overrides, and the manifest then records ``git_dirty: true``), so a
checked-in baseline provably corresponds to a commit.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from .. import __version__
from ..experiments.executor import CACHE_SCHEMA_VERSION
from ..telemetry.provenance import git_sha

__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "BaselineManifest",
    "Baseline",
    "StaleBaselineError",
    "DirtyTreeError",
    "git_dirty",
    "ensure_clean_tree",
]

BASELINE_SCHEMA_VERSION = 1
"""Bump when the baseline JSON layout changes incompatibly."""


class StaleBaselineError(RuntimeError):
    """The baseline no longer matches the code that would consume it."""


class DirtyTreeError(RuntimeError):
    """Refusing to capture a baseline from uncommitted changes."""


def git_dirty(cwd: Optional[str] = None) -> Optional[bool]:
    """True/False for a dirty/clean working tree; ``None`` outside git."""
    try:
        proc = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            timeout=10.0,
            cwd=cwd,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return bool(proc.stdout.strip())


def ensure_clean_tree(force: bool = False, cwd: Optional[str] = None) -> bool:
    """Guard for baseline capture: raise :class:`DirtyTreeError` when the
    working tree has uncommitted changes, unless ``force``.  Returns the
    dirty flag to record in the manifest (``False`` when unknown)."""
    dirty = git_dirty(cwd)
    if dirty and not force:
        raise DirtyTreeError(
            "working tree has uncommitted changes; a captured baseline "
            "would not correspond to any commit. Commit first, or pass "
            "--force to record a dirty-tree baseline."
        )
    return bool(dirty)


@dataclass
class BaselineManifest:
    """Provenance pinned into every baseline file."""

    scale: str
    baseline_schema: int = BASELINE_SCHEMA_VERSION
    spec_schema: int = CACHE_SCHEMA_VERSION
    package_version: str = __version__
    git_sha: Optional[str] = None
    git_dirty: bool = False
    created_unix: float = 0.0

    @classmethod
    def collect(cls, scale: str, dirty: bool = False) -> "BaselineManifest":
        return cls(
            scale=scale,
            git_sha=git_sha(),
            git_dirty=dirty,
            created_unix=time.time(),
        )

    def to_dict(self) -> dict:
        return {
            "scale": self.scale,
            "baseline_schema": self.baseline_schema,
            "spec_schema": self.spec_schema,
            "package_version": self.package_version,
            "git_sha": self.git_sha,
            "git_dirty": self.git_dirty,
            "created_unix": self.created_unix,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BaselineManifest":
        return cls(
            scale=data.get("scale", ""),
            baseline_schema=data.get("baseline_schema", -1),
            spec_schema=data.get("spec_schema", -1),
            package_version=data.get("package_version", ""),
            git_sha=data.get("git_sha"),
            git_dirty=bool(data.get("git_dirty", False)),
            created_unix=data.get("created_unix", 0.0),
        )


@dataclass
class Baseline:
    """One captured validation grid.

    ``figures`` maps figure name to::

        {"params": {...},
         "cells": {cell_key: {"metrics": {metric: [per-seed values]},
                              "tokens": [RunSpec tokens]}}}
    """

    manifest: BaselineManifest
    figures: Dict[str, dict] = field(default_factory=dict)
    bench: Optional[dict] = None

    # ------------------------------------------------------------- access

    def cell_samples(
        self, figure: str, cell: str, metric: str
    ) -> Optional[List[float]]:
        entry = self.figures.get(figure, {}).get("cells", {}).get(cell)
        if entry is None:
            return None
        return entry.get("metrics", {}).get(metric)

    def cell_tokens(self, figure: str, cell: str) -> Optional[List[str]]:
        entry = self.figures.get(figure, {}).get("cells", {}).get(cell)
        if entry is None:
            return None
        return entry.get("tokens")

    # -------------------------------------------------------- staleness

    def check_compatible(self) -> None:
        """Raise :class:`StaleBaselineError` on any schema mismatch."""
        if self.manifest.baseline_schema != BASELINE_SCHEMA_VERSION:
            raise StaleBaselineError(
                f"baseline schema {self.manifest.baseline_schema} != "
                f"current {BASELINE_SCHEMA_VERSION}; recapture with "
                "'repro validate capture'"
            )
        if self.manifest.spec_schema != CACHE_SCHEMA_VERSION:
            raise StaleBaselineError(
                f"baseline spec schema {self.manifest.spec_schema} != "
                f"current CACHE_SCHEMA_VERSION {CACHE_SCHEMA_VERSION}; "
                "simulation semantics changed -- recapture the baseline"
            )

    def check_tokens(self, figure: str, cell: str, tokens: List[str]) -> None:
        """Raise when the current grid's spec tokens differ from capture
        time (the validation grid's spec construction changed)."""
        recorded = self.cell_tokens(figure, cell)
        if recorded is None:
            return  # new cell: handled as missing-baseline at compare time
        if list(recorded) != list(tokens):
            raise StaleBaselineError(
                f"baseline for {figure}:{cell} was captured from different "
                f"run specs (tokens {recorded} != current {tokens}); the "
                "grid definition changed -- recapture the baseline"
            )

    # ------------------------------------------------------------ storage

    def to_dict(self) -> dict:
        payload: Dict[str, Any] = {
            "manifest": self.manifest.to_dict(),
            "figures": self.figures,
        }
        if self.bench is not None:
            payload["bench"] = self.bench
        return payload

    def save(self, path: Path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        return cls(
            manifest=BaselineManifest.from_dict(data.get("manifest", {})),
            figures=data.get("figures", {}),
            bench=data.get("bench"),
        )
