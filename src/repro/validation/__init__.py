"""Fidelity validation subsystem: golden baselines, statistical gates,
and paper-trend invariants.

Layers (dependency order):

* :mod:`.stats` -- bootstrap CIs, Welch t / Mann-Whitney tests, tolerance
  bands, and the :func:`~.stats.compare_samples` verdict ladder;
* :mod:`.baselines` -- schema-versioned golden-result JSON with git/spec
  provenance and staleness detection;
* :mod:`.invariants` -- declarative registry of the paper's directional
  claims (Figures 6-12), evaluated against assembled figure results;
* :mod:`.grids` -- the single owner of validation run-spec construction,
  shared by capture and gate runs so warm gates replay from cache;
* :mod:`.gates` -- ``repro validate capture`` / ``repro validate run``;
* :mod:`.crossfid` -- ``repro validate crossfid``, the fluid-vs-packet
  agreement gate over the hybrid-fidelity sampled cells.
"""

from .baselines import (
    BASELINE_SCHEMA_VERSION,
    Baseline,
    BaselineManifest,
    DirtyTreeError,
    StaleBaselineError,
    ensure_clean_tree,
    git_dirty,
)
from .crossfid import (
    CROSSFID_FIGURES,
    CrossfidReport,
    crossfid_band_for,
    run_crossfid,
)
from .gates import (
    PerfVerdict,
    ValidationReport,
    band_for,
    capture_baselines,
    default_baseline_path,
    evaluate_perf,
    run_gate,
)
from .grids import (
    SCALES,
    GridCell,
    GridOutcome,
    ValidationScale,
    build_cells,
    resolve_scale,
    run_validation_grid,
)
from .invariants import REGISTRY, Invariant, InvariantVerdict, evaluate_figure
from .stats import (
    COUNT_BAND,
    DEFAULT_BAND,
    FAIL,
    PASS,
    QUEUE_BAND,
    SKIP,
    WARN,
    BootstrapCi,
    CellComparison,
    TestResult,
    ToleranceBand,
    bootstrap_ci,
    compare_samples,
    mann_whitney_u,
    student_t_two_sided_p,
    welch_t_test,
)

__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "Baseline",
    "BaselineManifest",
    "DirtyTreeError",
    "StaleBaselineError",
    "ensure_clean_tree",
    "git_dirty",
    "CROSSFID_FIGURES",
    "CrossfidReport",
    "crossfid_band_for",
    "run_crossfid",
    "PerfVerdict",
    "ValidationReport",
    "band_for",
    "capture_baselines",
    "default_baseline_path",
    "evaluate_perf",
    "run_gate",
    "SCALES",
    "GridCell",
    "GridOutcome",
    "ValidationScale",
    "build_cells",
    "resolve_scale",
    "run_validation_grid",
    "REGISTRY",
    "Invariant",
    "InvariantVerdict",
    "evaluate_figure",
    "COUNT_BAND",
    "DEFAULT_BAND",
    "FAIL",
    "PASS",
    "QUEUE_BAND",
    "SKIP",
    "WARN",
    "BootstrapCi",
    "CellComparison",
    "TestResult",
    "ToleranceBand",
    "bootstrap_ci",
    "compare_samples",
    "mann_whitney_u",
    "student_t_two_sided_p",
    "welch_t_test",
]
