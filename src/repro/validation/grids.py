"""Validation grids: reduced-scale run-spec construction and assembly.

This module is the *single owner* of the specs a validation pass executes.
``repro validate capture`` and ``repro validate run`` both call
:func:`build_cells` with the same :class:`ValidationScale`, producing
byte-identical :class:`~repro.experiments.specs.RunSpec` lists -- which is
what makes a warm ``validate run`` immediately after ``capture`` replay
entirely from the executor's result cache (``executed=0``).

Each :class:`GridCell` carries the figure it belongs to, a stable
human-readable cell key (matching the figure modules'
``summarize_for_validation`` key format), and its seed-expanded spec list.
After execution, :func:`run_validation_grid` extracts *per-seed* metric
samples for the statistical gates and assembles the ordinary figure result
objects (``FctVsLoadResult``, ``Fig10Result``, ...) for the paper-trend
invariants -- without calling the figure run functions, so the validator
never runs more simulation than its own grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from ..experiments.executor import Executor, get_default_executor, seed_specs
from ..experiments.faults import RunFailure, is_failure
from ..experiments.figures.fig6_fig7 import FctVsLoadResult
from ..experiments.figures.fig8 import Fig8Result
from ..experiments.figures.fig10 import Fig10Result
from ..experiments.figures.fig11 import Fig11Result
from ..experiments.figures.fig12 import Fig12Result
from ..experiments.runner import pool_results
from ..experiments.schemes import simulation_scheme_specs, testbed_scheme_specs
from ..experiments.specs import AqmSpec, RunSpec
from ..sim.units import ms, us
from ..workloads.datamining import DATA_MINING
from ..workloads.websearch import WEB_SEARCH

__all__ = [
    "ValidationScale",
    "SCALES",
    "resolve_scale",
    "GridCell",
    "GridOutcome",
    "build_cells",
    "run_validation_grid",
]

ALL_TESTBED_SCHEMES: Tuple[str, ...] = (
    "DCTCP-RED-Tail",
    "DCTCP-RED-AVG",
    "CoDel",
    "ECN#",
)
MICRO_SCHEMES: Tuple[str, ...] = ("DCTCP-RED-Tail", "CoDel", "ECN#")


@dataclass(frozen=True)
class ValidationScale:
    """Per-figure parameters of one validation grid.

    ``figures`` selects which figures run; the per-figure fields mirror the
    figure modules' run-function parameters (reduced for speed).  The
    scheme-subset knobs exist so tests can gate on two-scheme micro grids.
    """

    name: str
    figures: Tuple[str, ...]
    n_seeds: int = 2
    # fig6 / fig7: FCT vs load over the testbed star
    fig6_loads: Tuple[float, ...] = (0.5, 0.8)
    fig6_flows: int = 80
    fig6_seed: int = 21
    fig6_schemes: Tuple[str, ...] = ALL_TESTBED_SCHEMES
    fig7_loads: Tuple[float, ...] = (0.5, 0.8)
    fig7_flows: int = 60
    fig7_seed: int = 22
    # fig8: NFCT vs RTT variation
    fig8_variations: Tuple[float, ...] = (3.0, 5.0)
    fig8_loads: Tuple[float, ...] = (0.8,)
    fig8_flows: int = 80
    fig8_seed: int = 31
    # fig10: microscopic queue occupancy
    fig10_fanout: int = 100
    fig10_seed: int = 51
    fig10_schemes: Tuple[str, ...] = MICRO_SCHEMES
    # fig11: query FCT vs fanout
    fig11_fanouts: Tuple[int, ...] = (150, 175)
    fig11_seed: int = 61
    fig11_schemes: Tuple[str, ...] = MICRO_SCHEMES
    # fig12: ECN# parameter sensitivity
    fig12_load: float = 0.5
    fig12_intervals_us: Tuple[float, ...] = (100.0, 250.0)
    fig12_targets_us: Tuple[float, ...] = (6.0, 18.0)
    fig12_flows_web: int = 60
    fig12_flows_mining: int = 30
    fig12_seed: int = 71


SCALES: Dict[str, ValidationScale] = {
    "tiny": ValidationScale(
        name="tiny",
        figures=("fig6", "fig8", "fig10", "fig11", "fig12"),
    ),
    "reduced": ValidationScale(
        name="reduced",
        figures=("fig6", "fig7", "fig8", "fig10", "fig11", "fig12"),
        fig6_loads=(0.3, 0.5, 0.8),
        fig6_flows=150,
        fig8_variations=(3.0, 4.0, 5.0),
        fig8_loads=(0.5, 0.8),
        fig8_flows=150,
        fig11_fanouts=(25, 50, 100, 150, 175, 200),
        fig12_intervals_us=(100.0, 150.0, 200.0, 250.0),
        fig12_targets_us=(6.0, 10.0, 14.0, 18.0),
        fig12_flows_web=120,
        fig12_flows_mining=50,
    ),
}
"""Named grids: ``tiny`` is the CI smoke gate (~1 minute serial), and
``reduced`` matches the default figure-run parameters."""


def resolve_scale(scale: Union[str, ValidationScale]) -> ValidationScale:
    if isinstance(scale, ValidationScale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown validation scale {scale!r} (available: {sorted(SCALES)})"
        ) from None


@dataclass(frozen=True)
class GridCell:
    """One validation cell: a figure, a stable key, its seed specs."""

    figure: str
    key: str
    specs: Tuple[RunSpec, ...]
    metric_source: str  # "fct" (ExperimentResult) or "micro" (MicroscopicRun)

    def tokens(self) -> List[str]:
        return [spec.token() for spec in self.specs]


# ------------------------------------------------------- spec construction


def _fct_vs_load_cells(
    figure: str,
    workload,
    loads: Tuple[float, ...],
    n_flows: int,
    seed: int,
    schemes: Tuple[str, ...],
    n_seeds: int,
) -> List[GridCell]:
    """Mirror of ``run_fct_vs_load``'s spec construction (testbed star,
    3x variation, 70 us base RTT)."""
    scheme_specs = testbed_scheme_specs()
    cells = []
    for load in loads:
        for name in schemes:
            spec = RunSpec.star(
                scheme_specs[name],
                workload=workload.name,
                load=load,
                n_flows=n_flows,
                seed=seed,
                label=name,
                variation=3.0,
                rtt_min=us(70),
            )
            cells.append(
                GridCell(
                    figure=figure,
                    key=f"load={load:g}|scheme={name}",
                    specs=tuple(seed_specs(spec, n_seeds)),
                    metric_source="fct",
                )
            )
    return cells


def _fig8_cells(scale: ValidationScale) -> List[GridCell]:
    scheme_specs = testbed_scheme_specs()
    cells = []
    for variation in scale.fig8_variations:
        for load in scale.fig8_loads:
            for name in ("DCTCP-RED-Tail", "ECN#"):
                spec = RunSpec.star(
                    scheme_specs[name],
                    workload=WEB_SEARCH.name,
                    load=load,
                    n_flows=scale.fig8_flows,
                    seed=scale.fig8_seed,
                    label=name,
                    variation=variation,
                    rtt_min=us(70),
                )
                cells.append(
                    GridCell(
                        figure="fig8",
                        key=(
                            f"variation={variation:g}|load={load:g}|"
                            f"scheme={name}"
                        ),
                        specs=tuple(seed_specs(spec, scale.n_seeds)),
                        metric_source="fct",
                    )
                )
    return cells


def _fig10_cells(scale: ValidationScale) -> List[GridCell]:
    scheme_specs = simulation_scheme_specs()
    return [
        GridCell(
            figure="fig10",
            key=f"scheme={name}",
            specs=(
                RunSpec.microscopic(
                    scheme_specs[name],
                    seed=scale.fig10_seed,
                    label=name,
                    fanout=scale.fig10_fanout,
                ),
            ),
            metric_source="micro",
        )
        for name in scale.fig10_schemes
    ]


def _fig11_cells(scale: ValidationScale) -> List[GridCell]:
    scheme_specs = simulation_scheme_specs()
    return [
        GridCell(
            figure="fig11",
            key=f"fanout={fanout}|scheme={name}",
            specs=(
                RunSpec.microscopic(
                    scheme_specs[name],
                    seed=scale.fig11_seed,
                    label=name,
                    fanout=fanout,
                ),
            ),
            metric_source="micro",
        )
        for fanout in scale.fig11_fanouts
        for name in scale.fig11_schemes
    ]


def _fig12_cells(scale: ValidationScale) -> List[GridCell]:
    """Mirror of ``run_fig12``'s two sweep panels on both workloads."""
    workloads = (
        ("web-search", WEB_SEARCH, scale.fig12_flows_web),
        ("data-mining", DATA_MINING, scale.fig12_flows_mining),
    )
    cells = []
    for workload_name, workload, n_flows in workloads:
        for value in scale.fig12_intervals_us:
            aqm = AqmSpec.make(
                "ecn-sharp",
                ins_target=us(200),
                pst_target=us(85),
                pst_interval=us(value),
            )
            spec = RunSpec.star(
                aqm,
                workload=workload.name,
                load=scale.fig12_load,
                n_flows=n_flows,
                seed=scale.fig12_seed,
                label=f"ECN# pst_interval={value:g}us",
                variation=3.0,
                rtt_min=us(70),
            )
            cells.append(
                GridCell(
                    figure="fig12",
                    key=f"{workload_name}|pst_interval={value:g}us",
                    specs=tuple(seed_specs(spec, scale.n_seeds)),
                    metric_source="fct",
                )
            )
        for value in scale.fig12_targets_us:
            aqm = AqmSpec.make(
                "ecn-sharp",
                ins_target=us(220),
                pst_target=us(value),
                pst_interval=us(240),
            )
            spec = RunSpec.star(
                aqm,
                workload=workload.name,
                load=scale.fig12_load,
                n_flows=n_flows,
                seed=scale.fig12_seed,
                label=f"ECN# pst_target={value:g}us",
                variation=3.0,
                rtt_min=us(80),
            )
            cells.append(
                GridCell(
                    figure="fig12",
                    key=f"{workload_name}|pst_target={value:g}us",
                    specs=tuple(seed_specs(spec, scale.n_seeds)),
                    metric_source="fct",
                )
            )
    return cells


def build_cells(scale: Union[str, ValidationScale]) -> List[GridCell]:
    """Every cell of the scale's grid, in deterministic order."""
    scale = resolve_scale(scale)
    cells: List[GridCell] = []
    for figure in scale.figures:
        if figure == "fig6":
            cells.extend(
                _fct_vs_load_cells(
                    "fig6", WEB_SEARCH, scale.fig6_loads, scale.fig6_flows,
                    scale.fig6_seed, scale.fig6_schemes, scale.n_seeds,
                )
            )
        elif figure == "fig7":
            cells.extend(
                _fct_vs_load_cells(
                    "fig7", DATA_MINING, scale.fig7_loads, scale.fig7_flows,
                    scale.fig7_seed, scale.fig6_schemes, scale.n_seeds,
                )
            )
        elif figure == "fig8":
            cells.extend(_fig8_cells(scale))
        elif figure == "fig10":
            cells.extend(_fig10_cells(scale))
        elif figure == "fig11":
            cells.extend(_fig11_cells(scale))
        elif figure == "fig12":
            cells.extend(_fig12_cells(scale))
        else:
            raise ValueError(f"unknown validation figure {figure!r}")
    return cells


# -------------------------------------------------------------- execution


@dataclass
class GridOutcome:
    """Everything one validation grid pass produced."""

    scale: ValidationScale
    cells: List[GridCell]
    # figure -> cell key -> metric -> per-seed sample list
    samples: Dict[str, Dict[str, Dict[str, List[float]]]]
    # figure -> cell key -> RunSpec tokens (baseline staleness detection)
    tokens: Dict[str, Dict[str, List[str]]]
    # figure -> assembled figure result object (None if cells failed)
    figure_results: Dict[str, Optional[object]]
    failures: List[RunFailure] = field(default_factory=list)


def _extract_metrics(cell: GridCell, run: Any) -> Optional[Dict[str, float]]:
    """Flat metric map of one per-seed run result, or ``None`` on failure."""
    if run is None or is_failure(run):
        return None
    if cell.metric_source == "fct":
        return run.summary.metrics()
    return run.metrics()


def run_validation_grid(
    scale: Union[str, ValidationScale],
    executor: Optional[Executor] = None,
) -> GridOutcome:
    """Execute the grid in one executor pass and organise the outputs."""
    scale = resolve_scale(scale)
    executor = executor or get_default_executor()
    cells = build_cells(scale)
    flat = [spec for cell in cells for spec in cell.specs]
    results = executor.run(flat)

    per_cell: List[List[Any]] = []
    cursor = 0
    for cell in cells:
        per_cell.append(results[cursor:cursor + len(cell.specs)])
        cursor += len(cell.specs)

    samples: Dict[str, Dict[str, Dict[str, List[float]]]] = {}
    tokens: Dict[str, Dict[str, List[str]]] = {}
    failures: List[RunFailure] = []
    for cell, runs in zip(cells, per_cell):
        cell_metrics: Dict[str, List[float]] = {}
        for run in runs:
            if isinstance(run, RunFailure):
                failures.append(run)
            metrics = _extract_metrics(cell, run)
            if metrics is None:
                continue
            for name, value in metrics.items():
                cell_metrics.setdefault(name, []).append(value)
        samples.setdefault(cell.figure, {})[cell.key] = cell_metrics
        tokens.setdefault(cell.figure, {})[cell.key] = cell.tokens()

    figure_results = {
        figure: _assemble_figure(scale, figure, cells, per_cell)
        for figure in scale.figures
    }
    return GridOutcome(
        scale=scale,
        cells=cells,
        samples=samples,
        tokens=tokens,
        figure_results=figure_results,
        failures=failures,
    )


# --------------------------------------------------------------- assembly


def _cell_runs(
    figure: str, cells: List[GridCell], per_cell: List[List[Any]]
) -> List[Tuple[GridCell, List[Any]]]:
    return [
        (cell, runs)
        for cell, runs in zip(cells, per_cell)
        if cell.figure == figure
    ]


def _assemble_figure(
    scale: ValidationScale,
    figure: str,
    cells: List[GridCell],
    per_cell: List[List[Any]],
) -> Optional[object]:
    """Build the ordinary figure result object from raw cell runs; returns
    ``None`` when a required cell has no surviving seed run."""
    mine = _cell_runs(figure, cells, per_cell)
    try:
        if figure in ("fig6", "fig7"):
            return _assemble_fct_vs_load(scale, figure, mine)
        if figure == "fig8":
            return _assemble_fig8(scale, mine)
        if figure == "fig10":
            return _assemble_fig10(scale, mine)
        if figure == "fig11":
            return _assemble_fig11(scale, mine)
        if figure == "fig12":
            return _assemble_fig12(scale, mine)
    except _AssemblyFailed:
        return None
    return None


class _AssemblyFailed(Exception):
    """A required cell lost every seed run."""


def _pooled_summary(runs: List[Any]):
    pooled = pool_results(runs)
    if is_failure(pooled):
        raise _AssemblyFailed()
    return pooled.summary


def _single_micro(runs: List[Any]):
    run = runs[0]
    if run is None or is_failure(run):
        raise _AssemblyFailed()
    return run


def _assemble_fct_vs_load(scale, figure, mine) -> FctVsLoadResult:
    loads = scale.fig6_loads if figure == "fig6" else scale.fig7_loads
    schemes = scale.fig6_schemes
    summaries: Dict[float, Dict[str, Any]] = {load: {} for load in loads}
    iterator = iter(mine)
    for load in loads:
        for name in schemes:
            _cell, runs = next(iterator)
            summaries[load][name] = _pooled_summary(runs)
    return FctVsLoadResult(
        workload_name=(
            WEB_SEARCH.name if figure == "fig6" else DATA_MINING.name
        ),
        loads=loads,
        schemes=schemes,
        summaries=summaries,
    )


def _assemble_fig8(scale, mine) -> Fig8Result:
    summaries: Dict[float, Dict[float, Dict[str, Any]]] = {
        variation: {load: {} for load in scale.fig8_loads}
        for variation in scale.fig8_variations
    }
    iterator = iter(mine)
    for variation in scale.fig8_variations:
        for load in scale.fig8_loads:
            for name in ("DCTCP-RED-Tail", "ECN#"):
                _cell, runs = next(iterator)
                summaries[variation][load][name] = _pooled_summary(runs)
    return Fig8Result(
        variations=scale.fig8_variations,
        loads=scale.fig8_loads,
        summaries=summaries,
    )


def _assemble_fig10(scale, mine) -> Fig10Result:
    runs = {}
    iterator = iter(mine)
    for name in scale.fig10_schemes:
        _cell, cell_runs = next(iterator)
        runs[name] = _single_micro(cell_runs)
    return Fig10Result(
        runs=runs, fanout=scale.fig10_fanout, burst_time=ms(20)
    )


def _assemble_fig11(scale, mine) -> Fig11Result:
    runs: Dict[int, Dict[str, Any]] = {f: {} for f in scale.fig11_fanouts}
    iterator = iter(mine)
    for fanout in scale.fig11_fanouts:
        for name in scale.fig11_schemes:
            _cell, cell_runs = next(iterator)
            runs[fanout][name] = _single_micro(cell_runs)
    return Fig11Result(
        fanouts=scale.fig11_fanouts,
        schemes=scale.fig11_schemes,
        runs=runs,
    )


def _assemble_fig12(scale, mine) -> Fig12Result:
    interval_fct: Dict[str, Dict[float, Optional[float]]] = {}
    target_fct: Dict[str, Dict[float, Optional[float]]] = {}
    iterator = iter(mine)
    for workload_name in ("web-search", "data-mining"):
        interval_fct[workload_name] = {}
        target_fct[workload_name] = {}
        for value in scale.fig12_intervals_us:
            _cell, runs = next(iterator)
            interval_fct[workload_name][value] = _pooled_summary(
                runs
            ).overall_avg
        for value in scale.fig12_targets_us:
            _cell, runs = next(iterator)
            target_fct[workload_name][value] = _pooled_summary(
                runs
            ).overall_avg
    return Fig12Result(
        intervals_us=scale.fig12_intervals_us,
        targets_us=scale.fig12_targets_us,
        interval_fct=interval_fct,
        target_fct=target_fct,
    )
